// Shared bit-exact comparison helpers for deployment-layer results, used
// by every golden/determinism suite that pins "aggregates are
// bit-identical" (tests/multicell/coordinator_test.cpp,
// tests/scenario/scenario_golden_test.cpp).  One superset comparison —
// stats, per-cell aggregates, RACH summaries and histogram quantiles,
// spans — so a field added to DeploymentResult only needs remembering
// here, not in per-suite copies that drift apart.
#pragma once

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "multicell/deployment.hpp"

namespace nbmg::test_support {

/// Bit-exact equality of every stats::Summary in a MechanismStats
/// (stats::Summary::operator== compares the accumulator state itself).
inline void expect_mechanism_stats_equal(const core::MechanismStats& a,
                                         const core::MechanismStats& b) {
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_TRUE(a.light_sleep_increase == b.light_sleep_increase);
    EXPECT_TRUE(a.connected_increase == b.connected_increase);
    EXPECT_TRUE(a.transmissions == b.transmissions);
    EXPECT_TRUE(a.transmissions_per_device == b.transmissions_per_device);
    EXPECT_TRUE(a.bytes_ratio == b.bytes_ratio);
    EXPECT_TRUE(a.recovery_transmissions == b.recovery_transmissions);
    EXPECT_TRUE(a.unreceived_devices == b.unreceived_devices);
    EXPECT_TRUE(a.mean_connected_seconds == b.mean_connected_seconds);
    EXPECT_TRUE(a.mean_light_sleep_seconds == b.mean_light_sleep_seconds);
    EXPECT_TRUE(a.completion_p99_ms == b.completion_p99_ms);
    EXPECT_TRUE(a.redelivery_bytes == b.redelivery_bytes);
    EXPECT_TRUE(a.stranded_devices == b.stranded_devices);
}

inline void expect_deployment_mechanism_equal(
    const multicell::DeploymentMechanismStats& a,
    const multicell::DeploymentMechanismStats& b) {
    expect_mechanism_stats_equal(a.stats, b.stats);
    EXPECT_TRUE(a.bytes_on_air == b.bytes_on_air);
    EXPECT_TRUE(a.rach_collision_rate == b.rach_collision_rate);
}

/// Full bit-exact equality of two DeploymentResults: fleet and per-cell
/// aggregates, cell-load samples, RACH percentiles across cells, and the
/// recorded per-(run, cell) spans.
inline void expect_deployment_results_equal(const multicell::DeploymentResult& a,
                                            const multicell::DeploymentResult& b) {
    expect_deployment_mechanism_equal(a.unicast, b.unicast);
    ASSERT_EQ(a.mechanisms.size(), b.mechanisms.size());
    for (std::size_t m = 0; m < a.mechanisms.size(); ++m) {
        expect_deployment_mechanism_equal(a.mechanisms[m], b.mechanisms[m]);
    }
    ASSERT_EQ(a.cell_count(), b.cell_count());
    for (std::size_t c = 0; c < a.cell_count(); ++c) {
        EXPECT_EQ(a.cells[c].cell, b.cells[c].cell);
        EXPECT_TRUE(a.cells[c].devices == b.cells[c].devices);
        expect_deployment_mechanism_equal(a.cells[c].unicast, b.cells[c].unicast);
        ASSERT_EQ(a.cells[c].mechanisms.size(), b.cells[c].mechanisms.size());
        for (std::size_t m = 0; m < a.cells[c].mechanisms.size(); ++m) {
            expect_deployment_mechanism_equal(a.cells[c].mechanisms[m],
                                              b.cells[c].mechanisms[m]);
        }
    }
    EXPECT_TRUE(a.cell_load == b.cell_load);
    EXPECT_EQ(a.empty_cell_runs, b.empty_cell_runs);
    EXPECT_EQ(a.rach_collision_across_cells.count(),
              b.rach_collision_across_cells.count());
    for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
        EXPECT_EQ(a.rach_collision_across_cells.quantile(q),
                  b.rach_collision_across_cells.quantile(q));
    }
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].devices, b.spans[i].devices);
        EXPECT_EQ(a.spans[i].horizon_ms, b.spans[i].horizon_ms);
    }
}

}  // namespace nbmg::test_support
