// Bit-exact comparison of core::CampaignResult, shared by the strata
// determinism suites (tests/core/campaign_strata_test.cpp,
// tests/core/strata_property_test.cpp, tests/stress/strata_stress_test.cpp).
// One superset comparison — every aggregate counter plus every per-device
// field down to the individual energy buckets — so "bit-identical at any
// thread count" means exactly that.
#pragma once

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "nbiot/energy.hpp"

namespace nbmg::test_support {

inline void expect_energy_equal(const nbiot::EnergyAccount& a,
                                const nbiot::EnergyAccount& b) {
    for (std::size_t s = 0; s < nbiot::kPowerStateCount; ++s) {
        const auto state = static_cast<nbiot::PowerState>(s);
        EXPECT_EQ(a.uptime(state), b.uptime(state))
            << "bucket " << nbiot::to_string(state);
    }
}

inline void expect_campaign_results_equal(const core::CampaignResult& a,
                                          const core::CampaignResult& b) {
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.planned_transmissions, b.planned_transmissions);
    EXPECT_EQ(a.recovery_transmissions, b.recovery_transmissions);
    EXPECT_EQ(a.paging_messages, b.paging_messages);
    EXPECT_EQ(a.paging_entries, b.paging_entries);
    EXPECT_EQ(a.unserved, b.unserved);
    EXPECT_EQ(a.payload_bytes, b.payload_bytes);
    EXPECT_EQ(a.bytes_on_air, b.bytes_on_air);
    EXPECT_EQ(a.observation_horizon, b.observation_horizon);
    EXPECT_EQ(a.rach_attempts, b.rach_attempts);
    EXPECT_EQ(a.rach_collisions, b.rach_collisions);
    EXPECT_EQ(a.rach_failures, b.rach_failures);
    EXPECT_EQ(a.stranded, b.stranded);
    EXPECT_EQ(a.redelivery_bytes, b.redelivery_bytes);
    EXPECT_EQ(a.churn_leaves, b.churn_leaves);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        const core::DeviceOutcome& da = a.devices[i];
        const core::DeviceOutcome& db = b.devices[i];
        EXPECT_EQ(da.spec.device.value, db.spec.device.value) << "device " << i;
        EXPECT_EQ(da.spec.imsi.value, db.spec.imsi.value) << "device " << i;
        EXPECT_EQ(da.spec.cycle, db.spec.cycle) << "device " << i;
        EXPECT_EQ(da.spec.ce_level, db.spec.ce_level) << "device " << i;
        expect_energy_equal(da.energy, db.energy);
        EXPECT_EQ(da.received, db.received) << "device " << i;
        EXPECT_EQ(da.recovered, db.recovered) << "device " << i;
        EXPECT_EQ(da.po_count, db.po_count) << "device " << i;
        EXPECT_EQ(da.rach_attempts, db.rach_attempts) << "device " << i;
        EXPECT_EQ(da.connected_at, db.connected_at) << "device " << i;
        EXPECT_EQ(da.released_at, db.released_at) << "device " << i;
    }
}

}  // namespace nbmg::test_support
