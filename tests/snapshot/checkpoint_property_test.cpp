// Property battery for checkpoint/resume: over seeded random scenario
// specs — single-cell and multicell, strata 1 and 8 — a run stopped
// mid-flight (checkpoint.stop_after) and resumed at a different
// --threads produces aggregates bit-identical to the uninterrupted run
// and byte-identical telemetry artifacts.  Also pins resume-from-final
// (every task restored, none recomputed) and that a checkpointed run is
// bit-identical to a checkpoint-off run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "scenario/run.hpp"
#include "sim/random.hpp"
#include "snapshot/checkpoint.hpp"
#include "tests/support/campaign_equal.hpp"
#include "tests/support/deployment_equal.hpp"

namespace nbmg::scenario {
namespace {

struct Shape {
    std::size_t strata;
    std::size_t stop_threads;    // threads of the interrupted run
    std::size_t resume_threads;  // threads of the resumed run
};

/// A small random workload: population and grid scale drawn from `rng`,
/// trace+metrics telemetry on (in-memory artifacts compared byte for
/// byte), strata from the shape under test.
ScenarioSpec random_spec(sim::RandomStream& rng, bool multicell,
                         const Shape& shape) {
    ScenarioSpec spec;
    spec.name = "checkpoint-property";
    spec.device_count = static_cast<std::size_t>(rng.uniform_int(30, 80));
    spec.runs = static_cast<std::size_t>(rng.uniform_int(4, 8));
    spec.payload_bytes = rng.uniform_int(20, 120) * 1024;
    spec.base_seed = rng.next_u64();
    spec.with_strata(shape.strata);
    if (multicell) {
        spec.with_cells(static_cast<std::size_t>(rng.uniform_int(2, 4)));
    }
    spec.with_telemetry_modes(true, true);
    return spec;
}

std::uint64_t total_tasks(const ScenarioSpec& spec) {
    return spec.is_multicell()
               ? static_cast<std::uint64_t>(spec.runs) * spec.cell_count()
               : static_cast<std::uint64_t>(spec.runs);
}

void expect_results_equal(const ScenarioResult& a, const ScenarioResult& b) {
    ASSERT_EQ(a.is_multicell(), b.is_multicell());
    if (a.is_multicell()) {
        test_support::expect_deployment_results_equal(a.deployment(),
                                                      b.deployment());
    } else {
        test_support::expect_mechanism_stats_equal(a.comparison().unicast,
                                                   b.comparison().unicast);
        ASSERT_EQ(a.comparison().mechanisms.size(),
                  b.comparison().mechanisms.size());
        for (std::size_t m = 0; m < a.comparison().mechanisms.size(); ++m) {
            test_support::expect_mechanism_stats_equal(
                a.comparison().mechanisms[m], b.comparison().mechanisms[m]);
        }
    }
    ASSERT_TRUE(a.telemetry.has_value());
    ASSERT_TRUE(b.telemetry.has_value());
    EXPECT_EQ(a.telemetry->trace_jsonl, b.telemetry->trace_jsonl);
    EXPECT_EQ(a.telemetry->timeline_json, b.telemetry->timeline_json);
    ASSERT_TRUE(a.telemetry->metrics.has_value());
    ASSERT_TRUE(b.telemetry->metrics.has_value());
    EXPECT_EQ(a.telemetry->metrics->to_csv(), b.telemetry->metrics->to_csv());
}

class CheckpointResumeProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(CheckpointResumeProperty, InterruptedResumeMatchesUninterrupted) {
    const Shape shape = GetParam();
    sim::RandomStream rng{sim::derive_seed(20260808, "checkpoint-property",
                                           shape.strata * 100 +
                                               shape.stop_threads * 10 +
                                               shape.resume_threads)};
    for (const bool multicell : {false, true}) {
        const ScenarioSpec base = random_spec(rng, multicell, shape);
        const std::string snap = testing::TempDir() + "checkpoint_property_" +
                                 std::to_string(shape.strata) + "_" +
                                 std::to_string(shape.stop_threads) + "_" +
                                 std::to_string(shape.resume_threads) + "_" +
                                 (multicell ? "mc" : "sc") + ".bin";
        std::remove(snap.c_str());

        // Reference: the uninterrupted, checkpoint-off run.
        ScenarioSpec full = base;
        full.with_threads(shape.stop_threads);
        const ScenarioResult expected = run_scenario(full);

        // Interrupted: stop after roughly half the grid.
        const std::uint64_t budget = std::max<std::uint64_t>(
            1, total_tasks(base) / 2);
        ScenarioSpec interrupted = base;
        interrupted.with_threads(shape.stop_threads)
            .with_checkpoint_out(snap)
            .with_checkpoint_stop_after(budget);
        bool stopped = false;
        try {
            (void)run_scenario(interrupted);
        } catch (const snapshot::CheckpointStop& stop) {
            stopped = true;
            EXPECT_GE(stop.completed(), budget);
        }
        ASSERT_TRUE(stopped) << "stop budget " << budget << " never fired";

        // Resumed at a different thread count: bit-identical to the
        // uninterrupted run.
        ScenarioSpec resumed = base;
        resumed.with_threads(shape.resume_threads).with_resume(snap);
        const ScenarioResult actual = run_scenario(resumed);
        expect_results_equal(actual, expected);

        // The resumed run left a complete snapshot behind (save_final on
        // its default checkpoint.out = "" writes nothing; re-point it).
        ScenarioSpec refreshed = base;
        refreshed.with_threads(shape.resume_threads)
            .with_checkpoint_out(snap)
            .with_resume(snap);
        const ScenarioResult again = run_scenario(refreshed);
        expect_results_equal(again, expected);

        // Resume-from-final: every slot restores, nothing recomputes, and
        // the aggregates still match bit for bit.
        ScenarioSpec from_final = base;
        from_final.with_threads(1).with_resume(snap);
        expect_results_equal(run_scenario(from_final), expected);

        std::remove(snap.c_str());
    }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsAndStrata, CheckpointResumeProperty,
    ::testing::Values(Shape{1, 1, 8}, Shape{1, 8, 1}, Shape{8, 1, 8},
                      Shape{8, 8, 8}),
    [](const ::testing::TestParamInfo<Shape>& info) {
        return "strata" + std::to_string(info.param.strata) + "_stop" +
               std::to_string(info.param.stop_threads) + "_resume" +
               std::to_string(info.param.resume_threads);
    });

}  // namespace
}  // namespace nbmg::scenario
