// Tier-1 coverage of the snapshot container (src/snapshot/format.hpp) and
// the checkpoint context's identity checks (src/snapshot/checkpoint.hpp):
// scalar round trips are bit-exact, the wire layout is pinned
// little-endian, truncation / bad magic / future versions are rejected
// with diagnostics, file writes round-trip, and a CheckpointContext
// refuses snapshots whose fingerprint or engine shape differ from its own.
#include "snapshot/format.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "snapshot/checkpoint.hpp"

namespace nbmg::snapshot {
namespace {

std::string temp_path(const std::string& name) {
    return testing::TempDir() + name;
}

bool file_exists(const std::string& path) {
    return std::ifstream(path).good();
}

TEST(SnapshotWriterReaderTest, ScalarsRoundTripBitExact) {
    Writer w;
    w.put_u8(0xAB);
    w.put_u16(0xBEEF);
    w.put_u32(0xDEADBEEFu);
    w.put_u64(0x0123456789ABCDEFull);
    w.put_i64(-42);
    w.put_i64(std::numeric_limits<std::int64_t>::min());
    w.put_f64(-0.0);
    w.put_f64(1.0 / 3.0);
    w.put_f64(std::numeric_limits<double>::denorm_min());
    w.put_string("checkpoint");
    w.put_string("");
    w.put_u64_vector({1, 0, std::numeric_limits<std::uint64_t>::max()});
    w.put_blob({0x00, 0xFF, 0x7F});

    const std::vector<std::uint8_t> bytes = w.take();
    Reader r(bytes, "test payload");
    EXPECT_EQ(r.take_u8(), 0xAB);
    EXPECT_EQ(r.take_u16(), 0xBEEF);
    EXPECT_EQ(r.take_u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.take_u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.take_i64(), -42);
    EXPECT_EQ(r.take_i64(), std::numeric_limits<std::int64_t>::min());
    const double neg_zero = r.take_f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(r.take_f64(), 1.0 / 3.0);
    EXPECT_EQ(r.take_f64(), std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(r.take_string(), "checkpoint");
    EXPECT_EQ(r.take_string(), "");
    EXPECT_EQ(r.take_u64_vector(),
              (std::vector<std::uint64_t>{
                  1, 0, std::numeric_limits<std::uint64_t>::max()}));
    EXPECT_EQ(r.take_blob(), (std::vector<std::uint8_t>{0x00, 0xFF, 0x7F}));
    EXPECT_EQ(r.remaining(), 0u);
    EXPECT_NO_THROW(r.expect_end());
}

TEST(SnapshotWriterReaderTest, WireLayoutIsLittleEndian) {
    Writer w;
    w.put_u16(0x0102);
    w.put_u32(0x01020304u);
    w.put_u64(0x0102030405060708ull);
    const std::vector<std::uint8_t> expected{
        0x02, 0x01,                                      // u16
        0x04, 0x03, 0x02, 0x01,                          // u32
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,  // u64
    };
    EXPECT_EQ(w.buffer(), expected);
}

TEST(SnapshotWriterReaderTest, ReaderRejectsTruncatedPayload) {
    const std::vector<std::uint8_t> four{1, 2, 3, 4};
    Reader r(four, "short payload");
    EXPECT_THROW((void)r.take_u64(), SnapshotError);
}

TEST(SnapshotWriterReaderTest, ExpectEndRejectsTrailingGarbage) {
    const std::vector<std::uint8_t> bytes{1, 2, 3, 4};
    Reader r(bytes, "trailing");
    (void)r.take_u16();
    EXPECT_THROW(r.expect_end(), SnapshotError);
}

TEST(SnapshotWriterReaderTest, OversizedLengthPrefixRejectedNotAllocated) {
    // A corrupt length prefix far beyond the payload must throw, not
    // attempt a huge allocation.
    Writer w;
    w.put_u64(std::numeric_limits<std::uint64_t>::max());
    const std::vector<std::uint8_t> bytes = w.take();
    Reader r(bytes, "corrupt length");
    EXPECT_THROW((void)r.take_blob(), SnapshotError);
}

std::vector<Section> sample_sections() {
    Writer a;
    a.put_u64(7);
    a.put_string("alpha");
    Writer b;
    b.put_f64(2.5);
    return {Section{1, a.take()}, Section{2, b.take()}};
}

TEST(SnapshotContainerTest, EncodeDecodeRoundTripsSections) {
    const std::vector<Section> sections = sample_sections();
    const std::vector<std::uint8_t> bytes = encode_snapshot(sections);
    EXPECT_EQ(decode_snapshot(bytes, "round trip"), sections);
}

TEST(SnapshotContainerTest, DecodeRejectsBadMagic) {
    std::vector<std::uint8_t> bytes = encode_snapshot(sample_sections());
    bytes[0] ^= 0xFF;
    try {
        (void)decode_snapshot(bytes, "bad magic");
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError& error) {
        EXPECT_NE(std::string(error.what()).find("bad magic"),
                  std::string::npos);
    }
}

TEST(SnapshotContainerTest, DecodeRejectsFutureVersionWithDiagnostic) {
    // The version is the u32 directly after the 8-byte magic.
    std::vector<std::uint8_t> bytes = encode_snapshot(sample_sections());
    bytes[8] = static_cast<std::uint8_t>(kFormatVersion + 1);
    try {
        (void)decode_snapshot(bytes, "future");
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("version " + std::to_string(kFormatVersion + 1)),
                  std::string::npos)
            << what;
        EXPECT_NE(what.find("re-run"), std::string::npos) << what;
    }
}

TEST(SnapshotContainerTest, DecodeRejectsTruncatedFrame) {
    std::vector<std::uint8_t> bytes = encode_snapshot(sample_sections());
    bytes.pop_back();
    EXPECT_THROW((void)decode_snapshot(bytes, "truncated"), SnapshotError);
}

TEST(SnapshotContainerTest, FileWriteReadRoundTrips) {
    const std::string path = temp_path("snapshot_format_roundtrip.bin");
    const std::vector<Section> sections = sample_sections();
    write_snapshot_file(path, sections);
    EXPECT_EQ(read_snapshot_file(path), sections);
    std::remove(path.c_str());
}

TEST(SnapshotContainerTest, MissingFileIsAnError) {
    EXPECT_THROW((void)read_snapshot_file(temp_path("no_such_snapshot.bin")),
                 SnapshotError);
}

CheckpointHeader sample_header() {
    CheckpointHeader header;
    header.fingerprint = 0xFEEDFACEu;
    header.engine = 0;
    header.runs = 4;
    header.cells = 1;
    header.campaigns = 4;
    return header;
}

TEST(CheckpointContextTest, SaveLoadRoundTripsSlots) {
    const std::string path = temp_path("checkpoint_roundtrip.bin");
    {
        CheckpointContext ctx(sample_header(), path, 0, 0);
        ctx.complete_slot(2, {0xAA, 0xBB}, 100);
        ctx.complete_slot(0, {0x01}, 100);
        ctx.save_final();
    }
    CheckpointContext resumed(sample_header(), "", 0, 0);
    resumed.load(path);
    EXPECT_EQ(resumed.restored_count(), 2u);
    ASSERT_NE(resumed.restored(0), nullptr);
    EXPECT_EQ(*resumed.restored(0), (std::vector<std::uint8_t>{0x01}));
    ASSERT_NE(resumed.restored(2), nullptr);
    EXPECT_EQ(*resumed.restored(2), (std::vector<std::uint8_t>{0xAA, 0xBB}));
    EXPECT_EQ(resumed.restored(1), nullptr);
    EXPECT_EQ(resumed.restored(3), nullptr);
    std::remove(path.c_str());
}

TEST(CheckpointContextTest, LoadRejectsFingerprintMismatch) {
    const std::string path = temp_path("checkpoint_fingerprint.bin");
    {
        CheckpointContext ctx(sample_header(), path, 0, 0);
        ctx.save_final();
    }
    CheckpointHeader other = sample_header();
    other.fingerprint = 0xC0FFEEu;
    CheckpointContext resumed(other, "", 0, 0);
    try {
        resumed.load(path);
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError& error) {
        EXPECT_NE(std::string(error.what()).find("different scenario"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

TEST(CheckpointContextTest, LoadRejectsEngineShapeMismatch) {
    const std::string path = temp_path("checkpoint_shape.bin");
    {
        CheckpointContext ctx(sample_header(), path, 0, 0);
        ctx.save_final();
    }
    CheckpointHeader other = sample_header();
    other.runs = 8;  // same scenario fingerprint, different grid
    CheckpointContext resumed(other, "", 0, 0);
    try {
        resumed.load(path);
        FAIL() << "expected SnapshotError";
    } catch (const SnapshotError& error) {
        EXPECT_NE(std::string(error.what()).find("engine shape mismatch"),
                  std::string::npos)
            << error.what();
    }
    std::remove(path.c_str());
}

/// Writes a checkpoint-shaped snapshot by hand (header + slot table) so
/// malformed slot tables can be exercised.
void write_hand_rolled(const std::string& path, const CheckpointHeader& header,
                       const std::vector<std::uint64_t>& slots) {
    Writer header_writer;
    header_writer.put_u64(header.fingerprint);
    header_writer.put_u8(header.engine);
    header_writer.put_u64(header.runs);
    header_writer.put_u64(header.cells);
    header_writer.put_u64(header.campaigns);
    Writer slots_writer;
    slots_writer.put_u64(slots.size());
    for (const std::uint64_t slot : slots) {
        slots_writer.put_u64(slot);
        slots_writer.put_blob({0x42});
    }
    write_snapshot_file(
        path, {Section{1, header_writer.take()}, Section{2, slots_writer.take()}});
}

TEST(CheckpointContextTest, LoadRejectsOutOfRangeSlot) {
    const std::string path = temp_path("checkpoint_range.bin");
    write_hand_rolled(path, sample_header(), {99});  // grid has 4 tasks
    CheckpointContext resumed(sample_header(), "", 0, 0);
    EXPECT_THROW(resumed.load(path), SnapshotError);
    std::remove(path.c_str());
}

TEST(CheckpointContextTest, LoadRejectsDuplicateSlot) {
    const std::string path = temp_path("checkpoint_duplicate.bin");
    write_hand_rolled(path, sample_header(), {1, 1});
    CheckpointContext resumed(sample_header(), "", 0, 0);
    EXPECT_THROW(resumed.load(path), SnapshotError);
    std::remove(path.c_str());
}

TEST(CheckpointContextTest, StopBudgetThrowsAfterFreshTasks) {
    const std::string path = temp_path("checkpoint_stop.bin");
    CheckpointContext ctx(sample_header(), path, 0, 2);
    EXPECT_FALSE(ctx.stopping());
    ctx.complete_slot(0, {0x01}, 10);
    EXPECT_FALSE(ctx.stopping());
    try {
        ctx.complete_slot(1, {0x02}, 10);
        FAIL() << "expected CheckpointStop";
    } catch (const CheckpointStop& stop) {
        EXPECT_EQ(stop.completed(), 2u);
        EXPECT_EQ(stop.path(), path);
    }
    EXPECT_TRUE(ctx.stopping());
    // The stop snapshot includes the final task.
    CheckpointContext resumed(sample_header(), "", 0, 0);
    resumed.load(path);
    EXPECT_EQ(resumed.restored_count(), 2u);
    std::remove(path.c_str());
}

TEST(CheckpointContextTest, EveryMsThrottleDefersWrites) {
    const std::string path = temp_path("checkpoint_throttle.bin");
    std::remove(path.c_str());
    CheckpointContext ctx(sample_header(), path, 1000, 0);
    ctx.complete_slot(0, {0x01}, 400);  // 400 < 1000: no write yet
    EXPECT_FALSE(file_exists(path));
    ctx.complete_slot(1, {0x02}, 700);  // 1100 >= 1000: write
    EXPECT_TRUE(file_exists(path));
    std::remove(path.c_str());
}

}  // namespace
}  // namespace nbmg::snapshot
