// The sweep engine's contract: every index runs exactly once, exceptions
// surface on the caller, and — the property the experiment layer builds
// on — aggregates are bit-identical for any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

TEST(ResolveThreadsTest, ZeroMeansHardwareAndNeverZero) {
    EXPECT_GE(resolve_threads(0), 1u);
    EXPECT_EQ(resolve_threads(1), 1u);
    EXPECT_EQ(resolve_threads(8), 8u);
}

TEST(WorkerPoolTest, RunsEveryIndexExactlyOnce) {
    for (const std::size_t threads : {1u, 2u, 8u}) {
        const WorkerPool pool(threads);
        constexpr std::size_t kCount = 137;
        std::vector<std::atomic<int>> hits(kCount);
        pool.run(kCount, [&](std::size_t i) { hits[i].fetch_add(1); });
        for (std::size_t i = 0; i < kCount; ++i) {
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
        }
    }
}

TEST(WorkerPoolTest, ZeroTasksIsANoOp) {
    const WorkerPool pool(4);
    bool called = false;
    pool.run(0, [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(WorkerPoolTest, PropagatesTaskExceptions) {
    for (const std::size_t threads : {1u, 4u}) {
        const WorkerPool pool(threads);
        EXPECT_THROW(pool.run(16,
                              [](std::size_t i) {
                                  if (i == 7) throw std::runtime_error("boom");
                              }),
                     std::runtime_error);
    }
}

TEST(SweepIndexedTest, ResultsArriveInIndexOrder) {
    const std::vector<std::size_t> out =
        sweep_indexed(64, 8, [](std::size_t i) { return i * i; });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(SweepPointsTest, ReduceSeesRunsOfOnePointInRunOrder) {
    static constexpr std::size_t kPoints = 5;
    static constexpr std::size_t kRuns = 7;
    const auto cell = [](std::size_t point, std::size_t run) {
        return point * 100 + run;
    };
    const auto points = sweep_points(
        kPoints, kRuns, 8, cell,
        [](std::size_t point, std::span<const std::size_t> runs) {
            EXPECT_EQ(runs.size(), kRuns);
            for (std::size_t r = 0; r < runs.size(); ++r) {
                EXPECT_EQ(runs[r], point * 100 + r);
            }
            return std::accumulate(runs.begin(), runs.end(), std::size_t{0});
        });
    ASSERT_EQ(points.size(), kPoints);
    for (std::size_t p = 0; p < kPoints; ++p) {
        EXPECT_EQ(points[p], p * 100 * kRuns + kRuns * (kRuns - 1) / 2);
    }
}

void expect_identical(const stats::Summary& a, const stats::Summary& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.mean(), b.mean());
    EXPECT_EQ(a.variance(), b.variance());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
}

void expect_identical(const MechanismStats& a, const MechanismStats& b) {
    EXPECT_EQ(a.kind, b.kind);
    expect_identical(a.light_sleep_increase, b.light_sleep_increase);
    expect_identical(a.connected_increase, b.connected_increase);
    expect_identical(a.transmissions, b.transmissions);
    expect_identical(a.transmissions_per_device, b.transmissions_per_device);
    expect_identical(a.bytes_ratio, b.bytes_ratio);
    expect_identical(a.recovery_transmissions, b.recovery_transmissions);
    expect_identical(a.unreceived_devices, b.unreceived_devices);
    expect_identical(a.mean_connected_seconds, b.mean_connected_seconds);
    expect_identical(a.mean_light_sleep_seconds, b.mean_light_sleep_seconds);
}

TEST(SweepDeterminismTest, RunComparisonIsBitIdenticalAcrossThreadCounts) {
    ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 40;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = 4;
    setup.base_seed = 99;

    setup.threads = 1;
    const ComparisonOutcome serial = run_comparison(setup);
    for (const std::size_t threads : {2u, 8u}) {
        setup.threads = threads;
        const ComparisonOutcome parallel = run_comparison(setup);
        ASSERT_EQ(parallel.mechanisms.size(), serial.mechanisms.size());
        expect_identical(parallel.unicast, serial.unicast);
        for (std::size_t m = 0; m < serial.mechanisms.size(); ++m) {
            expect_identical(parallel.mechanisms[m], serial.mechanisms[m]);
        }
    }
}

TEST(SweepDeterminismTest, TransmissionSweepIsBitIdenticalAcrossThreadCounts) {
    const CampaignConfig config;
    const std::vector<std::size_t> counts = {50, 80};
    const auto serial = drsc_transmission_sweep(traffic::massive_iot_city(), counts,
                                                config, 3, 42, 1);
    for (const std::size_t threads : {2u, 8u}) {
        const auto parallel = drsc_transmission_sweep(traffic::massive_iot_city(),
                                                      counts, config, 3, 42, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t p = 0; p < serial.size(); ++p) {
            EXPECT_EQ(parallel[p].device_count, serial[p].device_count);
            expect_identical(parallel[p].transmissions, serial[p].transmissions);
            expect_identical(parallel[p].transmissions_per_device,
                             serial[p].transmissions_per_device);
        }
    }
}

TEST(SweepDeterminismTest, PointSweepMatchesPointByPointCalls) {
    const CampaignConfig config;
    const std::vector<std::size_t> counts = {50, 80};
    const auto swept = drsc_transmission_sweep(traffic::massive_iot_city(), counts,
                                               config, 3, 42, 8);
    for (std::size_t p = 0; p < counts.size(); ++p) {
        const auto point = drsc_transmission_point(traffic::massive_iot_city(),
                                                   counts[p], config, 3, 42, 1);
        expect_identical(swept[p].transmissions, point.transmissions);
        expect_identical(swept[p].transmissions_per_device,
                         point.transmissions_per_device);
    }
}

TEST(SweepErrorTest, EmptySetupsThrow) {
    const CampaignConfig config;
    const std::vector<std::size_t> none;
    EXPECT_THROW((void)drsc_transmission_sweep(traffic::massive_iot_city(), none,
                                               config, 3, 42),
                 std::invalid_argument);
    const std::vector<std::size_t> counts = {50};
    EXPECT_THROW((void)drsc_transmission_sweep(traffic::massive_iot_city(), counts,
                                               config, 0, 42),
                 std::invalid_argument);
}

}  // namespace
}  // namespace nbmg::core
