// Theory vs simulation: the closed-form expectations of core/analysis.hpp
// must agree with the measured campaign results.  These tests audit the
// whole pipeline — if either the formulas or the simulator drift, they
// disagree.
#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/campaign.hpp"
#include "core/experiment.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

constexpr std::int64_t kPayload = 100 * 1024;

std::vector<nbiot::UeSpec> make_population(std::size_t n, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    return traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), n, rng));
}

TEST(AnalysisTest, UnicastConnectedMatchesExpectation) {
    const auto devices = make_population(150, 3);
    const CampaignConfig config;
    const CampaignResult result =
        plan_and_run(UnicastBaseline{}, devices, config, kPayload, 3);
    const double expected =
        analysis::expected_unicast_connected_ms(config, kPayload, nbiot::CeLevel::ce0);
    // RACH retries add a little on top of the uncontended expectation.
    EXPECT_NEAR(mean_connected_ms(result), expected, expected * 0.05);
    EXPECT_GE(mean_connected_ms(result), expected - 1.0);
}

TEST(AnalysisTest, UnicastLightSleepMatchesExactlyPerDevice) {
    const auto devices = make_population(60, 4);
    const CampaignConfig config;
    const CampaignResult result =
        plan_and_run(UnicastBaseline{}, devices, config, kPayload, 4);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const double expected = analysis::exact_light_sleep_ms(
            config, devices[i], result.observation_horizon, /*paging_decodes=*/1,
            /*mltc_decodes=*/0);
        EXPECT_DOUBLE_EQ(
            static_cast<double>(result.devices[i].energy.light_sleep_uptime().count()),
            expected)
            << "device " << i;
    }
}

TEST(AnalysisTest, DrSiLightSleepMatchesExactlyPerDevice) {
    const auto devices = make_population(60, 5);
    const CampaignConfig config;
    sim::RandomStream plan_rng{sim::derive_seed(5, "planner")};
    const MulticastPlan plan = DrSiMechanism{}.plan(devices, config, plan_rng);
    const CampaignRunner runner(config);
    const auto horizon = recommended_horizon(devices, config, kPayload);
    const CampaignResult result = runner.run(plan, devices, kPayload, horizon, 5);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const bool mltc = plan.schedules[i].mltc.has_value();
        const double expected = analysis::exact_light_sleep_ms(
            config, devices[i], horizon, mltc ? 0 : 1, mltc ? 1 : 0);
        EXPECT_DOUBLE_EQ(
            static_cast<double>(result.devices[i].energy.light_sleep_uptime().count()),
            expected)
            << "device " << i;
    }
}

TEST(AnalysisTest, DrSiConnectedMatchesUnicastPlusWait) {
    const auto devices = make_population(300, 6);
    const CampaignConfig config;
    const CampaignResult unicast =
        plan_and_run(UnicastBaseline{}, devices, config, kPayload, 6);
    const CampaignResult dr_si =
        plan_and_run(DrSiMechanism{}, devices, config, kPayload, 6);
    const double measured_wait = mean_connected_ms(dr_si) - mean_connected_ms(unicast);
    const double expected_wait = analysis::expected_window_wait_ms(config);
    EXPECT_NEAR(measured_wait, expected_wait, expected_wait * 0.15);
}

TEST(AnalysisTest, DaScExceedsDrSiByRoughlyOneConnection) {
    const auto devices = make_population(600, 7);
    const CampaignConfig config;
    const CampaignResult da_sc =
        plan_and_run(DaScMechanism{}, devices, config, kPayload, 7);
    const CampaignResult dr_si =
        plan_and_run(DrSiMechanism{}, devices, config, kPayload, 7);
    const double delta = mean_connected_ms(da_sc) - mean_connected_ms(dr_si);
    // One extra connection: RA exchange + setup + reconfig + release, for
    // the (large) adjusted fraction of devices.
    const double per_connection =
        static_cast<double>(config.rach.attempt_active_time().count()) +
        static_cast<double>(config.timing.rrc_setup.count()) +
        static_cast<double>(config.timing.rrc_reconfiguration.count()) +
        static_cast<double>(config.timing.rrc_release.count());
    EXPECT_GT(delta, 0.3 * per_connection);
    EXPECT_LT(delta, 2.0 * per_connection);
}

TEST(AnalysisTest, SlotModelUpperBoundsSimulatedRatio) {
    const CampaignConfig config;
    const auto profile = traffic::massive_iot_city();
    for (const std::size_t n : {std::size_t{100}, std::size_t{400}}) {
        const auto point = drsc_transmission_point(profile, n, config, 8, 11);
        const double slot =
            analysis::slot_model_transmission_ratio(profile, n, config);
        EXPECT_LE(point.transmissions_per_device.mean(), slot * 1.05)
            << "greedy must not exceed the slot-occupancy envelope (n=" << n << ")";
        EXPECT_GE(point.transmissions_per_device.mean(), slot * 0.3)
            << "slot model should be the right order of magnitude (n=" << n << ")";
    }
}

TEST(AnalysisTest, SlotModelDecreasesWithTiAndBatching) {
    const auto profile = traffic::massive_iot_city();
    CampaignConfig small_ti;
    small_ti.inactivity_timer = nbiot::SimTime{5'000};
    CampaignConfig large_ti;
    large_ti.inactivity_timer = nbiot::SimTime{40'000};
    EXPECT_GT(analysis::slot_model_transmission_ratio(profile, 500, small_ti),
              analysis::slot_model_transmission_ratio(profile, 500, large_ti));

    auto batched = profile;
    batched.batch_mean = 4.0;
    const CampaignConfig config;
    EXPECT_GT(analysis::slot_model_transmission_ratio(profile, 500, config),
              analysis::slot_model_transmission_ratio(batched, 500, config));
}

TEST(AnalysisTest, ConnectLatencyWithinGuard) {
    // The default guard must cover the expected connect latency with margin
    // for one collision + backoff (DESIGN.md §6.1).
    const CampaignConfig config;
    const double connect = analysis::expected_connect_latency_ms(config);
    EXPECT_LT(connect, static_cast<double>(config.ra_guard.count()));
}

}  // namespace
}  // namespace nbmg::core
