// Property battery: randomly generated campaigns are bit-identical when
// their strata run serially and when they fan over the worker pool.
//
// The generator (seeded mt19937_64, fixed seed: the battery is
// deterministic) draws population size, mechanism, payload, contention
// knobs and root seed; each drawn campaign runs at strata requests
// covering the rounding rule's interesting points (1, odd values that
// round down, the cap) and thread counts {2, 8}, and every field of the
// merged CampaignResult — down to the per-device energy buckets — must
// equal the strata_threads = 1 reference.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/campaign.hpp"
#include "sim/random.hpp"
#include "tests/support/campaign_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

struct DrawnCampaign {
    std::vector<nbiot::UeSpec> specs;
    CampaignConfig config;
    MechanismKind kind = MechanismKind::dr_sc;
    std::int64_t payload_bytes = 0;
    std::uint64_t seed = 0;
};

class CampaignGenerator {
public:
    explicit CampaignGenerator(std::uint64_t seed) : rng_(seed) {}

    DrawnCampaign next() {
        DrawnCampaign drawn;
        const std::size_t devices = 40 + index(260);
        sim::RandomStream pop_rng{rng_()};
        drawn.specs = traffic::to_specs(traffic::generate_population(
            traffic::massive_iot_city(), devices, pop_rng));
        static constexpr MechanismKind kKinds[] = {
            MechanismKind::dr_sc, MechanismKind::da_sc, MechanismKind::dr_si,
            MechanismKind::unicast, MechanismKind::sc_ptm};
        drawn.kind = kKinds[index(std::size(kKinds))];
        drawn.payload_bytes = 1 + static_cast<std::int64_t>(index(256 * 1024));
        drawn.seed = rng_();
        if (chance(0.5)) drawn.config.page_miss_prob = uniform(0.0, 0.3);
        if (chance(0.5)) {
            drawn.config.background_ra_per_second = uniform(0.0, 10.0);
        }
        drawn.config.include_inactivity_tail = chance(0.3);
        return drawn;
    }

private:
    bool chance(double p) { return uniform(0.0, 1.0) < p; }
    std::size_t index(std::size_t bound) {
        return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng_);
    }
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng_);
    }

    std::mt19937_64 rng_;
};

TEST(StrataPropertyTest, RandomCampaignsBitIdenticalAcrossThreadCounts) {
    CampaignGenerator generator(20'260'808);
    for (int i = 0; i < 12; ++i) {
        DrawnCampaign drawn = generator.next();
        const auto mechanism = make_mechanism(drawn.kind);
        for (const std::size_t strata :
             {std::size_t{1}, std::size_t{3}, std::size_t{7}, std::size_t{32}}) {
            drawn.config.strata = strata;
            const CampaignResult serial =
                plan_and_run(*mechanism, drawn.specs, drawn.config,
                             drawn.payload_bytes, drawn.seed, 1);
            for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
                const CampaignResult fanned =
                    plan_and_run(*mechanism, drawn.specs, drawn.config,
                                 drawn.payload_bytes, drawn.seed, threads);
                SCOPED_TRACE("case " + std::to_string(i) + " kind " +
                             to_string(drawn.kind) + " strata " +
                             std::to_string(strata) + " threads " +
                             std::to_string(threads));
                test_support::expect_campaign_results_equal(fanned, serial);
            }
        }
    }
}

}  // namespace
}  // namespace nbmg::core
