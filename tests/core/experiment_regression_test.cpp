// Regression pins for the experiment driver: run_comparison and the
// DR-SC transmission sweep must reproduce the seed implementation's
// aggregates to the last bit.  The golden values below were recorded from
// the pre-optimization (PR 1) kernels; any drift means a hot-path rewrite
// changed observable behaviour.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

ComparisonSetup golden_setup() {
    ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 40;
    setup.payload_bytes = 20 * 1024;
    setup.runs = 3;
    setup.base_seed = 42;
    setup.threads = 1;
    return setup;
}

TEST(ExperimentRegressionTest, ComparisonMatchesPinnedGolden) {
    const ComparisonOutcome outcome = run_comparison(golden_setup());

    EXPECT_DOUBLE_EQ(outcome.unicast.transmissions.mean(), 40.0);
    EXPECT_DOUBLE_EQ(outcome.unicast.mean_connected_seconds.mean(),
                     6.9429999999999996);
    EXPECT_DOUBLE_EQ(outcome.unicast.mean_light_sleep_seconds.mean(),
                     7.2290000000000001);

    ASSERT_EQ(outcome.mechanisms.size(), 3u);
    const MechanismStats& dr_sc = outcome.mechanisms[0];
    EXPECT_EQ(dr_sc.kind, MechanismKind::dr_sc);
    EXPECT_DOUBLE_EQ(dr_sc.light_sleep_increase.mean(), 0.0);
    EXPECT_DOUBLE_EQ(dr_sc.connected_increase.mean(), 0.57560372557491968);
    EXPECT_DOUBLE_EQ(dr_sc.transmissions.mean(), 20.666666666666668);
    EXPECT_DOUBLE_EQ(dr_sc.bytes_ratio.mean(), 0.52180354267310791);
    EXPECT_DOUBLE_EQ(dr_sc.recovery_transmissions.mean(), 0.0);
    EXPECT_DOUBLE_EQ(dr_sc.unreceived_devices.mean(), 0.0);

    const MechanismStats& da_sc = outcome.mechanisms[1];
    EXPECT_EQ(da_sc.kind, MechanismKind::da_sc);
    EXPECT_DOUBLE_EQ(da_sc.light_sleep_increase.mean(), 1.8914472369133142);
    EXPECT_DOUBLE_EQ(da_sc.connected_increase.mean(), 1.1269095971962166);
    EXPECT_DOUBLE_EQ(da_sc.transmissions.mean(), 1.0);
    EXPECT_DOUBLE_EQ(da_sc.bytes_ratio.mean(), 0.040175523349436387);

    const MechanismStats& dr_si = outcome.mechanisms[2];
    EXPECT_EQ(dr_si.kind, MechanismKind::dr_si);
    EXPECT_DOUBLE_EQ(dr_si.light_sleep_increase.mean(), 0.0064479289371293103);
    EXPECT_DOUBLE_EQ(dr_si.connected_increase.mean(), 0.99505497143405841);
    EXPECT_DOUBLE_EQ(dr_si.transmissions.mean(), 1.0);
    EXPECT_DOUBLE_EQ(dr_si.bytes_ratio.mean(), 0.035542673107890499);
}

TEST(ExperimentRegressionTest, SharedPopulationsAreBitIdentical) {
    const ComparisonOutcome fresh = run_comparison(golden_setup());

    ComparisonSetup shared = golden_setup();
    shared.populations = generate_comparison_populations(
        shared.profile, shared.device_count, shared.runs, shared.base_seed);
    const ComparisonOutcome cached = run_comparison(shared);

    EXPECT_DOUBLE_EQ(cached.unicast.transmissions.mean(),
                     fresh.unicast.transmissions.mean());
    EXPECT_DOUBLE_EQ(cached.unicast.mean_connected_seconds.mean(),
                     fresh.unicast.mean_connected_seconds.mean());
    ASSERT_EQ(cached.mechanisms.size(), fresh.mechanisms.size());
    for (std::size_t m = 0; m < fresh.mechanisms.size(); ++m) {
        EXPECT_DOUBLE_EQ(cached.mechanisms[m].light_sleep_increase.mean(),
                         fresh.mechanisms[m].light_sleep_increase.mean());
        EXPECT_DOUBLE_EQ(cached.mechanisms[m].connected_increase.mean(),
                         fresh.mechanisms[m].connected_increase.mean());
        EXPECT_DOUBLE_EQ(cached.mechanisms[m].transmissions.mean(),
                         fresh.mechanisms[m].transmissions.mean());
        EXPECT_DOUBLE_EQ(cached.mechanisms[m].bytes_ratio.mean(),
                         fresh.mechanisms[m].bytes_ratio.mean());
    }
}

TEST(ExperimentRegressionTest, SharedPopulationsValidated) {
    ComparisonSetup setup = golden_setup();
    // Too few runs.
    setup.populations = generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs - 1, setup.base_seed);
    EXPECT_THROW((void)run_comparison(setup), std::invalid_argument);

    // Wrong device count.
    setup.populations = generate_comparison_populations(
        setup.profile, setup.device_count + 1, setup.runs, setup.base_seed);
    EXPECT_THROW((void)run_comparison(setup), std::invalid_argument);

    // Wrong seed: sizes all match, provenance must still be rejected.
    setup.populations = generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed + 1);
    EXPECT_THROW((void)run_comparison(setup), std::invalid_argument);

    // Wrong profile.
    traffic::PopulationProfile other = setup.profile;
    other.name = "other-profile";
    setup.populations = generate_comparison_populations(
        other, setup.device_count, setup.runs, setup.base_seed);
    EXPECT_THROW((void)run_comparison(setup), std::invalid_argument);
}

TEST(ExperimentRegressionTest, DrscTransmissionPointMatchesPinnedGolden) {
    const CampaignConfig config;
    const TransmissionSweepPoint point = drsc_transmission_point(
        traffic::massive_iot_city(), 120, config, 4, 42, 1);
    EXPECT_DOUBLE_EQ(point.transmissions.mean(), 65.75);
    EXPECT_DOUBLE_EQ(point.transmissions_per_device.mean(), 0.54791666666666672);
}

}  // namespace
}  // namespace nbmg::core
