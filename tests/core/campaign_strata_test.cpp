// Intra-cell parallelism: paging-frame strata over the sweep pool.
//
// Pins the three contracts of the stratified campaign path:
//  1. resolve_strata's documented rounding rule (largest power of two <=
//     the request, capped at kMaxStrata, 0 rejected),
//  2. paging_stratum is a total partition key that is invariant under the
//     DA-SC ladder adaptation (every allowed stratum count divides every
//     cycle's frame length), and
//  3. the merged stratified result is bit-identical at any strata_threads
//     — the executed strata count is a model knob, the thread count never
//     is.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "nbiot/paging.hpp"
#include "sim/random.hpp"
#include "tests/support/campaign_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

std::vector<nbiot::UeSpec> population(std::size_t devices, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    return traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), devices, rng));
}

CampaignResult run_campaign(MechanismKind kind,
                            std::span<const nbiot::UeSpec> specs,
                            const CampaignConfig& config,
                            std::size_t strata_threads) {
    const auto mechanism = make_mechanism(kind);
    return plan_and_run(*mechanism, specs, config, 64 * 1024, 99, strata_threads);
}

TEST(ResolveStrataTest, RoundsDownToLargestPowerOfTwo) {
    EXPECT_EQ(resolve_strata(1), 1u);
    EXPECT_EQ(resolve_strata(2), 2u);
    EXPECT_EQ(resolve_strata(3), 2u);
    EXPECT_EQ(resolve_strata(4), 4u);
    EXPECT_EQ(resolve_strata(7), 4u);
    EXPECT_EQ(resolve_strata(8), 8u);
    EXPECT_EQ(resolve_strata(15), 8u);
    EXPECT_EQ(resolve_strata(16), 16u);
    EXPECT_EQ(resolve_strata(31), 16u);
    EXPECT_EQ(resolve_strata(32), 32u);
}

TEST(ResolveStrataTest, CapsAtMaxStrata) {
    EXPECT_EQ(resolve_strata(33), 32u);
    EXPECT_EQ(resolve_strata(100), 32u);
    EXPECT_EQ(resolve_strata(1u << 20), 32u);
}

TEST(ResolveStrataTest, RejectsZero) {
    EXPECT_THROW((void)resolve_strata(0), std::invalid_argument);
}

TEST(PagingStratumTest, PartitionsEveryDeviceIntoRange) {
    const auto specs = population(500, 7);
    const nbiot::PagingSchedule paging{{}};
    for (const std::size_t strata : {std::size_t{1}, std::size_t{2},
                                     std::size_t{8}, std::size_t{32}}) {
        std::vector<std::size_t> counts(strata, 0);
        for (const nbiot::UeSpec& spec : specs) {
            const std::size_t s = paging_stratum(paging, spec, strata);
            ASSERT_LT(s, strata);
            ++counts[s];
        }
        std::size_t total = 0;
        for (const std::size_t c : counts) total += c;
        EXPECT_EQ(total, specs.size()) << "strata=" << strata;
    }
}

TEST(PagingStratumTest, InvariantUnderLadderAdaptation) {
    // The stratum must not move when DA-SC walks a device down the cycle
    // ladder: every allowed stratum count (power of two <= 32) divides
    // every cycle's frame length (32 * 2^k frames), so the paging-frame
    // residue mod strata is the same at every rung.
    const auto specs = population(300, 11);
    const nbiot::PagingSchedule paging{{}};
    for (const std::size_t strata : {std::size_t{2}, std::size_t{4},
                                     std::size_t{8}, std::size_t{16},
                                     std::size_t{32}}) {
        for (nbiot::UeSpec spec : specs) {
            const std::size_t original = paging_stratum(paging, spec, strata);
            while (spec.cycle.has_shorter()) {
                spec.cycle = spec.cycle.shorter();
                EXPECT_EQ(paging_stratum(paging, spec, strata), original)
                    << "imsi=" << spec.imsi.value
                    << " cycle_index=" << spec.cycle.index()
                    << " strata=" << strata;
            }
        }
    }
}

class StrataDeterminismTest
    : public ::testing::TestWithParam<std::tuple<MechanismKind, std::size_t>> {};

TEST_P(StrataDeterminismTest, BitIdenticalAcrossThreadCounts) {
    const auto [kind, strata] = GetParam();
    const auto specs = population(300, 17);
    CampaignConfig config;
    config.strata = strata;
    config.background_ra_per_second = 2.0;
    config.page_miss_prob = 0.05;

    const CampaignResult serial = run_campaign(kind, specs, config, 1);
    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
        const CampaignResult fanned = run_campaign(kind, specs, config, threads);
        test_support::expect_campaign_results_equal(fanned, serial);
    }
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsByStrata, StrataDeterminismTest,
    ::testing::Combine(::testing::Values(MechanismKind::dr_sc,
                                         MechanismKind::da_sc,
                                         MechanismKind::dr_si),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{8}, std::size_t{32})),
    [](const auto& info) {
        std::string name = to_string(std::get<0>(info.param));
        for (char& c : name) {
            if (c == '-') c = '_';
        }
        return name + "_strata" + std::to_string(std::get<1>(info.param));
    });

TEST(StrataCampaignTest, RequestedCountRoundsLikeResolveStrata) {
    // strata = 3 runs the resolved 2-stratum model and strata = 7 the
    // 4-stratum one: the documented rounding rule is observable end to end.
    const auto specs = population(200, 23);
    CampaignConfig three;
    three.strata = 3;
    CampaignConfig two;
    two.strata = 2;
    test_support::expect_campaign_results_equal(
        run_campaign(MechanismKind::dr_si, specs, three, 2),
        run_campaign(MechanismKind::dr_si, specs, two, 1));

    CampaignConfig seven;
    seven.strata = 7;
    CampaignConfig four;
    four.strata = 4;
    test_support::expect_campaign_results_equal(
        run_campaign(MechanismKind::da_sc, specs, seven, 8),
        run_campaign(MechanismKind::da_sc, specs, four, 1));
}

TEST(StrataCampaignTest, PopulationSmallerThanStrataLeavesStrataEmpty) {
    // 3 devices cannot fill 32 strata; the empty ones are skipped and the
    // merged result still covers every device exactly once.
    const auto specs = population(3, 31);
    CampaignConfig config;
    config.strata = 32;
    const CampaignResult serial =
        run_campaign(MechanismKind::unicast, specs, config, 1);
    const CampaignResult fanned =
        run_campaign(MechanismKind::unicast, specs, config, 8);
    test_support::expect_campaign_results_equal(fanned, serial);
    ASSERT_EQ(serial.devices.size(), 3u);
    for (std::size_t i = 0; i < serial.devices.size(); ++i) {
        EXPECT_EQ(serial.devices[i].spec.device.value, i);
        EXPECT_TRUE(serial.devices[i].received);
    }
}

TEST(StrataCampaignTest, InvalidStratumCountRejected) {
    CampaignConfig config;
    config.strata = 0;
    EXPECT_THROW(CampaignRunner runner(config), std::invalid_argument);
    config.strata = kMaxStrata + 1;
    EXPECT_THROW(CampaignRunner runner(config), std::invalid_argument);
}

}  // namespace
}  // namespace nbmg::core
