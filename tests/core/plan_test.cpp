// Planner invariants for all five mechanisms, including parameterized
// sweeps over populations and seeds (paper Sec. III semantics).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <tuple>

#include "core/mechanism.hpp"
#include "core/planners.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

using nbiot::DrxCycle;
using nbiot::SimTime;

std::vector<nbiot::UeSpec> make_population(std::size_t n, std::uint64_t seed,
                                           const traffic::PopulationProfile& profile =
                                               traffic::massive_iot_city()) {
    sim::RandomStream rng{seed};
    return traffic::to_specs(traffic::generate_population(profile, n, rng));
}

MulticastPlan plan_with(MechanismKind kind, std::span<const nbiot::UeSpec> devices,
                        const CampaignConfig& config, std::uint64_t seed = 99) {
    sim::RandomStream rng{seed};
    return make_mechanism(kind)->plan(devices, config, rng);
}

// ------------------------------------------------------------- factory ----

TEST(MechanismFactoryTest, CreatesEveryKind) {
    for (const MechanismKind kind :
         {MechanismKind::dr_sc, MechanismKind::da_sc, MechanismKind::dr_si,
          MechanismKind::unicast, MechanismKind::sc_ptm}) {
        const auto mechanism = make_mechanism(kind);
        ASSERT_NE(mechanism, nullptr);
        EXPECT_EQ(mechanism->kind(), kind);
        EXPECT_FALSE(mechanism->name().empty());
    }
}

TEST(MechanismPropertiesTest, PaperTradeoffTable) {
    EXPECT_TRUE(standards_compliant(MechanismKind::dr_sc));
    EXPECT_TRUE(standards_compliant(MechanismKind::da_sc));
    EXPECT_FALSE(standards_compliant(MechanismKind::dr_si));
    EXPECT_TRUE(respects_drx(MechanismKind::dr_sc));
    EXPECT_FALSE(respects_drx(MechanismKind::da_sc));
    EXPECT_TRUE(respects_drx(MechanismKind::dr_si));
}

TEST(PopulationMaxCycleTest, MatchesManualScan) {
    const auto devices = make_population(200, 3);
    DrxCycle expect = devices.front().cycle;
    for (const auto& d : devices) expect = std::max(expect, d.cycle);
    EXPECT_EQ(population_max_cycle(devices), expect);
    EXPECT_THROW((void)population_max_cycle({}), std::invalid_argument);
}

// ------------------------------------------------- per-mechanism rules ----

class PlannerSweepTest
    : public ::testing::TestWithParam<std::tuple<MechanismKind, std::size_t,
                                                 std::uint64_t>> {};

TEST_P(PlannerSweepTest, PlanSatisfiesInvariants) {
    const auto [kind, n, seed] = GetParam();
    const auto devices = make_population(n, seed);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(kind, devices, config, seed);
    EXPECT_NO_THROW(validate_plan(plan, devices));
    EXPECT_EQ(plan.kind, kind);
    EXPECT_TRUE(plan.unserved.empty())
        << "default paging capacity must serve everyone";
    for (const auto& s : plan.schedules) EXPECT_TRUE(s.served());
}

TEST_P(PlannerSweepTest, PlansAreDeterministicPerSeed) {
    const auto [kind, n, seed] = GetParam();
    const auto devices = make_population(n, seed);
    const CampaignConfig config;
    const MulticastPlan a = plan_with(kind, devices, config, 5);
    const MulticastPlan b = plan_with(kind, devices, config, 5);
    ASSERT_EQ(a.transmissions.size(), b.transmissions.size());
    for (std::size_t i = 0; i < a.transmissions.size(); ++i) {
        EXPECT_EQ(a.transmissions[i].start, b.transmissions[i].start);
        EXPECT_EQ(a.transmissions[i].devices.size(), b.transmissions[i].devices.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, PlannerSweepTest,
    ::testing::Combine(::testing::Values(MechanismKind::dr_sc, MechanismKind::da_sc,
                                         MechanismKind::dr_si, MechanismKind::unicast,
                                         MechanismKind::sc_ptm),
                       ::testing::Values(std::size_t{1}, std::size_t{25},
                                         std::size_t{150}),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{17})));

// --------------------------------------------------------------- DR-SC ----

TEST(DrScPlanTest, EveryDeviceIsPagedAtOwnPoInsideItsWindow) {
    const auto devices = make_population(120, 4);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::dr_sc, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    for (const auto& s : plan.schedules) {
        ASSERT_TRUE(s.page_at.has_value());
        const auto& dev = devices[s.device.value];
        EXPECT_TRUE(paging.is_po(*s.page_at, dev.imsi, dev.cycle))
            << "DR-SC must respect the device's own paging occasions";
        EXPECT_FALSE(s.adjustment.has_value());
        EXPECT_FALSE(s.mltc.has_value());
        const auto& tx = plan.transmissions[s.transmission];
        EXPECT_LT(*s.page_at, tx.start);
    }
}

TEST(DrScPlanTest, TransmissionCountSublinearInDevices) {
    const CampaignConfig config;
    const auto small = make_population(100, 11);
    const auto large = make_population(800, 11);
    const auto small_tx =
        plan_with(MechanismKind::dr_sc, small, config).transmissions.size();
    const auto large_tx =
        plan_with(MechanismKind::dr_sc, large, config).transmissions.size();
    EXPECT_LT(small_tx, 100u);
    EXPECT_LT(large_tx, 800u * small_tx / 100u)
        << "transmissions must grow slower than devices (paper Fig. 7)";
}

TEST(DrScPlanTest, SingleDeviceGetsOneTransmission) {
    const auto devices = make_population(1, 2);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::dr_sc, devices, config);
    EXPECT_EQ(plan.transmissions.size(), 1u);
}

TEST(DrScPlanTest, IdenticalImsiBatchSharesOneTransmission) {
    // Four devices with consecutive IMSIs and the same cycle: one window.
    std::vector<nbiot::UeSpec> devices;
    for (std::uint32_t i = 0; i < 4; ++i) {
        devices.push_back(nbiot::UeSpec{nbiot::DeviceId{i}, nbiot::Imsi{500'000 + i},
                                        nbiot::drx::seconds_2621_44(),
                                        nbiot::CeLevel::ce0});
    }
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::dr_sc, devices, config);
    EXPECT_EQ(plan.transmissions.size(), 1u);
    EXPECT_EQ(plan.transmissions.front().devices.size(), 4u);
}

// --------------------------------------------------------------- DA-SC ----

TEST(DaScPlanTest, SingleTransmissionAfterReference) {
    const auto devices = make_population(120, 4);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    ASSERT_EQ(plan.transmissions.size(), 1u);
    const SimTime t = plan.planning_reference;
    EXPECT_GE(t, SimTime{2 * population_max_cycle(devices).period_ms()});
    EXPECT_EQ(plan.transmissions.front().start, t + config.ra_guard);
}

TEST(DaScPlanTest, DevicesWithNaturalPoInWindowAreNotAdjusted) {
    const auto devices = make_population(150, 6);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    const SimTime t = plan.planning_reference;
    const SimTime window_start = t - config.inactivity_timer;
    for (const auto& s : plan.schedules) {
        const auto& dev = devices[s.device.value];
        if (paging.has_po_in_range(window_start, t, dev.imsi, dev.cycle)) {
            EXPECT_FALSE(s.adjustment.has_value())
                << "natural-PO devices must keep their cycle (Sec. III-B)";
        } else {
            EXPECT_TRUE(s.adjustment.has_value());
        }
    }
}

TEST(DaScPlanTest, AdjustmentsAreShorterCyclesPagedBeforeWindow) {
    const auto devices = make_population(150, 6);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    const SimTime t = plan.planning_reference;
    const SimTime window_start = t - config.inactivity_timer;
    for (const auto& s : plan.schedules) {
        if (!s.adjustment) continue;
        const auto& dev = devices[s.device.value];
        EXPECT_LT(s.adjustment->adapted_cycle, dev.cycle)
            << "DA-SC only decreases cycles";
        EXPECT_LT(s.adjustment->adjust_page_at, window_start)
            << "adaptation happens at the last PO before t - TI";
        EXPECT_TRUE(paging.is_po(s.adjustment->adjust_page_at, dev.imsi, dev.cycle))
            << "the adjustment page rides a PO of the original cycle";
        ASSERT_TRUE(s.page_at.has_value());
        EXPECT_GE(*s.page_at, window_start);
        EXPECT_LT(*s.page_at, t);
    }
}

TEST(DaScPlanTest, AdaptedPoSitsOnBothGrids) {
    // Reproduction note R1: because the ladder nests under nB = T, the
    // adapted occasions simultaneously (a) satisfy the TS 36.304 congruence
    // of the adapted cycle and (b) repeat from the adjustment PO, exactly
    // as the paper's Fig. 5 draws them.  The two views are the same grid.
    const auto devices = make_population(100, 8);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    std::size_t checked = 0;
    for (const auto& s : plan.schedules) {
        if (!s.adjustment) continue;
        const auto& dev = devices[s.device.value];
        EXPECT_TRUE(paging.is_po(*s.page_at, dev.imsi, s.adjustment->adapted_cycle));
        const std::int64_t delta = (*s.page_at - s.adjustment->adjust_page_at).count();
        EXPECT_EQ(delta % s.adjustment->adapted_cycle.period_ms(), 0);
        EXPECT_GT(delta, 0);
        ++checked;
    }
    EXPECT_GT(checked, 10u);
}

TEST(DaScPlanTest, WindowPagesSpreadAcrossWindow) {
    // The adapted-cycle page is placed on a uniformly chosen occasion in
    // the window, spreading the RACH load like DR-SI's random T322 expiry.
    const auto devices = make_population(300, 12);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    const nbiot::SimTime window_start =
        plan.planning_reference - config.inactivity_timer;
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& s : plan.schedules) {
        if (!s.adjustment) continue;
        sum += static_cast<double>((*s.page_at - window_start).count());
        ++count;
    }
    ASSERT_GT(count, 100u);
    const double mean_fraction =
        sum / static_cast<double>(count) /
        static_cast<double>(config.inactivity_timer.count());
    EXPECT_NEAR(mean_fraction, 0.5, 0.12);
}

// --------------------------------------------------------------- DR-SI ----

TEST(DrSiPlanTest, ExtensionOnlyForDevicesOutsideWindow) {
    const auto devices = make_population(150, 4);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::dr_si, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    const SimTime t = plan.planning_reference;
    const SimTime window_start = t - config.inactivity_timer;
    for (const auto& s : plan.schedules) {
        const auto& dev = devices[s.device.value];
        if (paging.has_po_in_range(window_start, t, dev.imsi, dev.cycle)) {
            EXPECT_TRUE(s.page_at.has_value());
            EXPECT_FALSE(s.mltc.has_value());
        } else {
            ASSERT_TRUE(s.mltc.has_value());
            EXPECT_FALSE(s.page_at.has_value());
        }
        EXPECT_FALSE(s.adjustment.has_value()) << "DR-SI never adjusts DRX";
    }
}

TEST(DrSiPlanTest, WakeTimesUniformInWindow) {
    const auto devices = make_population(300, 9);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::dr_si, devices, config);
    const SimTime t = plan.planning_reference;
    const SimTime window_start = t - config.inactivity_timer;
    double sum = 0.0;
    std::size_t count = 0;
    for (const auto& s : plan.schedules) {
        if (!s.mltc) continue;
        EXPECT_GE(s.mltc->wake_at, window_start);
        EXPECT_LT(s.mltc->wake_at, t);
        EXPECT_LT(s.mltc->notify_po_at, window_start)
            << "notification must precede the window";
        sum += static_cast<double>((s.mltc->wake_at - window_start).count());
        ++count;
    }
    ASSERT_GT(count, 50u);
    const double mean_fraction =
        sum / static_cast<double>(count) /
        static_cast<double>(config.inactivity_timer.count());
    EXPECT_NEAR(mean_fraction, 0.5, 0.1) << "T322 expiry ~ uniform in [t-TI, t)";
}

TEST(DrSiPlanTest, DifferentSeedsGiveDifferentWakeTimes) {
    const auto devices = make_population(100, 9);
    const CampaignConfig config;
    const MulticastPlan a = plan_with(MechanismKind::dr_si, devices, config, 1);
    const MulticastPlan b = plan_with(MechanismKind::dr_si, devices, config, 2);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.schedules.size(); ++i) {
        if (a.schedules[i].mltc && b.schedules[i].mltc) {
            any_diff |= a.schedules[i].mltc->wake_at != b.schedules[i].mltc->wake_at;
        }
    }
    EXPECT_TRUE(any_diff);
}

// ------------------------------------------------------------ baselines ----

TEST(UnicastPlanTest, OneTransmissionPerDeviceOnReady) {
    const auto devices = make_population(80, 5);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::unicast, devices, config);
    EXPECT_EQ(plan.transmissions.size(), devices.size());
    for (const auto& tx : plan.transmissions) {
        EXPECT_TRUE(tx.starts_on_ready);
        EXPECT_EQ(tx.devices.size(), 1u);
    }
}

TEST(UnicastPlanTest, PagesAtFirstPo) {
    const auto devices = make_population(80, 5);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::unicast, devices, config);
    const nbiot::PagingSchedule paging(config.paging);
    for (const auto& s : plan.schedules) {
        const auto& dev = devices[s.device.value];
        ASSERT_TRUE(s.page_at.has_value());
        // First PO unless capacity deferred (rare at this size).
        EXPECT_LE(*s.page_at,
                  paging.first_po_at_or_after(SimTime{0}, dev.imsi, dev.cycle) +
                      SimTime{3 * dev.cycle.period_ms()});
    }
}

TEST(ScPtmPlanTest, BroadcastToAllWithoutPaging) {
    const auto devices = make_population(60, 5);
    const CampaignConfig config;
    const MulticastPlan plan = plan_with(MechanismKind::sc_ptm, devices, config);
    ASSERT_EQ(plan.transmissions.size(), 1u);
    EXPECT_EQ(plan.transmissions.front().devices.size(), devices.size());
    EXPECT_EQ(plan.paging_entries, 0u);
    EXPECT_GT(plan.transmissions.front().start, config.sc_ptm_mcch_period);
}

// ----------------------------------------------------- validate_plan ------

TEST(ValidatePlanTest, CatchesDuplicateDeviceInTransmissions) {
    const auto devices = make_population(10, 1);
    const CampaignConfig config;
    MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    plan.transmissions.front().devices.push_back(plan.transmissions.front().devices[0]);
    EXPECT_THROW(validate_plan(plan, devices), std::logic_error);
}

TEST(ValidatePlanTest, CatchesScheduleCountMismatch) {
    const auto devices = make_population(10, 1);
    const CampaignConfig config;
    MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    plan.schedules.pop_back();
    EXPECT_THROW(validate_plan(plan, devices), std::logic_error);
}

TEST(ValidatePlanTest, CatchesExtraTransmissionForSingleTxKinds) {
    const auto devices = make_population(10, 1);
    const CampaignConfig config;
    MulticastPlan plan = plan_with(MechanismKind::dr_si, devices, config);
    plan.transmissions.push_back(PlannedTransmission{SimTime{1}, false, {}});
    EXPECT_THROW(validate_plan(plan, devices), std::logic_error);
}

TEST(PlannerEdgeTest, EmptyPopulationThrows) {
    const CampaignConfig config;
    sim::RandomStream rng{1};
    for (const MechanismKind kind :
         {MechanismKind::dr_sc, MechanismKind::da_sc, MechanismKind::dr_si,
          MechanismKind::unicast, MechanismKind::sc_ptm}) {
        EXPECT_THROW((void)make_mechanism(kind)->plan({}, config, rng),
                     std::invalid_argument);
    }
}

TEST(PlannerEdgeTest, InvalidConfigThrows) {
    const auto devices = make_population(5, 1);
    CampaignConfig config;
    config.inactivity_timer = SimTime{0};
    sim::RandomStream rng{1};
    EXPECT_THROW((void)DrScMechanism{}.plan(devices, config, rng),
                 std::invalid_argument);
}

TEST(PlannerEdgeTest, AllShortCyclesNeedNoAdjustment) {
    std::vector<nbiot::UeSpec> devices;
    for (std::uint32_t i = 0; i < 20; ++i) {
        devices.push_back(nbiot::UeSpec{nbiot::DeviceId{i}, nbiot::Imsi{1'000 + 37 * i},
                                        nbiot::drx::seconds_2_56(),
                                        nbiot::CeLevel::ce0});
    }
    const CampaignConfig config;  // TI = 10 s > 2.56 s: PO always in window
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    for (const auto& s : plan.schedules) {
        EXPECT_FALSE(s.adjustment.has_value());
    }
}

TEST(PlannerEdgeTest, TinyPagingCapacityProducesUnservedNotCrash) {
    // 30 devices with identical paging occasions but capacity 1 per PO and
    // an extremely short window: some devices must become unserved.
    std::vector<nbiot::UeSpec> devices;
    for (std::uint32_t i = 0; i < 30; ++i) {
        devices.push_back(nbiot::UeSpec{nbiot::DeviceId{i},
                                        nbiot::Imsi{(std::uint64_t{1} << 20) * i + 5},
                                        nbiot::drx::seconds_10485_76(),
                                        nbiot::CeLevel::ce0});
    }
    CampaignConfig config;
    config.paging.max_page_records = 1;
    const MulticastPlan plan = plan_with(MechanismKind::da_sc, devices, config);
    EXPECT_NO_THROW(validate_plan(plan, devices));
    // All 30 share PO instants (same UE_ID mod everything); the single
    // transmission can still only be fed by limited paging slots.
    EXPECT_EQ(plan.schedules.size(), 30u);
}

}  // namespace
}  // namespace nbmg::core
