// Campaign runner behaviour: delivery guarantees, uptime bucket semantics,
// recovery under failure injection, and the bandwidth accounting.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include "core/planners.hpp"
#include "core/report.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

using nbiot::SimTime;

constexpr std::int64_t kPayload = 100 * 1024;

std::vector<nbiot::UeSpec> make_population(std::size_t n, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    return traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), n, rng));
}

CampaignResult run(MechanismKind kind, std::span<const nbiot::UeSpec> devices,
                   const CampaignConfig& config, std::uint64_t seed = 7,
                   std::int64_t payload = kPayload) {
    return plan_and_run(*make_mechanism(kind), devices, config, payload, seed);
}

TEST(CampaignRunnerTest, InvalidConfigRejected) {
    CampaignConfig config;
    config.page_miss_prob = 1.0;
    EXPECT_THROW(CampaignRunner{config}, std::invalid_argument);
}

TEST(CampaignRunnerTest, AllMechanismsDeliverToEveryDevice) {
    const auto devices = make_population(80, 3);
    const CampaignConfig config;
    for (const MechanismKind kind :
         {MechanismKind::unicast, MechanismKind::dr_sc, MechanismKind::da_sc,
          MechanismKind::dr_si, MechanismKind::sc_ptm}) {
        const CampaignResult result = run(kind, devices, config);
        EXPECT_TRUE(result.all_received()) << to_string(kind);
        EXPECT_EQ(result.devices.size(), devices.size());
        EXPECT_EQ(result.unserved, 0u);
    }
}

TEST(CampaignRunnerTest, SingleTransmissionForDaScAndDrSi) {
    const auto devices = make_population(60, 4);
    const CampaignConfig config;
    EXPECT_EQ(run(MechanismKind::da_sc, devices, config).total_transmissions(), 1u);
    EXPECT_EQ(run(MechanismKind::dr_si, devices, config).total_transmissions(), 1u);
    EXPECT_EQ(run(MechanismKind::sc_ptm, devices, config).total_transmissions(), 1u);
}

TEST(CampaignRunnerTest, UnicastTransmitsOncePerDevice) {
    const auto devices = make_population(60, 4);
    const CampaignConfig config;
    const CampaignResult result = run(MechanismKind::unicast, devices, config);
    EXPECT_EQ(result.total_transmissions(), devices.size());
}

TEST(CampaignRunnerTest, DrScLightSleepExactlyMatchesUnicast) {
    // The paper's headline Fig. 6(a) claim: DR-SC costs no extra POs.
    const auto devices = make_population(100, 5);
    const CampaignConfig config;
    const CampaignResult unicast = run(MechanismKind::unicast, devices, config);
    const CampaignResult dr_sc = run(MechanismKind::dr_sc, devices, config);
    ASSERT_EQ(unicast.devices.size(), dr_sc.devices.size());
    for (std::size_t i = 0; i < unicast.devices.size(); ++i) {
        EXPECT_EQ(dr_sc.devices[i].energy.uptime(nbiot::PowerState::po_monitor),
                  unicast.devices[i].energy.uptime(nbiot::PowerState::po_monitor))
            << "device " << i;
    }
}

TEST(CampaignRunnerTest, ConnectedUptimeOrderingMatchesPaper) {
    // Large population so the paper's expected ordering dominates the
    // per-device position-sampling noise of the waits.
    const auto devices = make_population(600, 6);
    const CampaignConfig config;
    const CampaignResult unicast = run(MechanismKind::unicast, devices, config);
    const CampaignResult dr_sc = run(MechanismKind::dr_sc, devices, config);
    const CampaignResult da_sc = run(MechanismKind::da_sc, devices, config);
    const CampaignResult dr_si = run(MechanismKind::dr_si, devices, config);
    const double base = total_connected_ms(unicast);
    EXPECT_GT(total_connected_ms(dr_sc), base);
    EXPECT_GT(total_connected_ms(dr_si), total_connected_ms(dr_sc));
    EXPECT_GT(total_connected_ms(da_sc), total_connected_ms(dr_si))
        << "DA-SC has the longest connected uptime (Fig. 6b)";
}

TEST(CampaignRunnerTest, DaScLightSleepExceedsUnicast) {
    const auto devices = make_population(120, 6);
    const CampaignConfig config;
    const CampaignResult unicast = run(MechanismKind::unicast, devices, config);
    const CampaignResult da_sc = run(MechanismKind::da_sc, devices, config);
    EXPECT_GT(total_light_sleep_ms(da_sc), total_light_sleep_ms(unicast));
}

TEST(CampaignRunnerTest, DrSiLightSleepOnlyExtensionDecode) {
    const auto devices = make_population(100, 8);
    const CampaignConfig config;
    const CampaignResult unicast = run(MechanismKind::unicast, devices, config);
    const CampaignResult dr_si = run(MechanismKind::dr_si, devices, config);
    const double delta = total_light_sleep_ms(dr_si) - total_light_sleep_ms(unicast);
    EXPECT_GE(delta, 0.0);
    // At most one extension decode extra per device.
    EXPECT_LE(delta, static_cast<double>(devices.size() *
                                         static_cast<std::size_t>(
                                             config.timing.mltc_extension_extra.count())));
}

TEST(CampaignRunnerTest, ScPtmMonitoringDwarfsOnDemandLightSleep) {
    // The reason [3] exists: SC-PTM devices monitor the SC-MCCH forever.
    const auto devices = make_population(60, 9);
    const CampaignConfig config;
    const CampaignResult dr_si = run(MechanismKind::dr_si, devices, config);
    const CampaignResult sc_ptm = run(MechanismKind::sc_ptm, devices, config);
    EXPECT_GT(total_light_sleep_ms(sc_ptm), 2.0 * total_light_sleep_ms(dr_si));
    // But SC-PTM receives in idle mode: no RACH at all.
    EXPECT_EQ(sc_ptm.rach_attempts, 0u);
}

TEST(CampaignRunnerTest, RelativeIncreaseShrinksWithPayload) {
    const auto devices = make_population(80, 10);
    const CampaignConfig config;
    auto increase = [&](std::int64_t payload) {
        const auto unicast_plan = UnicastBaseline{};
        const CampaignResult u =
            plan_and_run(unicast_plan, devices, config, payload, 3);
        const DaScMechanism da{};
        const CampaignResult m = plan_and_run(da, devices, config, payload, 3);
        return relative_uptime(m, u).connected_increase;
    };
    const double small = increase(traffic::firmware_100kb().bytes);
    const double large = increase(traffic::firmware_1mb().bytes);
    EXPECT_GT(small, large) << "overhead must become negligible for big payloads";
    EXPECT_LT(large, 0.05);
}

TEST(CampaignRunnerTest, ObservationHorizonRecordedAndRespected) {
    const auto devices = make_population(40, 2);
    const CampaignConfig config;
    const CampaignResult result = run(MechanismKind::unicast, devices, config);
    EXPECT_EQ(result.observation_horizon,
              recommended_horizon(devices, config, kPayload));
    // Light-sleep POs scale with the horizon: every device has po_count >=
    // horizon / cycle (within one).
    for (std::size_t i = 0; i < devices.size(); ++i) {
        const auto expected = result.observation_horizon.count() /
                              devices[i].cycle.period_ms();
        EXPECT_NEAR(static_cast<double>(result.devices[i].po_count),
                    static_cast<double>(expected), 2.0);
    }
}

TEST(CampaignRunnerTest, BytesOnAirScaleWithTransmissions) {
    const auto devices = make_population(100, 12);
    const CampaignConfig config;
    const CampaignResult unicast = run(MechanismKind::unicast, devices, config);
    const CampaignResult dr_sc = run(MechanismKind::dr_sc, devices, config);
    const CampaignResult da_sc = run(MechanismKind::da_sc, devices, config);
    EXPECT_LT(dr_sc.bytes_on_air, unicast.bytes_on_air);
    EXPECT_LT(da_sc.bytes_on_air, dr_sc.bytes_on_air);
    EXPECT_GE(da_sc.bytes_on_air, kPayload);
}

TEST(CampaignRunnerTest, PagingEntriesTrackPlanEntries) {
    const auto devices = make_population(100, 12);
    const CampaignConfig config;
    const CampaignResult da_sc = run(MechanismKind::da_sc, devices, config);
    // DA-SC pages adjusted devices twice, natural devices once.
    EXPECT_GE(da_sc.paging_entries, devices.size());
    EXPECT_LE(da_sc.paging_entries, 2 * devices.size());
    EXPECT_GT(da_sc.paging_messages, 0u);
    EXPECT_LE(da_sc.paging_messages, da_sc.paging_entries);
}

TEST(CampaignRunnerTest, InactivityTailChargedWhenEnabled) {
    const auto devices = make_population(30, 13);
    CampaignConfig with_tail;
    with_tail.include_inactivity_tail = true;
    CampaignConfig without;
    const CampaignResult a = run(MechanismKind::unicast, devices, with_tail);
    const CampaignResult b = run(MechanismKind::unicast, devices, without);
    const double delta = total_connected_ms(a) - total_connected_ms(b);
    const double expected = static_cast<double>(devices.size()) *
                            static_cast<double>(with_tail.inactivity_timer.count());
    EXPECT_NEAR(delta, expected, expected * 0.05);
}

TEST(CampaignRunnerTest, DeterministicForSameSeed) {
    const auto devices = make_population(60, 14);
    const CampaignConfig config;
    const CampaignResult a = run(MechanismKind::dr_si, devices, config, 99);
    const CampaignResult b = run(MechanismKind::dr_si, devices, config, 99);
    EXPECT_EQ(total_connected_ms(a), total_connected_ms(b));
    EXPECT_EQ(a.rach_attempts, b.rach_attempts);
    EXPECT_EQ(a.bytes_on_air, b.bytes_on_air);
}

TEST(CampaignRunnerTest, RachContentionRecordsCollisions) {
    // All DR-SI devices wake inside one TI window: heavy RACH contention.
    const auto devices = make_population(400, 15);
    const CampaignConfig config;
    const CampaignResult result = run(MechanismKind::dr_si, devices, config);
    EXPECT_GT(result.rach_collisions, 0u);
    EXPECT_TRUE(result.all_received()) << "retries must absorb the collisions";
}

// ------------------------------------------------- failure injection ------

TEST(FailureInjectionTest, PageLossIsRecoveredByRetries) {
    const auto devices = make_population(60, 16);
    CampaignConfig config;
    config.page_miss_prob = 0.3;
    config.max_page_attempts = 6;
    const CampaignResult result = run(MechanismKind::unicast, devices, config);
    EXPECT_TRUE(result.all_received());
    EXPECT_GT(result.paging_messages, devices.size())
        << "retries must show up as extra paging messages";
}

TEST(FailureInjectionTest, MulticastMissesTriggerRecoveryTransmissions) {
    const auto devices = make_population(80, 17);
    CampaignConfig config;
    config.page_miss_prob = 0.35;
    config.max_page_attempts = 1;  // no re-page before the transmission
    const CampaignResult result = run(MechanismKind::da_sc, devices, config);
    EXPECT_GT(result.recovery_transmissions, 0u)
        << "devices that missed the single multicast need recovery";
    EXPECT_TRUE(result.all_received());
    EXPECT_GT(result.total_transmissions(), 1u);
}

TEST(FailureInjectionTest, RecoveredDevicesFlagged) {
    const auto devices = make_population(80, 18);
    CampaignConfig config;
    config.page_miss_prob = 0.35;
    config.max_page_attempts = 1;
    const CampaignResult result = run(MechanismKind::dr_si, devices, config);
    std::size_t recovered = 0;
    for (const auto& d : result.devices) recovered += d.recovered ? 1 : 0;
    EXPECT_EQ(recovered, result.recovery_transmissions);
}

TEST(FailureInjectionTest, LossFreeRunsHaveNoRecovery) {
    const auto devices = make_population(80, 19);
    const CampaignConfig config;
    for (const MechanismKind kind :
         {MechanismKind::dr_sc, MechanismKind::da_sc, MechanismKind::dr_si}) {
        const CampaignResult result = run(kind, devices, config);
        EXPECT_EQ(result.recovery_transmissions, 0u) << to_string(kind);
    }
}

TEST(FailureInjectionTest, BackgroundRachLoadSlowsAccessButDelivers) {
    const auto devices = make_population(100, 20);
    CampaignConfig quiet;
    CampaignConfig busy;
    busy.background_ra_per_second = 40.0;
    const CampaignResult a = run(MechanismKind::dr_si, devices, quiet);
    const CampaignResult b = run(MechanismKind::dr_si, devices, busy);
    EXPECT_TRUE(b.all_received());
    EXPECT_GT(b.rach_collisions, a.rach_collisions);
}

// ------------------------------------------------------------- report -----

TEST(ReportTest, RelativeUptimeRequiresMatchingHorizons) {
    const auto devices = make_population(20, 21);
    const CampaignConfig config;
    const CampaignResult a = run(MechanismKind::unicast, devices, config);
    CampaignResult b = run(MechanismKind::dr_si, devices, config);
    b.observation_horizon += SimTime{1};
    EXPECT_THROW((void)relative_uptime(b, a), std::invalid_argument);
}

TEST(ReportTest, RelativeUptimeRequiresSamePopulation) {
    const auto devices = make_population(20, 21);
    const auto others = make_population(20, 22);
    const CampaignConfig config;
    const CampaignResult a = run(MechanismKind::unicast, devices, config);
    const CampaignResult b = run(MechanismKind::unicast, others, config);
    EXPECT_THROW((void)relative_uptime(b, a), std::invalid_argument);
}

TEST(ReportTest, SelfComparisonIsZero) {
    const auto devices = make_population(20, 23);
    const CampaignConfig config;
    const CampaignResult a = run(MechanismKind::unicast, devices, config);
    const RelativeUptime rel = relative_uptime(a, a);
    EXPECT_DOUBLE_EQ(rel.light_sleep_increase, 0.0);
    EXPECT_DOUBLE_EQ(rel.connected_increase, 0.0);
}

TEST(ReportTest, BandwidthComparisonMatchesCounts) {
    const auto devices = make_population(100, 24);
    const CampaignConfig config;
    const CampaignResult u = run(MechanismKind::unicast, devices, config);
    const CampaignResult m = run(MechanismKind::dr_sc, devices, config);
    const BandwidthComparison bw = bandwidth_comparison(m, u);
    EXPECT_EQ(bw.transmissions, m.total_transmissions());
    EXPECT_NEAR(bw.transmissions_per_device,
                static_cast<double>(m.total_transmissions()) / 100.0, 1e-12);
    EXPECT_NEAR(bw.savings_vs_unicast, 1.0 - bw.transmissions_per_device, 1e-12);
    EXPECT_GT(bw.bytes_on_air_ratio, 0.0);
    EXPECT_LT(bw.bytes_on_air_ratio, 1.0);
}

TEST(ReportTest, MeanHelpersConsistentWithTotals) {
    const auto devices = make_population(50, 25);
    const CampaignConfig config;
    const CampaignResult r = run(MechanismKind::dr_si, devices, config);
    EXPECT_NEAR(mean_connected_ms(r) * 50.0, total_connected_ms(r), 1e-6);
    EXPECT_NEAR(mean_light_sleep_ms(r) * 50.0, total_light_sleep_ms(r), 1e-6);
}

}  // namespace
}  // namespace nbmg::core
