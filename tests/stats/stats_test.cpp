#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <span>
#include <vector>

#include "stats/histogram.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

namespace nbmg::stats {
namespace {

TEST(SummaryTest, EmptyIsZero) {
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.stddev(), 0.0);
    EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(SummaryTest, SingleSample) {
    Summary s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 42.0);
    EXPECT_EQ(s.min(), 42.0);
    EXPECT_EQ(s.max(), 42.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryTest, KnownMeanAndVariance) {
    Summary s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryTest, Ci95ShrinksWithSamples) {
    Summary small;
    Summary large;
    for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
    for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
    EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(SummaryTest, MergeEqualsConcatenation) {
    Summary a;
    Summary b;
    Summary whole;
    for (int i = 0; i < 50; ++i) {
        const double x = std::sin(i) * 10;
        (i < 25 ? a : b).add(x);
        whole.add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(a.min(), whole.min());
    EXPECT_EQ(a.max(), whole.max());
}

TEST(SummaryTest, MergeWithEmpty) {
    Summary a;
    a.add(5.0);
    Summary empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 1u);
    empty.merge(a);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_EQ(empty.mean(), 5.0);
}

// Property tests backing the sweep engine's reduction: merging per-chunk
// summaries must behave like one pass over the concatenated samples no
// matter how the samples were grouped (commutative and associative up to
// floating-point noise; count/min/max exactly).
namespace {

Summary chunk_summary(std::span<const double> samples, std::size_t begin,
                      std::size_t end) {
    return summarize(samples.subspan(begin, end - begin));
}

std::vector<double> property_samples() {
    std::vector<double> xs;
    for (int i = 0; i < 90; ++i) {
        xs.push_back(std::sin(i * 0.7) * 100.0 + std::cos(i) * 0.01);
    }
    return xs;
}

void expect_statistically_equal(const Summary& a, const Summary& b) {
    EXPECT_EQ(a.count(), b.count());
    EXPECT_EQ(a.min(), b.min());
    EXPECT_EQ(a.max(), b.max());
    EXPECT_NEAR(a.mean(), b.mean(), 1e-9 * (1.0 + std::abs(b.mean())));
    EXPECT_NEAR(a.variance(), b.variance(), 1e-9 * (1.0 + b.variance()));
}

}  // namespace

TEST(SummaryTest, MergeIsCommutative) {
    const std::vector<double> xs = property_samples();
    Summary ab = chunk_summary(xs, 0, 30);
    ab.merge(chunk_summary(xs, 30, 90));
    Summary ba = chunk_summary(xs, 30, 90);
    ba.merge(chunk_summary(xs, 0, 30));
    expect_statistically_equal(ab, ba);
}

TEST(SummaryTest, MergeIsAssociative) {
    const std::vector<double> xs = property_samples();
    const Summary a = chunk_summary(xs, 0, 20);
    const Summary b = chunk_summary(xs, 20, 55);
    const Summary c = chunk_summary(xs, 55, 90);

    Summary left = a;   // (a + b) + c
    left.merge(b);
    left.merge(c);
    Summary right = b;  // a + (b + c)
    right.merge(c);
    Summary a_first = a;
    a_first.merge(right);

    expect_statistically_equal(left, a_first);
    expect_statistically_equal(left, summarize(xs));
}

TEST(SummaryTest, MergingSingleSampleChunksMatchesSequentialAdds) {
    const std::vector<double> xs = property_samples();
    Summary merged;
    for (const double x : xs) {
        Summary one;
        one.add(x);
        merged.merge(one);
    }
    expect_statistically_equal(merged, summarize(xs));
}

TEST(SummaryTest, SummarizeSpan) {
    const std::array<double, 3> xs{1.0, 2.0, 3.0};
    const Summary s = summarize(xs);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
    EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(HistogramTest, BinsSamplesCorrectly) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(5.9);
    h.add(9.99);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(5), 2u);
    EXPECT_EQ(h.bin_count(9), 1u);
    EXPECT_EQ(h.count(), 4u);
}

TEST(HistogramTest, OutOfRangeClampedAndCounted) {
    Histogram h(0.0, 10.0, 10);
    h.add(-5.0);
    h.add(15.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.bin_count(0), 1u);
    EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(HistogramTest, BinBoundaries) {
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
}

TEST(HistogramTest, QuantileApproximation) {
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 2.0);
    EXPECT_NEAR(h.quantile(0.9), 90.0, 2.0);
    EXPECT_THROW((void)h.quantile(1.5), std::invalid_argument);
}

TEST(HistogramTest, RenderContainsBars) {
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    const std::string out = h.render(10);
    EXPECT_NE(out.find('#'), std::string::npos);
    EXPECT_NE(out.find('\n'), std::string::npos);
}

TEST(TableTest, RequiresColumns) {
    EXPECT_THROW(Table(std::vector<std::string>{}), std::invalid_argument);
}

TEST(TableTest, RowCellCountEnforced) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
    t.add_row({"x", "y"});
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(TableTest, MarkdownHasHeaderSeparatorAndAlignment) {
    Table t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string md = t.to_markdown();
    EXPECT_NE(md.find("| name"), std::string::npos);
    EXPECT_NE(md.find("|---"), std::string::npos);
    EXPECT_NE(md.find("| alpha"), std::string::npos);
}

TEST(TableTest, CsvEscapesSpecials) {
    Table t({"name"});
    t.add_row({"has,comma"});
    t.add_row({"has\"quote"});
    const std::string csv = t.to_csv();
    EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TableTest, CellFormatters) {
    EXPECT_EQ(Table::cell(3.14159, 2), "3.14");
    EXPECT_EQ(Table::cell(std::int64_t{-42}), "-42");
    EXPECT_EQ(Table::cell_percent(0.1234, 1), "12.3%");
}

}  // namespace
}  // namespace nbmg::stats
