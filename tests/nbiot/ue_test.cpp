// UE state-machine behaviour: PO monitoring, paging reactions, the DR-SI
// T322 path, DA-SC reconfiguration (anchored and formula models), and the
// uptime buckets each procedure charges.
#include "nbiot/ue.hpp"

#include <gtest/gtest.h>

#include "nbiot/cell.hpp"

namespace nbmg::nbiot {
namespace {

class UeTest : public ::testing::Test {
protected:
    UeTest() : cell_(1234, PagingConfig{}, RachConfig{}, TimingModel{}) {}

    Ue& make_ue(DrxCycle cycle, std::uint64_t imsi = 777'000'111) {
        return cell_.add_ue(UeSpec{DeviceId{static_cast<std::uint32_t>(cell_.ue_count())},
                                   Imsi{imsi}, cycle, CeLevel::ce0});
    }

    SimTime po_of(const Ue& ue) {
        return cell_.paging().first_po_at_or_after(SimTime{0}, ue.imsi(),
                                                   ue.current_cycle());
    }

    void run() { cell_.simulation().queue().run_all(); }

    Cell cell_;
    TimingModel timing_{};
};

TEST_F(UeTest, MonitorsEveryPoUntilHorizon) {
    Ue& ue = make_ue(drx::seconds_20_48());
    const SimTime horizon{20'480 * 10 + 1'000};
    ue.start_monitoring(horizon);
    run();
    EXPECT_EQ(ue.po_count(), 10u);
    EXPECT_EQ(ue.energy().uptime(PowerState::po_monitor),
              SimTime{10 * timing_.po_monitor.count()});
    EXPECT_EQ(ue.energy().connected_uptime(), SimTime{0});
}

TEST_F(UeTest, PoCountMatchesScheduleCount) {
    Ue& ue = make_ue(drx::seconds_2_56(), 98'765);
    const SimTime horizon{60'000};
    ue.start_monitoring(horizon);
    run();
    EXPECT_EQ(static_cast<std::int64_t>(ue.po_count()),
              cell_.paging().po_count_in_range(SimTime{1}, horizon, ue.imsi(),
                                               ue.current_cycle()));
}

TEST_F(UeTest, PageNormalConnectsAndWaits) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{200'000});
    bool connected = false;
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime) { connected = true; };
    ue.set_hooks(std::move(hooks));

    const SimTime po = po_of(ue);
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_normal(); });
    run();
    EXPECT_TRUE(connected);
    EXPECT_EQ(ue.state(), UeState::connected_waiting);
    EXPECT_GT(ue.energy().uptime(PowerState::paging_rx).count(), 0);
    EXPECT_GT(ue.energy().uptime(PowerState::rach).count(), 0);
    EXPECT_GT(ue.energy().uptime(PowerState::connected_signaling).count(), 0);
    ASSERT_TRUE(ue.connected_at().has_value());
    EXPECT_GT(*ue.connected_at(), po);
}

TEST_F(UeTest, PageNormalWhileNotIdleThrows) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{200'000});
    const SimTime po = po_of(ue);
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_normal(); });
    run();
    ASSERT_EQ(ue.state(), UeState::connected_waiting);
    EXPECT_THROW(ue.page_normal(), std::logic_error);
}

TEST_F(UeTest, ReceptionChargesWaitRxAndRelease) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime at) {
        ue.begin_reception(at + SimTime{30'000}, SimTime{0});
    };
    bool released = false;
    hooks.on_released = [&](DeviceId, SimTime) { released = true; };
    ue.set_hooks(std::move(hooks));
    cell_.simulation().queue().schedule_at(po_of(ue), [&] { ue.page_normal(); });
    run();
    EXPECT_TRUE(released);
    EXPECT_TRUE(ue.payload_received());
    EXPECT_EQ(ue.state(), UeState::idle);
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_rx), SimTime{30'000});
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_wait), SimTime{0});
}

TEST_F(UeTest, WaitBucketCoversConnectedToReceptionGap) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    SimTime connected_at{0};
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime at) { connected_at = at; };
    ue.set_hooks(std::move(hooks));
    const SimTime po = po_of(ue);
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_normal(); });
    const SimTime tx_start = po + SimTime{8'000};
    cell_.simulation().queue().schedule_at(
        tx_start, [&] { ue.begin_reception(tx_start + SimTime{1'000}, SimTime{0}); });
    run();
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_wait), tx_start - connected_at);
}

TEST_F(UeTest, InactivityTailChargedAsWait) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime at) {
        ue.begin_reception(at + SimTime{1'000}, SimTime{10'000});
    };
    ue.set_hooks(std::move(hooks));
    cell_.simulation().queue().schedule_at(po_of(ue), [&] { ue.page_normal(); });
    run();
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_wait), SimTime{10'000});
}

TEST_F(UeTest, MltcSetsT322AndConnectsWithMulticastCause) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    const SimTime po = po_of(ue);
    const SimTime wake = po + SimTime{50'000};
    SimTime connected_at{0};
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime at) { connected_at = at; };
    ue.set_hooks(std::move(hooks));
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_mltc(wake); });
    run();
    EXPECT_GT(connected_at, wake);
    EXPECT_EQ(ue.last_cause(), EstablishmentCause::multicast_reception);
    // Extension decode costs more than a plain paging message.
    EXPECT_EQ(ue.energy().uptime(PowerState::paging_rx),
              timing_.paging_decode + timing_.mltc_extension_extra);
}

TEST_F(UeTest, MltcWakeInPastThrows) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    cell_.simulation().queue().schedule_at(po_of(ue),
                                           [&] { ue.page_mltc(SimTime{0}); });
    EXPECT_THROW(run(), std::logic_error);
}

TEST_F(UeTest, ReconfigAdjustsCycleAndReturnsToIdle) {
    Ue& ue = make_ue(drx::seconds_163_84());
    ue.start_monitoring(SimTime{800'000});
    const DrxCycle adapted = drx::seconds_10_24();
    cell_.simulation().queue().schedule_at(po_of(ue),
                                           [&] { ue.page_for_reconfig(adapted); });
    run();
    EXPECT_EQ(ue.state(), UeState::idle);
    EXPECT_EQ(ue.current_cycle(), adapted);
    EXPECT_EQ(ue.original_cycle(), drx::seconds_163_84());
    // Reconfig connection: paging + RACH + setup + reconfiguration + release.
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_signaling),
              timing_.rrc_setup + timing_.rrc_reconfiguration + timing_.rrc_release);
}

TEST_F(UeTest, AdaptedCycleIncreasesPoRate) {
    Ue& slow = make_ue(drx::seconds_163_84(), 111'222'333);
    Ue& adjusted = make_ue(drx::seconds_163_84(), 111'222'334);
    const SimTime horizon{800'000};
    slow.start_monitoring(horizon);
    adjusted.start_monitoring(horizon);
    cell_.simulation().queue().schedule_at(po_of(adjusted), [&] {
        adjusted.page_for_reconfig(drx::seconds_10_24());
    });
    run();
    EXPECT_GT(adjusted.po_count(), slow.po_count());
}

TEST_F(UeTest, ReconfigGridPassesThroughAdjustmentPo) {
    // Ladder nesting: the PO where the reconfiguration happened satisfies
    // the congruence of the (shorter) adapted cycle, so the adapted grid
    // repeats from that PO — exactly the paper's Fig. 5 picture.
    Ue& ue = make_ue(drx::seconds_163_84());
    ue.start_monitoring(SimTime{800'000});
    const SimTime po = po_of(ue);
    const DrxCycle adapted = drx::seconds_20_48();
    EXPECT_TRUE(cell_.paging().is_po(po, ue.imsi(), adapted));
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_for_reconfig(adapted); });
    run();
    EXPECT_EQ(ue.current_cycle(), adapted);
    EXPECT_EQ(ue.next_po_at_or_after(po + SimTime{1}), po + adapted.period());
}

TEST_F(UeTest, RestoreAfterReceptionRestoresCycle) {
    Ue& ue = make_ue(drx::seconds_163_84());
    ue.start_monitoring(SimTime{1'600'000});
    const SimTime po = po_of(ue);
    const DrxCycle adapted = drx::seconds_20_48();
    cell_.simulation().queue().schedule_at(po, [&] { ue.page_for_reconfig(adapted); });
    // Page it again on the anchored grid, then receive.
    const SimTime second_page = po + SimTime{3 * adapted.period_ms()};
    cell_.simulation().queue().schedule_at(second_page, [&] {
        ASSERT_TRUE(ue.listening_at(second_page));
        ue.page_normal();
    });
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime at) {
        ue.begin_reception(at + SimTime{5'000}, SimTime{0});
    };
    ue.set_hooks(std::move(hooks));
    run();
    EXPECT_TRUE(ue.payload_received());
    EXPECT_EQ(ue.current_cycle(), drx::seconds_163_84());
    // Restore adds a reconfiguration on top of setup (x2) + release (x2).
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_signaling),
              2 * timing_.rrc_setup + 2 * timing_.rrc_reconfiguration +
                  2 * timing_.rrc_release);
    // Back on the formula grid of the original cycle.
    EXPECT_TRUE(cell_.paging().is_po(ue.next_po_at_or_after(second_page + SimTime{1}),
                                     ue.imsi(), drx::seconds_163_84()));
}

TEST_F(UeTest, ListeningOnlyAtOwnPos) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    const SimTime po = po_of(ue);
    EXPECT_TRUE(ue.listening_at(po));
    EXPECT_FALSE(ue.listening_at(po + SimTime{1}));
    EXPECT_TRUE(ue.listening_at(po + ue.current_cycle().period()));
}

TEST_F(UeTest, IdleBroadcastReceivesWithoutConnection) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    cell_.simulation().queue().schedule_at(
        SimTime{10'000}, [&] { ue.receive_idle_broadcast(SimTime{40'000}); });
    run();
    EXPECT_TRUE(ue.payload_received());
    EXPECT_EQ(ue.energy().uptime(PowerState::rach), SimTime{0});
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_signaling), SimTime{0});
    EXPECT_EQ(ue.energy().uptime(PowerState::connected_rx), SimTime{30'000});
}

TEST_F(UeTest, ReleaseWithoutReceptionReturnsIdleUnreceived) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.start_monitoring(SimTime{400'000});
    Ue::Hooks hooks;
    hooks.on_connected = [&](DeviceId, SimTime) { ue.release_without_reception(); };
    ue.set_hooks(std::move(hooks));
    cell_.simulation().queue().schedule_at(po_of(ue), [&] { ue.page_normal(); });
    run();
    EXPECT_EQ(ue.state(), UeState::idle);
    EXPECT_FALSE(ue.payload_received());
    ASSERT_TRUE(ue.released_at().has_value());
}

TEST_F(UeTest, ChargeAddsExternalUptime) {
    Ue& ue = make_ue(drx::seconds_20_48());
    ue.charge(PowerState::po_monitor, SimTime{123});
    EXPECT_EQ(ue.energy().uptime(PowerState::po_monitor), SimTime{123});
}

TEST_F(UeTest, CellRejectsNonDenseDeviceIds) {
    EXPECT_THROW(cell_.add_ue(UeSpec{DeviceId{5}, Imsi{1}, drx::seconds_2_56()}),
                 std::invalid_argument);
}

TEST_F(UeTest, CellLookupUnknownDeviceThrows) {
    EXPECT_THROW((void)cell_.ue(DeviceId{99}), std::out_of_range);
}

}  // namespace
}  // namespace nbmg::nbiot
