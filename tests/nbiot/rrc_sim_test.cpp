// Coverage for the RRC model helpers, the simulation trace hook, and the
// configuration validators.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/mechanism.hpp"
#include "nbiot/cell.hpp"
#include "nbiot/rrc.hpp"
#include "sim/simulation.hpp"
#include "telemetry/sink.hpp"

namespace nbmg {
namespace {

using nbiot::EstablishmentCause;

TEST(RrcTest, MulticastReceptionIsTheOnlyNonStandardCause) {
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mo_signalling));
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mo_data));
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mt_access));
    EXPECT_FALSE(nbiot::is_standard_cause(EstablishmentCause::multicast_reception));
}

TEST(RrcTest, CauseNamesMatchAsn1Style) {
    EXPECT_STREQ(nbiot::to_string(EstablishmentCause::mt_access), "mt-Access");
    EXPECT_STREQ(nbiot::to_string(EstablishmentCause::multicast_reception),
                 "multicastReception");
}

TEST(RrcTest, MessageVariantHoldsEveryProcedure) {
    nbiot::RrcMessage msg = nbiot::RrcConnectionRequest{
        nbiot::Imsi{5}, EstablishmentCause::multicast_reception};
    EXPECT_TRUE(std::holds_alternative<nbiot::RrcConnectionRequest>(msg));
    msg = nbiot::RrcConnectionReconfiguration{nbiot::drx::seconds_10_24()};
    const auto& reconfig = std::get<nbiot::RrcConnectionReconfiguration>(msg);
    ASSERT_TRUE(reconfig.new_drx.has_value());
    EXPECT_EQ(reconfig.new_drx->period_ms(), 10'240);
    msg = nbiot::RrcConnectionRelease{};
    EXPECT_TRUE(std::holds_alternative<nbiot::RrcConnectionRelease>(msg));
}

TEST(RrcTest, DefaultTimingModelValid) {
    EXPECT_TRUE(nbiot::TimingModel{}.valid());
    nbiot::TimingModel bad;
    bad.po_monitor = nbiot::SimTime{0};
    EXPECT_FALSE(bad.valid());
}

TEST(SimulationTest, TelemetrySinkReceivesTypedEvents) {
    sim::Simulation simulation{1};
    telemetry::CampaignSink sink{
        telemetry::TelemetryConfig{.trace = true, .metrics = true}};
    simulation.set_telemetry(&sink);
    ASSERT_EQ(simulation.telemetry(), &sink);
    simulation.queue().schedule_at(sim::SimTime{5}, [&] {
        NBMG_TELEMETRY_EMIT(simulation.telemetry(),
                            telemetry::EventKind::rach_attempt, 5,
                            /*device=*/7, /*a=*/1, /*b=*/0);
    });
    simulation.queue().run_all();
    ASSERT_EQ(sink.records().size(), 1u);
    EXPECT_EQ(sink.records().front().kind, telemetry::EventKind::rach_attempt);
    EXPECT_EQ(sink.records().front().at_ms, 5);
    EXPECT_EQ(sink.records().front().device, 7u);
    EXPECT_EQ(sink.counter(telemetry::EventKind::rach_attempt), 1u);
}

TEST(SimulationTest, TelemetryDefaultsOffAndEmitIsNoop) {
    sim::Simulation simulation{1};
    EXPECT_EQ(simulation.telemetry(), nullptr);
    // Null sink: the macro must not crash and must not evaluate arguments.
    bool evaluated = false;
    const auto payload = [&] {
        evaluated = true;
        return std::int64_t{1};
    };
    NBMG_TELEMETRY_EMIT(simulation.telemetry(), telemetry::EventKind::rach_attempt,
                        0, 0, payload(), 0);
    EXPECT_FALSE(evaluated);
}

TEST(SimulationTest, StreamsDerivedFromRootSeed) {
    sim::Simulation a{99};
    sim::Simulation b{99};
    EXPECT_EQ(a.seed(), 99u);
    EXPECT_EQ(a.stream("x").next_u64(), b.stream("x").next_u64());
    EXPECT_NE(a.stream("x").next_u64(), a.stream("y").next_u64());
}

TEST(CellTest, RejectsInvalidTiming) {
    nbiot::TimingModel bad;
    bad.po_monitor = nbiot::SimTime{0};
    EXPECT_THROW(
        nbiot::Cell(1, nbiot::PagingConfig{}, nbiot::RachConfig{}, bad),
        std::invalid_argument);
}

TEST(CampaignConfigTest, DefaultValidAndKnobsChecked) {
    core::CampaignConfig config;
    EXPECT_TRUE(config.valid());

    config.page_miss_prob = 1.0;  // certain loss can never terminate
    EXPECT_FALSE(config.valid());
    config.page_miss_prob = 0.0;

    config.inactivity_timer = nbiot::SimTime{0};
    EXPECT_FALSE(config.valid());
    config.inactivity_timer = nbiot::SimTime{10'000};

    config.max_page_attempts = 0;
    EXPECT_FALSE(config.valid());
    config.max_page_attempts = 3;

    config.background_ra_per_second = -1.0;
    EXPECT_FALSE(config.valid());
    config.background_ra_per_second = 0.0;

    config.rach.max_attempts = 0;
    EXPECT_FALSE(config.valid());
    config.rach.max_attempts = 10;

    config.radio.i_sf = 8;
    EXPECT_FALSE(config.valid());
    config.radio.i_sf = 2;
    EXPECT_TRUE(config.valid());
}

TEST(MechanismKindTest, NamesAreStable) {
    EXPECT_STREQ(core::to_string(core::MechanismKind::dr_sc), "DR-SC");
    EXPECT_STREQ(core::to_string(core::MechanismKind::da_sc), "DA-SC");
    EXPECT_STREQ(core::to_string(core::MechanismKind::dr_si), "DR-SI");
    EXPECT_STREQ(core::to_string(core::MechanismKind::unicast), "Unicast");
    EXPECT_STREQ(core::to_string(core::MechanismKind::sc_ptm), "SC-PTM");
}

TEST(PowerStateTest, NamesAreStable) {
    EXPECT_STREQ(nbiot::to_string(nbiot::PowerState::deep_sleep), "deep_sleep");
    EXPECT_STREQ(nbiot::to_string(nbiot::PowerState::connected_rx), "connected_rx");
    EXPECT_STREQ(nbiot::to_string(nbiot::UeState::connected_waiting),
                 "connected_waiting");
    EXPECT_STREQ(nbiot::to_string(nbiot::CeLevel::ce2), "CE2");
}

}  // namespace
}  // namespace nbmg
