// Coverage for the RRC model helpers, the simulation trace hook, and the
// configuration validators.
#include <gtest/gtest.h>

#include "core/mechanism.hpp"
#include "nbiot/cell.hpp"
#include "nbiot/rrc.hpp"
#include "sim/simulation.hpp"

namespace nbmg {
namespace {

using nbiot::EstablishmentCause;

TEST(RrcTest, MulticastReceptionIsTheOnlyNonStandardCause) {
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mo_signalling));
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mo_data));
    EXPECT_TRUE(nbiot::is_standard_cause(EstablishmentCause::mt_access));
    EXPECT_FALSE(nbiot::is_standard_cause(EstablishmentCause::multicast_reception));
}

TEST(RrcTest, CauseNamesMatchAsn1Style) {
    EXPECT_STREQ(nbiot::to_string(EstablishmentCause::mt_access), "mt-Access");
    EXPECT_STREQ(nbiot::to_string(EstablishmentCause::multicast_reception),
                 "multicastReception");
}

TEST(RrcTest, MessageVariantHoldsEveryProcedure) {
    nbiot::RrcMessage msg = nbiot::RrcConnectionRequest{
        nbiot::Imsi{5}, EstablishmentCause::multicast_reception};
    EXPECT_TRUE(std::holds_alternative<nbiot::RrcConnectionRequest>(msg));
    msg = nbiot::RrcConnectionReconfiguration{nbiot::drx::seconds_10_24()};
    const auto& reconfig = std::get<nbiot::RrcConnectionReconfiguration>(msg);
    ASSERT_TRUE(reconfig.new_drx.has_value());
    EXPECT_EQ(reconfig.new_drx->period_ms(), 10'240);
    msg = nbiot::RrcConnectionRelease{};
    EXPECT_TRUE(std::holds_alternative<nbiot::RrcConnectionRelease>(msg));
}

TEST(RrcTest, DefaultTimingModelValid) {
    EXPECT_TRUE(nbiot::TimingModel{}.valid());
    nbiot::TimingModel bad;
    bad.po_monitor = nbiot::SimTime{0};
    EXPECT_FALSE(bad.valid());
}

TEST(SimulationTest, TraceSinkReceivesEvents) {
    sim::Simulation simulation{1};
    std::vector<std::string> messages;
    simulation.set_trace_sink([&](const sim::TraceEvent& e) {
        messages.push_back(std::string{e.source} + ":" + e.message);
    });
    EXPECT_TRUE(simulation.tracing());
    simulation.queue().schedule_at(sim::SimTime{5},
                                   [&] { simulation.trace("ue", "woke"); });
    simulation.queue().run_all();
    ASSERT_EQ(messages.size(), 1u);
    EXPECT_EQ(messages.front(), "ue:woke");
}

TEST(SimulationTest, TraceWithoutSinkIsNoop) {
    sim::Simulation simulation{1};
    EXPECT_FALSE(simulation.tracing());
    simulation.trace("x", "dropped");  // must not crash
}

TEST(SimulationTest, StreamsDerivedFromRootSeed) {
    sim::Simulation a{99};
    sim::Simulation b{99};
    EXPECT_EQ(a.seed(), 99u);
    EXPECT_EQ(a.stream("x").next_u64(), b.stream("x").next_u64());
    EXPECT_NE(a.stream("x").next_u64(), a.stream("y").next_u64());
}

TEST(CellTest, RejectsInvalidTiming) {
    nbiot::TimingModel bad;
    bad.po_monitor = nbiot::SimTime{0};
    EXPECT_THROW(
        nbiot::Cell(1, nbiot::PagingConfig{}, nbiot::RachConfig{}, bad),
        std::invalid_argument);
}

TEST(CampaignConfigTest, DefaultValidAndKnobsChecked) {
    core::CampaignConfig config;
    EXPECT_TRUE(config.valid());

    config.page_miss_prob = 1.0;  // certain loss can never terminate
    EXPECT_FALSE(config.valid());
    config.page_miss_prob = 0.0;

    config.inactivity_timer = nbiot::SimTime{0};
    EXPECT_FALSE(config.valid());
    config.inactivity_timer = nbiot::SimTime{10'000};

    config.max_page_attempts = 0;
    EXPECT_FALSE(config.valid());
    config.max_page_attempts = 3;

    config.background_ra_per_second = -1.0;
    EXPECT_FALSE(config.valid());
    config.background_ra_per_second = 0.0;

    config.rach.max_attempts = 0;
    EXPECT_FALSE(config.valid());
    config.rach.max_attempts = 10;

    config.radio.i_sf = 8;
    EXPECT_FALSE(config.valid());
    config.radio.i_sf = 2;
    EXPECT_TRUE(config.valid());
}

TEST(MechanismKindTest, NamesAreStable) {
    EXPECT_STREQ(core::to_string(core::MechanismKind::dr_sc), "DR-SC");
    EXPECT_STREQ(core::to_string(core::MechanismKind::da_sc), "DA-SC");
    EXPECT_STREQ(core::to_string(core::MechanismKind::dr_si), "DR-SI");
    EXPECT_STREQ(core::to_string(core::MechanismKind::unicast), "Unicast");
    EXPECT_STREQ(core::to_string(core::MechanismKind::sc_ptm), "SC-PTM");
}

TEST(PowerStateTest, NamesAreStable) {
    EXPECT_STREQ(nbiot::to_string(nbiot::PowerState::deep_sleep), "deep_sleep");
    EXPECT_STREQ(nbiot::to_string(nbiot::PowerState::connected_rx), "connected_rx");
    EXPECT_STREQ(nbiot::to_string(nbiot::UeState::connected_waiting),
                 "connected_waiting");
    EXPECT_STREQ(nbiot::to_string(nbiot::CeLevel::ce2), "CE2");
}

}  // namespace
}  // namespace nbmg
