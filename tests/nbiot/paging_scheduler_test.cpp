#include "nbiot/paging_scheduler.hpp"

#include <gtest/gtest.h>

namespace nbmg::nbiot {
namespace {

class PagingSchedulerTest : public ::testing::Test {
protected:
    PagingSchedule paging_{};
    static constexpr SimTime kFar{100'000'000};
};

TEST_F(PagingSchedulerTest, RejectsNonPositiveCapacity) {
    EXPECT_THROW(PagingScheduler(paging_, 0), std::invalid_argument);
}

TEST_F(PagingSchedulerTest, EnqueueLandsOnDevicePo) {
    PagingScheduler sched(paging_, 16);
    const Imsi imsi{424'242};
    const DrxCycle cycle = drx::seconds_20_48();
    const auto slot = sched.enqueue_record(DeviceId{0}, imsi, cycle, SimTime{0}, kFar);
    ASSERT_TRUE(slot.has_value());
    EXPECT_TRUE(paging_.is_po(*slot, imsi, cycle));
    EXPECT_EQ(sched.total_entries(), 1u);
}

TEST_F(PagingSchedulerTest, EnqueueRespectsNotBefore) {
    PagingScheduler sched(paging_, 16);
    const Imsi imsi{7};
    const DrxCycle cycle = drx::seconds_2_56();
    const SimTime not_before{100'000};
    const auto slot =
        sched.enqueue_record(DeviceId{0}, imsi, cycle, not_before, kFar);
    ASSERT_TRUE(slot.has_value());
    EXPECT_GE(*slot, not_before);
}

TEST_F(PagingSchedulerTest, FullOccasionDefersToNextPo) {
    PagingScheduler sched(paging_, 1);
    const Imsi imsi{99};
    const DrxCycle cycle = drx::seconds_2_56();
    const auto first = sched.enqueue_record(DeviceId{0}, imsi, cycle, SimTime{0}, kFar);
    // Same UE identity -> same occasions; capacity 1 forces the next cycle.
    const auto second = sched.enqueue_record(DeviceId{1}, imsi, cycle, SimTime{0}, kFar);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(*second - *first, cycle.period());
}

TEST_F(PagingSchedulerTest, DeadlineBoundsDeferral) {
    PagingScheduler sched(paging_, 1);
    const Imsi imsi{99};
    const DrxCycle cycle = drx::seconds_2_56();
    const auto first = sched.enqueue_record(DeviceId{0}, imsi, cycle, SimTime{0}, kFar);
    ASSERT_TRUE(first.has_value());
    // Deadline right after the first PO: the deferred request cannot fit.
    const auto second = sched.enqueue_record(DeviceId{1}, imsi, cycle, SimTime{0},
                                             *first + SimTime{1});
    EXPECT_FALSE(second.has_value());
}

TEST_F(PagingSchedulerTest, DifferentDevicesShareOccasionUpToCapacity) {
    PagingScheduler sched(paging_, 3);
    const Imsi imsi{5};
    const DrxCycle cycle = drx::seconds_20_48();
    const auto a = sched.enqueue_record(DeviceId{0}, imsi, cycle, SimTime{0}, kFar);
    const auto b = sched.enqueue_record(DeviceId{1}, imsi, cycle, SimTime{0}, kFar);
    const auto c = sched.enqueue_record(DeviceId{2}, imsi, cycle, SimTime{0}, kFar);
    const auto d = sched.enqueue_record(DeviceId{3}, imsi, cycle, SimTime{0}, kFar);
    EXPECT_EQ(*a, *b);
    EXPECT_EQ(*a, *c);
    EXPECT_NE(*a, *d);
}

TEST_F(PagingSchedulerTest, MltcSharesCapacityWithRecords) {
    PagingScheduler sched(paging_, 2);
    const Imsi imsi{5};
    const DrxCycle cycle = drx::seconds_20_48();
    const auto a = sched.enqueue_record(DeviceId{0}, imsi, cycle, SimTime{0}, kFar);
    const auto b =
        sched.enqueue_mltc(DeviceId{1}, imsi, cycle, SimTime{0}, kFar, SimTime{777});
    const auto c = sched.enqueue_record(DeviceId{2}, imsi, cycle, SimTime{0}, kFar);
    EXPECT_EQ(*a, *b);
    EXPECT_NE(*a, *c);
}

TEST_F(PagingSchedulerTest, MessagesSortedAndCarryPayloads) {
    PagingScheduler sched(paging_, 16);
    const DrxCycle cycle = drx::seconds_20_48();
    (void)sched.enqueue_record(DeviceId{0}, Imsi{100}, cycle, SimTime{0}, kFar);
    (void)sched.enqueue_mltc(DeviceId{1}, Imsi{200}, cycle, SimTime{0}, kFar,
                             SimTime{999});
    const auto messages = sched.messages();
    ASSERT_GE(messages.size(), 1u);
    for (std::size_t i = 1; i < messages.size(); ++i) {
        EXPECT_LT(messages[i - 1].at, messages[i].at);
    }
    std::size_t records = 0;
    std::size_t extensions = 0;
    for (const auto& m : messages) {
        records += m.records.size();
        extensions += m.mltc_extensions.size();
        if (!m.mltc_extensions.empty()) {
            EXPECT_EQ(m.mltc_extensions.front().multicast_at, SimTime{999});
        }
    }
    EXPECT_EQ(records, 1u);
    EXPECT_EQ(extensions, 1u);
}

TEST_F(PagingSchedulerTest, TryEnqueueAtExactPo) {
    PagingScheduler sched(paging_, 1);
    const Imsi imsi{123};
    const DrxCycle cycle = drx::seconds_40_96();
    const SimTime po = paging_.first_po_at_or_after(SimTime{0}, imsi, cycle);
    EXPECT_TRUE(sched.try_enqueue_record_at(DeviceId{0}, imsi, cycle, po));
    EXPECT_FALSE(sched.try_enqueue_record_at(DeviceId{1}, imsi, cycle, po));
}

TEST_F(PagingSchedulerTest, TryEnqueueAtNonPoThrows) {
    PagingScheduler sched(paging_, 16);
    const Imsi imsi{123};
    const DrxCycle cycle = drx::seconds_40_96();
    const SimTime po = paging_.first_po_at_or_after(SimTime{0}, imsi, cycle);
    EXPECT_THROW(
        (void)sched.try_enqueue_record_at(DeviceId{0}, imsi, cycle, po + SimTime{1}),
        std::logic_error);
}

TEST_F(PagingSchedulerTest, ForceEnqueueSkipsCongruenceCheck) {
    PagingScheduler sched(paging_, 1);
    const SimTime anywhere{123'456};
    EXPECT_TRUE(sched.force_enqueue_record_at(DeviceId{0}, Imsi{1}, anywhere));
    EXPECT_FALSE(sched.force_enqueue_record_at(DeviceId{1}, Imsi{2}, anywhere));
}

TEST_F(PagingSchedulerTest, TotalEntriesAccumulates) {
    PagingScheduler sched(paging_, 16);
    const DrxCycle cycle = drx::seconds_20_48();
    for (std::uint32_t i = 0; i < 5; ++i) {
        (void)sched.enqueue_record(DeviceId{i}, Imsi{1000 + i}, cycle, SimTime{0}, kFar);
    }
    EXPECT_EQ(sched.total_entries(), 5u);
}

}  // namespace
}  // namespace nbmg::nbiot
