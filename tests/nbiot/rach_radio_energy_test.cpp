#include <gtest/gtest.h>

#include "nbiot/energy.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/radio.hpp"
#include "sim/simulation.hpp"

namespace nbmg::nbiot {
namespace {

// ---------------------------------------------------------------- RACH ----

class RachTest : public ::testing::Test {
protected:
    sim::Simulation sim_{42};
    RachConfig config_{};
};

TEST_F(RachTest, SingleRequestSucceedsOnFirstAttempt) {
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    RachOutcome outcome;
    rach.request(SimTime{0}, [&](const RachOutcome& o) { outcome = o; });
    sim_.queue().run_all();
    EXPECT_TRUE(outcome.success);
    EXPECT_EQ(outcome.attempts, 1);
    EXPECT_EQ(outcome.active_time, config_.attempt_active_time());
    // A request at t=0 rides the window at t=0.
    EXPECT_EQ(outcome.completed_at, config_.attempt_active_time());
}

TEST_F(RachTest, RequestWaitsForNextWindow) {
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    RachOutcome outcome;
    rach.request(SimTime{250}, [&](const RachOutcome& o) { outcome = o; });
    sim_.queue().run_all();
    // Next window after 250 ms with 160 ms periodicity is at 320 ms.
    EXPECT_EQ(outcome.completed_at, SimTime{320} + config_.attempt_active_time());
}

TEST_F(RachTest, SinglePreambleForcesCollisionUntilBackoffSeparates) {
    config_.num_preambles = 1;  // same-window requesters always collide
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    RachOutcome a;
    RachOutcome b;
    rach.request(SimTime{0}, [&](const RachOutcome& o) { a = o; });
    rach.request(SimTime{0}, [&](const RachOutcome& o) { b = o; });
    sim_.queue().run_all();
    // The first window collides for sure; randomized backoff eventually
    // lands them in different windows where each succeeds alone.
    EXPECT_GE(rach.total_collisions(), 2u);
    EXPECT_TRUE(a.success);
    EXPECT_TRUE(b.success);
    EXPECT_GT(a.attempts + b.attempts, 2);
    EXPECT_NE(a.completed_at, b.completed_at);
}

TEST_F(RachTest, ZeroBackoffWithOnePreambleExhaustsAttempts) {
    config_.num_preambles = 1;
    config_.backoff_max = SimTime{1};  // nearly no separation possible
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    RachOutcome a;
    RachOutcome b;
    rach.request(SimTime{0}, [&](const RachOutcome& o) { a = o; });
    rach.request(SimTime{0}, [&](const RachOutcome& o) { b = o; });
    sim_.queue().run_all();
    // With backoff << window period both re-enter the same window forever.
    EXPECT_FALSE(a.success);
    EXPECT_FALSE(b.success);
    EXPECT_EQ(a.attempts, config_.max_attempts);
    EXPECT_EQ(rach.total_failures(), 2u);
}

TEST_F(RachTest, ManyPreamblesSeparateEventually) {
    config_.num_preambles = 2;
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    int successes = 0;
    for (int i = 0; i < 2; ++i) {
        rach.request(SimTime{0}, [&](const RachOutcome& o) {
            successes += o.success ? 1 : 0;
        });
    }
    sim_.queue().run_all();
    // Backoff desynchronizes them; with 10 attempts both should make it.
    EXPECT_EQ(successes, 2);
}

TEST_F(RachTest, CollisionCostsActiveTimePerAttempt) {
    config_.num_preambles = 2;
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    std::vector<RachOutcome> outcomes;
    for (int i = 0; i < 2; ++i) {
        rach.request(SimTime{0}, [&](const RachOutcome& o) { outcomes.push_back(o); });
    }
    sim_.queue().run_all();
    for (const auto& o : outcomes) {
        EXPECT_EQ(o.active_time, SimTime{o.attempts * config_.attempt_active_time().count()});
    }
}

TEST_F(RachTest, HighLoadProducesCollisions) {
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    int successes = 0;
    for (int i = 0; i < 200; ++i) {
        rach.request(SimTime{0}, [&](const RachOutcome& o) {
            successes += o.success ? 1 : 0;
        });
    }
    sim_.queue().run_all();
    EXPECT_GT(rach.total_collisions(), 0u);
    EXPECT_EQ(successes, 200);  // retries spread them out eventually
    EXPECT_GT(rach.total_attempts(), 200u);
}

TEST_F(RachTest, BackgroundLoadOccupiesPreambles) {
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    rach.inject_background_load(50.0, SimTime{60'000});
    sim_.queue().run_all();
    // ~50/s over 60 s.
    EXPECT_GT(rach.total_attempts(), 2000u);
    EXPECT_GT(rach.total_collisions(), 0u);
}

TEST_F(RachTest, EmptyCallbackRejected) {
    RachChannel rach(sim_, config_, sim_.stream("rach"));
    EXPECT_THROW(rach.request(SimTime{0}, RachChannel::Callback{}),
                 std::invalid_argument);
}

TEST_F(RachTest, InvalidConfigRejected) {
    config_.num_preambles = 0;
    EXPECT_THROW(RachChannel(sim_, config_, sim_.stream("rach")), std::invalid_argument);
}

TEST_F(RachTest, DeterministicAcrossSeeds) {
    auto run_once = [](std::uint64_t seed) {
        sim::Simulation s{seed};
        RachConfig cfg;
        RachChannel rach(s, cfg, s.stream("rach"));
        std::vector<std::int64_t> completions;
        for (int i = 0; i < 50; ++i) {
            rach.request(SimTime{i * 3},
                         [&](const RachOutcome& o) { completions.push_back(o.completed_at.count()); });
        }
        s.queue().run_all();
        return completions;
    };
    EXPECT_EQ(run_once(7), run_once(7));
    EXPECT_NE(run_once(7), run_once(8));
}

// --------------------------------------------------------------- RADIO ----

TEST(RadioTest, DefaultConfigMatchesRel13) {
    const RadioModel radio;
    EXPECT_EQ(radio.tbs_bits(), 680);  // I_TBS 12, 3 subframes
    // ~25 kbit/s sustained at CE0.
    EXPECT_NEAR(radio.effective_rate_bps(CeLevel::ce0), 25'000, 1'000);
}

TEST(RadioTest, AirtimeZeroForEmptyPayload) {
    const RadioModel radio;
    EXPECT_EQ(radio.downlink_airtime(0, CeLevel::ce0), SimTime{0});
}

TEST(RadioTest, NegativePayloadRejected) {
    const RadioModel radio;
    EXPECT_THROW((void)radio.downlink_airtime(-1, CeLevel::ce0), std::invalid_argument);
}

TEST(RadioTest, AirtimeMonotoneInPayload) {
    const RadioModel radio;
    SimTime last{0};
    for (const std::int64_t bytes : {1L, 100L, 102'400L, 1'048'576L, 10'485'760L}) {
        const SimTime t = radio.downlink_airtime(bytes, CeLevel::ce0);
        EXPECT_GE(t, last);
        last = t;
    }
}

TEST(RadioTest, PaperPayloadDurations) {
    const RadioModel radio;
    // 100 KB at ~25 kbit/s is about half a minute; 10 MB about an hour.
    const double s100kb =
        static_cast<double>(radio.downlink_airtime(100 * 1024, CeLevel::ce0).count()) /
        1000.0;
    EXPECT_NEAR(s100kb, 33.0, 4.0);
    const double s10mb =
        static_cast<double>(
            radio.downlink_airtime(10 * 1024 * 1024, CeLevel::ce0).count()) /
        1000.0;
    EXPECT_NEAR(s10mb, 3330.0, 350.0);
}

TEST(RadioTest, DeeperCoverageIsSlower) {
    const RadioModel radio;
    const std::int64_t payload = 100 * 1024;
    EXPECT_LT(radio.downlink_airtime(payload, CeLevel::ce0),
              radio.downlink_airtime(payload, CeLevel::ce1));
    EXPECT_LT(radio.downlink_airtime(payload, CeLevel::ce1),
              radio.downlink_airtime(payload, CeLevel::ce2));
}

TEST(RadioTest, RepetitionsScaleBlockDuration) {
    RadioConfig config;
    const RadioModel radio(config);
    EXPECT_EQ(radio.block_duration(CeLevel::ce1).count(),
              radio.block_duration(CeLevel::ce0).count() * config.repetitions[1]);
}

TEST(RadioTest, MulticastBearerPicksDeepestLevel) {
    EXPECT_EQ(RadioModel::multicast_bearer_level(CeLevel::ce0, CeLevel::ce2),
              CeLevel::ce2);
    EXPECT_EQ(RadioModel::multicast_bearer_level(CeLevel::ce1, CeLevel::ce0),
              CeLevel::ce1);
}

TEST(RadioTest, TbsTableRowsAreMonotone) {
    for (const auto& row : kNpdschTbsTable) {
        for (std::size_t c = 1; c < row.size(); ++c) {
            EXPECT_GT(row[c], row[c - 1]);
        }
    }
}

TEST(RadioTest, InvalidConfigRejected) {
    RadioConfig config;
    config.i_tbs = 13;
    EXPECT_THROW(RadioModel{config}, std::invalid_argument);
}

// -------------------------------------------------------------- ENERGY ----

TEST(EnergyTest, BucketsAccumulate) {
    EnergyAccount acc;
    acc.add(PowerState::po_monitor, SimTime{15});
    acc.add(PowerState::po_monitor, SimTime{15});
    acc.add(PowerState::paging_rx, SimTime{25});
    EXPECT_EQ(acc.uptime(PowerState::po_monitor), SimTime{30});
    EXPECT_EQ(acc.light_sleep_uptime(), SimTime{55});
}

TEST(EnergyTest, PaperBucketsSplitCorrectly) {
    EnergyAccount acc;
    acc.add(PowerState::rach, SimTime{100});
    acc.add(PowerState::connected_signaling, SimTime{50});
    acc.add(PowerState::connected_wait, SimTime{5'000});
    acc.add(PowerState::connected_rx, SimTime{30'000});
    acc.add(PowerState::po_monitor, SimTime{15});
    EXPECT_EQ(acc.connected_uptime(), SimTime{35'150});
    EXPECT_EQ(acc.light_sleep_uptime(), SimTime{15});
    EXPECT_EQ(acc.total_uptime(), SimTime{35'165});
}

TEST(EnergyTest, NegativeDurationRejected) {
    EnergyAccount acc;
    EXPECT_THROW(acc.add(PowerState::rach, SimTime{-1}), std::invalid_argument);
}

TEST(EnergyTest, ActiveEnergyUsesProfileCurrents) {
    EnergyAccount acc;
    acc.add(PowerState::connected_rx, SimTime{1000});  // 1 s at 46 mA, 3.6 V
    const PowerProfile profile = PowerProfile::typical_nbiot();
    EXPECT_NEAR(acc.active_energy_mj(profile), 46.0 * 3.6, 1e-9);
}

TEST(EnergyTest, AverageCurrentIncludesDeepSleep) {
    EnergyAccount acc;
    acc.add(PowerState::connected_rx, SimTime{1000});
    const PowerProfile profile = PowerProfile::typical_nbiot();
    // 1 s at 46 mA out of 1000 s, rest at 3 uA.
    const double avg = acc.average_current_ma(profile, SimTime{1'000'000});
    EXPECT_NEAR(avg, 46.0 / 1000.0 + 0.003, 0.001);
}

TEST(EnergyTest, AverageCurrentZeroHorizon) {
    EnergyAccount acc;
    EXPECT_EQ(acc.average_current_ma(PowerProfile::typical_nbiot(), SimTime{0}), 0.0);
}

TEST(EnergyTest, MergeAddsBuckets) {
    EnergyAccount a;
    EnergyAccount b;
    a.add(PowerState::rach, SimTime{10});
    b.add(PowerState::rach, SimTime{5});
    b.add(PowerState::po_monitor, SimTime{7});
    a += b;
    EXPECT_EQ(a.uptime(PowerState::rach), SimTime{15});
    EXPECT_EQ(a.uptime(PowerState::po_monitor), SimTime{7});
}

TEST(EnergyTest, BatteryLifeProjection) {
    const PowerProfile profile = PowerProfile::typical_nbiot();
    // 5000 mAh at ~57 uA -> ~10 years: the NB-IoT design target.
    const double years = battery_life_years(profile, 0.057);
    EXPECT_NEAR(years, 10.0, 0.5);
    EXPECT_EQ(battery_life_years(profile, 0.0), 0.0);
}

}  // namespace
}  // namespace nbmg::nbiot
