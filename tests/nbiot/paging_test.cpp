// Paging-occasion arithmetic: unit tests plus parameterized property
// sweeps over (cycle, UE identity) — periodicity, standards conformance
// for short cycles, and the ladder-nesting property DA-SC relies on.
#include "nbiot/paging.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace nbmg::nbiot {
namespace {

TEST(PagingConfigTest, DefaultIsValid) {
    EXPECT_TRUE(PagingConfig{}.valid());
}

TEST(PagingConfigTest, InvalidConfigsRejected) {
    PagingConfig c;
    c.max_page_records = 0;
    EXPECT_FALSE(c.valid());
    EXPECT_THROW(PagingSchedule{c}, std::invalid_argument);
}

TEST(PagingScheduleTest, UnsupportedNsRejected) {
    PagingConfig c;
    c.nb_num = 8;  // Ns = 8 not in {1,2,4}
    EXPECT_THROW(PagingSchedule{c}, std::invalid_argument);
}

TEST(PagingScheduleTest, OffsetWithinCycle) {
    const PagingSchedule paging;
    for (std::uint64_t imsi : {1ULL, 12345ULL, 999'999'999ULL}) {
        for (const DrxCycle cycle : drx_ladder()) {
            const SimTime off = paging.po_offset(Imsi{imsi}, cycle);
            EXPECT_GE(off.count(), 0);
            EXPECT_LT(off.count(), cycle.period_ms());
        }
    }
}

TEST(PagingScheduleTest, DefaultPoFallsOnSubframeNine) {
    const PagingSchedule paging;  // nB = T -> Ns = 1 -> subframe 9
    const SimTime off = paging.po_offset(Imsi{777}, drx::seconds_2_56());
    EXPECT_EQ(off.count() % kMillisPerFrame, 9);
}

TEST(PagingScheduleTest, StandardFormulaForShortCycle) {
    // For T <= 1024 frames and nB = T: PF = UE_ID mod T, PO subframe 9.
    const PagingSchedule paging;
    const std::uint64_t imsi = 98'765;
    const DrxCycle cycle = drx::seconds_2_56();  // 256 frames
    const std::uint64_t ue_id = imsi % (std::uint64_t{1} << 20);
    const std::int64_t expected_frame = static_cast<std::int64_t>(ue_id % 256);
    EXPECT_EQ(paging.po_offset(Imsi{imsi}, cycle).count(),
              expected_frame * kMillisPerFrame + 9);
}

TEST(PagingScheduleTest, FirstPoAtOrAfterReturnsExactPo) {
    const PagingSchedule paging;
    const Imsi imsi{4242};
    const DrxCycle cycle = drx::seconds_20_48();
    const SimTime po = paging.first_po_at_or_after(SimTime{0}, imsi, cycle);
    EXPECT_TRUE(paging.is_po(po, imsi, cycle));
    EXPECT_EQ(po, paging.po_offset(imsi, cycle));
}

TEST(PagingScheduleTest, FirstPoAtOrAfterIsIdempotentAtPo) {
    const PagingSchedule paging;
    const Imsi imsi{31337};
    const DrxCycle cycle = drx::seconds_40_96();
    const SimTime po = paging.first_po_at_or_after(SimTime{100'000}, imsi, cycle);
    EXPECT_EQ(paging.first_po_at_or_after(po, imsi, cycle), po);
}

TEST(PagingScheduleTest, LastPoBeforeIsStrict) {
    const PagingSchedule paging;
    const Imsi imsi{5};
    const DrxCycle cycle = drx::seconds_2_56();
    const SimTime po = paging.first_po_at_or_after(SimTime{50'000}, imsi, cycle);
    const auto back = paging.last_po_before(po + SimTime{1}, imsi, cycle);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, po);
    const auto strictly = paging.last_po_before(po, imsi, cycle);
    ASSERT_TRUE(strictly.has_value());
    EXPECT_EQ(*strictly, po - cycle.period());
}

TEST(PagingScheduleTest, LastPoBeforeNoneBeforeFirst) {
    const PagingSchedule paging;
    const Imsi imsi{123};
    const DrxCycle cycle = drx::seconds_10485_76();
    const SimTime first = paging.po_offset(imsi, cycle);
    EXPECT_FALSE(paging.last_po_before(first, imsi, cycle).has_value());
    EXPECT_FALSE(paging.last_po_before(SimTime{0}, imsi, cycle).has_value());
}

TEST(PagingScheduleTest, PosInRangeMatchesCountAndBounds) {
    const PagingSchedule paging;
    const Imsi imsi{888};
    const DrxCycle cycle = drx::seconds_20_48();
    const SimTime from{12'345};
    const SimTime to{250'000};
    const auto pos = paging.pos_in_range(from, to, imsi, cycle);
    EXPECT_EQ(static_cast<std::int64_t>(pos.size()),
              paging.po_count_in_range(from, to, imsi, cycle));
    for (const SimTime po : pos) {
        EXPECT_GE(po, from);
        EXPECT_LT(po, to);
        EXPECT_TRUE(paging.is_po(po, imsi, cycle));
    }
}

TEST(PagingScheduleTest, PosInRangeEmptyWhenDegenerate) {
    const PagingSchedule paging;
    const Imsi imsi{888};
    const DrxCycle cycle = drx::seconds_20_48();
    EXPECT_TRUE(paging.pos_in_range(SimTime{100}, SimTime{100}, imsi, cycle).empty());
    EXPECT_TRUE(paging.pos_in_range(SimTime{200}, SimTime{100}, imsi, cycle).empty());
    EXPECT_EQ(paging.po_count_in_range(SimTime{200}, SimTime{100}, imsi, cycle), 0);
}

TEST(PagingScheduleTest, HasPoInRangeConsistent) {
    const PagingSchedule paging;
    const Imsi imsi{54'321};
    for (const DrxCycle cycle : drx_ladder()) {
        const SimTime from{cycle.period_ms() / 3};
        const SimTime to{cycle.period_ms() * 2};
        EXPECT_EQ(paging.has_po_in_range(from, to, imsi, cycle),
                  !paging.pos_in_range(from, to, imsi, cycle).empty());
    }
}

TEST(PagingScheduleTest, AnyWindowOfCycleLengthContainsExactlyOnePo) {
    const PagingSchedule paging;
    const Imsi imsi{2'718'281};
    for (const DrxCycle cycle : drx_ladder()) {
        for (const std::int64_t start : {0L, 777L, cycle.period_ms() - 1}) {
            EXPECT_EQ(paging.po_count_in_range(SimTime{start},
                                               SimTime{start + cycle.period_ms()}, imsi,
                                               cycle),
                      1);
        }
    }
}

/// Property sweep: (cycle index, imsi) pairs.
class PagingPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PagingPropertyTest, PoPatternIsPeriodic) {
    const PagingSchedule paging;
    const auto [index, imsi_value] = GetParam();
    const DrxCycle cycle = DrxCycle::from_index(index);
    const Imsi imsi{imsi_value};
    const SimTime first = paging.first_po_at_or_after(SimTime{0}, imsi, cycle);
    for (int k = 1; k <= 3; ++k) {
        const SimTime expect = first + SimTime{k * cycle.period_ms()};
        EXPECT_TRUE(paging.is_po(expect, imsi, cycle));
        EXPECT_EQ(paging.first_po_at_or_after(expect - SimTime{1}, imsi, cycle), expect);
    }
    // Nothing between consecutive POs.
    EXPECT_EQ(paging.po_count_in_range(first + SimTime{1},
                                       first + SimTime{cycle.period_ms()}, imsi, cycle),
              0);
}

TEST_P(PagingPropertyTest, DoublingNestsPoSets) {
    // POs of cycle 2T are a subset of POs of cycle T (same UE): the ladder
    // property the paper states in Sec. II-B and DA-SC exploits.
    const PagingSchedule paging;
    const auto [index, imsi_value] = GetParam();
    const DrxCycle cycle = DrxCycle::from_index(index);
    const Imsi imsi{imsi_value};
    if (!cycle.has_longer()) {
        // Ladder top: no doubled cycle exists, so assert the boundary from
        // the other side — the top cycle's POs nest inside every shorter
        // cycle's PO set.
        ASSERT_EQ(cycle.index(), DrxCycle::kLadderSize - 1);
        const auto top_pos = paging.pos_in_range(
            SimTime{0}, SimTime{2 * cycle.period_ms()}, imsi, cycle);
        ASSERT_FALSE(top_pos.empty());
        for (const DrxCycle other : drx_ladder()) {
            for (const SimTime po : top_pos) {
                EXPECT_TRUE(paging.is_po(po, imsi, other))
                    << "top-of-ladder PO must be a PO of every shorter cycle";
            }
        }
        return;
    }
    const DrxCycle doubled = cycle.longer();
    const auto pos = paging.pos_in_range(SimTime{0}, SimTime{4 * doubled.period_ms()},
                                         imsi, doubled);
    ASSERT_FALSE(pos.empty());
    for (const SimTime po : pos) {
        EXPECT_TRUE(paging.is_po(po, imsi, cycle))
            << "PO of doubled cycle must also be PO of the shorter cycle";
    }
}

TEST_P(PagingPropertyTest, ShorteningOnlyAddsOccasions) {
    const PagingSchedule paging;
    const auto [index, imsi_value] = GetParam();
    const DrxCycle cycle = DrxCycle::from_index(index);
    const Imsi imsi{imsi_value};
    if (!cycle.has_shorter()) {
        // Ladder bottom: there is no shorter cycle to compare against, so
        // assert the boundary itself — 320 ms is the densest PO pattern any
        // cycle can produce, which is the same monotonicity property read
        // from the other side.
        ASSERT_EQ(cycle.index(), 0);
        const SimTime to{2 * drx_ladder().back().period_ms()};
        for (const DrxCycle other : drx_ladder()) {
            EXPECT_GE(paging.po_count_in_range(SimTime{0}, to, imsi, cycle),
                      paging.po_count_in_range(SimTime{0}, to, imsi, other));
        }
        return;
    }
    const SimTime to{2 * cycle.period_ms()};
    EXPECT_GE(paging.po_count_in_range(SimTime{0}, to, imsi, cycle.shorter()),
              paging.po_count_in_range(SimTime{0}, to, imsi, cycle));
}

INSTANTIATE_TEST_SUITE_P(
    CycleImsiGrid, PagingPropertyTest,
    ::testing::Combine(::testing::Values(0, 3, 6, 9, 12, 14, 15),
                       ::testing::Values(std::uint64_t{1}, std::uint64_t{1023},
                                         std::uint64_t{1'048'575},
                                         std::uint64_t{314'159'265'358ULL},
                                         std::uint64_t{100'000'000'000'007ULL})));

// Directed ladder-boundary tests: the clamp predicates and step
// constructors at indices 0 and kLadderSize-1 are asserted here, not
// skipped (formerly two GTEST_SKIP holes in the property sweep above).
TEST(LadderEdgeTest, BottomOfLadderClamps) {
    const DrxCycle bottom = DrxCycle::from_index(0);
    EXPECT_FALSE(bottom.has_shorter());
    EXPECT_TRUE(bottom.has_longer());
    EXPECT_EQ(bottom, drx_ladder().front());
    EXPECT_EQ(bottom.period_ms(), 320);
    // Stepping up from the bottom and back down is the identity.
    EXPECT_EQ(bottom.longer().shorter(), bottom);
    EXPECT_EQ(bottom.longer().index(), 1);
}

TEST(LadderEdgeTest, TopOfLadderClamps) {
    const DrxCycle top = DrxCycle::from_index(DrxCycle::kLadderSize - 1);
    EXPECT_FALSE(top.has_longer());
    EXPECT_TRUE(top.has_shorter());
    EXPECT_EQ(top, drx_ladder().back());
    EXPECT_EQ(top.period_ms(), 320LL << (DrxCycle::kLadderSize - 1));
    EXPECT_EQ(top.shorter().longer(), top);
    EXPECT_EQ(top.shorter().index(), DrxCycle::kLadderSize - 2);
}

TEST(LadderEdgeTest, OnlyEndpointsLackNeighbors) {
    for (const DrxCycle cycle : drx_ladder()) {
        EXPECT_EQ(cycle.has_shorter(), cycle.index() > 0);
        EXPECT_EQ(cycle.has_longer(), cycle.index() < DrxCycle::kLadderSize - 1);
        if (cycle.has_shorter()) {
            EXPECT_EQ(cycle.shorter().period_ms() * 2, cycle.period_ms());
        }
        if (cycle.has_longer()) {
            EXPECT_EQ(cycle.longer().period_ms(), cycle.period_ms() * 2);
        }
    }
}

TEST(LadderEdgeTest, EdgeNestingHoldsAtBothEnds) {
    // The DA-SC nesting invariant asserted directly at the endpoints: every
    // top-of-ladder PO is a PO of the bottom cycle, and a window of one
    // top-cycle period holds exactly period-ratio bottom-cycle POs.
    const PagingSchedule paging;
    const DrxCycle bottom = drx_ladder().front();
    const DrxCycle top = drx_ladder().back();
    const Imsi imsi{9'876'543'210ULL};
    const SimTime window{2 * top.period_ms()};
    const auto top_pos = paging.pos_in_range(SimTime{0}, window, imsi, top);
    ASSERT_EQ(top_pos.size(), 2u);
    for (const SimTime po : top_pos) {
        EXPECT_TRUE(paging.is_po(po, imsi, bottom));
    }
    EXPECT_EQ(paging.po_count_in_range(SimTime{0}, window, imsi, bottom),
              2 * (top.period_ms() / bottom.period_ms()));
}

TEST(PagingScheduleNbVariantTest, HalfTBunchesPagingFrames) {
    PagingConfig config;
    config.nb_num = 1;
    config.nb_den = 2;  // nB = T/2: only half the frames carry paging
    const PagingSchedule paging{config};
    // PF = 2 * (UE_ID mod T/2): always an even frame offset.
    for (std::uint64_t imsi = 1; imsi < 2000; imsi += 97) {
        const SimTime off = paging.po_offset(Imsi{imsi}, drx::seconds_2_56());
        EXPECT_EQ((off.count() / kMillisPerFrame) % 2, 0);
    }
}

TEST(PagingScheduleNbVariantTest, TwoTUsesTwoSubframes) {
    PagingConfig config;
    config.nb_num = 2;  // nB = 2T -> Ns = 2 -> subframes {4, 9}
    const PagingSchedule paging{config};
    bool saw4 = false;
    bool saw9 = false;
    for (std::uint64_t imsi = 1; imsi < 5000; imsi += 13) {
        const auto sf = paging.po_offset(Imsi{imsi}, drx::seconds_2_56()).count() %
                        kMillisPerFrame;
        EXPECT_TRUE(sf == 4 || sf == 9);
        saw4 |= sf == 4;
        saw9 |= sf == 9;
    }
    EXPECT_TRUE(saw4);
    EXPECT_TRUE(saw9);
}

TEST(PagingMessageTest, OccupancyCountsRecordsAndExtensions) {
    PagingMessage msg;
    msg.records.push_back(PagingRecord{DeviceId{0}, Imsi{1}});
    msg.mltc_extensions.push_back(MltcExtension{DeviceId{1}, Imsi{2}, SimTime{5}});
    msg.mltc_extensions.push_back(MltcExtension{DeviceId{2}, Imsi{3}, SimTime{5}});
    EXPECT_EQ(msg.occupancy(), 3u);
}

}  // namespace
}  // namespace nbmg::nbiot
