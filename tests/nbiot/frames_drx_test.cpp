#include <gtest/gtest.h>

#include "nbiot/drx.hpp"
#include "nbiot/frames.hpp"

namespace nbmg::nbiot {
namespace {

TEST(FramesTest, ToRadioTimeDecomposes) {
    const RadioTime rt = to_radio_time(SimTime{12'345});
    EXPECT_EQ(rt.frame, 1234);
    EXPECT_EQ(rt.subframe, 5);
}

TEST(FramesTest, SfnWrapsAt1024) {
    const RadioTime rt = to_radio_time(SimTime{1024 * kMillisPerFrame});
    EXPECT_EQ(rt.sfn(), 0);
    EXPECT_EQ(rt.hyper_sfn(), 1);
}

TEST(FramesTest, HyperSfnWrapsAt1024) {
    const std::int64_t hyper_ms = kFramesPerHyperframe * kMillisPerFrame;
    const RadioTime rt = to_radio_time(SimTime{1024 * hyper_ms});
    EXPECT_EQ(rt.hyper_sfn(), 0);
}

TEST(FramesTest, RoundTripThroughToTime) {
    for (const std::int64_t ms : {0L, 9L, 10L, 12'345L, 10'485'760L}) {
        const RadioTime rt = to_radio_time(SimTime{ms});
        EXPECT_EQ(rt.to_time(), SimTime{ms});
    }
}

TEST(FramesTest, FrameStartFloorsToFrame) {
    EXPECT_EQ(frame_start(SimTime{129}), SimTime{120});
    EXPECT_EQ(frame_start(SimTime{120}), SimTime{120});
}

TEST(FramesTest, AlignUpToFrame) {
    EXPECT_EQ(align_up_to_frame(SimTime{120}), SimTime{120});
    EXPECT_EQ(align_up_to_frame(SimTime{121}), SimTime{130});
    EXPECT_EQ(align_up_to_frame(SimTime{0}), SimTime{0});
}

TEST(FramesTest, FrameIndexOf) {
    EXPECT_EQ(frame_index_of(SimTime{0}), 0);
    EXPECT_EQ(frame_index_of(SimTime{9}), 0);
    EXPECT_EQ(frame_index_of(SimTime{10}), 1);
}

TEST(DrxTest, LadderHasSixteenDoublingValues) {
    const auto ladder = drx_ladder();
    ASSERT_EQ(ladder.size(), 16u);
    EXPECT_EQ(ladder.front().period_ms(), 320);
    EXPECT_EQ(ladder.back().period_ms(), 10'485'760);
    for (std::size_t i = 1; i < ladder.size(); ++i) {
        EXPECT_EQ(ladder[i].period_ms(), 2 * ladder[i - 1].period_ms())
            << "ladder must double at step " << i;
    }
}

TEST(DrxTest, PeriodFramesConsistent) {
    for (const DrxCycle c : drx_ladder()) {
        EXPECT_EQ(c.period_frames() * kMillisPerFrame, c.period_ms());
    }
}

TEST(DrxTest, NamedValuesMatchPaper) {
    EXPECT_EQ(drx::seconds_2_56().period_ms(), 2'560);
    EXPECT_EQ(drx::seconds_20_48().period_ms(), 20'480);
    EXPECT_EQ(drx::seconds_10485_76().period_ms(), 10'485'760);
}

TEST(DrxTest, EdrxClassification) {
    EXPECT_FALSE(drx::seconds_2_56().is_edrx());
    EXPECT_TRUE(drx::seconds_5_12().is_edrx());
    EXPECT_FALSE(drx::seconds_5_12().is_nbiot_edrx());
    EXPECT_TRUE(drx::seconds_20_48().is_nbiot_edrx());
}

TEST(DrxTest, FromPeriodAcceptsLadderValuesOnly) {
    EXPECT_TRUE(DrxCycle::from_period(SimTime{2'560}).has_value());
    EXPECT_FALSE(DrxCycle::from_period(SimTime{2'561}).has_value());
    EXPECT_FALSE(DrxCycle::from_period(SimTime{100}).has_value());
}

TEST(DrxTest, FromPeriodRoundTripsLadder) {
    for (const DrxCycle c : drx_ladder()) {
        const auto back = DrxCycle::from_period(c.period());
        ASSERT_TRUE(back.has_value());
        EXPECT_EQ(*back, c);
    }
}

TEST(DrxTest, LongestAtMost) {
    EXPECT_EQ(DrxCycle::longest_at_most(SimTime{10'000})->period_ms(), 5'120);
    EXPECT_EQ(DrxCycle::longest_at_most(SimTime{320})->period_ms(), 320);
    EXPECT_FALSE(DrxCycle::longest_at_most(SimTime{100}).has_value());
    EXPECT_EQ(DrxCycle::longest_at_most(SimTime{99'999'999})->period_ms(), 10'485'760);
}

TEST(DrxTest, ShorterAndLongerNavigation) {
    const DrxCycle c = drx::seconds_20_48();
    EXPECT_EQ(c.shorter().period_ms(), 10'240);
    EXPECT_EQ(c.longer().period_ms(), 40'960);
    EXPECT_TRUE(drx_ladder().front().has_longer());
    EXPECT_FALSE(drx_ladder().front().has_shorter());
    EXPECT_FALSE(drx_ladder().back().has_longer());
}

TEST(DrxTest, FromIndexOutOfRangeThrows) {
    EXPECT_THROW((void)DrxCycle::from_index(-1), std::out_of_range);
    EXPECT_THROW((void)DrxCycle::from_index(16), std::out_of_range);
}

TEST(DrxTest, OrderingFollowsPeriod) {
    EXPECT_LT(drx::seconds_2_56(), drx::seconds_20_48());
    EXPECT_EQ(drx::seconds_2_56(), DrxCycle::from_index(3));
}

TEST(DrxTest, ToStringMentionsEdrx) {
    EXPECT_NE(drx::seconds_20_48().to_string().find("eDRX"), std::string::npos);
    EXPECT_NE(drx::seconds_2_56().to_string().find("(DRX)"), std::string::npos);
}

}  // namespace
}  // namespace nbmg::nbiot
