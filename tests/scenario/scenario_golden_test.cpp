// Golden equivalence for the scenario redesign: run_scenario must
// reproduce the pre-redesign front doors bit for bit — run_comparison for
// fig6a/fig6b/fig7 and run_deployment for the 16-cell citywide preset — at
// --threads 1 and --threads 8.  The legacy setups below are hand-assembled
// exactly as the pre-redesign binaries did; stats::Summary::operator== is
// bit-exact state equality, so any drift in RNG stream derivation,
// reduction order, or field mapping fails loudly.
//
// The runtime comparisons use scaled-down runs/devices (applied identically
// to both sides); full-scale equivalence is pinned structurally by
// FullScaleSetupsMatchFieldForField, which asserts the adapter output
// equals the old binaries' hand-built setups field for field.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "multicell/deployment.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "traffic/firmware.hpp"

namespace nbmg::scenario {
namespace {

void expect_same_stats(const core::MechanismStats& actual,
                       const core::MechanismStats& expected) {
    EXPECT_EQ(actual.kind, expected.kind);
    EXPECT_TRUE(actual.light_sleep_increase == expected.light_sleep_increase);
    EXPECT_TRUE(actual.connected_increase == expected.connected_increase);
    EXPECT_TRUE(actual.transmissions == expected.transmissions);
    EXPECT_TRUE(actual.transmissions_per_device ==
                expected.transmissions_per_device);
    EXPECT_TRUE(actual.bytes_ratio == expected.bytes_ratio);
    EXPECT_TRUE(actual.recovery_transmissions == expected.recovery_transmissions);
    EXPECT_TRUE(actual.unreceived_devices == expected.unreceived_devices);
    EXPECT_TRUE(actual.mean_connected_seconds == expected.mean_connected_seconds);
    EXPECT_TRUE(actual.mean_light_sleep_seconds ==
                expected.mean_light_sleep_seconds);
}

void expect_same_outcome(const core::ComparisonOutcome& actual,
                         const core::ComparisonOutcome& expected) {
    expect_same_stats(actual.unicast, expected.unicast);
    ASSERT_EQ(actual.mechanisms.size(), expected.mechanisms.size());
    for (std::size_t m = 0; m < actual.mechanisms.size(); ++m) {
        expect_same_stats(actual.mechanisms[m], expected.mechanisms[m]);
    }
}

/// The fig6a/fig6b binaries' pre-redesign hand-assembled setup, scaled to
/// (devices, runs) so the runtime comparison stays CTest-fast.
core::ComparisonSetup legacy_fig6_setup(std::size_t devices, std::size_t runs,
                                        std::size_t threads) {
    core::ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = devices;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = runs;
    setup.base_seed = 42;
    setup.threads = threads;
    return setup;
}

TEST(ScenarioGoldenTest, Fig6aBitIdenticalToRunComparison) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("fig6a");
        spec.with_devices(60).with_runs(4).with_threads(threads);
        const core::ComparisonOutcome legacy =
            core::run_comparison(legacy_fig6_setup(60, 4, threads));
        expect_same_outcome(run_scenario(spec).comparison(), legacy);
    }
}

TEST(ScenarioGoldenTest, Fig6bPayloadPointBitIdenticalWithSharedPopulations) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        // The fig6b shell shares populations across the payload sweep; the
        // 1 MB point must still match the legacy path that shares the same
        // handle.
        ScenarioSpec spec = Registry::instance().preset("fig6b");
        spec.with_devices(50).with_runs(3).with_threads(threads);
        spec.with_populations(core::generate_comparison_populations(
            spec.profile, spec.device_count, spec.runs, spec.base_seed));
        spec.with_payload_bytes(traffic::firmware_1mb().bytes);

        core::ComparisonSetup legacy = legacy_fig6_setup(50, 3, threads);
        legacy.payload_bytes = traffic::firmware_1mb().bytes;
        legacy.populations = spec.populations;
        expect_same_outcome(run_scenario(spec).comparison(),
                            core::run_comparison(legacy));
    }
}

TEST(ScenarioGoldenTest, Fig7DrScBitIdenticalToRunComparison) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("fig7");
        spec.with_devices(80).with_runs(3).with_threads(threads);

        core::ComparisonSetup legacy = legacy_fig6_setup(80, 3, threads);
        legacy.mechanisms = {core::MechanismKind::dr_sc};
        expect_same_outcome(run_scenario(spec).comparison(),
                            core::run_comparison(legacy));
    }
}

TEST(ScenarioGoldenTest, Citywide16CellsBitIdenticalToRunDeployment) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("citywide");
        spec.with_devices(400).with_runs(2).with_threads(threads);
        ASSERT_EQ(spec.cell_count(), 16u);

        multicell::DeploymentSetup legacy;
        legacy.profile = traffic::massive_iot_city();
        legacy.device_count = 400;
        legacy.payload_bytes = traffic::firmware_100kb().bytes;
        legacy.runs = 2;
        legacy.base_seed = 42;
        legacy.threads = threads;
        legacy.topology = multicell::CellTopology::uniform(16);

        const multicell::DeploymentResult expected =
            multicell::run_deployment(legacy);
        const ScenarioResult result = run_scenario(spec);
        ASSERT_TRUE(result.is_multicell());
        const multicell::DeploymentResult& actual = result.deployment();

        expect_same_stats(actual.unicast.stats, expected.unicast.stats);
        EXPECT_TRUE(actual.unicast.bytes_on_air == expected.unicast.bytes_on_air);
        EXPECT_TRUE(actual.unicast.rach_collision_rate ==
                    expected.unicast.rach_collision_rate);
        ASSERT_EQ(actual.mechanisms.size(), expected.mechanisms.size());
        for (std::size_t m = 0; m < actual.mechanisms.size(); ++m) {
            expect_same_stats(actual.mechanisms[m].stats,
                              expected.mechanisms[m].stats);
            EXPECT_TRUE(actual.mechanisms[m].bytes_on_air ==
                        expected.mechanisms[m].bytes_on_air);
            EXPECT_TRUE(actual.mechanisms[m].rach_collision_rate ==
                        expected.mechanisms[m].rach_collision_rate);
        }
        ASSERT_EQ(actual.cells.size(), expected.cells.size());
        for (std::size_t c = 0; c < actual.cells.size(); ++c) {
            EXPECT_TRUE(actual.cells[c].devices == expected.cells[c].devices);
            expect_same_stats(actual.cells[c].unicast.stats,
                              expected.cells[c].unicast.stats);
        }
        EXPECT_TRUE(actual.cell_load == expected.cell_load);
        EXPECT_EQ(actual.empty_cell_runs, expected.empty_cell_runs);
        EXPECT_EQ(actual.rach_collision_across_cells.count(),
                  expected.rach_collision_across_cells.count());
        for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
            EXPECT_EQ(actual.rach_collision_across_cells.quantile(q),
                      expected.rach_collision_across_cells.quantile(q));
        }
    }
}

TEST(ScenarioGoldenTest, FullScaleSetupsMatchFieldForField) {
    // Full-scale equivalence without the full-scale runtime: the adapter
    // output of each acceptance-criteria preset equals the pre-redesign
    // binary's hand-built setup field for field, so the runtime identity
    // proven above at small scale carries over unchanged.
    {
        const core::ComparisonSetup actual =
            to_comparison_setup(Registry::instance().preset("fig6a"));
        const core::ComparisonSetup expected = [] {
            core::ComparisonSetup setup;  // as bench/fig6a_* hand-assembled it
            setup.profile = traffic::massive_iot_city();
            setup.device_count = 300;
            setup.payload_bytes = traffic::firmware_100kb().bytes;
            setup.runs = 50;
            setup.base_seed = 42;
            return setup;
        }();
        EXPECT_EQ(actual.profile.name, expected.profile.name);
        EXPECT_EQ(actual.device_count, expected.device_count);
        EXPECT_EQ(actual.payload_bytes, expected.payload_bytes);
        EXPECT_EQ(actual.runs, expected.runs);
        EXPECT_EQ(actual.base_seed, expected.base_seed);
        EXPECT_EQ(actual.mechanisms, expected.mechanisms);
        EXPECT_EQ(actual.config.inactivity_timer, expected.config.inactivity_timer);
    }
    {
        const core::ComparisonSetup actual =
            to_comparison_setup(Registry::instance().preset("fig7"));
        EXPECT_EQ(actual.runs, 100u);
        EXPECT_EQ(actual.base_seed, 42u);
        const std::vector<core::MechanismKind> drsc{core::MechanismKind::dr_sc};
        EXPECT_EQ(actual.mechanisms, drsc);
        EXPECT_EQ(actual.profile.name, "massive_iot_city");
    }
    {
        const multicell::DeploymentSetup actual =
            to_deployment_setup(Registry::instance().preset("citywide"));
        EXPECT_EQ(actual.device_count, 6'000u);
        EXPECT_EQ(actual.runs, 2u);
        EXPECT_EQ(actual.base_seed, 42u);
        EXPECT_EQ(actual.topology.cell_count(), 16u);
        EXPECT_EQ(actual.assignment, multicell::AssignmentPolicy::uniform_hash);
    }
}

}  // namespace
}  // namespace nbmg::scenario
