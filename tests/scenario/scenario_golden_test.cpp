// Golden equivalence for the scenario redesign: run_scenario must
// reproduce the pre-redesign front doors bit for bit — run_comparison for
// fig6a/fig6b/fig7 and run_deployment for the 16-cell citywide preset — at
// --threads 1 and --threads 8.  The legacy setups below are hand-assembled
// exactly as the pre-redesign binaries did; stats::Summary::operator== is
// bit-exact state equality, so any drift in RNG stream derivation,
// reduction order, or field mapping fails loudly.
//
// The runtime comparisons use scaled-down runs/devices (applied identically
// to both sides); full-scale equivalence is pinned structurally by
// FullScaleSetupsMatchFieldForField, which asserts the adapter output
// equals the old binaries' hand-built setups field for field.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "multicell/deployment.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "tests/support/deployment_equal.hpp"
#include "traffic/firmware.hpp"

namespace nbmg::scenario {
namespace {

using test_support::expect_deployment_results_equal;
using test_support::expect_mechanism_stats_equal;

void expect_same_stats(const core::MechanismStats& actual,
                       const core::MechanismStats& expected) {
    expect_mechanism_stats_equal(actual, expected);
}

void expect_same_outcome(const core::ComparisonOutcome& actual,
                         const core::ComparisonOutcome& expected) {
    expect_same_stats(actual.unicast, expected.unicast);
    ASSERT_EQ(actual.mechanisms.size(), expected.mechanisms.size());
    for (std::size_t m = 0; m < actual.mechanisms.size(); ++m) {
        expect_same_stats(actual.mechanisms[m], expected.mechanisms[m]);
    }
}

/// The fig6a/fig6b binaries' pre-redesign hand-assembled setup, scaled to
/// (devices, runs) so the runtime comparison stays CTest-fast.
core::ComparisonSetup legacy_fig6_setup(std::size_t devices, std::size_t runs,
                                        std::size_t threads) {
    core::ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = devices;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = runs;
    setup.base_seed = 42;
    setup.threads = threads;
    return setup;
}

TEST(ScenarioGoldenTest, Fig6aBitIdenticalToRunComparison) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("fig6a");
        spec.with_devices(60).with_runs(4).with_threads(threads);
        const core::ComparisonOutcome legacy =
            core::run_comparison(legacy_fig6_setup(60, 4, threads));
        expect_same_outcome(run_scenario(spec).comparison(), legacy);
    }
}

TEST(ScenarioGoldenTest, Fig6bPayloadPointBitIdenticalWithSharedPopulations) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        // The fig6b shell shares populations across the payload sweep; the
        // 1 MB point must still match the legacy path that shares the same
        // handle.
        ScenarioSpec spec = Registry::instance().preset("fig6b");
        spec.with_devices(50).with_runs(3).with_threads(threads);
        spec.with_populations(core::generate_comparison_populations(
            spec.profile, spec.device_count, spec.runs, spec.base_seed));
        spec.with_payload_bytes(traffic::firmware_1mb().bytes);

        core::ComparisonSetup legacy = legacy_fig6_setup(50, 3, threads);
        legacy.payload_bytes = traffic::firmware_1mb().bytes;
        legacy.populations = spec.populations;
        expect_same_outcome(run_scenario(spec).comparison(),
                            core::run_comparison(legacy));
    }
}

TEST(ScenarioGoldenTest, Fig7DrScBitIdenticalToRunComparison) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("fig7");
        spec.with_devices(80).with_runs(3).with_threads(threads);

        core::ComparisonSetup legacy = legacy_fig6_setup(80, 3, threads);
        legacy.mechanisms = {core::MechanismKind::dr_sc};
        expect_same_outcome(run_scenario(spec).comparison(),
                            core::run_comparison(legacy));
    }
}

/// The pre-coordinator 16-cell citywide deployment, hand-assembled as the
/// PR 3 binary did — the golden reference for the coordinator-absent AND
/// coordinator=simultaneous scenarios.
multicell::DeploymentSetup legacy_citywide_setup(std::size_t threads) {
    multicell::DeploymentSetup legacy;
    legacy.profile = traffic::massive_iot_city();
    legacy.device_count = 400;
    legacy.payload_bytes = traffic::firmware_100kb().bytes;
    legacy.runs = 2;
    legacy.base_seed = 42;
    legacy.threads = threads;
    legacy.topology = multicell::CellTopology::uniform(16);
    return legacy;
}

TEST(ScenarioGoldenTest, Citywide16CellsBitIdenticalToRunDeployment) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("citywide");
        spec.with_devices(400).with_runs(2).with_threads(threads);
        ASSERT_EQ(spec.cell_count(), 16u);

        const multicell::DeploymentResult expected =
            multicell::run_deployment(legacy_citywide_setup(threads));
        const ScenarioResult result = run_scenario(spec);
        ASSERT_TRUE(result.is_multicell());
        EXPECT_FALSE(result.is_coordinated());
        expect_deployment_results_equal(result.deployment(), expected);
    }
}

TEST(ScenarioGoldenTest, CoordinatorSimultaneousBitIdenticalToRunDeployment) {
    // Acceptance pin: a coordinator=simultaneous scenario reproduces the
    // pre-coordinator run_deployment aggregates bit for bit at threads 1
    // and 8 — the coordinator adds the time axis without perturbing a
    // single campaign number.
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        ScenarioSpec spec = Registry::instance().preset("citywide");
        spec.with_devices(400).with_runs(2).with_threads(threads);
        spec.with_coordinator(multicell::CoordinatorSpec{});

        const multicell::DeploymentResult expected =
            multicell::run_deployment(legacy_citywide_setup(threads));
        const ScenarioResult result = run_scenario(spec);
        ASSERT_TRUE(result.is_multicell());
        ASSERT_TRUE(result.is_coordinated());
        expect_deployment_results_equal(result.deployment(), expected);

        // The simultaneous time axis: no stagger, no feed, everything
        // concurrent from t = 0.
        EXPECT_EQ(result.coordination->completion_ms.count(), 2u);
        EXPECT_DOUBLE_EQ(result.coordination->start_spread_ms.max(), 0.0);
        EXPECT_DOUBLE_EQ(result.coordination->backhaul_busy_ms.max(), 0.0);
        EXPECT_GT(result.coordination->peak_concurrent_cells.min(), 0.0);
    }
}

TEST(ScenarioGoldenTest, StaggeredAndBackhaulKeepCampaignAggregatesGolden) {
    // The stronger form of the same pin: even the non-trivial policies may
    // only add time-axis data on top of the golden campaign aggregates.
    const multicell::DeploymentResult expected =
        multicell::run_deployment(legacy_citywide_setup(1));
    for (const char* preset : {"citywide-staggered", "citywide-backhaul"}) {
        ScenarioSpec spec = Registry::instance().preset(preset);
        spec.with_devices(400).with_runs(2).with_threads(1);
        spec.with_payload_bytes(traffic::firmware_100kb().bytes);

        const ScenarioResult result = run_scenario(spec);
        ASSERT_TRUE(result.is_coordinated()) << preset;
        expect_deployment_results_equal(result.deployment(), expected);
    }
}

TEST(ScenarioGoldenTest, FullScaleSetupsMatchFieldForField) {
    // Full-scale equivalence without the full-scale runtime: the adapter
    // output of each acceptance-criteria preset equals the pre-redesign
    // binary's hand-built setup field for field, so the runtime identity
    // proven above at small scale carries over unchanged.
    {
        const core::ComparisonSetup actual =
            to_comparison_setup(Registry::instance().preset("fig6a"));
        const core::ComparisonSetup expected = [] {
            core::ComparisonSetup setup;  // as bench/fig6a_* hand-assembled it
            setup.profile = traffic::massive_iot_city();
            setup.device_count = 300;
            setup.payload_bytes = traffic::firmware_100kb().bytes;
            setup.runs = 50;
            setup.base_seed = 42;
            return setup;
        }();
        EXPECT_EQ(actual.profile.name, expected.profile.name);
        EXPECT_EQ(actual.device_count, expected.device_count);
        EXPECT_EQ(actual.payload_bytes, expected.payload_bytes);
        EXPECT_EQ(actual.runs, expected.runs);
        EXPECT_EQ(actual.base_seed, expected.base_seed);
        EXPECT_EQ(actual.mechanisms, expected.mechanisms);
        EXPECT_EQ(actual.config.inactivity_timer, expected.config.inactivity_timer);
    }
    {
        const core::ComparisonSetup actual =
            to_comparison_setup(Registry::instance().preset("fig7"));
        EXPECT_EQ(actual.runs, 100u);
        EXPECT_EQ(actual.base_seed, 42u);
        const std::vector<core::MechanismKind> drsc{core::MechanismKind::dr_sc};
        EXPECT_EQ(actual.mechanisms, drsc);
        EXPECT_EQ(actual.profile.name, "massive_iot_city");
    }
    {
        const multicell::DeploymentSetup actual =
            to_deployment_setup(Registry::instance().preset("citywide"));
        EXPECT_EQ(actual.device_count, 6'000u);
        EXPECT_EQ(actual.runs, 2u);
        EXPECT_EQ(actual.base_seed, 42u);
        EXPECT_EQ(actual.topology.cell_count(), 16u);
        EXPECT_EQ(actual.assignment, multicell::AssignmentPolicy::uniform_hash);
    }
}

}  // namespace
}  // namespace nbmg::scenario
