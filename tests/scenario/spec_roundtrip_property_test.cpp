// Property battery: randomly generated ScenarioSpecs round-trip through
// to_file_text -> parse_scenario_text bit-identically.
//
// The generator (seeded mt19937_64, fixed seed: the battery is
// deterministic) draws every file-expressible knob — profile, batch_mean,
// devices/payload/runs/seed/threads, mechanism lists, the shallow campaign
// config keys, multicell topology + assignment, and the coordinator.*
// keys in every policy shape.  Two invariants per spec:
//  1. the reloaded spec re-serializes to the exact same text (the strict
//     form of round-trip identity: any field the parser dropped or
//     defaulted differently would change the second serialization), and
//  2. the reloaded fields equal the originals (catches the degenerate
//     failure where both serializations lose the same field).
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <vector>

#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "scenario/spec.hpp"

namespace nbmg::scenario {
namespace {

class SpecGenerator {
public:
    explicit SpecGenerator(std::uint64_t seed) : rng_(seed) {}

    ScenarioSpec next() {
        ScenarioSpec spec;
        spec.with_name("prop-" + std::to_string(counter_++));
        if (chance(0.5)) {
            spec.with_description("generated round-trip spec");
        }
        const std::vector<std::string> profiles =
            Registry::instance().profile_names();
        spec.with_profile(
            Registry::instance().profile(profiles[index(profiles.size())]));
        if (chance(0.3)) {
            spec.profile.batch_mean = uniform(1.0, 8.0);
        }
        spec.with_devices(1 + index(5'000));
        spec.with_payload_bytes(1 + static_cast<std::int64_t>(index(1 << 22)));
        spec.with_runs(1 + index(200));
        spec.with_seed(rng_());
        spec.with_threads(index(9));  // 0 = hardware concurrency
        spec.with_mechanisms(mechanisms());

        // Shallow campaign-config keys (the file-expressible subset).
        spec.config.inactivity_timer =
            nbiot::SimTime{1 + static_cast<std::int64_t>(index(60'000))};
        spec.config.ra_guard =
            nbiot::SimTime{static_cast<std::int64_t>(index(10'000))};
        spec.config.include_inactivity_tail = chance(0.5);
        if (chance(0.5)) spec.config.page_miss_prob = uniform(0.0, 0.999);
        spec.config.max_page_attempts = 1 + static_cast<int>(index(9));
        if (chance(0.5)) {
            spec.config.background_ra_per_second = uniform(0.0, 50.0);
        }
        spec.config.paging.max_page_records = 1 + static_cast<int>(index(16));
        spec.config.sc_ptm_mcch_period =
            nbiot::SimTime{1 + static_cast<std::int64_t>(index(40'000))};
        if (chance(0.5)) spec.with_strata(1 + index(core::kMaxStrata));

        if (chance(0.4)) {
            const bool trace = chance(0.6);
            const bool metrics = chance(0.6);
            spec.with_telemetry_modes(trace, metrics);
            if ((trace || metrics) && chance(0.5)) {
                spec.with_telemetry_bucket_ms(
                    1 + static_cast<std::int64_t>(index(600'000)));
            }
            if (trace && chance(0.5)) {
                spec.with_trace_out("out/t" + std::to_string(index(9)) +
                                    ".jsonl");
            }
            if (trace && chance(0.5)) spec.with_timeline_out("out/tl.json");
            if (metrics && chance(0.5)) spec.with_metrics_out("out/m.csv");
        }

        if (chance(0.6)) {
            const std::size_t cells = 1 + index(64);
            if (chance(0.5)) {
                spec.with_hotspot(cells, uniform(0.0, 3.0));
            } else {
                spec.with_cells(cells);
            }
            switch (index(3)) {
                case 0: spec.with_assignment(multicell::AssignmentPolicy::uniform_hash); break;
                case 1: spec.with_assignment(multicell::AssignmentPolicy::hotspot); break;
                default:
                    spec.with_assignment(multicell::AssignmentPolicy::class_affinity);
                    break;
            }
            if (chance(0.6)) {
                switch (index(3)) {
                    case 0:
                        spec.with_coordinator(multicell::CoordinatorSpec{});
                        break;
                    case 1:
                        spec.with_stagger_ms(
                            static_cast<std::int64_t>(index(600'000)));
                        break;
                    default:
                        spec.with_backhaul_kbps(uniform(0.001, 65'536.0));
                        break;
                }
            }
        }
        return spec;
    }

private:
    bool chance(double p) { return uniform(0.0, 1.0) < p; }
    std::size_t index(std::size_t bound) {
        return std::uniform_int_distribution<std::size_t>(0, bound - 1)(rng_);
    }
    double uniform(double lo, double hi) {
        return std::uniform_real_distribution<double>(lo, hi)(rng_);
    }
    std::vector<core::MechanismKind> mechanisms() {
        static const std::vector<core::MechanismKind> all{
            core::MechanismKind::dr_sc, core::MechanismKind::da_sc,
            core::MechanismKind::dr_si, core::MechanismKind::unicast,
            core::MechanismKind::sc_ptm};
        // A non-empty subset in canonical order, picked by a random mask.
        std::vector<core::MechanismKind> out;
        const std::size_t mask = 1 + index((1u << all.size()) - 1);
        for (std::size_t m = 0; m < all.size(); ++m) {
            if ((mask >> m) & 1u) out.push_back(all[m]);
        }
        return out;
    }

    std::mt19937_64 rng_;
    std::size_t counter_ = 0;
};

void expect_specs_equal(const ScenarioSpec& parsed, const ScenarioSpec& spec) {
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.description, spec.description);
    EXPECT_EQ(parsed.profile.name, spec.profile.name);
    EXPECT_EQ(parsed.profile.batch_mean, spec.profile.batch_mean);
    EXPECT_EQ(parsed.device_count, spec.device_count);
    EXPECT_EQ(parsed.payload_bytes, spec.payload_bytes);
    EXPECT_EQ(parsed.runs, spec.runs);
    EXPECT_EQ(parsed.base_seed, spec.base_seed);
    EXPECT_EQ(parsed.threads, spec.threads);
    EXPECT_EQ(parsed.mechanisms, spec.mechanisms);
    EXPECT_EQ(parsed.config.inactivity_timer, spec.config.inactivity_timer);
    EXPECT_EQ(parsed.config.ra_guard, spec.config.ra_guard);
    EXPECT_EQ(parsed.config.include_inactivity_tail,
              spec.config.include_inactivity_tail);
    EXPECT_EQ(parsed.config.page_miss_prob, spec.config.page_miss_prob);
    EXPECT_EQ(parsed.config.max_page_attempts, spec.config.max_page_attempts);
    EXPECT_EQ(parsed.config.background_ra_per_second,
              spec.config.background_ra_per_second);
    EXPECT_EQ(parsed.config.paging.max_page_records,
              spec.config.paging.max_page_records);
    EXPECT_EQ(parsed.config.sc_ptm_mcch_period, spec.config.sc_ptm_mcch_period);
    EXPECT_EQ(parsed.config.strata, spec.config.strata);
    ASSERT_EQ(parsed.is_multicell(), spec.is_multicell());
    if (spec.is_multicell()) {
        EXPECT_EQ(parsed.topology->cells, spec.topology->cells);
        EXPECT_EQ(parsed.topology->kind, spec.topology->kind);
        if (spec.topology->kind == TopologySpec::Kind::hotspot) {
            EXPECT_EQ(parsed.topology->hotspot_exponent,
                      spec.topology->hotspot_exponent);
        }
        EXPECT_EQ(parsed.assignment, spec.assignment);
    }
    EXPECT_EQ(parsed.telemetry, spec.telemetry);
    ASSERT_EQ(parsed.is_coordinated(), spec.is_coordinated());
    if (spec.is_coordinated()) {
        EXPECT_EQ(parsed.coordinator->policy, spec.coordinator->policy);
        EXPECT_EQ(parsed.coordinator->stagger_ms, spec.coordinator->stagger_ms);
        EXPECT_EQ(parsed.coordinator->backhaul_kbps,
                  spec.coordinator->backhaul_kbps);
    }
}

TEST(SpecRoundTripPropertyTest, RandomSpecsRoundTripBitIdentically) {
    SpecGenerator generator(20'260'728);
    for (int i = 0; i < 300; ++i) {
        const ScenarioSpec spec = generator.next();
        ASSERT_NO_THROW(spec.validate()) << spec.name;

        const std::string text = spec.to_file_text();
        ScenarioSpec parsed;
        ASSERT_NO_THROW(parsed = parse_scenario_text(text, spec.name))
            << spec.name << "\n"
            << text;
        EXPECT_EQ(parsed.to_file_text(), text) << spec.name;
        expect_specs_equal(parsed, spec);
    }
}

TEST(SpecRoundTripPropertyTest, CoordinatedPresetsRoundTripThroughFiles) {
    // The shipped coordinated presets are the user-visible instances of
    // the property above; pin them by name so a preset edit that breaks
    // serialization fails here, not in a user's saved file.
    for (const char* name : {"citywide-staggered", "citywide-backhaul"}) {
        const ScenarioSpec preset = Registry::instance().preset(name);
        ASSERT_TRUE(preset.is_coordinated()) << name;
        const ScenarioSpec parsed =
            parse_scenario_text(preset.to_file_text(), name);
        expect_specs_equal(parsed, preset);
        EXPECT_EQ(parsed.to_file_text(), preset.to_file_text()) << name;
    }
}

}  // namespace
}  // namespace nbmg::scenario
