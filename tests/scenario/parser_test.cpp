// Strict scenario-file parsing: good files parse to the expected spec;
// unknown keys, duplicate keys and type mismatches all throw a
// ScenarioError naming the offending source:line.  These throw tests sit
// alongside the bench_util flag death tests (tests/bench/) — same
// contract, different entry point.
#include "scenario/parser.hpp"

#include <gtest/gtest.h>

#include <string>

namespace nbmg::scenario {
namespace {

/// Expects parse_scenario_text to throw and the message to contain every
/// fragment (in particular the "source:line" prefix).
void expect_parse_error(const std::string& text,
                        std::initializer_list<const char*> fragments) {
    try {
        (void)parse_scenario_text(text, "test.scenario");
        FAIL() << "expected ScenarioError for:\n" << text;
    } catch (const ScenarioError& error) {
        const std::string what = error.what();
        for (const char* fragment : fragments) {
            EXPECT_NE(what.find(fragment), std::string::npos)
                << "missing '" << fragment << "' in: " << what;
        }
    }
}

TEST(ScenarioParserTest, ParsesFullScenario) {
    const ScenarioSpec spec = parse_scenario_text(
        "# comment\n"
        "name = parsed\n"
        "profile = meter_heavy\n"
        "devices = 250\n"
        "payload_kb = 1024\n"
        "runs = 12\n"
        "seed = 0\n"
        "threads = 4\n"
        "mechanisms = dr-si , sc-ptm\n"
        "ti_ms = 30000\n"
        "include_inactivity_tail = true\n"
        "page_miss_prob = 0.125\n"
        "background_ra_per_second = 12.5\n"
        "max_page_records = 2\n",
        "good.scenario");
    EXPECT_EQ(spec.name, "parsed");
    EXPECT_EQ(spec.profile.name, "meter_heavy");
    EXPECT_EQ(spec.device_count, 250u);
    EXPECT_EQ(spec.payload_bytes, 1024 * 1024);
    EXPECT_EQ(spec.runs, 12u);
    EXPECT_EQ(spec.base_seed, 0u);
    EXPECT_EQ(spec.threads, 4u);
    const std::vector<core::MechanismKind> expected{core::MechanismKind::dr_si,
                                                    core::MechanismKind::sc_ptm};
    EXPECT_EQ(spec.mechanisms, expected);
    EXPECT_EQ(spec.config.inactivity_timer.count(), 30'000);
    EXPECT_TRUE(spec.config.include_inactivity_tail);
    EXPECT_EQ(spec.config.page_miss_prob, 0.125);
    EXPECT_EQ(spec.config.background_ra_per_second, 12.5);
    EXPECT_EQ(spec.config.paging.max_page_records, 2);
    EXPECT_FALSE(spec.is_multicell());
}

TEST(ScenarioParserTest, ParsesMulticellKeysInAnyOrder) {
    const ScenarioSpec spec = parse_scenario_text(
        "assignment = class-affinity\n"
        "hotspot_exponent = 0.5\n"
        "devices = 600\n"
        "topology = hotspot\n"
        "cells = 9\n",
        "multicell.scenario");
    ASSERT_TRUE(spec.is_multicell());
    EXPECT_EQ(spec.topology->cells, 9u);
    EXPECT_EQ(spec.topology->kind, TopologySpec::Kind::hotspot);
    EXPECT_EQ(spec.topology->hotspot_exponent, 0.5);
    EXPECT_EQ(spec.assignment, multicell::AssignmentPolicy::class_affinity);
}

TEST(ScenarioParserTest, UnknownKeyNamesTheLine) {
    expect_parse_error("devices = 10\nfrobnicate = 3\n",
                       {"test.scenario:2", "unknown key 'frobnicate'"});
}

TEST(ScenarioParserTest, DuplicateKeyNamesBothLines) {
    expect_parse_error("runs = 3\ndevices = 10\nruns = 5\n",
                       {"test.scenario:3", "duplicate key 'runs'",
                        "first set on line 1"});
}

TEST(ScenarioParserTest, PayloadSpellingsAliasToOneKey) {
    expect_parse_error("payload_kb = 100\npayload_bytes = 4096\n",
                       {"test.scenario:2", "duplicate key 'payload_bytes'"});
}

TEST(ScenarioParserTest, TypeMismatchNamesTheLine) {
    expect_parse_error("devices = ten\n",
                       {"test.scenario:1", "bad value 'ten' for key 'devices'",
                        "not a non-negative decimal integer"});
    expect_parse_error("runs = 0\n", {"test.scenario:1", "must be >= 1"});
    expect_parse_error("seed = -3\n", {"test.scenario:1", "bad value '-3'"});
    expect_parse_error("page_miss_prob = huge\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("page_miss_prob = 1.5\n",
                       {"test.scenario:1", "must be in [0, 1)"});
    // strtod would happily parse these; the strict parser must not.
    expect_parse_error("batch_mean = inf\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("batch_mean = nan\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("background_ra_per_second = inf\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("include_inactivity_tail = maybe\n",
                       {"test.scenario:1", "expected true | false"});
    // Values that would wrap when multiplied (payload_kb) or narrowed to
    // int must fail at the line, not run a different experiment.
    expect_parse_error("payload_kb = 18014398509481985\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("max_page_records = 4294967312\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("max_page_attempts = 2147483648\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("ti_ms = 9223372036854775808\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("ra_guard_ms = 9223372036854775808\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("sc_ptm_mcch_period_ms = 9223372036854775808\n",
                       {"test.scenario:1", "out of range"});
    expect_parse_error("devices = 10\ntopology = ring\n",
                       {"test.scenario:2", "expected uniform | hotspot"});
    expect_parse_error("assignment = zipf\ncells = 2\n",
                       {"test.scenario:1", "class-affinity"});
}

TEST(ScenarioParserTest, MissingEqualsNamesTheLine) {
    expect_parse_error("devices 10\n",
                       {"test.scenario:1", "expected 'key = value'"});
}

TEST(ScenarioParserTest, UnknownMechanismAndProfileListAlternatives) {
    expect_parse_error("mechanisms = dr-sc,teleport\n",
                       {"test.scenario:1", "unknown mechanism 'teleport'",
                        "dr-sc"});
    expect_parse_error("profile = mars_rovers\n",
                       {"test.scenario:1", "unknown profile 'mars_rovers'",
                        "massive_iot_city"});
}

TEST(ScenarioParserTest, MulticellKeysWithoutCellsRejected) {
    expect_parse_error("devices = 10\ntopology = hotspot\n",
                       {"test.scenario:2", "require 'cells'"});
}

TEST(ScenarioParserTest, ParsesCoordinatorKeysInAnyOrder) {
    const ScenarioSpec staggered = parse_scenario_text(
        "coordinator.stagger_ms = 45000\n"
        "cells = 8\n"
        "coordinator = fixed-stagger\n",
        "staggered.scenario");
    ASSERT_TRUE(staggered.is_coordinated());
    EXPECT_EQ(staggered.coordinator->policy,
              multicell::StartPolicy::fixed_stagger);
    EXPECT_EQ(staggered.coordinator->stagger_ms, 45'000);

    const ScenarioSpec budgeted = parse_scenario_text(
        "cells = 4\n"
        "coordinator = backhaul\n"
        "coordinator.backhaul_kbps = 256.5\n",
        "backhaul.scenario");
    ASSERT_TRUE(budgeted.is_coordinated());
    EXPECT_EQ(budgeted.coordinator->policy,
              multicell::StartPolicy::backhaul_budgeted);
    EXPECT_EQ(budgeted.coordinator->backhaul_kbps, 256.5);

    const ScenarioSpec simultaneous = parse_scenario_text(
        "cells = 4\ncoordinator = simultaneous\n", "simultaneous.scenario");
    ASSERT_TRUE(simultaneous.is_coordinated());
    EXPECT_EQ(simultaneous.coordinator->policy,
              multicell::StartPolicy::simultaneous);
}

TEST(ScenarioParserTest, CoordinatorKeysValidatedAsAGroup) {
    // Unknown policy spelling, at its line.
    expect_parse_error("cells = 4\ncoordinator = staggered\n",
                       {"test.scenario:2",
                        "expected simultaneous | fixed-stagger | backhaul"});
    // Sub-keys without the policy key.
    expect_parse_error("cells = 4\ncoordinator.stagger_ms = 1000\n",
                       {"test.scenario:2", "require a 'coordinator' policy"});
    // The coordinator needs a grid to schedule.
    expect_parse_error("devices = 10\ncoordinator = simultaneous\n",
                       {"test.scenario:2", "requires a multicell grid"});
    // Policy-scoped knobs on the wrong policy.
    expect_parse_error(
        "cells = 4\ncoordinator = fixed-stagger\n"
        "coordinator.stagger_ms = 10\ncoordinator.backhaul_kbps = 8\n",
        {"test.scenario:2", "belongs to coordinator = backhaul"});
    expect_parse_error(
        "cells = 4\ncoordinator = backhaul\n"
        "coordinator.backhaul_kbps = 8\ncoordinator.stagger_ms = 10\n",
        {"test.scenario:2", "belongs to coordinator = fixed-stagger"});
    expect_parse_error("cells = 4\ncoordinator = simultaneous\n"
                       "coordinator.stagger_ms = 10\n",
                       {"test.scenario:2", "takes no"});
    // Required knobs missing.
    expect_parse_error("cells = 4\ncoordinator = fixed-stagger\n",
                       {"test.scenario:2", "requires", "stagger_ms"});
    expect_parse_error("cells = 4\ncoordinator = backhaul\n",
                       {"test.scenario:2", "requires", "backhaul_kbps"});
    // Knob values.
    expect_parse_error("cells = 4\ncoordinator = backhaul\n"
                       "coordinator.backhaul_kbps = 0\n",
                       {"test.scenario:3", "must be > 0"});
    expect_parse_error("cells = 4\ncoordinator = backhaul\n"
                       "coordinator.backhaul_kbps = inf\n",
                       {"test.scenario:3", "not a finite number"});
    expect_parse_error("cells = 4\ncoordinator = fixed-stagger\n"
                       "coordinator.stagger_ms = 9223372036854775808\n",
                       {"test.scenario:3", "out of range"});
}

TEST(ScenarioParserTest, ParsesTelemetryKeysInAnyOrder) {
    const ScenarioSpec full = parse_scenario_text(
        "trace_out = out/trace.jsonl\n"
        "devices = 10\n"
        "telemetry = full\n"
        "telemetry.bucket_ms = 500\n"
        "metrics_out = out/metrics.csv\n"
        "timeline_out = out/timeline.json\n",
        "telemetry.scenario");
    EXPECT_TRUE(full.telemetry.trace);
    EXPECT_TRUE(full.telemetry.metrics);
    EXPECT_EQ(full.telemetry.bucket_ms, 500);
    EXPECT_EQ(full.telemetry.trace_out, "out/trace.jsonl");
    EXPECT_EQ(full.telemetry.metrics_out, "out/metrics.csv");
    EXPECT_EQ(full.telemetry.timeline_out, "out/timeline.json");

    const ScenarioSpec trace_only =
        parse_scenario_text("telemetry = trace\n", "t.scenario");
    EXPECT_TRUE(trace_only.telemetry.trace);
    EXPECT_FALSE(trace_only.telemetry.metrics);
    EXPECT_EQ(trace_only.telemetry.bucket_ms, 60'000);  // default kept

    const ScenarioSpec off =
        parse_scenario_text("telemetry = off\n", "off.scenario");
    EXPECT_FALSE(off.telemetry.enabled());
}

TEST(ScenarioParserTest, TelemetryKeysValidatedAsAGroup) {
    // Unknown mode spelling, at its line.
    expect_parse_error("devices = 10\ntelemetry = everything\n",
                       {"test.scenario:2",
                        "expected off | trace | metrics | full"});
    // Output paths without the matching mode, at the path's line.
    expect_parse_error("trace_out = x.jsonl\n",
                       {"test.scenario:1",
                        "'trace_out' requires telemetry = trace or full"});
    expect_parse_error(
        "telemetry = metrics\ntimeline_out = t.json\n",
        {"test.scenario:2",
         "'timeline_out' requires telemetry = trace or full"});
    expect_parse_error(
        "telemetry = trace\nmetrics_out = m.csv\n",
        {"test.scenario:2",
         "'metrics_out' requires telemetry = metrics or full"});
    // Bucket width without any enabled mode, and out-of-domain widths.
    expect_parse_error("telemetry.bucket_ms = 100\n",
                       {"test.scenario:1", "requires an enabled telemetry"});
    expect_parse_error("telemetry = full\ntelemetry.bucket_ms = 0\n",
                       {"test.scenario:2", "must be >= 1"});
    // Empty output paths.
    expect_parse_error("telemetry = full\nmetrics_out =\n",
                       {"test.scenario:2", "empty path"});
}

TEST(ScenarioParserTest, ParsesCheckpointKeysInAnyOrder) {
    const ScenarioSpec spec = parse_scenario_text(
        "checkpoint.every_ms = 5000\n"
        "devices = 10\n"
        "checkpoint.out = out/run.snapshot\n"
        "checkpoint.stop_after = 3\n"
        "checkpoint.resume = out/prev.snapshot\n",
        "checkpoint.scenario");
    EXPECT_EQ(spec.checkpoint.out, "out/run.snapshot");
    EXPECT_EQ(spec.checkpoint.every_ms, 5000);
    EXPECT_EQ(spec.checkpoint.stop_after, 3u);
    EXPECT_EQ(spec.checkpoint.resume, "out/prev.snapshot");
    EXPECT_TRUE(spec.checkpoint.enabled());

    const ScenarioSpec resume_only = parse_scenario_text(
        "checkpoint.resume = prev.snapshot\n", "resume.scenario");
    EXPECT_TRUE(resume_only.checkpoint.out.empty());
    EXPECT_EQ(resume_only.checkpoint.every_ms, 0);  // default kept
    EXPECT_EQ(resume_only.checkpoint.resume, "prev.snapshot");
}

TEST(ScenarioParserTest, CheckpointRoundTripsThroughFileText) {
    ScenarioSpec spec;
    spec.with_checkpoint_out("out/run.snapshot")
        .with_checkpoint_every_ms(120'000)
        .with_checkpoint_stop_after(9)
        .with_resume("out/prev.snapshot");
    const ScenarioSpec reparsed =
        parse_scenario_text(spec.to_file_text(), "roundtrip.scenario");
    EXPECT_EQ(reparsed.checkpoint, spec.checkpoint);

    // A checkpoint-off spec emits no checkpoint keys at all.
    EXPECT_EQ(ScenarioSpec{}.to_file_text().find("checkpoint"),
              std::string::npos);
}

TEST(ScenarioParserTest, CheckpointKeysValidatedAsAGroup) {
    // The sub-keys need a snapshot path, reported at the sub-key's line.
    expect_parse_error("devices = 10\ncheckpoint.every_ms = 100\n",
                       {"test.scenario:2",
                        "'checkpoint.every_ms' requires a snapshot path"});
    expect_parse_error("checkpoint.stop_after = 2\ndevices = 10\n",
                       {"test.scenario:1",
                        "'checkpoint.stop_after' requires a snapshot path"});
    // Value domains: an explicit throttle/budget must be >= 1 (0, the
    // default, is expressed by omitting the key).
    expect_parse_error("checkpoint.out = s.bin\ncheckpoint.every_ms = 0\n",
                       {"test.scenario:2", "must be >= 1"});
    expect_parse_error("checkpoint.out = s.bin\ncheckpoint.stop_after = 0\n",
                       {"test.scenario:2", "must be >= 1"});
    expect_parse_error(
        "checkpoint.out = s.bin\n"
        "checkpoint.every_ms = 9223372036854775808\n",
        {"test.scenario:2", "out of range"});
    // Empty paths.
    expect_parse_error("checkpoint.out =\n", {"test.scenario:1", "empty path"});
    expect_parse_error("checkpoint.resume =\n",
                       {"test.scenario:1", "empty path"});
}

TEST(ScenarioParserTest, InvalidAssembledSpecRejectedWithSourceName) {
    // Parses line by line but fails whole-spec validation (empty mechanisms
    // cannot be expressed, so use a config contradiction instead).
    expect_parse_error("devices = 10\nra_guard_ms = 0\nti_ms = 1\nruns = 1\n"
                       "max_page_attempts = 1\nsc_ptm_mcch_period_ms = 1\n"
                       "page_miss_prob = 0.999999\nbatch_mean = 0.5\n",
                       {"test.scenario", "batch_mean"});
}

TEST(ScenarioParserTest, MissingFileThrows) {
    EXPECT_THROW((void)load_scenario_file("/definitely/not/here.scenario"),
                 ScenarioError);
}

TEST(ScenarioParserTest, ParsesFaultKeysInAnyOrder) {
    const ScenarioSpec spec = parse_scenario_text(
        "churn.rejoin_ms = 120000\n"
        "cells = 4\n"
        "faults.cell_down = 3@600000\n"
        "coordinator = backhaul\n"
        "coordinator.backhaul_kbps = 256\n"
        "faults.backhaul_loss = 0.1\n"
        "churn.leave_rate = 2\n",
        "faulted.scenario");
    EXPECT_EQ(spec.config.churn.leave_rate, 2.0);
    EXPECT_EQ(spec.config.churn.rejoin_ms, 120'000);
    ASSERT_TRUE(spec.cell_down.has_value());
    EXPECT_EQ(spec.cell_down->cell, 3u);
    EXPECT_EQ(spec.cell_down->at_ms, 600'000);
    ASSERT_TRUE(spec.is_coordinated());
    EXPECT_EQ(spec.coordinator->loss_prob, 0.1);
    EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioParserTest, FaultKeysValidatedAsAGroup) {
    expect_parse_error("churn.rejoin_ms = 1000\n",
                       {"'churn.rejoin_ms' requires 'churn.leave_rate'"});
    expect_parse_error("churn.leave_rate = -2\n",
                       {"test.scenario:1", "must be >= 0"});
    expect_parse_error("churn.leave_rate = 2\nchurn.rejoin_ms = 0\n",
                       {"test.scenario:2", "must be >= 1"});
    expect_parse_error("devices = 10\nfaults.cell_down = 0@5\n",
                       {"requires a multicell grid"});
    expect_parse_error("cells = 4\nfaults.cell_down = 3@\n",
                       {"test.scenario:2", "expected CELL@T_MS"});
    expect_parse_error("cells = 4\nfaults.backhaul_loss = 0.1\n",
                       {"requires coordinator = backhaul"});
    expect_parse_error(
        "cells = 4\ncoordinator = backhaul\n"
        "coordinator.backhaul_kbps = 256\nfaults.backhaul_loss = 1\n",
        {"test.scenario:4", "must be in [0, 1)"});
}

TEST(ScenarioParserTest, HexFloatTokensRejectedInFiles) {
    // strtod accepts C99 hex-float tokens ('0x10' = 16.0, '0X1p-3' =
    // 0.125); the strict grammar must reject them at every numeric key.
    expect_parse_error("page_miss_prob = 0x1p-3\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("page_miss_prob = 0X10\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("churn.leave_rate = 0x10\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("batch_mean = 1x\n",
                       {"test.scenario:1", "not a finite number"});
    expect_parse_error("devices = 0x10\n",
                       {"test.scenario:1",
                        "not a non-negative decimal integer"});
}

}  // namespace
}  // namespace nbmg::scenario
