// ScenarioSpec: builder semantics, validation, scenario-file serialization
// round trips, and the adapter round trips over the deprecated engine
// setups (ComparisonSetup/DeploymentSetup) — one conversion function each,
// and nothing may be lost on the way there and back.
#include "scenario/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "scenario/parser.hpp"
#include "scenario/registry.hpp"
#include "traffic/firmware.hpp"

namespace nbmg::scenario {
namespace {

ScenarioSpec small_spec() {
    return ScenarioSpec{}
        .with_name("unit")
        .with_devices(40)
        .with_runs(3)
        .with_seed(7)
        .with_threads(2)
        .with_payload_bytes(20 * 1024);
}

TEST(ScenarioSpecTest, BuilderChainsAndDefaults) {
    const ScenarioSpec spec = small_spec();
    EXPECT_EQ(spec.name, "unit");
    EXPECT_EQ(spec.device_count, 40u);
    EXPECT_EQ(spec.runs, 3u);
    EXPECT_EQ(spec.base_seed, 7u);
    EXPECT_EQ(spec.threads, 2u);
    EXPECT_EQ(spec.payload_bytes, 20 * 1024);
    EXPECT_EQ(spec.profile.name, "massive_iot_city");
    EXPECT_FALSE(spec.is_multicell());
    EXPECT_EQ(spec.cell_count(), 1u);
    const std::vector<core::MechanismKind> expected{core::MechanismKind::dr_sc,
                                                    core::MechanismKind::da_sc,
                                                    core::MechanismKind::dr_si};
    EXPECT_EQ(spec.mechanisms, expected);
    EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioSpecTest, WithCellsEngagesMulticellAndSingleCellClearsIt) {
    ScenarioSpec spec = small_spec().with_cells(16);
    EXPECT_TRUE(spec.is_multicell());
    EXPECT_EQ(spec.cell_count(), 16u);
    EXPECT_EQ(spec.topology->kind, TopologySpec::Kind::uniform);
    spec.single_cell();
    EXPECT_FALSE(spec.is_multicell());
}

TEST(ScenarioSpecTest, WithCellsResetsToUniformButCellCountPreservesKind) {
    // with_cells is documented as a fresh uniform grid...
    ScenarioSpec spec = small_spec().with_hotspot(8, 1.5).with_cells(4);
    EXPECT_EQ(spec.topology->kind, TopologySpec::Kind::uniform);
    EXPECT_EQ(spec.cell_count(), 4u);
    // ...while with_cell_count (the --cells override) keeps the shape.
    spec = small_spec().with_hotspot(8, 1.5).with_cell_count(32);
    EXPECT_EQ(spec.topology->kind, TopologySpec::Kind::hotspot);
    EXPECT_EQ(spec.topology->hotspot_exponent, 1.5);
    EXPECT_EQ(spec.cell_count(), 32u);
    // A count change invalidates a custom per-cell grid.
    TopologySpec custom;
    custom.cells = 4;
    custom.custom = multicell::CellTopology::hotspot(4, 2.0);
    spec = small_spec().with_topology(custom).with_cell_count(8);
    EXPECT_FALSE(spec.topology->custom.has_value());
    EXPECT_EQ(spec.cell_count(), 8u);
}

TEST(ScenarioSpecTest, FileTextKeepsFullDoublePrecision) {
    ScenarioSpec spec = small_spec();
    spec.config.page_miss_prob = 0.0123456789;
    spec.config.background_ra_per_second = 1.0 / 3.0;
    spec.with_hotspot(4, 0.1234567890123);
    const ScenarioSpec parsed =
        parse_scenario_text(spec.to_file_text(), "precision");
    EXPECT_EQ(parsed.config.page_miss_prob, spec.config.page_miss_prob);
    EXPECT_EQ(parsed.config.background_ra_per_second,
              spec.config.background_ra_per_second);
    EXPECT_EQ(parsed.topology->hotspot_exponent,
              spec.topology->hotspot_exponent);
}

TEST(ScenarioSpecTest, WithHotspotRealizesZipfTopology) {
    const ScenarioSpec spec = small_spec().with_hotspot(8, 1.0);
    ASSERT_TRUE(spec.is_multicell());
    const multicell::CellTopology topology = spec.topology->realize();
    ASSERT_EQ(topology.cell_count(), 8u);
    EXPECT_GT(topology.cells.front().weight, topology.cells.back().weight);
}

TEST(ScenarioSpecTest, ValidationNamesTheOffendingField) {
    EXPECT_THROW(
        {
            try {
                ScenarioSpec{}.with_devices(0).validate();
            } catch (const std::invalid_argument& error) {
                EXPECT_NE(std::string(error.what()).find("devices"),
                          std::string::npos);
                throw;
            }
        },
        std::invalid_argument);
    EXPECT_THROW(ScenarioSpec{}.with_runs(0).validate(), std::invalid_argument);
    EXPECT_THROW(ScenarioSpec{}.with_payload_bytes(0).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ScenarioSpec{}.with_mechanisms({}).validate(),
                 std::invalid_argument);
    EXPECT_THROW(ScenarioSpec{}.with_hotspot(4, -1.0).validate(),
                 std::invalid_argument);
}

TEST(ScenarioSpecTest, CoordinatorBuildersAndValidation) {
    // The convenience builders imply their policy.
    ScenarioSpec staggered = small_spec().with_cells(4).with_stagger_ms(20'000);
    ASSERT_TRUE(staggered.is_coordinated());
    EXPECT_EQ(staggered.coordinator->policy,
              multicell::StartPolicy::fixed_stagger);
    EXPECT_NO_THROW(staggered.validate());

    ScenarioSpec budgeted = small_spec().with_cells(4).with_backhaul_kbps(64.0);
    EXPECT_EQ(budgeted.coordinator->policy,
              multicell::StartPolicy::backhaul_budgeted);
    EXPECT_NO_THROW(budgeted.validate());

    // A coordinator needs a grid to schedule.
    EXPECT_THROW(small_spec().with_stagger_ms(1'000).validate(),
                 std::invalid_argument);
    // Policy-scoped knobs must be consistent.
    ScenarioSpec inconsistent = small_spec().with_cells(4);
    multicell::CoordinatorSpec mixed;
    mixed.policy = multicell::StartPolicy::backhaul_budgeted;
    mixed.stagger_ms = 5'000;
    mixed.backhaul_kbps = 64.0;
    inconsistent.with_coordinator(mixed);
    EXPECT_THROW(inconsistent.validate(), std::invalid_argument);

    // single_cell drops the coordinator along with the grid; the spec
    // stays valid instead of stranding a coordinator without cells.
    ScenarioSpec cleared = small_spec().with_cells(4).with_stagger_ms(1'000);
    cleared.single_cell();
    EXPECT_FALSE(cleared.is_coordinated());
    EXPECT_NO_THROW(cleared.validate());
    EXPECT_FALSE(small_spec().with_cells(4).with_stagger_ms(1'000)
                     .without_coordinator()
                     .is_coordinated());
}

TEST(ScenarioSpecTest, CoordinatorKeysSerializeAndReparse) {
    ScenarioSpec spec = small_spec().with_hotspot(6, 0.5).with_stagger_ms(45'000);
    ScenarioSpec parsed = parse_scenario_text(spec.to_file_text(), "staggered");
    ASSERT_TRUE(parsed.is_coordinated());
    EXPECT_EQ(parsed.coordinator->policy, multicell::StartPolicy::fixed_stagger);
    EXPECT_EQ(parsed.coordinator->stagger_ms, 45'000);

    spec = small_spec().with_cells(3).with_backhaul_kbps(0.125);
    parsed = parse_scenario_text(spec.to_file_text(), "backhaul");
    ASSERT_TRUE(parsed.is_coordinated());
    EXPECT_EQ(parsed.coordinator->policy,
              multicell::StartPolicy::backhaul_budgeted);
    EXPECT_EQ(parsed.coordinator->backhaul_kbps, 0.125);
}

TEST(ScenarioSpecTest, TelemetryBuildersImplyTheirModes) {
    ScenarioSpec spec = small_spec().with_trace_out("t.jsonl");
    EXPECT_TRUE(spec.telemetry.trace);
    EXPECT_FALSE(spec.telemetry.metrics);
    EXPECT_NO_THROW(spec.validate());
    spec.with_metrics_out("m.csv").with_timeline_out("tl.json");
    EXPECT_TRUE(spec.telemetry.metrics);
    EXPECT_TRUE(spec.telemetry.enabled());
    EXPECT_NO_THROW(spec.validate());

    // Paths hand-assembled without the matching mode are rejected.
    ScenarioSpec orphan = small_spec();
    orphan.telemetry.trace_out = "t.jsonl";
    EXPECT_THROW(orphan.validate(), std::invalid_argument);
    ScenarioSpec orphan_metrics = small_spec().with_telemetry_modes(true, false);
    orphan_metrics.telemetry.metrics_out = "m.csv";
    EXPECT_THROW(orphan_metrics.validate(), std::invalid_argument);

    ScenarioSpec bad_bucket = small_spec().with_telemetry_bucket_ms(0);
    EXPECT_THROW(bad_bucket.validate(), std::invalid_argument);
}

TEST(ScenarioSpecTest, TelemetryKeysSerializeAndReparse) {
    const ScenarioSpec spec = small_spec()
                                  .with_trace_out("out/t.jsonl")
                                  .with_metrics_out("out/m.csv")
                                  .with_timeline_out("out/tl.json")
                                  .with_telemetry_bucket_ms(250);
    const ScenarioSpec parsed =
        parse_scenario_text(spec.to_file_text(), "telemetry");
    EXPECT_EQ(parsed.telemetry, spec.telemetry);

    // A disabled telemetry block serializes to nothing.
    const std::string text = small_spec().to_file_text();
    EXPECT_EQ(text.find("telemetry"), std::string::npos) << text;
}

TEST(ScenarioSpecTest, MismatchedSharedPopulationsRejected) {
    ScenarioSpec spec = small_spec();
    spec.with_populations(core::generate_comparison_populations(
        spec.profile, spec.device_count, spec.runs, spec.base_seed + 1));
    EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecTest, FileTextRoundTripsDeclarativeSpecs) {
    ScenarioSpec spec = small_spec();
    spec.with_inactivity_timer_ms(20'000);
    spec.config.page_miss_prob = 0.25;
    spec.config.paging.max_page_records = 4;
    spec.with_hotspot(12, 0.8).with_assignment(
        multicell::AssignmentPolicy::class_affinity);

    const ScenarioSpec parsed =
        parse_scenario_text(spec.to_file_text(), "round-trip");
    EXPECT_EQ(parsed.name, spec.name);
    EXPECT_EQ(parsed.profile.name, spec.profile.name);
    EXPECT_EQ(parsed.device_count, spec.device_count);
    EXPECT_EQ(parsed.payload_bytes, spec.payload_bytes);
    EXPECT_EQ(parsed.runs, spec.runs);
    EXPECT_EQ(parsed.base_seed, spec.base_seed);
    EXPECT_EQ(parsed.threads, spec.threads);
    EXPECT_EQ(parsed.mechanisms, spec.mechanisms);
    EXPECT_EQ(parsed.config.inactivity_timer, spec.config.inactivity_timer);
    EXPECT_EQ(parsed.config.page_miss_prob, spec.config.page_miss_prob);
    EXPECT_EQ(parsed.config.paging.max_page_records,
              spec.config.paging.max_page_records);
    ASSERT_TRUE(parsed.is_multicell());
    EXPECT_EQ(parsed.topology->cells, 12u);
    EXPECT_EQ(parsed.topology->kind, TopologySpec::Kind::hotspot);
    EXPECT_EQ(parsed.topology->hotspot_exponent, 0.8);
    EXPECT_EQ(parsed.assignment, multicell::AssignmentPolicy::class_affinity);
}

TEST(ScenarioSpecTest, FileTextRejectsSilentlyDroppableState) {
    // Deep config structs have no file keys; serializing a spec that
    // changed them would reload a different experiment.
    ScenarioSpec deep_config = small_spec();
    deep_config.config.rach.num_preambles = 12;
    EXPECT_THROW((void)deep_config.to_file_text(), std::invalid_argument);

    // Same for per-class profile edits hiding under a builtin name.
    ScenarioSpec edited_profile = small_spec();
    edited_profile.profile.classes.front().share *= 2.0;
    EXPECT_THROW((void)edited_profile.to_file_text(), std::invalid_argument);

    // batch_mean alone is expressible and must stay serializable.
    ScenarioSpec batched = small_spec();
    batched.profile.batch_mean = 3.5;
    const ScenarioSpec parsed =
        parse_scenario_text(batched.to_file_text(), "batch");
    EXPECT_EQ(parsed.profile.batch_mean, 3.5);
}

TEST(ScenarioSpecTest, ValidationRejectsNonFiniteKnobs) {
    const double nan = std::nan("");
    ScenarioSpec spec = small_spec();
    spec.profile.batch_mean = nan;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec = small_spec();
    spec.config.background_ra_per_second =
        std::numeric_limits<double>::infinity();
    EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(ScenarioSpecTest, FileTextRejectsUnregisteredProfileAndCustomTopology) {
    ScenarioSpec custom_profile = small_spec();
    custom_profile.profile.name = "bespoke";
    EXPECT_THROW((void)custom_profile.to_file_text(), std::invalid_argument);

    ScenarioSpec custom_topology = small_spec();
    TopologySpec topo;
    topo.cells = 4;
    topo.custom = multicell::CellTopology::hotspot(4, 2.0);
    custom_topology.with_topology(topo);
    EXPECT_THROW((void)custom_topology.to_file_text(), std::invalid_argument);

    // A coordinator stranded without a grid must not silently vanish on
    // the way to a file.
    ScenarioSpec stranded = small_spec().with_stagger_ms(1'000);
    EXPECT_THROW((void)stranded.to_file_text(), std::invalid_argument);
}

TEST(ScenarioSpecTest, EveryShippedPresetSerializesAndReparses) {
    for (const std::string& name : Registry::instance().preset_names()) {
        const ScenarioSpec preset = Registry::instance().preset(name);
        const ScenarioSpec parsed =
            parse_scenario_text(preset.to_file_text(), name);
        EXPECT_EQ(parsed.device_count, preset.device_count) << name;
        EXPECT_EQ(parsed.runs, preset.runs) << name;
        EXPECT_EQ(parsed.mechanisms, preset.mechanisms) << name;
        EXPECT_EQ(parsed.is_multicell(), preset.is_multicell()) << name;
    }
}

TEST(ScenarioAdapterTest, ComparisonSetupRoundTrips) {
    core::ComparisonSetup setup;
    setup.profile = traffic::meter_heavy();
    setup.device_count = 123;
    setup.payload_bytes = traffic::firmware_1mb().bytes;
    setup.runs = 9;
    setup.base_seed = 17;
    setup.threads = 3;
    setup.mechanisms = {core::MechanismKind::dr_si, core::MechanismKind::sc_ptm};
    setup.config.inactivity_timer = nbiot::SimTime{25'000};
    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed);

    const ScenarioSpec spec = from_setup(setup);
    EXPECT_FALSE(spec.is_multicell());
    const core::ComparisonSetup back = to_comparison_setup(spec);

    EXPECT_EQ(back.profile.name, setup.profile.name);
    EXPECT_EQ(back.device_count, setup.device_count);
    EXPECT_EQ(back.payload_bytes, setup.payload_bytes);
    EXPECT_EQ(back.runs, setup.runs);
    EXPECT_EQ(back.base_seed, setup.base_seed);
    EXPECT_EQ(back.threads, setup.threads);
    EXPECT_EQ(back.mechanisms, setup.mechanisms);
    EXPECT_EQ(back.config.inactivity_timer, setup.config.inactivity_timer);
    EXPECT_EQ(back.populations.get(), setup.populations.get());
}

TEST(ScenarioAdapterTest, DeploymentSetupRoundTripsIncludingCustomTopology) {
    multicell::DeploymentSetup setup;
    setup.profile = traffic::alarm_heavy();
    setup.device_count = 456;
    setup.runs = 4;
    setup.base_seed = 99;
    setup.assignment = multicell::AssignmentPolicy::hotspot;
    setup.topology = multicell::CellTopology::hotspot(6, 1.5);
    setup.topology.cells[2].max_page_records_override = 2;

    const ScenarioSpec spec = from_setup(setup);
    ASSERT_TRUE(spec.is_multicell());
    // The skewed grid is not declaratively expressible; it must travel
    // verbatim through the custom slot.
    ASSERT_FALSE(spec.topology->file_expressible());
    const multicell::DeploymentSetup back = to_deployment_setup(spec);

    EXPECT_EQ(back.profile.name, setup.profile.name);
    EXPECT_EQ(back.device_count, setup.device_count);
    EXPECT_EQ(back.runs, setup.runs);
    EXPECT_EQ(back.base_seed, setup.base_seed);
    EXPECT_EQ(back.assignment, setup.assignment);
    ASSERT_EQ(back.topology.cell_count(), setup.topology.cell_count());
    for (std::size_t c = 0; c < setup.topology.cell_count(); ++c) {
        EXPECT_EQ(back.topology.cells[c].id, setup.topology.cells[c].id);
        EXPECT_EQ(back.topology.cells[c].weight, setup.topology.cells[c].weight);
        EXPECT_EQ(back.topology.cells[c].max_page_records_override,
                  setup.topology.cells[c].max_page_records_override);
    }
}

TEST(ScenarioAdapterTest, UniformDeploymentSetupStaysDeclarative) {
    multicell::DeploymentSetup setup;
    setup.topology = multicell::CellTopology::uniform(16);
    const ScenarioSpec spec = from_setup(setup);
    ASSERT_TRUE(spec.is_multicell());
    EXPECT_TRUE(spec.topology->file_expressible());
    EXPECT_EQ(spec.topology->cells, 16u);
    EXPECT_EQ(to_deployment_setup(spec).topology.cell_count(), 16u);
}

TEST(ScenarioAdapterTest, MulticellSpecRefusesComparisonSetup) {
    EXPECT_THROW((void)to_comparison_setup(small_spec().with_cells(4)),
                 std::invalid_argument);
}

TEST(ScenarioAdapterTest, SingleCellSpecMapsToOneCellDeployment) {
    const multicell::DeploymentSetup setup = to_deployment_setup(small_spec());
    EXPECT_EQ(setup.topology.cell_count(), 1u);
}

}  // namespace
}  // namespace nbmg::scenario
