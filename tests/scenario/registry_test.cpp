// Registry contract: built-ins are present, duplicate registration throws,
// unknown lookups list the available names, and every shipped preset runs
// a 10-device smoke through run_scenario under CTest.
#include "scenario/registry.hpp"

#include <gtest/gtest.h>

#include <string>

#include "scenario/run.hpp"

namespace nbmg::scenario {
namespace {

TEST(RegistryTest, BuiltinMechanismsResolve) {
    Registry& registry = Registry::instance();
    EXPECT_EQ(registry.mechanism("dr-sc"), core::MechanismKind::dr_sc);
    EXPECT_EQ(registry.mechanism("da-sc"), core::MechanismKind::da_sc);
    EXPECT_EQ(registry.mechanism("dr-si"), core::MechanismKind::dr_si);
    EXPECT_EQ(registry.mechanism("unicast"), core::MechanismKind::unicast);
    EXPECT_EQ(registry.mechanism("sc-ptm"), core::MechanismKind::sc_ptm);
    EXPECT_EQ(registry.mechanism_name(core::MechanismKind::dr_sc), "dr-sc");
    EXPECT_FALSE(registry.find_mechanism("DR-SC").has_value());  // exact spelling
}

TEST(RegistryTest, BuiltinProfilesAndPresetsPresent) {
    Registry& registry = Registry::instance();
    EXPECT_TRUE(registry.has_profile("massive_iot_city"));
    EXPECT_TRUE(registry.has_profile("meter_heavy"));
    for (const char* name :
         {"fig6a", "fig6b", "fig7", "ablation-setcover", "ablation-ti",
          "ablation-drx-mix", "ablation-contention", "ablation-scptm",
          "ablation-battery", "quickstart", "firmware-campaign",
          "mechanism-tradeoffs", "citywide", "multicell-scaling"}) {
        EXPECT_TRUE(registry.has_preset(name)) << name;
        EXPECT_NO_THROW(registry.preset(name).validate()) << name;
    }
    // The presets named in the acceptance criteria keep their shapes.
    EXPECT_FALSE(registry.preset("fig6a").is_multicell());
    EXPECT_EQ(registry.preset("citywide").cell_count(), 16u);
}

TEST(RegistryTest, DuplicateRegistrationThrows) {
    Registry& registry = Registry::instance();
    EXPECT_THROW(registry.register_mechanism(
                     {"dr-sc", core::MechanismKind::dr_sc, "dup"}),
                 std::invalid_argument);
    EXPECT_THROW(registry.register_profile(traffic::massive_iot_city()),
                 std::invalid_argument);
    EXPECT_THROW(
        registry.register_preset("fig6a", "dup", ScenarioSpec{}),
        std::invalid_argument);
}

TEST(RegistryTest, UnknownLookupsListAvailableNames) {
    Registry& registry = Registry::instance();
    try {
        (void)registry.preset("figure-8");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("unknown preset 'figure-8'"), std::string::npos)
            << what;
        EXPECT_NE(what.find("fig6a"), std::string::npos) << what;
        EXPECT_NE(what.find("citywide"), std::string::npos) << what;
    }
    try {
        (void)registry.mechanism("carrier-pigeon");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("dr-sc"), std::string::npos);
    }
}

TEST(RegistryTest, NewRegistrationsResolve) {
    Registry& registry = Registry::instance();
    const std::string name = "registry-test-preset";
    if (!registry.has_preset(name)) {
        registry.register_preset(name, "scratch",
                                 ScenarioSpec{}.with_name(name).with_devices(5));
    }
    EXPECT_EQ(registry.preset(name).device_count, 5u);
}

TEST(RegistrySmokeTest, EveryShippedPresetRunsATenDeviceSmoke) {
    for (const Registry::PresetEntry& entry : Registry::instance().presets()) {
        if (entry.name == "registry-test-preset") continue;  // scratch entry
        ScenarioSpec spec = entry.spec;
        spec.with_devices(10).with_runs(1).with_threads(1);
        SCOPED_TRACE(entry.name);
        const ScenarioResult result = run_scenario(spec);
        EXPECT_EQ(result.is_multicell(), spec.is_multicell());
        EXPECT_EQ(result.mechanism_count(), spec.mechanisms.size());
        // Delivery is mandatory: stress shows up as recovery transmissions,
        // never as lost devices.  Fault-injection presets are the exception
        // by design — a device that churns away inside its final paging
        // window has no in-horizon page left, and an outage strands devices
        // until the self-healing pass re-delivers (which zeroes unreceived
        // but stretches the completion tail).
        const bool faulted =
            spec.config.churn.enabled() || spec.cell_down.has_value();
        for (std::size_t m = 0; m < result.mechanism_count(); ++m) {
            if (!faulted) {
                EXPECT_EQ(result.mechanism_stats(m).unreceived_devices.mean(),
                          0.0);
            }
            EXPECT_GE(result.mechanism_stats(m).completion_p99_ms.mean(), 0.0);
        }
        EXPECT_GT(result.unicast_stats().transmissions.mean(), 0.0);
        // The common report surface renders for both engines.
        const stats::Table table = result.summary_table();
        EXPECT_EQ(table.rows(), spec.mechanisms.size() + 1);
        EXPECT_FALSE(result.summary_csv().empty());
    }
}

}  // namespace
}  // namespace nbmg::scenario
