// High-contention strata stress: a 10^5-device single-cell campaign
// split into 8 paging-frame strata and fanned over 8 workers, built to
// put the stratified merge path under ThreadSanitizer (the
// NBMG_SANITIZE=thread leg of ci/verify.sh) while pinning the
// non-negotiable invariant — the merged result is bit-identical to the
// serial strata execution.
//
// DR-SI keeps every device on the paging/RACH hot paths (extension page,
// T322 wake, random access, group reception) and the injected background
// load keeps the per-stratum RACH contended, so the eight concurrent
// event loops churn through every shared-looking structure there is:
// per-stratum cells, the worker pool's handout counter, and the
// index-addressed result slots.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "sim/random.hpp"
#include "tests/support/campaign_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

constexpr std::size_t kStressDevices = 100'000;
constexpr std::size_t kStressThreads = 8;

TEST(StrataStressTest, HundredThousandDevicesBitIdenticalToSerial) {
    sim::RandomStream pop_rng{4242};
    const std::vector<nbiot::UeSpec> specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), kStressDevices,
                                     pop_rng));

    CampaignConfig config;
    config.strata = 8;
    config.background_ra_per_second = 20.0;
    config.page_miss_prob = 0.02;

    const auto mechanism = make_mechanism(MechanismKind::dr_si);
    const CampaignResult serial =
        plan_and_run(*mechanism, specs, config, 64 * 1024, 1234, 1);
    const CampaignResult fanned =
        plan_and_run(*mechanism, specs, config, 64 * 1024, 1234, kStressThreads);

    test_support::expect_campaign_results_equal(fanned, serial);
    ASSERT_EQ(serial.devices.size(), kStressDevices);
    // The campaign must have actually exercised the hot paths: nearly the
    // whole fleet served, and real RACH traffic on every stratum.
    EXPECT_GT(serial.received_count(), kStressDevices * 9 / 10);
    EXPECT_GT(serial.rach_attempts, static_cast<std::uint64_t>(kStressDevices));
}

}  // namespace
}  // namespace nbmg::core
