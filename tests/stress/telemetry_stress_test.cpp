// Telemetry merge under contention: the TSan-leg companion to
// sweep_stress_test for the new observability layer.
//
// A coordinated 16-cell deployment with trace+metrics on fans
// runs x cells campaign tasks over 8 workers; every task writes its own
// pre-allocated Collector slot (plus per-stratum child sinks absorbed in
// stratum order).  This pins the subsystem's two contracts at once:
// parallel slot writes are race-free (TSan watches the interleavings)
// and every exported artifact — trace JSONL, metrics CSV, Chrome
// timeline — is byte-identical to the serial execution (the EXPECTs
// watch the bits).
#include <gtest/gtest.h>

#include <cstddef>

#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "tests/support/deployment_equal.hpp"

namespace nbmg {
namespace {

constexpr std::size_t kStressThreads = 8;

/// citywide-staggered scaled to stress size, telemetry fully on: the
/// 16-cell topology supplies the concurrent (run, cell) slot writes, the
/// stagger policy exercises the city-level backhaul sink too.
scenario::ScenarioSpec stress_spec(std::size_t threads, std::size_t strata) {
    scenario::ScenarioSpec spec =
        scenario::Registry::instance().preset("citywide-staggered");
    spec.with_devices(320)
        .with_runs(2)
        .with_threads(threads)
        .with_strata(strata)
        .with_telemetry_modes(true, true);
    return spec;
}

TEST(TelemetryStressTest, EightThreadArtifactsBitIdenticalToSerial) {
    for (const std::size_t strata : {std::size_t{1}, std::size_t{4}}) {
        const scenario::ScenarioResult serial =
            scenario::run_scenario(stress_spec(1, strata));
        const scenario::ScenarioResult fanned =
            scenario::run_scenario(stress_spec(kStressThreads, strata));
        ASSERT_TRUE(serial.telemetry.has_value());
        ASSERT_TRUE(fanned.telemetry.has_value());
        EXPECT_EQ(serial.telemetry->trace_jsonl, fanned.telemetry->trace_jsonl)
            << "strata=" << strata;
        ASSERT_TRUE(serial.telemetry->metrics && fanned.telemetry->metrics);
        EXPECT_EQ(serial.telemetry->metrics->to_csv(),
                  fanned.telemetry->metrics->to_csv())
            << "strata=" << strata;
        EXPECT_EQ(serial.telemetry->timeline_json,
                  fanned.telemetry->timeline_json)
            << "strata=" << strata;
        // Telemetry on or off, fanned or serial: the simulation results
        // themselves stay bit-identical.
        test_support::expect_deployment_results_equal(fanned.deployment(),
                                                      serial.deployment());
    }
}

}  // namespace
}  // namespace nbmg
