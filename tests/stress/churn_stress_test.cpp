// Churn-under-contention stress: a large single-cell campaign with
// aggressive seeded churn split into 8 paging-frame strata and fanned
// over 8 workers, built to put the fault-injection paths (per-device
// leave/rejoin chains, cancel-on-departure, re-attach accounting, the
// redelivery ledger) under ThreadSanitizer alongside the stratified
// merge — while pinning the invariant that the fanned execution is
// bit-identical to the serial one, fault draws included.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "sim/random.hpp"
#include "tests/support/campaign_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

constexpr std::size_t kStressDevices = 40'000;
constexpr std::size_t kStressThreads = 8;

TEST(ChurnStressTest, ChurnedFleetBitIdenticalToSerial) {
    sim::RandomStream pop_rng{777};
    const std::vector<nbiot::UeSpec> specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), kStressDevices,
                                     pop_rng));

    CampaignConfig config;
    config.strata = 8;
    config.background_ra_per_second = 10.0;
    config.page_miss_prob = 0.02;
    config.churn.leave_rate = 30.0;  // departures all campaign long
    config.churn.rejoin_ms = 120'000;

    const auto mechanism = make_mechanism(MechanismKind::da_sc);
    const CampaignResult serial =
        plan_and_run(*mechanism, specs, config, 64 * 1024, 9876, 1);
    const CampaignResult fanned =
        plan_and_run(*mechanism, specs, config, 64 * 1024, 9876, kStressThreads);

    test_support::expect_campaign_results_equal(fanned, serial);
    ASSERT_EQ(serial.devices.size(), kStressDevices);
    // The fault process must have genuinely stressed the campaign: a
    // large share of the fleet churned at least once, and some devices
    // missed their shared delivery and were re-served.
    EXPECT_GT(serial.churn_leaves, kStressDevices / 4);
    EXPECT_GT(serial.redelivery_bytes, 0);
    // At 50% availability most eDRX devices never survive to a paging
    // occasion — a large completion tail is the point of this workload.
    EXPECT_GT(serial.received_count(), kStressDevices / 8);
}

}  // namespace
}  // namespace nbmg::core
