// High-contention sweep stress: purpose-built to exercise the worker
// pool under ThreadSanitizer (the NBMG_SANITIZE=thread leg of
// ci/verify.sh) and to pin the repo's one non-negotiable invariant while
// doing so — campaigns are bit-identical at any --threads.
//
// The citywide presets are the heaviest real workloads: 16 cells x runs
// (run, cell) event loops fanned over 8 workers, per-cell RNG streams,
// and the in-order Summary::merge reduction.  Scaled-down device counts
// keep the suite CTest-fast unsanitized (~seconds) while every pool
// hand-off, slot write and reduction edge still executes; TSan watches
// the interleavings, the EXPECTs watch the bits.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/sweep.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"
#include "tests/support/deployment_equal.hpp"

namespace nbmg {
namespace {

constexpr std::size_t kStressThreads = 8;

/// Keeps the busy-wait loop below alive without volatile arithmetic.
inline void benchmark_do_not_optimize(std::uint64_t& value) {
    asm volatile("" : "+r"(value));
}

/// Scales a citywide preset down to stress-test size: full 16-cell
/// topology (the contention comes from many concurrent (run, cell)
/// cells, not from device count) with a small per-cell population.
scenario::ScenarioSpec stress_spec(const char* preset, std::size_t threads) {
    scenario::ScenarioSpec spec = scenario::Registry::instance().preset(preset);
    spec.with_devices(320).with_runs(3).with_threads(threads);
    return spec;
}

class CitywidePresetStressTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CitywidePresetStressTest, EightThreadsBitIdenticalToSerial) {
    const scenario::ScenarioResult serial =
        scenario::run_scenario(stress_spec(GetParam(), 1));
    const scenario::ScenarioResult fanned =
        scenario::run_scenario(stress_spec(GetParam(), kStressThreads));
    test_support::expect_deployment_results_equal(fanned.deployment(),
                                                  serial.deployment());
    ASSERT_EQ(fanned.is_coordinated(), serial.is_coordinated());
}

INSTANTIATE_TEST_SUITE_P(CitywidePresets, CitywidePresetStressTest,
                         ::testing::Values("citywide", "citywide-staggered",
                                           "citywide-backhaul"),
                         [](const auto& info) {
                             std::string name = info.param;
                             for (char& c : name) {
                                 if (c == '-') c = '_';
                             }
                             return name;
                         });

// Pool-level hammering: thousands of near-empty tasks maximize handout
// contention on the atomic work counter and the join path — the exact
// code TSan must see clean before the paging-strata split lands.
TEST(WorkerPoolStressTest, TinyTaskFloodDeterministicAndComplete) {
    constexpr std::size_t kTasks = 20'000;
    for (int round = 0; round < 3; ++round) {
        std::atomic<std::uint64_t> touched{0};
        const std::vector<std::uint64_t> out = core::sweep_indexed(
            kTasks, kStressThreads, [&](std::size_t i) {
                touched.fetch_add(1, std::memory_order_relaxed);
                return static_cast<std::uint64_t>(i) * 2654435761u;
            });
        ASSERT_EQ(touched.load(), kTasks);
        ASSERT_EQ(out.size(), kTasks);
        for (std::size_t i = 0; i < kTasks; ++i) {
            ASSERT_EQ(out[i], static_cast<std::uint64_t>(i) * 2654435761u);
        }
    }
}

TEST(WorkerPoolStressTest, UnevenTasksReduceInIndexOrder) {
    // Tasks with wildly uneven cost finish out of order across workers;
    // the reduction below must still see slots in index order.  A
    // non-commutative fold (hash chaining) catches any reordering.
    constexpr std::size_t kTasks = 512;
    auto chain = [](std::uint64_t acc, std::uint64_t v) {
        acc ^= v + 0x9e3779b97f4a7c15ull + (acc << 6) + (acc >> 2);
        return acc;
    };
    std::uint64_t expected = 0;
    for (std::size_t i = 0; i < kTasks; ++i) {
        expected = chain(expected, i * i);
    }
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3},
                                      kStressThreads}) {
        const std::vector<std::uint64_t> out =
            core::sweep_indexed(kTasks, threads, [](std::size_t i) {
                // Spin proportional to a sawtooth so neighbors differ.
                std::uint64_t sink = 0;
                for (std::size_t k = 0; k < (i % 97) * 50; ++k) {
                    sink = sink * 6364136223846793005ull + k;
                }
                benchmark_do_not_optimize(sink);
                return static_cast<std::uint64_t>(i) * i;
            });
        const std::uint64_t folded =
            std::accumulate(out.begin(), out.end(), std::uint64_t{0}, chain);
        ASSERT_EQ(folded, expected) << "threads=" << threads;
    }
}

}  // namespace
}  // namespace nbmg
