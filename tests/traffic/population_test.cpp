#include "traffic/population.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "traffic/firmware.hpp"

namespace nbmg::traffic {
namespace {

TEST(ProfileTest, BuiltinProfilesAreValid) {
    for (const auto& p : builtin_profiles()) {
        EXPECT_TRUE(p.valid()) << p.name;
        EXPECT_FALSE(p.classes.empty()) << p.name;
    }
}

TEST(ProfileTest, InvalidProfilesRejected) {
    PopulationProfile p;
    EXPECT_FALSE(p.valid());  // no classes
    p = massive_iot_city();
    p.batch_mean = 0.5;
    EXPECT_FALSE(p.valid());
    p = massive_iot_city();
    p.classes[0].share = 0.0;
    EXPECT_FALSE(p.valid());
    p = massive_iot_city();
    p.classes[0].cycle_weights.clear();
    EXPECT_FALSE(p.valid());
}

TEST(GeneratePopulationTest, ProducesRequestedCountWithDenseIds) {
    sim::RandomStream rng{1};
    const auto devices = generate_population(massive_iot_city(), 250, rng);
    ASSERT_EQ(devices.size(), 250u);
    for (std::size_t i = 0; i < devices.size(); ++i) {
        EXPECT_EQ(devices[i].spec.device.value, i);
    }
}

TEST(GeneratePopulationTest, ImsisAreUniqueFifteenDigit) {
    sim::RandomStream rng{2};
    const auto devices = generate_population(massive_iot_city(), 1'000, rng);
    std::set<std::uint64_t> imsis;
    for (const auto& d : devices) {
        EXPECT_GE(d.spec.imsi.value, 100'000'000'000'000ULL);
        EXPECT_LE(d.spec.imsi.value, 999'999'999'999'999ULL);
        EXPECT_TRUE(imsis.insert(d.spec.imsi.value).second);
    }
}

TEST(GeneratePopulationTest, ReproducibleFromSeed) {
    sim::RandomStream a{7};
    sim::RandomStream b{7};
    const auto da = generate_population(massive_iot_city(), 100, a);
    const auto db = generate_population(massive_iot_city(), 100, b);
    ASSERT_EQ(da.size(), db.size());
    for (std::size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].spec.imsi, db[i].spec.imsi);
        EXPECT_EQ(da[i].spec.cycle, db[i].spec.cycle);
        EXPECT_EQ(da[i].class_index, db[i].class_index);
    }
}

TEST(GeneratePopulationTest, DifferentSeedsDiffer) {
    sim::RandomStream a{7};
    sim::RandomStream b{8};
    const auto da = generate_population(massive_iot_city(), 100, a);
    const auto db = generate_population(massive_iot_city(), 100, b);
    bool any_diff = false;
    for (std::size_t i = 0; i < da.size(); ++i) {
        any_diff |= da[i].spec.imsi != db[i].spec.imsi;
    }
    EXPECT_TRUE(any_diff);
}

TEST(GeneratePopulationTest, ClassSharesRoughlyRespected) {
    sim::RandomStream rng{3};
    const auto profile = massive_iot_city();
    const auto devices = generate_population(profile, 20'000, rng);
    std::map<std::size_t, std::size_t> counts;
    for (const auto& d : devices) ++counts[d.class_index];
    double total_share = 0.0;
    for (const auto& c : profile.classes) total_share += c.share;
    for (std::size_t c = 0; c < profile.classes.size(); ++c) {
        const double expected = profile.classes[c].share / total_share;
        const double actual =
            static_cast<double>(counts[c]) / static_cast<double>(devices.size());
        EXPECT_NEAR(actual, expected, 0.05) << profile.classes[c].name;
    }
}

TEST(GeneratePopulationTest, CyclesComeFromClassChoices) {
    sim::RandomStream rng{4};
    const auto profile = massive_iot_city();
    const auto devices = generate_population(profile, 2'000, rng);
    for (const auto& d : devices) {
        const auto& cls = profile.classes[d.class_index];
        bool found = false;
        for (const auto& [cycle, w] : cls.cycle_weights) {
            found |= cycle == d.spec.cycle;
        }
        EXPECT_TRUE(found) << "cycle not in class " << cls.name;
    }
}

TEST(GeneratePopulationTest, BatchingProducesConsecutiveImsiRuns) {
    sim::RandomStream rng{5};
    PopulationProfile profile = massive_iot_city();
    profile.batch_mean = 4.0;
    const auto devices = generate_population(profile, 2'000, rng);
    std::size_t consecutive_pairs = 0;
    for (std::size_t i = 1; i < devices.size(); ++i) {
        if (devices[i].spec.imsi.value == devices[i - 1].spec.imsi.value + 1) {
            ++consecutive_pairs;
            EXPECT_EQ(devices[i].spec.cycle, devices[i - 1].spec.cycle)
                << "batch members must share the DRX cycle";
        }
    }
    // Mean batch 4 -> ~3/4 of adjacent pairs are within a batch.
    EXPECT_GT(consecutive_pairs, devices.size() / 2);
}

TEST(GeneratePopulationTest, BatchMeanOneGivesIndependentImsis) {
    sim::RandomStream rng{6};
    PopulationProfile profile = massive_iot_city();
    profile.batch_mean = 1.0;
    const auto devices = generate_population(profile, 2'000, rng);
    std::size_t consecutive_pairs = 0;
    for (std::size_t i = 1; i < devices.size(); ++i) {
        if (devices[i].spec.imsi.value == devices[i - 1].spec.imsi.value + 1) {
            ++consecutive_pairs;
        }
    }
    EXPECT_LT(consecutive_pairs, 5u);
}

TEST(GeneratePopulationTest, InvalidProfileThrows) {
    sim::RandomStream rng{1};
    PopulationProfile bad;
    EXPECT_THROW((void)generate_population(bad, 10, rng), std::invalid_argument);
}

TEST(MaxCycleTest, FindsLongest) {
    sim::RandomStream rng{1};
    const auto devices = generate_population(massive_iot_city(), 500, rng);
    const auto longest = max_cycle(devices);
    for (const auto& d : devices) EXPECT_LE(d.spec.cycle, longest);
}

TEST(MaxCycleTest, EmptyThrows) {
    EXPECT_THROW((void)max_cycle({}), std::invalid_argument);
}

TEST(ToSpecsTest, PreservesOrderAndFields) {
    sim::RandomStream rng{1};
    const auto devices = generate_population(massive_iot_city(), 50, rng);
    const auto specs = to_specs(devices);
    ASSERT_EQ(specs.size(), devices.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        EXPECT_EQ(specs[i].imsi, devices[i].spec.imsi);
        EXPECT_EQ(specs[i].cycle, devices[i].spec.cycle);
    }
}

TEST(MixedCoverageTest, ProducesNonCe0Devices) {
    sim::RandomStream rng{9};
    const auto devices = generate_population(mixed_coverage_city(), 2'000, rng);
    std::size_t deep = 0;
    for (const auto& d : devices) {
        deep += d.spec.ce_level != nbiot::CeLevel::ce0 ? 1 : 0;
    }
    EXPECT_GT(deep, 100u);  // ~15% expected
    EXPECT_LT(deep, 600u);
}

TEST(FirmwareTest, PaperPayloadSizes) {
    const auto payloads = paper_payloads();
    ASSERT_EQ(payloads.size(), 3u);
    EXPECT_EQ(payloads[0].bytes, 102'400);
    EXPECT_EQ(payloads[1].bytes, 1'048'576);
    EXPECT_EQ(payloads[2].bytes, 10'485'760);
    EXPECT_NEAR(payloads[2].megabytes(), 10.0, 1e-9);
}

}  // namespace
}  // namespace nbmg::traffic
