// Fixture: malformed / stale pragmas the lint must itself reject.
// Expected findings: [pragma] x3 — unknown category, missing reason,
// stale pragma with no matching finding nearby.
#include <cstdint>

// nbmg-lint: allow(race-condition) not a real category
std::uint64_t fixture_unknown_category = 0;

// nbmg-lint: allow(unordered-iter)
std::uint64_t fixture_missing_reason = 0;

// nbmg-lint: allow(wall-clock) stale: nothing wall-clock-ish below
std::uint64_t fixture_stale = 0;
