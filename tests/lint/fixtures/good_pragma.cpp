// Fixture: every pragma form the lint must honor — same-line and
// line-above, one per category.  Expected: clean, exit 0.
#include <chrono>
#include <cstdint>
#include <map>
// nbmg-lint: allow(unordered-iter) fixture: include for lookup-only set
#include <unordered_set>

struct FixtureAllowed {
    // nbmg-lint: allow(uninit-pod) fixture: written before every read
    std::uint64_t scratch;
    double ready = 0.0;
};

int fixture_allowed(const int* key) {
    // nbmg-lint: allow(unordered-iter) fixture: contains/insert only
    std::unordered_set<std::uint64_t> seen;
    seen.insert(7);
    std::map<const int*, int> by_addr;  // nbmg-lint: allow(pointer-key) fixture: count-only, never iterated
    by_addr[key] = 1;
    const auto t0 = std::chrono::steady_clock::now();  // nbmg-lint: allow(wall-clock) fixture: self-timing harness
    return static_cast<int>(seen.size() + by_addr.size()) +
           static_cast<int>(t0.time_since_epoch().count() % 2);
}
