// Fixture: uninitialized arithmetic struct members the lint must flag.
// Expected findings: [uninit-pod] on the three bare members; the
// initialized ones and the non-arithmetic member must pass.
#include <cstdint>
#include <vector>

struct FixtureAggregates {
    std::uint64_t count;            // finding: no initializer
    double mean;                    // finding: no initializer
    int attempts;                   // finding: no initializer
    double initialized = 0.0;       // ok
    std::uint64_t braced{0};        // ok
    std::vector<double> samples;    // ok: not arithmetic
};

int fixture_uninit_pod() { return static_cast<int>(sizeof(FixtureAggregates)); }
