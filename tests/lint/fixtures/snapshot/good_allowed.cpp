// Fixture: audited snapshot/ exceptions — size_t and sizeof under
// allow(snapshot) pragmas, line-above and same-line forms.  Expected:
// clean, exit 0.
#include <cstddef>
#include <cstdint>

unsigned long fixture_allowed_snapshot() {
    // nbmg-lint: allow(snapshot) fixture: host-side scratch, never serialized
    std::size_t scratch = 4;
    scratch += sizeof(std::uint32_t);  // nbmg-lint: allow(snapshot) fixture: compile-time width check
    return scratch;
}
