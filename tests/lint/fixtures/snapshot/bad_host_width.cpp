// Fixture: host-width serialization inside snapshot/ — a size_t length
// and a sizeof-derived write size.  Expected: a [snapshot] finding on
// each (excusable in principle; good_allowed.cpp shows the audited form).
#include <cstddef>
#include <cstdint>

unsigned long fixture_host_width(const std::uint64_t* block) {
    std::size_t wire_len = 8;
    wire_len += sizeof(*block);
    return wire_len;
}
