// Fixture: the raw-struct-dump idiom inside snapshot/ — a
// reinterpret_cast of a struct to bytes.  Expected: an un-excusable
// [snapshot] finding; the allow pragma below must NOT silence it and
// is reported stale on top.
#include <cstdint>

struct FixtureDump {
    std::uint64_t a = 0;
    double b = 0.0;
};

const char* fixture_dump(const FixtureDump& dump) {
    // nbmg-lint: allow(snapshot) fixture: must NOT excuse this
    return reinterpret_cast<const char*>(&dump);
}
