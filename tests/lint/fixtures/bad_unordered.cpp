// Fixture: unannotated unordered containers the lint must flag.
// Expected findings: [unordered-iter] on the include and both declarations.
#include <cstdint>
#include <unordered_map>

int fixture_unordered() {
    std::unordered_map<int, int> counts;
    counts[3] = 1;
    int total = 0;
    for (const auto& [k, v] : counts) total += k * v;
    return total;
}
