// Fixture: a host clock inside telemetry/ but outside the self-profiler
// TU.  Expected: an un-excusable [telemetry] finding — the allow
// pragma below must NOT silence it and is reported stale on top.
#include <chrono>

long fixture_telemetry_clock() {
    // nbmg-lint: allow(wall-clock) fixture: must NOT excuse this
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
