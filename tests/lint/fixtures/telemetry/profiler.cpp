// Fixture: the self-profiler TU — the one audited clock read in the
// library; the allow(wall-clock) pragma excuses it exactly as in
// src/telemetry/profiler.cpp.  Expected: clean, exit 0.
#include <chrono>

long fixture_profiler_now_us() {
    // nbmg-lint: allow(wall-clock) fixture: self-profiler TU, bench shells only
    return std::chrono::steady_clock::now().time_since_epoch().count();
}
