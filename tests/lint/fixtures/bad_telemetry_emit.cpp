// Fixture: NBMG_TELEMETRY_EMIT payloads the telemetry rule must catch.
// Expected findings: [telemetry] on the marked call lines; the audited
// call under allow(telemetry) stays clean.
#include <cstdint>

void fixture_emit(int* sink, long value) {
    NBMG_TELEMETRY_EMIT(sink, kRachAttempt, 0,
                        reinterpret_cast<std::intptr_t>(&value), 0);
    NBMG_TELEMETRY_EMIT(sink, kRachAttempt, 0, 1, &value);
    // nbmg-lint: allow(telemetry) fixture: audited — the uintptr_t holds a stable index, not an address
    NBMG_TELEMETRY_EMIT(sink, kRachAttempt, 0,
                        static_cast<std::uintptr_t>(7), 0);
}
