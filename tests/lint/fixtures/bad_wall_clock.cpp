// Fixture: every wall-clock source the determinism lint must catch.
// Expected findings: [wall-clock] on each marked line.
#include <chrono>
#include <ctime>

long fixture_wall_clock() {
    auto a = std::chrono::system_clock::now();           // finding: system_clock
    auto b = std::chrono::steady_clock::now();           // finding: steady_clock outside bench/
    auto c = std::chrono::high_resolution_clock::now();  // finding: high_resolution_clock
    std::time_t d = time(nullptr);                       // finding: time()
    return a.time_since_epoch().count() + b.time_since_epoch().count() +
           c.time_since_epoch().count() + static_cast<long>(d);
}
