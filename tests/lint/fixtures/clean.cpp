// Fixture: idiomatic nbmg code the lint must pass untouched — ordered
// containers, initialized aggregates, banned words in comments and
// strings only.  Expected: clean, exit 0.
//
// Mentioning std::rand, time(NULL) or std::unordered_map in a comment is
// fine; so is the string below.
#include <cstdint>
#include <map>
#include <string>
#include <vector>

struct CleanAggregates {
    std::uint64_t count = 0;
    double mean = 0.0;
    std::vector<double> samples;
};

inline const char* clean_note() {
    return "documentation may say time(nullptr) and std::random_device";
}

inline int clean_sum(const std::map<int, int>& by_key) {
    int total = 0;
    for (const auto& [k, v] : by_key) total += k + v;
    return total;
}

// size_t and sizeof are only banned under snapshot/ — ordinary code may
// use both freely.
inline std::size_t clean_span(const std::vector<double>& samples) {
    return samples.size() * sizeof(double);
}
