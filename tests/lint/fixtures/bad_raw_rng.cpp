// Fixture: raw RNG primitives outside sim/random.* the lint must catch.
// Expected findings: [raw-rng] on each marked line.
#include <cstdlib>
#include <random>

int fixture_raw_rng() {
    std::random_device rd;               // finding: entropy source
    std::mt19937_64 engine(rd());        // finding: engine outside sim/random.*
    std::srand(42);                      // NOLINT — still a finding: srand
    int x = std::rand();                 // finding: std::rand
    return x + static_cast<int>(engine());
}
