// Fixture: pointer-keyed ordered containers the lint must flag.
// Expected findings: [pointer-key] on both declarations.
#include <map>
#include <set>
#include <string>

struct Device;

int fixture_pointer_key(Device* d) {
    std::map<Device*, int> retries;
    std::set<const std::string*> names;
    retries[d] = 1;
    return static_cast<int>(retries.size() + names.size());
}
