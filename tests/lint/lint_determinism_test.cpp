// Exit-code tests for ci/lint_determinism.py: each banned pattern in
// tests/lint/fixtures/ is actually caught (exit 1 with a file:line
// diagnostic of the right category), each pragma form is honored, the
// pragma verifier rejects malformed/stale pragmas, and the real src/
// tree is clean (exit 0) — so the lint can gate CI without crying wolf.
//
// Paths come in through compile definitions (NBMG_LINT_SCRIPT,
// NBMG_LINT_FIXTURE_DIR, NBMG_REPO_ROOT), so the suite runs from any
// build directory.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

struct LintRun {
    int exit_code = -1;
    std::string output;  // stdout + stderr, interleaved
};

/// Runs the lint over `args` (already-quoted tail of the command line)
/// and captures exit code + combined output via popen.
LintRun run_lint(const std::string& args) {
    const std::string command =
        std::string("python3 '") + NBMG_LINT_SCRIPT + "' " + args + " 2>&1";
    FILE* pipe = popen(command.c_str(), "r");
    if (pipe == nullptr) throw std::runtime_error("popen failed: " + command);
    LintRun run;
    std::array<char, 4096> buffer{};
    while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe)) {
        run.output += buffer.data();
    }
    const int status = pclose(pipe);
    run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return run;
}

std::string fixture(const std::string& name) {
    return std::string("'") + NBMG_LINT_FIXTURE_DIR + "/" + name + "'";
}

/// A finding line looks like "<path>:<line>: [<category>] <message>".
void expect_finding(const LintRun& run, const std::string& file, int line,
                    const std::string& category) {
    const std::string needle =
        file + ":" + std::to_string(line) + ": [" + category + "]";
    EXPECT_NE(run.output.find(needle), std::string::npos)
        << "expected diagnostic '" << needle << "' in:\n"
        << run.output;
}

TEST(LintDeterminismTest, WallClockPatternsCaught) {
    const LintRun run = run_lint(fixture("bad_wall_clock.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_wall_clock.cpp", 7, "wall-clock");   // system_clock
    expect_finding(run, "bad_wall_clock.cpp", 8, "wall-clock");   // steady_clock
    expect_finding(run, "bad_wall_clock.cpp", 9, "wall-clock");   // high_resolution
    expect_finding(run, "bad_wall_clock.cpp", 10, "wall-clock");  // time(nullptr)
}

TEST(LintDeterminismTest, RawRngPatternsCaught) {
    const LintRun run = run_lint(fixture("bad_raw_rng.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_raw_rng.cpp", 7, "raw-rng");   // random_device
    expect_finding(run, "bad_raw_rng.cpp", 8, "raw-rng");   // mt19937_64
    expect_finding(run, "bad_raw_rng.cpp", 10, "raw-rng");  // std::rand
}

TEST(LintDeterminismTest, UnorderedContainersCaught) {
    const LintRun run = run_lint(fixture("bad_unordered.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_unordered.cpp", 4, "unordered-iter");  // include
    expect_finding(run, "bad_unordered.cpp", 7, "unordered-iter");  // decl
}

TEST(LintDeterminismTest, PointerKeyedComparatorsCaught) {
    const LintRun run = run_lint(fixture("bad_pointer_key.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_pointer_key.cpp", 10, "pointer-key");
    expect_finding(run, "bad_pointer_key.cpp", 11, "pointer-key");
}

TEST(LintDeterminismTest, UninitializedPodMembersCaught) {
    const LintRun run = run_lint(fixture("bad_uninit_pod.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_uninit_pod.cpp", 8, "uninit-pod");
    expect_finding(run, "bad_uninit_pod.cpp", 9, "uninit-pod");
    expect_finding(run, "bad_uninit_pod.cpp", 10, "uninit-pod");
    // The initialized members and the vector member must NOT be flagged.
    EXPECT_EQ(run.output.find("bad_uninit_pod.cpp:11:"), std::string::npos);
    EXPECT_EQ(run.output.find("bad_uninit_pod.cpp:12:"), std::string::npos);
    EXPECT_EQ(run.output.find("bad_uninit_pod.cpp:13:"), std::string::npos);
}

TEST(LintDeterminismTest, EveryPragmaFormHonored) {
    const LintRun run = run_lint(fixture("good_pragma.cpp"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintDeterminismTest, MalformedAndStalePragmasRejected) {
    const LintRun run = run_lint(fixture("bad_pragma.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_pragma.cpp", 6, "pragma");   // unknown category
    expect_finding(run, "bad_pragma.cpp", 9, "pragma");   // missing reason
    expect_finding(run, "bad_pragma.cpp", 12, "pragma");  // stale
}

TEST(LintDeterminismTest, TelemetryPointerPayloadsCaught) {
    const LintRun run = run_lint(fixture("bad_telemetry_emit.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_telemetry_emit.cpp", 7, "telemetry");  // reinterpret_cast
    expect_finding(run, "bad_telemetry_emit.cpp", 9, "telemetry");  // &-payload
    // The audited call under allow(telemetry) must NOT be flagged.
    EXPECT_EQ(run.output.find("bad_telemetry_emit.cpp:11:"), std::string::npos)
        << run.output;
}

TEST(LintDeterminismTest, HostClockInTelemetryDirIsUnexcusable) {
    // The clock rule for telemetry/ bypasses the pragma machinery entirely:
    // the allow(wall-clock) in the fixture is ignored AND reported stale.
    const LintRun run = run_lint(fixture("telemetry/bad_clock_in_telemetry.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_clock_in_telemetry.cpp", 8, "telemetry");
    expect_finding(run, "bad_clock_in_telemetry.cpp", 7, "pragma");
}

TEST(LintDeterminismTest, ProfilerTuClockStaysExcusable) {
    // telemetry/profiler.cpp is the one TU where a pragma'd steady_clock
    // read is legitimate (opt-in wall-clock self-profiling, bench shells).
    const LintRun run = run_lint(fixture("telemetry/profiler.cpp"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintDeterminismTest, SnapshotStructDumpIsUnexcusable) {
    // reinterpret_cast in snapshot/ bypasses the pragma machinery: the
    // allow(snapshot) in the fixture is ignored AND reported stale.
    const LintRun run = run_lint(fixture("snapshot/bad_struct_dump.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_struct_dump.cpp", 14, "snapshot");
    expect_finding(run, "bad_struct_dump.cpp", 13, "pragma");
}

TEST(LintDeterminismTest, SnapshotHostWidthWritesCaught) {
    const LintRun run = run_lint(fixture("snapshot/bad_host_width.cpp"));
    EXPECT_EQ(run.exit_code, 1) << run.output;
    expect_finding(run, "bad_host_width.cpp", 8, "snapshot");  // size_t
    expect_finding(run, "bad_host_width.cpp", 9, "snapshot");  // sizeof
}

TEST(LintDeterminismTest, SnapshotPragmaFormsHonored) {
    const LintRun run = run_lint(fixture("snapshot/good_allowed.cpp"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintDeterminismTest, CleanFixturePasses) {
    const LintRun run = run_lint(fixture("clean.cpp"));
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintDeterminismTest, BannedWordsInCommentsAndStringsIgnored) {
    // clean.cpp names every banned primitive in comments and a string
    // literal; the zero exit above proves the stripper works, this pins
    // the absence of any finding line for the file.
    const LintRun run = run_lint(fixture("clean.cpp"));
    EXPECT_EQ(run.output.find("clean.cpp:"), std::string::npos) << run.output;
}

TEST(LintDeterminismTest, RealSourceTreeIsClean) {
    const LintRun run =
        run_lint(std::string("--root '") + NBMG_REPO_ROOT + "'");
    EXPECT_EQ(run.exit_code, 0) << run.output;
}

TEST(LintDeterminismTest, MissingFileIsUsageError) {
    const LintRun run = run_lint(fixture("does_not_exist.cpp"));
    EXPECT_EQ(run.exit_code, 2) << run.output;
}

}  // namespace
