// End-to-end properties across seeds, profiles and configurations: these
// tests assert the paper's qualitative results hold wherever the model is
// exercised, not just at the benchmark operating point.
#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {
namespace {

using nbiot::SimTime;

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, PaperOrderingHoldsAcrossSeeds) {
    const std::uint64_t seed = GetParam();
    sim::RandomStream rng{seed};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), 100, rng));
    const CampaignConfig config;
    const std::int64_t payload = traffic::firmware_100kb().bytes;

    const CampaignResult unicast =
        plan_and_run(UnicastBaseline{}, specs, config, payload, seed);
    const CampaignResult dr_sc =
        plan_and_run(DrScMechanism{}, specs, config, payload, seed);
    const CampaignResult da_sc =
        plan_and_run(DaScMechanism{}, specs, config, payload, seed);
    const CampaignResult dr_si =
        plan_and_run(DrSiMechanism{}, specs, config, payload, seed);

    // Everyone is served, always.
    EXPECT_TRUE(unicast.all_received());
    EXPECT_TRUE(dr_sc.all_received());
    EXPECT_TRUE(da_sc.all_received());
    EXPECT_TRUE(dr_si.all_received());

    // Bandwidth: 1 = DA-SC = DR-SI < DR-SC < unicast = n.
    EXPECT_EQ(da_sc.total_transmissions(), 1u);
    EXPECT_EQ(dr_si.total_transmissions(), 1u);
    EXPECT_LT(dr_sc.total_transmissions(), specs.size());
    EXPECT_GT(dr_sc.total_transmissions(), 1u);

    // Fig 6(a): DR-SC light sleep identical; DR-SI nearly; DA-SC above.
    const RelativeUptime rel_dr_sc = relative_uptime(dr_sc, unicast);
    const RelativeUptime rel_da_sc = relative_uptime(da_sc, unicast);
    const RelativeUptime rel_dr_si = relative_uptime(dr_si, unicast);
    EXPECT_DOUBLE_EQ(rel_dr_sc.light_sleep_increase, 0.0);
    EXPECT_GE(rel_dr_si.light_sleep_increase, 0.0);
    EXPECT_LT(rel_dr_si.light_sleep_increase, 0.10);
    EXPECT_GT(rel_da_sc.light_sleep_increase, rel_dr_si.light_sleep_increase);

    // Fig 6(b): connected-mode ordering.  DA-SC vs DR-SI differs only by
    // the reconfiguration connection (~0.7 s/device), which per-run wait
    // noise can mask at n = 100; the strict DA-SC > DR-SI inequality is
    // asserted on the mean in ConnectedOrderingInExpectation below.
    EXPECT_GT(rel_dr_sc.connected_increase, 0.0);
    EXPECT_GT(rel_dr_si.connected_increase, rel_dr_sc.connected_increase);
    EXPECT_GT(rel_da_sc.connected_increase, rel_dr_si.connected_increase - 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

TEST(ConnectedOrderingInExpectation, DaScLongestOnAverage) {
    ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 200;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = 6;
    setup.base_seed = 1234;
    const ComparisonOutcome outcome = run_comparison(setup);
    double da_sc = 0.0;
    double dr_si = 0.0;
    double dr_sc = 0.0;
    for (const auto& s : outcome.mechanisms) {
        if (s.kind == MechanismKind::da_sc) da_sc = s.connected_increase.mean();
        if (s.kind == MechanismKind::dr_si) dr_si = s.connected_increase.mean();
        if (s.kind == MechanismKind::dr_sc) dr_sc = s.connected_increase.mean();
    }
    EXPECT_GT(dr_sc, 0.0);
    EXPECT_GT(dr_si, dr_sc);
    EXPECT_GT(da_sc, dr_si) << "DA-SC has the longest connected uptime (Fig. 6b)";
}

class ProfileSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ProfileSweepTest, DeliveryAndSingleTransmissionOnEveryProfile) {
    const auto& profile =
        traffic::builtin_profiles()[static_cast<std::size_t>(GetParam())];
    sim::RandomStream rng{42};
    const auto specs =
        traffic::to_specs(traffic::generate_population(profile, 60, rng));
    const CampaignConfig config;
    const std::int64_t payload = traffic::firmware_100kb().bytes;
    const CampaignResult da_sc =
        plan_and_run(DaScMechanism{}, specs, config, payload, 42);
    EXPECT_TRUE(da_sc.all_received()) << profile.name;
    EXPECT_EQ(da_sc.total_transmissions(), 1u) << profile.name;
    const CampaignResult dr_si =
        plan_and_run(DrSiMechanism{}, specs, config, payload, 42);
    EXPECT_TRUE(dr_si.all_received()) << profile.name;
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileSweepTest, ::testing::Range(0, 5));

class TiSweepTest : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(TiSweepTest, LargerWindowsNeedFewerDrScTransmissions) {
    CampaignConfig config;
    config.inactivity_timer = SimTime{GetParam()};
    sim::RandomStream rng{7};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), 150, rng));
    sim::RandomStream plan_rng{1};
    const MulticastPlan plan = DrScMechanism{}.plan(specs, config, plan_rng);
    EXPECT_NO_THROW(validate_plan(plan, specs));
    EXPECT_GE(plan.transmissions.size(), 1u);
    EXPECT_LE(plan.transmissions.size(), specs.size());
}

INSTANTIATE_TEST_SUITE_P(WindowLengths, TiSweepTest,
                         ::testing::Values(10'000, 20'000, 30'000));

TEST(TiMonotonicityTest, TransmissionsDecreaseWithTi) {
    sim::RandomStream rng{11};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), 300, rng));
    std::size_t last = specs.size() + 1;
    for (const std::int64_t ti : {5'000, 10'000, 20'000, 40'000}) {
        CampaignConfig config;
        config.inactivity_timer = SimTime{ti};
        sim::RandomStream plan_rng{1};
        const auto tx = DrScMechanism{}.plan(specs, config, plan_rng).transmissions.size();
        EXPECT_LE(tx, last) << "TI=" << ti;
        last = tx;
    }
}

TEST(ExperimentDriverTest, RunComparisonAggregatesAllMechanisms) {
    ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 50;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = 3;
    const ComparisonOutcome outcome = run_comparison(setup);
    ASSERT_EQ(outcome.mechanisms.size(), 3u);
    for (const auto& s : outcome.mechanisms) {
        EXPECT_EQ(s.transmissions.count(), 3u);
        EXPECT_EQ(s.unreceived_devices.max(), 0.0);
    }
    EXPECT_EQ(outcome.unicast.transmissions.mean(), 50.0);
}

TEST(ExperimentDriverTest, RejectsEmptySetups) {
    ComparisonSetup setup;
    setup.runs = 0;
    EXPECT_THROW((void)run_comparison(setup), std::invalid_argument);
    EXPECT_THROW((void)drsc_transmission_point(traffic::massive_iot_city(), 0,
                                               CampaignConfig{}, 1, 1),
                 std::invalid_argument);
}

TEST(ExperimentDriverTest, TransmissionPointMatchesDirectPlanning) {
    const CampaignConfig config;
    const auto point =
        drsc_transmission_point(traffic::massive_iot_city(), 100, config, 5, 42);
    EXPECT_EQ(point.device_count, 100u);
    EXPECT_EQ(point.transmissions.count(), 5u);
    EXPECT_GT(point.transmissions.mean(), 1.0);
    EXPECT_LT(point.transmissions.mean(), 100.0);
    EXPECT_NEAR(point.transmissions_per_device.mean(),
                point.transmissions.mean() / 100.0, 1e-9);
}

TEST(Fig7ShapeTest, RatioDeclinesWithPopulation) {
    const CampaignConfig config;
    const auto at100 =
        drsc_transmission_point(traffic::massive_iot_city(), 100, config, 10, 42);
    const auto at600 =
        drsc_transmission_point(traffic::massive_iot_city(), 600, config, 10, 42);
    EXPECT_GT(at100.transmissions_per_device.mean(),
              at600.transmissions_per_device.mean());
    // The calibrated operating band of the reproduction (paper: 0.5 -> 0.4).
    EXPECT_NEAR(at100.transmissions_per_device.mean(), 0.52, 0.08);
    EXPECT_NEAR(at600.transmissions_per_device.mean(), 0.41, 0.08);
}

TEST(MixedCoverageTest, DeepCoverageStretchesMulticastAirtime) {
    sim::RandomStream rng{5};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::mixed_coverage_city(), 60, rng));
    const CampaignConfig config;
    const std::int64_t payload = traffic::firmware_100kb().bytes;
    const CampaignResult da_sc =
        plan_and_run(DaScMechanism{}, specs, config, payload, 5);
    EXPECT_TRUE(da_sc.all_received());
    // The shared bearer runs at the deepest member's CE level, so the mean
    // connected uptime far exceeds a CE0-only population's.
    sim::RandomStream rng2{5};
    auto ce0_specs = specs;
    for (auto& d : ce0_specs) d.ce_level = nbiot::CeLevel::ce0;
    const CampaignResult ce0 =
        plan_and_run(DaScMechanism{}, ce0_specs, config, payload, 5);
    EXPECT_GT(mean_connected_ms(da_sc), 2.0 * mean_connected_ms(ce0));
}

TEST(HorizonTest, RecommendedHorizonCoversEveryPlan) {
    sim::RandomStream rng{31};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), 80, rng));
    const CampaignConfig config;
    const std::int64_t payload = traffic::firmware_100kb().bytes;
    const SimTime horizon = recommended_horizon(specs, config, payload);
    for (const MechanismKind kind :
         {MechanismKind::dr_sc, MechanismKind::da_sc, MechanismKind::dr_si}) {
        sim::RandomStream plan_rng{1};
        const MulticastPlan plan = make_mechanism(kind)->plan(specs, config, plan_rng);
        for (const auto& tx : plan.transmissions) {
            EXPECT_LT(tx.start, horizon) << to_string(kind);
        }
    }
}

}  // namespace
}  // namespace nbmg::core
