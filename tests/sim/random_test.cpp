#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace nbmg::sim {
namespace {

TEST(DeriveSeedTest, DeterministicForSameInputs) {
    EXPECT_EQ(derive_seed(1, "a", 0), derive_seed(1, "a", 0));
    EXPECT_EQ(derive_seed(99, "population", 7), derive_seed(99, "population", 7));
}

TEST(DeriveSeedTest, DiffersByRoot) {
    EXPECT_NE(derive_seed(1, "a"), derive_seed(2, "a"));
}

TEST(DeriveSeedTest, DiffersByLabel) {
    EXPECT_NE(derive_seed(1, "a"), derive_seed(1, "b"));
}

TEST(DeriveSeedTest, DiffersByIndex) {
    EXPECT_NE(derive_seed(1, "a", 0), derive_seed(1, "a", 1));
}

TEST(DeriveSeedTest, SpreadsAcrossIndexSequence) {
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1000; ++i) seeds.insert(derive_seed(42, "run", i));
    EXPECT_EQ(seeds.size(), 1000u);
}

TEST(RandomStreamTest, UniformIntWithinBounds) {
    RandomStream rng{1};
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-5, 17);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 17);
    }
}

TEST(RandomStreamTest, UniformIntSinglePoint) {
    RandomStream rng{1};
    EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(RandomStreamTest, UniformIntInvalidRangeThrows) {
    RandomStream rng{1};
    EXPECT_THROW((void)rng.uniform_int(3, 2), std::invalid_argument);
}

TEST(RandomStreamTest, UniformRealWithinBounds) {
    RandomStream rng{2};
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform_real(0.25, 0.75);
        EXPECT_GE(v, 0.25);
        EXPECT_LT(v, 0.75);
    }
}

TEST(RandomStreamTest, BernoulliEdgeCases) {
    RandomStream rng{3};
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_FALSE(rng.bernoulli(-1.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_TRUE(rng.bernoulli(2.0));
}

TEST(RandomStreamTest, BernoulliRateRoughlyMatchesP) {
    RandomStream rng{4};
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / 10000.0, 0.3, 0.03);
}

TEST(RandomStreamTest, ExponentialMeanRoughlyMatches) {
    RandomStream rng{5};
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += rng.exponential(50.0);
    EXPECT_NEAR(sum / 20000.0, 50.0, 2.5);
}

TEST(RandomStreamTest, ExponentialRejectsNonPositiveMean) {
    RandomStream rng{5};
    EXPECT_THROW((void)rng.exponential(0.0), std::invalid_argument);
    EXPECT_THROW((void)rng.exponential(-1.0), std::invalid_argument);
}

TEST(RandomStreamTest, GeometricMeanRoughlyMatches) {
    RandomStream rng{6};
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.geometric(0.25));
    // Mean of Geometric(p) counting failures is (1-p)/p = 3.
    EXPECT_NEAR(sum / 20000.0, 3.0, 0.25);
}

TEST(RandomStreamTest, GeometricPOneIsZero) {
    RandomStream rng{6};
    EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(RandomStreamTest, GeometricRejectsBadP) {
    RandomStream rng{6};
    EXPECT_THROW((void)rng.geometric(0.0), std::invalid_argument);
    EXPECT_THROW((void)rng.geometric(1.5), std::invalid_argument);
}

TEST(RandomStreamTest, WeightedIndexRespectsWeights) {
    RandomStream rng{7};
    const std::array<double, 3> weights{0.0, 1.0, 3.0};
    std::array<int, 3> counts{};
    for (int i = 0; i < 10000; ++i) {
        ++counts[rng.weighted_index(weights)];
    }
    EXPECT_EQ(counts[0], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / static_cast<double>(counts[1]), 3.0,
                0.4);
}

TEST(RandomStreamTest, WeightedIndexRejectsBadInput) {
    RandomStream rng{8};
    EXPECT_THROW((void)rng.weighted_index(std::span<const double>{}),
                 std::invalid_argument);
    const std::array<double, 2> negative{1.0, -0.5};
    EXPECT_THROW((void)rng.weighted_index(negative), std::invalid_argument);
    const std::array<double, 2> zero{0.0, 0.0};
    EXPECT_THROW((void)rng.weighted_index(zero), std::invalid_argument);
}

TEST(RandomStreamTest, PickReturnsElementFromContainer) {
    RandomStream rng{9};
    const std::vector<int> v{10, 20, 30};
    for (int i = 0; i < 100; ++i) {
        const int x = rng.pick(v);
        EXPECT_TRUE(x == 10 || x == 20 || x == 30);
    }
}

TEST(RandomStreamTest, PickEmptyThrows) {
    RandomStream rng{9};
    const std::vector<int> empty;
    EXPECT_THROW((void)rng.pick(empty), std::invalid_argument);
}

TEST(RandomStreamTest, ShufflePreservesElements) {
    RandomStream rng{10};
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(RandomStreamTest, SaveLoadStateRoundTripsBitIdentical) {
    // save -> draw N -> load -> the same N draws come back bit for bit.
    RandomStream rng{123};
    for (int i = 0; i < 50; ++i) (void)rng.next_u64();  // off the seed point
    const std::string state = rng.save_state();
    std::vector<std::uint64_t> first;
    for (int i = 0; i < 200; ++i) first.push_back(rng.next_u64());
    rng.load_state(state);
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(rng.next_u64(), first[i]) << "draw " << i;
    }
}

TEST(RandomStreamTest, LoadStateTransfersAcrossStreams) {
    RandomStream a{1};
    for (int i = 0; i < 7; ++i) (void)a.next_u64();
    RandomStream b{999};  // unrelated seed, fully overwritten by the load
    b.load_state(a.save_state());
    for (int i = 0; i < 50; ++i) EXPECT_EQ(b.next_u64(), a.next_u64());
}

TEST(RandomStreamTest, SavedStateCoversDistributionDraws) {
    // The state is the engine position, so mixed distribution draws after
    // a reload replay identically too.
    RandomStream rng{77};
    const std::string state = rng.save_state();
    const double real = rng.uniform_real(0.0, 1.0);
    const std::int64_t integer = rng.uniform_int(0, 1000);
    const double exp = rng.exponential(10.0);
    rng.load_state(state);
    EXPECT_EQ(rng.uniform_real(0.0, 1.0), real);
    EXPECT_EQ(rng.uniform_int(0, 1000), integer);
    EXPECT_EQ(rng.exponential(10.0), exp);
}

TEST(RandomStreamTest, LoadStateRejectsMalformedTextAndKeepsStream) {
    RandomStream rng{5};
    const std::string state = rng.save_state();
    EXPECT_THROW(rng.load_state("not a state"), std::invalid_argument);
    EXPECT_THROW(rng.load_state(""), std::invalid_argument);
    // The failed loads must not have corrupted the stream.
    RandomStream pristine{5};
    pristine.load_state(state);
    EXPECT_EQ(rng.next_u64(), pristine.next_u64());
}

TEST(RandomStreamTest, SameSeedSameSequence) {
    RandomStream a{123};
    RandomStream b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngFactoryTest, StreamsAreIndependentByLabel) {
    const RngFactory factory{77};
    RandomStream a = factory.stream("alpha");
    RandomStream b = factory.stream("beta");
    EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(RngFactoryTest, StreamsReproducible) {
    const RngFactory factory{77};
    RandomStream a1 = factory.stream("alpha", 3);
    RandomStream a2 = factory.stream("alpha", 3);
    EXPECT_EQ(a1.next_u64(), a2.next_u64());
}

}  // namespace
}  // namespace nbmg::sim
