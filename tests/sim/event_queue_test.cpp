#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/random.hpp"

namespace nbmg::sim {
namespace {

using std::chrono::milliseconds;

TEST(EventQueueTest, StartsAtTimeZeroAndEmpty) {
    EventQueue q;
    EXPECT_EQ(q.now(), SimTime{0});
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, CustomStartTime) {
    EventQueue q{SimTime{5000}};
    EXPECT_EQ(q.now(), SimTime{5000});
}

TEST(EventQueueTest, RunsEventAtScheduledTime) {
    EventQueue q;
    SimTime fired{-1};
    q.schedule_at(SimTime{42}, [&] { fired = q.now(); });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, SimTime{42});
    EXPECT_EQ(q.now(), SimTime{42});
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
    EventQueue q;
    q.schedule_at(SimTime{10}, [&] {
        q.schedule_after(SimTime{5}, [] {});
    });
    q.step();
    EXPECT_EQ(q.pending(), 1u);
    q.step();
    EXPECT_EQ(q.now(), SimTime{15});
}

TEST(EventQueueTest, EventsRunInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(SimTime{30}, [&] { order.push_back(3); });
    q.schedule_at(SimTime{10}, [&] { order.push_back(1); });
    q.schedule_at(SimTime{20}, [&] { order.push_back(2); });
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimeEventsRunFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        q.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
    }
    q.run_all();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, HandlerMayScheduleMoreEvents) {
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) q.schedule_after(SimTime{1}, chain);
    };
    q.schedule_at(SimTime{0}, chain);
    q.run_all();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), SimTime{4});
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
    EventQueue q;
    q.schedule_at(SimTime{10}, [] {});
    q.step();
    EXPECT_THROW(q.schedule_at(SimTime{5}, [] {}), std::logic_error);
}

TEST(EventQueueTest, NegativeDelayThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_after(SimTime{-1}, [] {}), std::logic_error);
}

TEST(EventQueueTest, EmptyHandlerThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_at(SimTime{1}, EventQueue::Handler{}),
                 std::invalid_argument);
}

TEST(EventQueueTest, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule_at(SimTime{10}, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run_all();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterExecutionReturnsFalse) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    q.step();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{9999}));
    EXPECT_FALSE(q.cancel(EventId{0}));
}

TEST(EventQueueTest, CancelledEventsDoNotAdvanceClock) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    q.schedule_at(SimTime{20}, [] {});
    q.cancel(id);
    q.step();
    EXPECT_EQ(q.now(), SimTime{20});
}

TEST(EventQueueTest, PendingCountTracksScheduleAndCancel) {
    EventQueue q;
    const EventId a = q.schedule_at(SimTime{1}, [] {});
    q.schedule_at(SimTime{2}, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.step();
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunUntilRunsInclusiveBoundary) {
    EventQueue q;
    int ran = 0;
    q.schedule_at(SimTime{10}, [&] { ++ran; });
    q.schedule_at(SimTime{20}, [&] { ++ran; });
    q.schedule_at(SimTime{21}, [&] { ++ran; });
    EXPECT_EQ(q.run_until(SimTime{20}), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(q.now(), SimTime{20});
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
    EventQueue q;
    EXPECT_EQ(q.run_until(SimTime{500}), 0u);
    EXPECT_EQ(q.now(), SimTime{500});
}

TEST(EventQueueTest, RunAllRespectsBudget) {
    EventQueue q;
    std::function<void()> forever = [&] { q.schedule_after(SimTime{1}, forever); };
    q.schedule_at(SimTime{0}, forever);
    EXPECT_EQ(q.run_all(100), 100u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, StepOnEmptyQueueReturnsFalse) {
    EventQueue q;
    EXPECT_FALSE(q.step());
    EXPECT_EQ(q.now(), SimTime{0});
}

TEST(EventQueueTest, ExecutedCounterCounts) {
    EventQueue q;
    for (int i = 0; i < 7; ++i) q.schedule_at(SimTime{i}, [] {});
    q.run_all();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueTest, PendingEventsListsLiveEventsInSlabOrder) {
    EventQueue q;
    const EventId a = q.schedule_at(SimTime{30}, [] {});
    const EventId b = q.schedule_at(SimTime{10}, [] {});
    const EventId c = q.schedule_at(SimTime{20}, [] {});
    const auto pending = q.pending_events();
    ASSERT_EQ(pending.size(), 3u);
    // Slab order (ascending slot index) == scheduling order here, NOT time
    // order: introspection must not depend on heap internals.
    EXPECT_EQ(pending[0].id, a);
    EXPECT_EQ(pending[0].at, SimTime{30});
    EXPECT_EQ(pending[1].id, b);
    EXPECT_EQ(pending[1].at, SimTime{10});
    EXPECT_EQ(pending[2].id, c);
    EXPECT_LT(pending[0].id.index, pending[1].id.index);
    EXPECT_LT(pending[1].id.index, pending[2].id.index);
}

TEST(EventQueueTest, PendingEventsSkipsCancelledAndExecuted) {
    EventQueue q;
    const EventId a = q.schedule_at(SimTime{10}, [] {});
    const EventId b = q.schedule_at(SimTime{20}, [] {});
    q.schedule_at(SimTime{30}, [] {});
    q.cancel(b);
    q.step();  // executes a
    const auto pending = q.pending_events();
    ASSERT_EQ(pending.size(), 1u);
    EXPECT_EQ(pending[0].at, SimTime{30});
    EXPECT_NE(pending[0].id, a);
    EXPECT_NE(pending[0].id, b);
    EXPECT_EQ(pending.size(), q.pending());
}

TEST(EventQueueTest, PendingEventsCoversBatchLanes) {
    EventQueue q;
    q.schedule_at(SimTime{5}, [] {});
    EventQueue::Batch batch;
    batch.add(SimTime{15}, [] {});
    batch.add(SimTime{25}, [] {});
    q.schedule_batch(std::move(batch));
    q.step();  // drain the heap-side event; lane events stay pending
    const auto pending = q.pending_events();
    ASSERT_EQ(pending.size(), 2u);
    EXPECT_EQ(pending[0].at, SimTime{15});
    EXPECT_EQ(pending[1].at, SimTime{25});
    EXPECT_LT(pending[0].id.index, pending[1].id.index);
}

TEST(EventQueueTest, PendingEventsTraceIdenticalForIdenticalHistories) {
    // Two queues driven by the same scripted scheduling history expose
    // identical pending-event sequences at every observation point —
    // the introspection order is a pure function of the history.
    auto observe = [](std::uint64_t seed) {
        EventQueue q;
        RandomStream rng{seed};
        std::vector<EventId> ids;
        std::vector<std::vector<EventQueue::PendingEvent>> observations;
        for (int round = 0; round < 20; ++round) {
            for (int i = 0; i < 10; ++i) {
                ids.push_back(
                    q.schedule_at(SimTime{q.now().count() +
                                          rng.uniform_int(0, 50)},
                                  [] {}));
            }
            if (!ids.empty() && rng.bernoulli(0.5)) {
                const auto pick = static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<std::int64_t>(ids.size()) - 1));
                (void)q.cancel(ids[pick]);
            }
            (void)q.run_until(q.now() + SimTime{rng.uniform_int(0, 25)});
            observations.push_back(q.pending_events());
        }
        return observations;
    };
    for (const std::uint64_t seed : {11u, 222u, 3333u}) {
        EXPECT_EQ(observe(seed), observe(seed)) << "seed=" << seed;
    }
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
    EventQueue q;
    SimTime last{-1};
    bool monotone = true;
    for (int i = 0; i < 5000; ++i) {
        // Deterministic pseudo-scatter.
        const auto t = SimTime{(i * 7919) % 1000};
        q.schedule_at(t, [&, t] {
            if (q.now() < last) monotone = false;
            last = q.now();
        });
    }
    q.run_all();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executed(), 5000u);
}

TEST(EventQueueTest, CancelDuringHandlerOfSameTime) {
    EventQueue q;
    bool second_ran = false;
    EventId second{};
    q.schedule_at(SimTime{10}, [&] { q.cancel(second); });
    second = q.schedule_at(SimTime{10}, [&] { second_ran = true; });
    q.run_all();
    EXPECT_FALSE(second_ran);
}

TEST(EventQueueTest, StaleIdCannotCancelSlotReuser) {
    EventQueue q;
    const EventId a = q.schedule_at(SimTime{10}, [] {});
    ASSERT_TRUE(q.cancel(a));
    // The freed slot is reused by the next event; the stale id must not
    // reach the new occupant.
    bool b_ran = false;
    const EventId b = q.schedule_at(SimTime{20}, [&] { b_ran = true; });
    EXPECT_EQ(b.index, a.index);  // slab reuses LIFO
    EXPECT_NE(b.generation, a.generation);
    EXPECT_FALSE(q.cancel(a));
    q.run_all();
    EXPECT_TRUE(b_ran);
}

TEST(EventQueueTest, OversizedHandlerFallsBackToHeap) {
    EventQueue q;
    std::array<char, 4 * InlineHandler::kInlineCapacity> big{};
    big[0] = 1;
    big[big.size() - 1] = 2;
    int sum = 0;
    q.schedule_at(SimTime{5}, [big, &sum] { sum = big[0] + big[big.size() - 1]; });
    q.run_all();
    EXPECT_EQ(sum, 3);
}

TEST(EventQueueTest, InlineHandlerMoveTransfersTarget) {
    int calls = 0;
    InlineHandler a = [&calls] { ++calls; };
    InlineHandler b = std::move(a);
    EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
    ASSERT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(calls, 1);
}

TEST(EventQueueBatchTest, EmptyBatchSchedulesNothing) {
    EventQueue q;
    EXPECT_EQ(q.schedule_batch(EventQueue::Batch{}), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueBatchTest, BatchEventsRunInTimeThenAddOrder) {
    EventQueue q;
    std::vector<int> order;
    EventQueue::Batch batch;
    batch.add(SimTime{30}, [&] { order.push_back(3); });
    batch.add(SimTime{10}, [&] { order.push_back(1); });
    batch.add(SimTime{10}, [&] { order.push_back(2); });  // FIFO tie w/ above
    batch.add(SimTime{40}, [&] { order.push_back(4); });
    EXPECT_EQ(q.schedule_batch(std::move(batch)), 4u);
    EXPECT_EQ(q.pending(), 4u);
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueBatchTest, BatchAndHeapMergeOnSeqAtEqualTimes) {
    // schedule_at before the batch fires first at an equal instant;
    // schedule_at after the batch fires last — exactly as if the batch
    // items had been schedule_at calls in add order.
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(SimTime{10}, [&] { order.push_back(0); });
    EventQueue::Batch batch;
    batch.add(SimTime{10}, [&] { order.push_back(1); });
    batch.add(SimTime{10}, [&] { order.push_back(2); });
    q.schedule_batch(std::move(batch));
    q.schedule_at(SimTime{10}, [&] { order.push_back(3); });
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueBatchTest, MultipleBatchLanesMerge) {
    EventQueue q;
    std::vector<int> order;
    EventQueue::Batch a;
    a.add(SimTime{5}, [&] { order.push_back(5); });
    a.add(SimTime{20}, [&] { order.push_back(20); });
    EventQueue::Batch b;
    b.add(SimTime{10}, [&] { order.push_back(10); });
    b.add(SimTime{15}, [&] { order.push_back(15); });
    q.schedule_batch(std::move(a));
    q.schedule_batch(std::move(b));
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{5, 10, 15, 20}));
}

TEST(EventQueueBatchTest, BatchHandlerMayScheduleMoreEvents) {
    EventQueue q;
    int count = 0;
    EventQueue::Batch batch;
    batch.add(SimTime{10}, [&] {
        q.schedule_after(SimTime{1}, [&] { ++count; });
    });
    q.schedule_batch(std::move(batch));
    q.run_all();
    EXPECT_EQ(count, 1);
    EXPECT_EQ(q.now(), SimTime{11});
}

TEST(EventQueueBatchTest, RunUntilHonoursLaneHeads) {
    EventQueue q;
    int ran = 0;
    EventQueue::Batch batch;
    batch.add(SimTime{10}, [&] { ++ran; });
    batch.add(SimTime{20}, [&] { ++ran; });
    batch.add(SimTime{21}, [&] { ++ran; });
    q.schedule_batch(std::move(batch));
    EXPECT_EQ(q.run_until(SimTime{20}), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(q.now(), SimTime{20});
    EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueBatchTest, PastTimeInBatchThrows) {
    EventQueue q;
    q.schedule_at(SimTime{10}, [] {});
    q.step();
    EventQueue::Batch batch;
    batch.add(SimTime{5}, [] {});
    EXPECT_THROW(q.schedule_batch(std::move(batch)), std::logic_error);
}

TEST(EventQueueBatchTest, EmptyHandlerInBatchThrows) {
    EventQueue::Batch batch;
    EXPECT_THROW(batch.add(SimTime{1}, EventQueue::Handler{}),
                 std::invalid_argument);
}

TEST(EventQueueBatchTest, CancelBatchEventBeforeLaneReached) {
    // Cancelling a lane event after schedule_batch must be an O(1) slab
    // release: the lane entry goes stale and is skipped at its cursor.
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(SimTime{5}, [&] { order.push_back(5); });
    EventQueue::Batch batch;
    batch.add(SimTime{10}, [&] { order.push_back(10); });
    batch.add(SimTime{20}, [&] { order.push_back(20); });
    batch.add(SimTime{30}, [&] { order.push_back(30); });
    q.schedule_batch(std::move(batch));
    // schedule_batch returns no ids; recover them via introspection (slab
    // order == lane sorted order here: the heap event took slot 0).
    const auto pending = q.pending_events();
    ASSERT_EQ(pending.size(), 4u);
    ASSERT_EQ(pending[2].at, SimTime{20});
    EXPECT_TRUE(q.cancel(pending[2].id));
    EXPECT_FALSE(q.cancel(pending[2].id));  // second cancel is a no-op
    EXPECT_EQ(q.pending(), 3u);
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{5, 10, 30}));
}

TEST(EventQueueBatchTest, CancelledBatchSlotReuseKeepsIdsFresh) {
    // A cancelled lane event frees its slot; the next insert (heap path)
    // reuses it with a bumped generation.  The stale lane id must not
    // cancel the new occupant, and the lane's stale entry must not
    // resurrect when the slot is live again with a different seq.
    EventQueue q;
    EventQueue::Batch batch;
    bool lane_ran = false;
    batch.add(SimTime{10}, [&] { lane_ran = true; });
    q.schedule_batch(std::move(batch));
    const auto before = q.pending_events();
    ASSERT_EQ(before.size(), 1u);
    const EventId lane_id = before[0].id;
    ASSERT_TRUE(q.cancel(lane_id));

    bool reuser_ran = false;
    const EventId reuser = q.schedule_at(SimTime{10}, [&] { reuser_ran = true; });
    EXPECT_EQ(reuser.index, lane_id.index);  // slab reuses LIFO
    EXPECT_NE(reuser.generation, lane_id.generation);
    EXPECT_FALSE(q.cancel(lane_id));  // stale id cannot reach the reuser
    q.run_all();
    EXPECT_FALSE(lane_ran);
    EXPECT_TRUE(reuser_ran);
}

TEST(EventQueueBatchTest, BatchSlotReusedByLaterBatchStaysDistinct) {
    // Slot reuse across two batch lanes: the first lane's stale entry and
    // the second lane's live entry share a slot index but not a seq, so
    // pending_events lists exactly the live one and cancellation by the
    // fresh id works.
    EventQueue q;
    EventQueue::Batch first;
    first.add(SimTime{10}, [] {});
    q.schedule_batch(std::move(first));
    const auto first_pending = q.pending_events();
    ASSERT_EQ(first_pending.size(), 1u);
    ASSERT_TRUE(q.cancel(first_pending[0].id));

    EventQueue::Batch second;
    bool second_ran = false;
    second.add(SimTime{20}, [&] { second_ran = true; });
    q.schedule_batch(std::move(second));
    const auto second_pending = q.pending_events();
    ASSERT_EQ(second_pending.size(), 1u);
    EXPECT_EQ(second_pending[0].id.index, first_pending[0].id.index);
    EXPECT_NE(second_pending[0].id.generation, first_pending[0].id.generation);
    EXPECT_EQ(second_pending[0].at, SimTime{20});
    q.run_all();
    EXPECT_TRUE(second_ran);
    EXPECT_FALSE(q.cancel(second_pending[0].id));  // already fired
}

TEST(EventQueueBatchTest, PendingEventsPinnedAfterMixedCancels) {
    // Slab-order introspection after cancels on both paths: heap events in
    // slots {0,1}, lane events in slots {2,3,4}, then cancel one of each.
    EventQueue q;
    const EventId h0 = q.schedule_at(SimTime{50}, [] {});
    const EventId h1 = q.schedule_at(SimTime{40}, [] {});
    EventQueue::Batch batch;
    batch.add(SimTime{35}, [] {});
    batch.add(SimTime{15}, [] {});
    batch.add(SimTime{25}, [] {});
    q.schedule_batch(std::move(batch));
    auto pending = q.pending_events();
    ASSERT_EQ(pending.size(), 5u);
    // Lane slots are acquired in sorted-time order: 15, 25, 35.
    EXPECT_EQ(pending[2].at, SimTime{15});
    EXPECT_EQ(pending[3].at, SimTime{25});
    EXPECT_EQ(pending[4].at, SimTime{35});
    ASSERT_TRUE(q.cancel(h0));
    ASSERT_TRUE(q.cancel(pending[3].id));  // the 25 ms lane event
    pending = q.pending_events();
    ASSERT_EQ(pending.size(), 3u);
    EXPECT_EQ(pending[0].id, h1);
    EXPECT_EQ(pending[0].at, SimTime{40});
    EXPECT_EQ(pending[1].at, SimTime{15});
    EXPECT_EQ(pending[2].at, SimTime{35});
    EXPECT_LT(pending[0].id.index, pending[1].id.index);
    EXPECT_LT(pending[1].id.index, pending[2].id.index);
    EXPECT_EQ(pending.size(), q.pending());
}

TEST(EventQueueBatchTest, CancelHeavyBatchTraceIdenticalToScheduleAtLoop) {
    // Property: batch insertion + random cancellation of BOTH lane and
    // heap events is trace-identical to the equivalent schedule_at-only
    // history (the existing trace test above never cancels lane events).
    for (const std::uint64_t seed : {13u, 404u, 31337u}) {
        auto trace = [&](bool batched) {
            EventQueue q;
            RandomStream rng{seed};
            std::vector<std::pair<int, std::int64_t>> out;
            std::vector<EventId> ids;
            for (int round = 0; round < 8; ++round) {
                for (int i = 0; i < 20; ++i) {  // heap-side contemporaries
                    const int label = round * 1000 + i;
                    ids.push_back(q.schedule_at(
                        q.now() + SimTime{rng.uniform_int(0, 60)},
                        [&out, &q, label] {
                            out.emplace_back(label, q.now().count());
                        }));
                }
                std::vector<std::pair<SimTime, int>> items;
                for (int i = 0; i < 40; ++i) {
                    items.emplace_back(q.now() + SimTime{rng.uniform_int(0, 60)},
                                       round * 1000 + 100 + i);
                }
                // Both branches register the new ids in sorted-time order
                // (stable on add order) — the order schedule_batch assigns
                // seqs along — so ids[pick] names the same logical event.
                std::stable_sort(items.begin(), items.end(),
                                 [](const auto& a, const auto& b) {
                                     return a.first < b.first;
                                 });
                if (batched) {
                    EventQueue::Batch batch;
                    for (const auto& [at, label] : items) {
                        batch.add(at, [&out, &q, label = label] {
                            out.emplace_back(label, q.now().count());
                        });
                    }
                    q.schedule_batch(std::move(batch));
                    // Recover the lane ids: seqs are globally monotonic, so
                    // the just-scheduled events hold the largest seqs among
                    // everything pending.  Ascending seq == sorted-time
                    // (add) order.
                    auto pending = q.pending_events();
                    std::sort(pending.begin(), pending.end(),
                              [](const auto& a, const auto& b) {
                                  return a.seq < b.seq;
                              });
                    EXPECT_GE(pending.size(), items.size());
                    for (std::size_t i = pending.size() - items.size();
                         i < pending.size(); ++i) {
                        ids.push_back(pending[i].id);
                    }
                } else {
                    for (const auto& [at, label] : items) {
                        ids.push_back(q.schedule_at(at, [&out, &q,
                                                         label = label] {
                            out.emplace_back(label, q.now().count());
                        }));
                    }
                }
                for (int i = 0; i < 15; ++i) {  // cancel across both paths
                    const auto pick = static_cast<std::size_t>(rng.uniform_int(
                        0, static_cast<std::int64_t>(ids.size()) - 1));
                    (void)q.cancel(ids[pick]);
                }
                (void)q.run_until(q.now() + SimTime{rng.uniform_int(10, 40)});
            }
            q.run_all();
            return out;
        };
        EXPECT_EQ(trace(true), trace(false)) << "seed=" << seed;
    }
}

TEST(EventQueueBatchTest, BatchFiringOrderIdenticalToScheduleAtLoop) {
    // Property: for scattered pseudo-random times (with plenty of ties),
    // inserting via one batch is trace-identical to the equivalent
    // schedule_at loop, including interleaved heap-side events.
    for (const std::uint64_t seed : {7u, 99u, 12345u}) {
        auto trace = [&](bool batched) {
            EventQueue q;
            RandomStream rng{seed};
            std::vector<std::pair<int, std::int64_t>> out;
            std::vector<std::pair<SimTime, int>> items;
            for (int i = 0; i < 400; ++i) {
                items.emplace_back(SimTime{rng.uniform_int(0, 60)}, i);
            }
            for (int i = 0; i < 50; ++i) {  // heap-side contemporaries
                q.schedule_at(SimTime{rng.uniform_int(0, 60)}, [&out, &q, i] {
                    out.emplace_back(10'000 + i, q.now().count());
                });
            }
            if (batched) {
                EventQueue::Batch batch;
                for (const auto& [at, label] : items) {
                    batch.add(at, [&out, &q, label = label] {
                        out.emplace_back(label, q.now().count());
                    });
                }
                q.schedule_batch(std::move(batch));
            } else {
                for (const auto& [at, label] : items) {
                    q.schedule_at(at, [&out, &q, label = label] {
                        out.emplace_back(label, q.now().count());
                    });
                }
            }
            q.run_all();
            return out;
        };
        EXPECT_EQ(trace(true), trace(false)) << "seed=" << seed;
    }
}

/// The seed implementation, kept verbatim as the ordering reference: a
/// binary std::priority_queue of {time, seq, std::function} entries with
/// an unordered_set cancellation path.  The slab queue must reproduce its
/// pop order bit for bit.
class ReferenceEventQueue {
public:
    using Handler = std::function<void()>;

    [[nodiscard]] SimTime now() const noexcept { return now_; }

    std::uint64_t schedule_at(SimTime at, Handler handler) {
        const std::uint64_t seq = next_seq_++;
        heap_.push(Entry{at, seq, std::move(handler)});
        pending_ids_.insert(seq);
        return seq;
    }

    std::uint64_t schedule_after(SimTime delay, Handler handler) {
        return schedule_at(now_ + delay, std::move(handler));
    }

    bool cancel(std::uint64_t id) { return pending_ids_.erase(id) > 0; }

    bool step() {
        while (!heap_.empty() && !pending_ids_.contains(heap_.top().seq)) {
            heap_.pop();
        }
        if (heap_.empty()) return false;
        Entry top = heap_.top();
        heap_.pop();
        pending_ids_.erase(top.seq);
        now_ = top.at;
        top.handler();
        return true;
    }

    void run_all() {
        while (step()) {
        }
    }

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq;
        Handler handler;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::unordered_set<std::uint64_t> pending_ids_;
    SimTime now_{0};
    std::uint64_t next_seq_ = 1;
};

/// Runs the same RNG-scripted workload — scattered schedules, random
/// cancellations, handlers that schedule children and cancel peers — on
/// any queue type and records the (label, fire-time) trace.  Identical
/// traces imply identical execution order AND identical RNG consumption
/// (handler decisions draw from the shared stream in fire order).
template <typename Queue>
std::vector<std::pair<int, std::int64_t>> scripted_trace(std::uint64_t seed) {
    Queue q;
    RandomStream rng{seed};
    std::vector<std::pair<int, std::int64_t>> trace;
    using Id = decltype(q.schedule_at(SimTime{0}, [] {}));
    std::vector<Id> ids;
    int next_label = 0;

    std::function<void(int)> fire = [&](int label) {
        trace.emplace_back(label, q.now().count());
        const std::int64_t action = rng.uniform_int(0, 9);
        if (action < 3) {
            const int child = next_label++;
            ids.push_back(q.schedule_after(SimTime{rng.uniform_int(0, 40)},
                                           [&fire, child] { fire(child); }));
        } else if (action < 5 && !ids.empty()) {
            const auto pick = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
            (void)q.cancel(ids[pick]);
        }
    };

    for (int i = 0; i < 300; ++i) {
        const int label = next_label++;
        // Coarse times force plenty of equal-time FIFO ties.
        ids.push_back(q.schedule_at(SimTime{rng.uniform_int(0, 80)},
                                    [&fire, label] { fire(label); }));
    }
    for (int i = 0; i < 120; ++i) {
        const auto pick = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1));
        (void)q.cancel(ids[pick]);
    }
    q.run_all();
    return trace;
}

class SlabQueueTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SlabQueueTraceTest, PopOrderMatchesReferenceImplementation) {
    const auto reference = scripted_trace<ReferenceEventQueue>(GetParam());
    const auto slab = scripted_trace<EventQueue>(GetParam());
    ASSERT_FALSE(reference.empty());
    EXPECT_EQ(slab, reference);
}

INSTANTIATE_TEST_SUITE_P(RandomScripts, SlabQueueTraceTest,
                         ::testing::Values(1u, 2u, 3u, 17u, 42u, 1234u, 99991u));

}  // namespace
}  // namespace nbmg::sim
