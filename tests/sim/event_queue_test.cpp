#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace nbmg::sim {
namespace {

using std::chrono::milliseconds;

TEST(EventQueueTest, StartsAtTimeZeroAndEmpty) {
    EventQueue q;
    EXPECT_EQ(q.now(), SimTime{0});
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, CustomStartTime) {
    EventQueue q{SimTime{5000}};
    EXPECT_EQ(q.now(), SimTime{5000});
}

TEST(EventQueueTest, RunsEventAtScheduledTime) {
    EventQueue q;
    SimTime fired{-1};
    q.schedule_at(SimTime{42}, [&] { fired = q.now(); });
    EXPECT_TRUE(q.step());
    EXPECT_EQ(fired, SimTime{42});
    EXPECT_EQ(q.now(), SimTime{42});
}

TEST(EventQueueTest, ScheduleAfterUsesCurrentTime) {
    EventQueue q;
    q.schedule_at(SimTime{10}, [&] {
        q.schedule_after(SimTime{5}, [] {});
    });
    q.step();
    EXPECT_EQ(q.pending(), 1u);
    q.step();
    EXPECT_EQ(q.now(), SimTime{15});
}

TEST(EventQueueTest, EventsRunInTimeOrder) {
    EventQueue q;
    std::vector<int> order;
    q.schedule_at(SimTime{30}, [&] { order.push_back(3); });
    q.schedule_at(SimTime{10}, [&] { order.push_back(1); });
    q.schedule_at(SimTime{20}, [&] { order.push_back(2); });
    q.run_all();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, EqualTimeEventsRunFifo) {
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i) {
        q.schedule_at(SimTime{100}, [&order, i] { order.push_back(i); });
    }
    q.run_all();
    ASSERT_EQ(order.size(), 16u);
    for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueueTest, HandlerMayScheduleMoreEvents) {
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 5) q.schedule_after(SimTime{1}, chain);
    };
    q.schedule_at(SimTime{0}, chain);
    q.run_all();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(q.now(), SimTime{4});
}

TEST(EventQueueTest, SchedulingInThePastThrows) {
    EventQueue q;
    q.schedule_at(SimTime{10}, [] {});
    q.step();
    EXPECT_THROW(q.schedule_at(SimTime{5}, [] {}), std::logic_error);
}

TEST(EventQueueTest, NegativeDelayThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_after(SimTime{-1}, [] {}), std::logic_error);
}

TEST(EventQueueTest, EmptyHandlerThrows) {
    EventQueue q;
    EXPECT_THROW(q.schedule_at(SimTime{1}, EventQueue::Handler{}),
                 std::invalid_argument);
}

TEST(EventQueueTest, CancelPreventsExecution) {
    EventQueue q;
    bool ran = false;
    const EventId id = q.schedule_at(SimTime{10}, [&] { ran = true; });
    EXPECT_TRUE(q.cancel(id));
    q.run_all();
    EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    EXPECT_TRUE(q.cancel(id));
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelAfterExecutionReturnsFalse) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    q.step();
    EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueueTest, CancelUnknownIdReturnsFalse) {
    EventQueue q;
    EXPECT_FALSE(q.cancel(EventId{9999}));
    EXPECT_FALSE(q.cancel(EventId{0}));
}

TEST(EventQueueTest, CancelledEventsDoNotAdvanceClock) {
    EventQueue q;
    const EventId id = q.schedule_at(SimTime{10}, [] {});
    q.schedule_at(SimTime{20}, [] {});
    q.cancel(id);
    q.step();
    EXPECT_EQ(q.now(), SimTime{20});
}

TEST(EventQueueTest, PendingCountTracksScheduleAndCancel) {
    EventQueue q;
    const EventId a = q.schedule_at(SimTime{1}, [] {});
    q.schedule_at(SimTime{2}, [] {});
    EXPECT_EQ(q.pending(), 2u);
    q.cancel(a);
    EXPECT_EQ(q.pending(), 1u);
    q.step();
    EXPECT_EQ(q.pending(), 0u);
}

TEST(EventQueueTest, RunUntilRunsInclusiveBoundary) {
    EventQueue q;
    int ran = 0;
    q.schedule_at(SimTime{10}, [&] { ++ran; });
    q.schedule_at(SimTime{20}, [&] { ++ran; });
    q.schedule_at(SimTime{21}, [&] { ++ran; });
    EXPECT_EQ(q.run_until(SimTime{20}), 2u);
    EXPECT_EQ(ran, 2);
    EXPECT_EQ(q.now(), SimTime{20});
}

TEST(EventQueueTest, RunUntilAdvancesClockWithoutEvents) {
    EventQueue q;
    EXPECT_EQ(q.run_until(SimTime{500}), 0u);
    EXPECT_EQ(q.now(), SimTime{500});
}

TEST(EventQueueTest, RunAllRespectsBudget) {
    EventQueue q;
    std::function<void()> forever = [&] { q.schedule_after(SimTime{1}, forever); };
    q.schedule_at(SimTime{0}, forever);
    EXPECT_EQ(q.run_all(100), 100u);
    EXPECT_FALSE(q.empty());
}

TEST(EventQueueTest, StepOnEmptyQueueReturnsFalse) {
    EventQueue q;
    EXPECT_FALSE(q.step());
    EXPECT_EQ(q.now(), SimTime{0});
}

TEST(EventQueueTest, ExecutedCounterCounts) {
    EventQueue q;
    for (int i = 0; i < 7; ++i) q.schedule_at(SimTime{i}, [] {});
    q.run_all();
    EXPECT_EQ(q.executed(), 7u);
}

TEST(EventQueueTest, ManyEventsStressOrdering) {
    EventQueue q;
    SimTime last{-1};
    bool monotone = true;
    for (int i = 0; i < 5000; ++i) {
        // Deterministic pseudo-scatter.
        const auto t = SimTime{(i * 7919) % 1000};
        q.schedule_at(t, [&, t] {
            if (q.now() < last) monotone = false;
            last = q.now();
        });
    }
    q.run_all();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(q.executed(), 5000u);
}

TEST(EventQueueTest, CancelDuringHandlerOfSameTime) {
    EventQueue q;
    bool second_ran = false;
    EventId second{};
    q.schedule_at(SimTime{10}, [&] { q.cancel(second); });
    second = q.schedule_at(SimTime{10}, [&] { second_ran = true; });
    q.run_all();
    EXPECT_FALSE(second_ran);
}

}  // namespace
}  // namespace nbmg::sim
