// Property battery for the device->cell assignment policies
// (multicell/assignment.hpp), pinning the statistical contracts the
// deployment layer leans on:
//  - assignment is a pure function of (topology, devices, policy, seed):
//    re-running yields the identical map (and a different seed a different
//    one),
//  - the realized cell histogram matches the policy's target weights
//    within binomial-confidence tolerance (uniform: 1/cells each;
//    hotspot: CellSite::weight-proportional; class-affinity: spill mass
//    close to kClassAffinitySpill),
//  - a 1-cell topology degenerates to the identity: every policy camps the
//    whole fleet on cell 0.
#include "multicell/assignment.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "multicell/topology.hpp"
#include "traffic/population.hpp"

namespace nbmg::multicell {
namespace {

struct Fleet {
    std::vector<nbiot::UeSpec> specs;
    std::vector<std::uint32_t> classes;
};

Fleet make_fleet(std::size_t count, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    const auto generated =
        traffic::generate_population(traffic::massive_iot_city(), count, rng);
    Fleet fleet;
    fleet.specs = traffic::to_specs(generated);
    fleet.classes.reserve(generated.size());
    for (const auto& device : generated) {
        fleet.classes.push_back(static_cast<std::uint32_t>(device.class_index));
    }
    return fleet;
}

/// 5-sigma binomial tolerance on an observed count of n draws at
/// probability p — loose enough to never flake on a fixed seed, tight
/// enough to catch a mis-weighted hash.
double count_tolerance(std::size_t n, double p) {
    return 5.0 * std::sqrt(static_cast<double>(n) * p * (1.0 - p));
}

constexpr std::size_t kFleet = 20'000;

TEST(AssignmentPropertyTest, DeterministicUnderRerunAndSeedSensitive) {
    const Fleet fleet = make_fleet(2'000, 7);
    for (const AssignmentPolicy policy :
         {AssignmentPolicy::uniform_hash, AssignmentPolicy::hotspot,
          AssignmentPolicy::class_affinity}) {
        for (const std::uint64_t seed : {0ull, 42ull, 0xdeadbeefull}) {
            const CellTopology topology = CellTopology::hotspot(12, 0.8);
            const DeviceAssignment first = assign_devices(
                topology, fleet.specs, fleet.classes, policy, seed);
            const DeviceAssignment second = assign_devices(
                topology, fleet.specs, fleet.classes, policy, seed);
            EXPECT_EQ(first.cell_of_device, second.cell_of_device)
                << to_string(policy) << " seed " << seed;
            EXPECT_EQ(first.cell_sizes, second.cell_sizes);

            const DeviceAssignment reseeded = assign_devices(
                topology, fleet.specs, fleet.classes, policy, seed + 1);
            EXPECT_NE(first.cell_of_device, reseeded.cell_of_device)
                << to_string(policy) << " must depend on the seed";
        }
    }
}

TEST(AssignmentPropertyTest, UniformHistogramMatchesEqualWeights) {
    const Fleet fleet = make_fleet(kFleet, 11);
    for (const std::size_t cells : {2ull, 8ull, 32ull}) {
        const DeviceAssignment assignment =
            assign_devices(CellTopology::uniform(cells), fleet.specs, {},
                           AssignmentPolicy::uniform_hash, 42);
        const double expected = static_cast<double>(kFleet) / static_cast<double>(cells);
        const double tolerance = count_tolerance(kFleet, 1.0 / static_cast<double>(cells));
        for (std::size_t c = 0; c < cells; ++c) {
            EXPECT_NEAR(static_cast<double>(assignment.cell_sizes[c]), expected,
                        tolerance)
                << cells << " cells, cell " << c;
        }
    }
}

TEST(AssignmentPropertyTest, HotspotHistogramMatchesZipfWeights) {
    const Fleet fleet = make_fleet(kFleet, 13);
    const CellTopology topology = CellTopology::hotspot(10, 1.0);
    double total_weight = 0.0;
    for (const CellSite& site : topology.cells) total_weight += site.weight;

    const DeviceAssignment assignment = assign_devices(
        topology, fleet.specs, {}, AssignmentPolicy::hotspot, 42);
    for (std::size_t c = 0; c < topology.cell_count(); ++c) {
        const double p = topology.cells[c].weight / total_weight;
        EXPECT_NEAR(static_cast<double>(assignment.cell_sizes[c]),
                    static_cast<double>(kFleet) * p, count_tolerance(kFleet, p))
            << "cell " << c;
    }
    // The gradient itself must be realized: downtown strictly busier than
    // the suburb tail (weights differ by 10x, far beyond the tolerance).
    EXPECT_GT(assignment.cell_sizes.front(), assignment.cell_sizes.back());
}

TEST(AssignmentPropertyTest, ClassAffinitySpillMatchesConfiguredFraction) {
    const Fleet fleet = make_fleet(kFleet, 17);
    const CellTopology topology = CellTopology::uniform(16);
    const DeviceAssignment assignment =
        assign_devices(topology, fleet.specs, fleet.classes,
                       AssignmentPolicy::class_affinity, 42);

    // Devices that did not land on their class's home cell are exactly the
    // spill (modulo the spilled devices that hash back home, a 1/16 sliver
    // the tolerance absorbs).
    std::size_t off_home = 0;
    for (std::size_t d = 0; d < fleet.specs.size(); ++d) {
        const std::uint32_t home = static_cast<std::uint32_t>(
            sim::derive_seed(42, "class-home", fleet.classes[d]) %
            topology.cell_count());
        if (assignment.cell_of_device[d] != home) ++off_home;
    }
    const double expected_off_home =
        static_cast<double>(kFleet) * kClassAffinitySpill *
        (1.0 - 1.0 / static_cast<double>(topology.cell_count()));
    EXPECT_NEAR(static_cast<double>(off_home), expected_off_home,
                count_tolerance(kFleet, kClassAffinitySpill));
}

TEST(AssignmentPropertyTest, OneCellDegeneratesToIdentity) {
    const Fleet fleet = make_fleet(1'000, 19);
    for (const AssignmentPolicy policy :
         {AssignmentPolicy::uniform_hash, AssignmentPolicy::hotspot,
          AssignmentPolicy::class_affinity}) {
        const DeviceAssignment assignment = assign_devices(
            CellTopology::uniform(1), fleet.specs, fleet.classes, policy, 42);
        ASSERT_EQ(assignment.cell_sizes.size(), 1u);
        EXPECT_EQ(assignment.cell_sizes[0], fleet.specs.size());
        for (const std::uint32_t cell : assignment.cell_of_device) {
            EXPECT_EQ(cell, 0u);
        }
    }
}

}  // namespace
}  // namespace nbmg::multicell
