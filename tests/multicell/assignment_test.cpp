#include "multicell/assignment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "multicell/topology.hpp"
#include "traffic/population.hpp"

namespace nbmg::multicell {
namespace {

struct Fleet {
    std::vector<nbiot::UeSpec> specs;
    std::vector<std::uint32_t> classes;
};

Fleet make_fleet(std::size_t count, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    const auto generated =
        traffic::generate_population(traffic::massive_iot_city(), count, rng);
    Fleet fleet;
    fleet.specs = traffic::to_specs(generated);
    fleet.classes.reserve(generated.size());
    for (const auto& d : generated) {
        fleet.classes.push_back(static_cast<std::uint32_t>(d.class_index));
    }
    return fleet;
}

TEST(CellTopologyTest, UniformIsValid) {
    const CellTopology topology = CellTopology::uniform(16);
    EXPECT_EQ(topology.cell_count(), 16u);
    EXPECT_TRUE(topology.valid());
    for (const CellSite& site : topology.cells) {
        EXPECT_DOUBLE_EQ(site.weight, 1.0);
    }
}

TEST(CellTopologyTest, HotspotWeightsDecay) {
    const CellTopology topology = CellTopology::hotspot(8, 1.0);
    EXPECT_TRUE(topology.valid());
    for (std::size_t c = 1; c < topology.cell_count(); ++c) {
        EXPECT_LT(topology.cells[c].weight, topology.cells[c - 1].weight);
    }
    // Exponent 0 degenerates to uniform.
    const CellTopology flat = CellTopology::hotspot(8, 0.0);
    for (const CellSite& site : flat.cells) {
        EXPECT_DOUBLE_EQ(site.weight, 1.0);
    }
}

TEST(CellTopologyTest, InvalidShapesRejected) {
    EXPECT_FALSE(CellTopology{}.valid());

    CellTopology bad_ids = CellTopology::uniform(3);
    bad_ids.cells[2].id = 7;
    EXPECT_FALSE(bad_ids.valid());

    CellTopology bad_weight = CellTopology::uniform(3);
    bad_weight.cells[1].weight = 0.0;
    EXPECT_FALSE(bad_weight.valid());

    CellTopology bad_override = CellTopology::uniform(3);
    bad_override.cells[0].max_page_records_override = -1;
    EXPECT_FALSE(bad_override.valid());
}

TEST(AssignmentPolicyTest, ParseRoundTrips) {
    for (const AssignmentPolicy policy :
         {AssignmentPolicy::uniform_hash, AssignmentPolicy::hotspot,
          AssignmentPolicy::class_affinity}) {
        const auto parsed = parse_assignment_policy(to_string(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parse_assignment_policy("zipf").has_value());
    EXPECT_FALSE(parse_assignment_policy("").has_value());
    EXPECT_FALSE(parse_assignment_policy("Uniform").has_value());
}

TEST(AssignmentTest, SameSeedSameMap) {
    const Fleet fleet = make_fleet(400, 7);
    const CellTopology topology = CellTopology::uniform(12);
    for (const AssignmentPolicy policy :
         {AssignmentPolicy::uniform_hash, AssignmentPolicy::hotspot,
          AssignmentPolicy::class_affinity}) {
        const DeviceAssignment a =
            assign_devices(topology, fleet.specs, fleet.classes, policy, 42);
        const DeviceAssignment b =
            assign_devices(topology, fleet.specs, fleet.classes, policy, 42);
        EXPECT_EQ(a.cell_of_device, b.cell_of_device) << to_string(policy);
        EXPECT_EQ(a.cell_sizes, b.cell_sizes) << to_string(policy);
    }
}

TEST(AssignmentTest, DifferentSeedDifferentMap) {
    const Fleet fleet = make_fleet(400, 7);
    const CellTopology topology = CellTopology::uniform(12);
    const DeviceAssignment a = assign_devices(
        topology, fleet.specs, fleet.classes, AssignmentPolicy::uniform_hash, 42);
    const DeviceAssignment b = assign_devices(
        topology, fleet.specs, fleet.classes, AssignmentPolicy::uniform_hash, 43);
    EXPECT_NE(a.cell_of_device, b.cell_of_device);
}

TEST(AssignmentTest, SizesMatchMap) {
    const Fleet fleet = make_fleet(300, 3);
    const CellTopology topology = CellTopology::uniform(7);
    const DeviceAssignment assignment = assign_devices(
        topology, fleet.specs, fleet.classes, AssignmentPolicy::hotspot, 1);
    ASSERT_EQ(assignment.cell_of_device.size(), fleet.specs.size());
    std::vector<std::size_t> recount(topology.cell_count(), 0);
    for (const std::uint32_t cell : assignment.cell_of_device) {
        ASSERT_LT(cell, topology.cell_count());
        ++recount[cell];
    }
    EXPECT_EQ(recount, assignment.cell_sizes);
}

TEST(AssignmentTest, UniformHashBalances) {
    const Fleet fleet = make_fleet(5'000, 11);
    const CellTopology topology = CellTopology::uniform(10);
    const DeviceAssignment assignment = assign_devices(
        topology, fleet.specs, {}, AssignmentPolicy::uniform_hash, 42);
    for (const std::size_t size : assignment.cell_sizes) {
        EXPECT_GT(size, 350u);  // expectation 500; catches gross imbalance
        EXPECT_LT(size, 650u);
    }
}

TEST(AssignmentTest, HotspotFollowsWeights) {
    const Fleet fleet = make_fleet(5'000, 13);
    const CellTopology topology = CellTopology::hotspot(8, 1.0);
    const DeviceAssignment assignment = assign_devices(
        topology, fleet.specs, {}, AssignmentPolicy::hotspot, 42);
    // Cell 0 carries weight 1, cell 7 weight 1/8: the head must dominate.
    EXPECT_GT(assignment.cell_sizes.front(), 3 * assignment.cell_sizes.back());
}

TEST(AssignmentTest, ClassAffinityClusters) {
    const Fleet fleet = make_fleet(4'000, 17);
    const CellTopology topology = CellTopology::uniform(16);
    const DeviceAssignment assignment = assign_devices(
        topology, fleet.specs, fleet.classes, AssignmentPolicy::class_affinity, 42);

    const std::uint32_t class_count =
        *std::max_element(fleet.classes.begin(), fleet.classes.end()) + 1;
    for (std::uint32_t cls = 0; cls < class_count; ++cls) {
        std::vector<std::size_t> per_cell(topology.cell_count(), 0);
        std::size_t members = 0;
        for (std::size_t d = 0; d < fleet.specs.size(); ++d) {
            if (fleet.classes[d] != cls) continue;
            ++members;
            ++per_cell[assignment.cell_of_device[d]];
        }
        if (members < 50) continue;  // tiny classes are statistically noisy
        const std::size_t modal =
            *std::max_element(per_cell.begin(), per_cell.end());
        // 1 - spill of the class sits on its home cell (plus spill strays).
        EXPECT_GT(static_cast<double>(modal), 0.6 * static_cast<double>(members))
            << "class " << cls;
    }
}

TEST(AssignmentTest, OneCellTakesEverything) {
    const Fleet fleet = make_fleet(200, 19);
    const CellTopology topology = CellTopology::uniform(1);
    for (const AssignmentPolicy policy :
         {AssignmentPolicy::uniform_hash, AssignmentPolicy::hotspot,
          AssignmentPolicy::class_affinity}) {
        const DeviceAssignment assignment =
            assign_devices(topology, fleet.specs, fleet.classes, policy, 42);
        EXPECT_EQ(assignment.cell_sizes, (std::vector<std::size_t>{200}));
    }
}

TEST(AssignmentTest, InvalidInputsThrow) {
    const Fleet fleet = make_fleet(10, 23);
    EXPECT_THROW((void)assign_devices(CellTopology{}, fleet.specs, fleet.classes,
                                      AssignmentPolicy::uniform_hash, 1),
                 std::invalid_argument);
    // class_affinity without a class per device.
    EXPECT_THROW((void)assign_devices(CellTopology::uniform(4), fleet.specs, {},
                                      AssignmentPolicy::class_affinity, 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace nbmg::multicell
