// Determinism battery for the city-wide wall-clock coordinator
// (multicell/coordinator.hpp), pinning the contracts the scenario layer
// builds on:
//  - the embedded DeploymentResult is bit-identical to run_deployment for
//    every start policy (coordination is a pure post-pass over the
//    recorded spans),
//  - the simultaneous policy reproduces the pre-coordinator goldens: same
//    campaign aggregates, time axis equal to the per-cell horizons,
//  - fleet time-axis aggregates are bit-identical at --threads {1, 2, 8},
//  - schedule_run's policy arithmetic (stagger offsets, serial backhaul
//    admission in most-devices-first order, peak-overlap counting) matches
//    hand-computed expectations.
#include "multicell/coordinator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "tests/support/deployment_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::multicell {
namespace {

DeploymentSetup small_setup(std::size_t cells) {
    DeploymentSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 120;
    setup.payload_bytes = 20 * 1024;
    setup.runs = 3;
    setup.base_seed = 42;
    setup.threads = 1;
    setup.topology = CellTopology::uniform(cells);
    return setup;
}

CoordinatorSpec stagger(std::int64_t ms) {
    CoordinatorSpec spec;
    spec.policy = StartPolicy::fixed_stagger;
    spec.stagger_ms = ms;
    return spec;
}

CoordinatorSpec backhaul(double kbps) {
    CoordinatorSpec spec;
    spec.policy = StartPolicy::backhaul_budgeted;
    spec.backhaul_kbps = kbps;
    return spec;
}

using test_support::expect_deployment_results_equal;

void expect_coordination_equal(const CoordinationAggregates& a,
                               const CoordinationAggregates& b) {
    EXPECT_TRUE(a.completion_ms == b.completion_ms);
    EXPECT_TRUE(a.peak_concurrent_cells == b.peak_concurrent_cells);
    EXPECT_TRUE(a.start_spread_ms == b.start_spread_ms);
    EXPECT_TRUE(a.backhaul_busy_ms == b.backhaul_busy_ms);
    EXPECT_TRUE(a.backhaul_utilization == b.backhaul_utilization);
    ASSERT_EQ(a.timelines.size(), b.timelines.size());
    for (std::size_t run = 0; run < a.timelines.size(); ++run) {
        EXPECT_EQ(a.timelines[run].completion_ms, b.timelines[run].completion_ms);
        EXPECT_EQ(a.timelines[run].peak_concurrent_cells,
                  b.timelines[run].peak_concurrent_cells);
        ASSERT_EQ(a.timelines[run].cells.size(), b.timelines[run].cells.size());
        for (std::size_t c = 0; c < a.timelines[run].cells.size(); ++c) {
            EXPECT_EQ(a.timelines[run].cells[c].start_ms,
                      b.timelines[run].cells[c].start_ms);
            EXPECT_EQ(a.timelines[run].cells[c].end_ms,
                      b.timelines[run].cells[c].end_ms);
        }
    }
}

TEST(CoordinatorTest, EveryPolicyKeepsDeploymentBitIdentical) {
    const DeploymentSetup setup = small_setup(4);
    const DeploymentResult reference = run_deployment(setup);
    for (const CoordinatorSpec& coordinator :
         {CoordinatorSpec{}, stagger(20'000), backhaul(256.0)}) {
        const CoordinatedResult coordinated = run_coordinated(setup, coordinator);
        expect_deployment_results_equal(coordinated.deployment, reference);
    }
}

TEST(CoordinatorTest, SimultaneousReproducesPreCoordinatorTimeAxis) {
    const DeploymentSetup setup = small_setup(4);
    const CoordinatedResult result = run_coordinated(setup, CoordinatorSpec{});
    ASSERT_EQ(result.coordination.timelines.size(), setup.runs);
    for (std::size_t run = 0; run < setup.runs; ++run) {
        const RunTimeline& timeline = result.coordination.timelines[run];
        std::int64_t max_horizon = 0;
        std::size_t active = 0;
        for (std::size_t c = 0; c < 4; ++c) {
            const CellRunSpan& span = result.deployment.span(run, c);
            const CellSchedule& slot = timeline.cells[c];
            EXPECT_EQ(slot.start_ms, 0);
            EXPECT_EQ(slot.end_ms, span.horizon_ms);
            if (span.devices > 0) {
                max_horizon = std::max(max_horizon, span.horizon_ms);
                ++active;
            }
        }
        // Everything starts at zero: the city completes when the slowest
        // cell's horizon ends, every active cell overlaps, and the feed is
        // untouched.
        EXPECT_EQ(timeline.completion_ms, max_horizon);
        EXPECT_EQ(timeline.peak_concurrent_cells, active);
        EXPECT_EQ(timeline.start_spread_ms, 0);
        EXPECT_EQ(timeline.backhaul_busy_ms, 0);
        EXPECT_EQ(timeline.backhaul_utilization, 0.0);
    }
}

TEST(CoordinatorTest, AggregatesBitIdenticalAcrossThreadCounts) {
    for (const CoordinatorSpec& coordinator :
         {CoordinatorSpec{}, stagger(15'000), backhaul(64.0)}) {
        DeploymentSetup setup = small_setup(4);
        setup.threads = 1;
        const CoordinatedResult serial = run_coordinated(setup, coordinator);
        for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
            setup.threads = threads;
            const CoordinatedResult threaded = run_coordinated(setup, coordinator);
            expect_deployment_results_equal(threaded.deployment, serial.deployment);
            expect_coordination_equal(threaded.coordination, serial.coordination);
        }
    }
}

TEST(CoordinatorTest, FixedStaggerOffsetsAreTopologyOrderTimesStagger) {
    const DeploymentSetup setup = small_setup(5);
    const std::int64_t step = 10'000;
    const CoordinatedResult result = run_coordinated(setup, stagger(step));
    for (const RunTimeline& timeline : result.coordination.timelines) {
        std::int64_t last_active_start = 0;
        for (std::size_t c = 0; c < timeline.cells.size(); ++c) {
            const CellSchedule& slot = timeline.cells[c];
            if (!slot.active) continue;
            EXPECT_EQ(slot.start_ms, static_cast<std::int64_t>(c) * step);
            last_active_start = slot.start_ms;
        }
        EXPECT_GT(timeline.start_spread_ms, 0);
        EXPECT_LE(timeline.start_spread_ms, last_active_start);
    }
}

TEST(CoordinatorTest, StaggerBeyondSpanSerializesTheCity) {
    // A stagger longer than any cell's campaign span means no two cells
    // are ever active together, and the city completes at the last start
    // plus that cell's span.
    const DeploymentSetup setup = small_setup(3);
    const DeploymentResult plain = run_deployment(setup);
    std::int64_t max_horizon = 0;
    for (const CellRunSpan& span : plain.spans) {
        max_horizon = std::max(max_horizon, span.horizon_ms);
    }
    const CoordinatedResult result =
        run_coordinated(setup, stagger(max_horizon + 1));
    for (const RunTimeline& timeline : result.coordination.timelines) {
        EXPECT_EQ(timeline.peak_concurrent_cells, 1u);
    }
}

TEST(CoordinatorTest, BackhaulAdmitsMostLoadedCellFirstOverASerialFeed) {
    const CoordinatorSpec coordinator = backhaul(128.0);  // KB/s
    const std::int64_t payload = 64 * 1024;               // -> 500 ms per cell
    const std::vector<CellRunSpan> spans{
        {10, 400'000}, {30, 400'000}, {0, 0}, {20, 400'000}};
    const RunTimeline timeline = schedule_run(coordinator, spans, payload);

    // Priority order is devices-descending (cells 1, 3, 0); the empty cell
    // 2 consumes no feed time.  The serial feed finishes delivery k at
    // (k + 1) * 500 ms, and a cell starts when its image lands.
    EXPECT_EQ(timeline.cells[1].start_ms, 500);
    EXPECT_EQ(timeline.cells[3].start_ms, 1'000);
    EXPECT_EQ(timeline.cells[0].start_ms, 1'500);
    EXPECT_FALSE(timeline.cells[2].active);
    EXPECT_EQ(timeline.backhaul_busy_ms, 1'500);
    EXPECT_EQ(timeline.completion_ms, 401'500);
    EXPECT_EQ(timeline.start_spread_ms, 1'000);
    EXPECT_EQ(timeline.peak_concurrent_cells, 3u);
    EXPECT_DOUBLE_EQ(timeline.backhaul_utilization, 1'500.0 / 401'500.0);
}

TEST(CoordinatorTest, BackhaulTiesBreakByAscendingCellId) {
    const std::vector<CellRunSpan> spans{{20, 1'000}, {20, 1'000}, {20, 1'000}};
    const RunTimeline timeline =
        schedule_run(backhaul(1024.0), spans, 1024);  // 1 ms per delivery
    EXPECT_EQ(timeline.cells[0].start_ms, 1);
    EXPECT_EQ(timeline.cells[1].start_ms, 2);
    EXPECT_EQ(timeline.cells[2].start_ms, 3);
}

TEST(CoordinatorTest, PeakOverlapTreatsIntervalsAsHalfOpen) {
    // Cell 0 ends exactly when cell 1 starts: back-to-back, not concurrent.
    const std::vector<CellRunSpan> spans{{5, 10'000}, {5, 10'000}};
    const RunTimeline timeline = schedule_run(stagger(10'000), spans, 1024);
    EXPECT_EQ(timeline.cells[0].end_ms, timeline.cells[1].start_ms);
    EXPECT_EQ(timeline.peak_concurrent_cells, 1u);
}

TEST(CoordinatorTest, InvalidSpecsThrow) {
    const DeploymentSetup setup = small_setup(2);

    CoordinatorSpec mixed_knobs;  // stagger on a simultaneous policy
    mixed_knobs.stagger_ms = 5'000;
    EXPECT_FALSE(mixed_knobs.valid());
    EXPECT_THROW((void)run_coordinated(setup, mixed_knobs), std::invalid_argument);

    CoordinatorSpec no_budget;  // backhaul without a feed budget
    no_budget.policy = StartPolicy::backhaul_budgeted;
    EXPECT_FALSE(no_budget.valid());
    EXPECT_THROW((void)run_coordinated(setup, no_budget), std::invalid_argument);

    EXPECT_TRUE(CoordinatorSpec{}.valid());
    EXPECT_TRUE(stagger(0).valid());
    EXPECT_TRUE(backhaul(0.5).valid());
}

TEST(CoordinatorTest, StartPolicySpellingsRoundTrip) {
    for (const StartPolicy policy :
         {StartPolicy::simultaneous, StartPolicy::fixed_stagger,
          StartPolicy::backhaul_budgeted}) {
        const auto parsed = parse_start_policy(to_string(policy));
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, policy);
    }
    EXPECT_FALSE(parse_start_policy("staggered").has_value());
    EXPECT_FALSE(parse_start_policy("").has_value());
}

}  // namespace
}  // namespace nbmg::multicell
