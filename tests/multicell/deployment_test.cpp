// Determinism contracts of the multicell deployment layer:
//  - a 1-cell deployment reproduces the single-cell run_comparison
//    aggregates bit for bit (same profile/seed/config),
//  - results are invariant under the worker-thread count,
//  - shared populations are validated and bit-identical to regeneration.
#include "multicell/deployment.hpp"

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "traffic/population.hpp"

namespace nbmg::multicell {
namespace {

DeploymentSetup small_setup() {
    DeploymentSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = 60;
    setup.payload_bytes = 20 * 1024;
    setup.runs = 3;
    setup.base_seed = 42;
    setup.threads = 1;
    return setup;
}

void expect_summaries_equal(const stats::Summary& a, const stats::Summary& b,
                            const char* what) {
    EXPECT_EQ(a.count(), b.count()) << what;
    EXPECT_DOUBLE_EQ(a.mean(), b.mean()) << what;
    EXPECT_DOUBLE_EQ(a.min(), b.min()) << what;
    EXPECT_DOUBLE_EQ(a.max(), b.max()) << what;
    EXPECT_DOUBLE_EQ(a.variance(), b.variance()) << what;
}

void expect_stats_equal(const core::MechanismStats& a, const core::MechanismStats& b) {
    EXPECT_EQ(a.kind, b.kind);
    expect_summaries_equal(a.light_sleep_increase, b.light_sleep_increase,
                           "light_sleep_increase");
    expect_summaries_equal(a.connected_increase, b.connected_increase,
                           "connected_increase");
    expect_summaries_equal(a.transmissions, b.transmissions, "transmissions");
    expect_summaries_equal(a.transmissions_per_device, b.transmissions_per_device,
                           "transmissions_per_device");
    expect_summaries_equal(a.bytes_ratio, b.bytes_ratio, "bytes_ratio");
    expect_summaries_equal(a.recovery_transmissions, b.recovery_transmissions,
                           "recovery_transmissions");
    expect_summaries_equal(a.unreceived_devices, b.unreceived_devices,
                           "unreceived_devices");
    expect_summaries_equal(a.mean_connected_seconds, b.mean_connected_seconds,
                           "mean_connected_seconds");
    expect_summaries_equal(a.mean_light_sleep_seconds, b.mean_light_sleep_seconds,
                           "mean_light_sleep_seconds");
}

TEST(DeploymentTest, OneCellMatchesRunComparisonBitForBit) {
    const DeploymentSetup setup = small_setup();

    core::ComparisonSetup reference;
    reference.profile = setup.profile;
    reference.device_count = setup.device_count;
    reference.payload_bytes = setup.payload_bytes;
    reference.config = setup.config;
    reference.runs = setup.runs;
    reference.base_seed = setup.base_seed;
    reference.threads = 1;
    reference.mechanisms = setup.mechanisms;
    const core::ComparisonOutcome expected = core::run_comparison(reference);

    const DeploymentResult actual = run_deployment(setup);

    ASSERT_EQ(actual.cell_count(), 1u);
    expect_stats_equal(actual.unicast.stats, expected.unicast);
    ASSERT_EQ(actual.mechanisms.size(), expected.mechanisms.size());
    for (std::size_t m = 0; m < expected.mechanisms.size(); ++m) {
        expect_stats_equal(actual.mechanisms[m].stats, expected.mechanisms[m]);
    }
    // With one cell the fleet-wide and per-cell views coincide.
    expect_stats_equal(actual.cells[0].unicast.stats, expected.unicast);
    EXPECT_EQ(actual.empty_cell_runs, 0u);
    EXPECT_DOUBLE_EQ(actual.cell_load.mean(),
                     static_cast<double>(setup.device_count));
}

TEST(DeploymentTest, CellSeedRootDegeneratesToBaseSeed) {
    EXPECT_EQ(cell_seed_root(42, 1, 0), 42u);
    EXPECT_NE(cell_seed_root(42, 2, 0), 42u);
    EXPECT_NE(cell_seed_root(42, 2, 0), cell_seed_root(42, 2, 1));
}

TEST(DeploymentTest, ThreadCountInvarianceAtFourCells) {
    DeploymentSetup setup = small_setup();
    setup.device_count = 120;
    setup.topology = CellTopology::uniform(4);
    setup.assignment = AssignmentPolicy::uniform_hash;

    setup.threads = 1;
    const DeploymentResult serial = run_deployment(setup);
    setup.threads = 4;
    const DeploymentResult threaded = run_deployment(setup);

    expect_stats_equal(serial.unicast.stats, threaded.unicast.stats);
    ASSERT_EQ(serial.mechanisms.size(), threaded.mechanisms.size());
    for (std::size_t m = 0; m < serial.mechanisms.size(); ++m) {
        expect_stats_equal(serial.mechanisms[m].stats, threaded.mechanisms[m].stats);
        expect_summaries_equal(serial.mechanisms[m].bytes_on_air,
                               threaded.mechanisms[m].bytes_on_air, "bytes_on_air");
        expect_summaries_equal(serial.mechanisms[m].rach_collision_rate,
                               threaded.mechanisms[m].rach_collision_rate,
                               "rach_collision_rate");
    }
    ASSERT_EQ(serial.cell_count(), threaded.cell_count());
    for (std::size_t c = 0; c < serial.cell_count(); ++c) {
        expect_summaries_equal(serial.cells[c].devices, threaded.cells[c].devices,
                               "cell devices");
        expect_stats_equal(serial.cells[c].unicast.stats,
                           threaded.cells[c].unicast.stats);
        for (std::size_t m = 0; m < serial.mechanisms.size(); ++m) {
            expect_stats_equal(serial.cells[c].mechanisms[m].stats,
                               threaded.cells[c].mechanisms[m].stats);
        }
    }
    expect_summaries_equal(serial.cell_load, threaded.cell_load, "cell_load");
    EXPECT_EQ(serial.empty_cell_runs, threaded.empty_cell_runs);
}

TEST(DeploymentTest, SharedPopulationsBitIdenticalToRegeneration) {
    DeploymentSetup setup = small_setup();
    setup.topology = CellTopology::uniform(3);
    const DeploymentResult fresh = run_deployment(setup);

    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed);
    const DeploymentResult cached = run_deployment(setup);

    expect_stats_equal(fresh.unicast.stats, cached.unicast.stats);
    for (std::size_t m = 0; m < fresh.mechanisms.size(); ++m) {
        expect_stats_equal(fresh.mechanisms[m].stats, cached.mechanisms[m].stats);
    }
}

TEST(DeploymentTest, CellLoadAccountsEveryDevice) {
    DeploymentSetup setup = small_setup();
    setup.device_count = 90;
    setup.topology = CellTopology::hotspot(5, 1.0);
    setup.assignment = AssignmentPolicy::hotspot;
    const DeploymentResult result = run_deployment(setup);
    // cell_load has one sample per (run, cell); the per-run samples sum to
    // the fleet size, so the overall mean is fleet / cells.
    EXPECT_EQ(result.cell_load.count(),
              static_cast<std::uint64_t>(setup.runs * 5));
    EXPECT_DOUBLE_EQ(result.cell_load.mean() * 5.0,
                     static_cast<double>(setup.device_count));
}

TEST(DeploymentTest, ManyCellsFewDevicesSkipsEmptyCells) {
    DeploymentSetup setup = small_setup();
    setup.device_count = 8;
    setup.runs = 2;
    setup.topology = CellTopology::uniform(32);
    const DeploymentResult result = run_deployment(setup);
    EXPECT_GT(result.empty_cell_runs, 0u);
    // Fleet-wide samples still exist for every run.
    EXPECT_EQ(result.unicast.stats.transmissions.count(),
              static_cast<std::uint64_t>(setup.runs));
}

TEST(DeploymentTest, PagingCapacityOverrideApplies) {
    DeploymentSetup setup = small_setup();
    setup.device_count = 150;
    setup.runs = 2;
    setup.topology = CellTopology::uniform(2);
    // Choke cell 1's paging channel: page records per PO drops to 1, so the
    // same camped population needs more paging messages there.
    setup.topology.cells[1].max_page_records_override = 1;
    const DeploymentResult choked = run_deployment(setup);

    DeploymentSetup plain = setup;
    plain.topology.cells[1].max_page_records_override = 0;
    const DeploymentResult baseline = run_deployment(plain);

    // The choked cell's aggregates must differ from the unconstrained run —
    // DA-SC is the sensitive mechanism (its DRX-reconfiguration pages slip
    // when occasions fill up); cell 0 is untouched.
    expect_stats_equal(choked.cells[0].unicast.stats,
                       baseline.cells[0].unicast.stats);
    expect_stats_equal(choked.cells[0].mechanisms[1].stats,
                       baseline.cells[0].mechanisms[1].stats);
    EXPECT_NE(choked.cells[1].mechanisms[1].stats.mean_connected_seconds.mean(),
              baseline.cells[1].mechanisms[1].stats.mean_connected_seconds.mean());
}

TEST(DeploymentTest, InvalidSetupsThrow) {
    DeploymentSetup setup = small_setup();
    setup.runs = 0;
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);

    setup = small_setup();
    setup.device_count = 0;
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);

    setup = small_setup();
    setup.topology.cells.clear();
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);

    // Shared populations with the wrong provenance.
    setup = small_setup();
    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed + 1);
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);

    setup = small_setup();
    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs - 1, setup.base_seed);
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);

    // class_affinity requires class indices alongside the shared specs.
    setup = small_setup();
    setup.assignment = AssignmentPolicy::class_affinity;
    auto stripped = std::make_shared<core::ComparisonPopulations>(
        *core::generate_comparison_populations(setup.profile, setup.device_count,
                                               setup.runs, setup.base_seed));
    stripped->class_indices.clear();
    setup.populations = stripped;
    EXPECT_THROW((void)run_deployment(setup), std::invalid_argument);
}

}  // namespace
}  // namespace nbmg::multicell
