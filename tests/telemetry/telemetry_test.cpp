// Tier-1 coverage for the telemetry subsystem: CampaignSink recording and
// stratum-order merge, the zero-cost emission macro, Collector slot
// addressing, the three exporters (JSONL trace, metrics table, Chrome
// timeline), and the scenario-level invariants — telemetry never perturbs
// results, artifacts are a pure function of (spec, seed) at any
// --threads/--strata, and unwritable output paths are a usage error.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "scenario/run.hpp"
#include "scenario/spec.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/export.hpp"
#include "telemetry/sink.hpp"

namespace nbmg {
namespace {

using telemetry::CampaignSink;
using telemetry::Collector;
using telemetry::EventKind;
using telemetry::TelemetryConfig;

constexpr TelemetryConfig kFull{.trace = true, .metrics = true,
                                .bucket_ms = 100};

TEST(SinkTest, DefaultConstructedSinkIsDisabledAndDropsEverything) {
    CampaignSink sink;
    EXPECT_FALSE(sink.enabled());
    sink.emit(EventKind::rach_attempt, 5, 1, 2, 3);
    EXPECT_TRUE(sink.records().empty());
    EXPECT_EQ(sink.counter(EventKind::rach_attempt), 0u);
}

TEST(SinkTest, TraceModeKeepsRecordsInEmissionOrder) {
    CampaignSink sink{TelemetryConfig{.trace = true}};
    sink.emit(EventKind::rach_attempt, 10, 1, 4, 8);
    sink.emit(EventKind::page_delivered, 20, 2, 0, 0);
    ASSERT_EQ(sink.records().size(), 2u);
    EXPECT_EQ(sink.records()[0].kind, EventKind::rach_attempt);
    EXPECT_EQ(sink.records()[0].at_ms, 10);
    EXPECT_EQ(sink.records()[0].device, 1u);
    EXPECT_EQ(sink.records()[0].a, 4);
    EXPECT_EQ(sink.records()[0].b, 8);
    EXPECT_EQ(sink.records()[1].kind, EventKind::page_delivered);
    // Trace-only mode keeps no counters.
    EXPECT_EQ(sink.counter(EventKind::rach_attempt), 0u);
}

TEST(SinkTest, MetricsModeCountsAndBuckets) {
    CampaignSink sink{kFull};
    sink.emit(EventKind::rach_attempt, 0, 1, 0, 0);    // bucket 0
    sink.emit(EventKind::rach_attempt, 99, 1, 0, 0);   // bucket 0
    sink.emit(EventKind::rach_attempt, 100, 1, 0, 0);  // bucket 1
    sink.emit(EventKind::rach_attempt, 250, 1, 0, 0);  // bucket 2
    sink.emit(EventKind::rrc_connected, 5, 1, 0, 0);   // counted, not bucketed
    EXPECT_EQ(sink.counter(EventKind::rach_attempt), 4u);
    EXPECT_EQ(sink.counter(EventKind::rrc_connected), 1u);
    ASSERT_TRUE(CampaignSink::bucketed(EventKind::rach_attempt));
    EXPECT_FALSE(CampaignSink::bucketed(EventKind::rrc_connected));
    const std::vector<std::uint64_t>& buckets =
        sink.series(EventKind::rach_attempt);
    ASSERT_EQ(buckets.size(), 3u);
    EXPECT_EQ(buckets[0], 2u);
    EXPECT_EQ(buckets[1], 1u);
    EXPECT_EQ(buckets[2], 1u);
}

TEST(SinkTest, AbsorbMergesCountersBucketsAndAppendsRecords) {
    CampaignSink parent{kFull};
    parent.emit(EventKind::rach_attempt, 0, 1, 0, 0);

    CampaignSink child_a{kFull, /*stratum=*/0};
    child_a.emit(EventKind::rach_attempt, 150, 2, 0, 0);
    CampaignSink child_b{kFull, /*stratum=*/1};
    child_b.emit(EventKind::rach_collision, 10, 3, 5, 2);

    parent.absorb(child_a);
    parent.absorb(child_b);

    EXPECT_EQ(parent.counter(EventKind::rach_attempt), 2u);
    EXPECT_EQ(parent.counter(EventKind::rach_collision), 1u);
    ASSERT_EQ(parent.records().size(), 3u);
    // Records append in absorb order; children keep their stratum tag.
    EXPECT_EQ(parent.records()[1].stratum, 0);
    EXPECT_EQ(parent.records()[2].stratum, 1);
    const std::vector<std::uint64_t>& buckets =
        parent.series(EventKind::rach_attempt);
    ASSERT_EQ(buckets.size(), 2u);
    EXPECT_EQ(buckets[0], 1u);
    EXPECT_EQ(buckets[1], 1u);
}

TEST(SinkTest, EmitMacroSkipsArgumentEvaluationWhenSinkIsNull) {
    CampaignSink* sink = nullptr;
    bool evaluated = false;
    const auto payload = [&] {
        evaluated = true;
        return std::int64_t{1};
    };
    NBMG_TELEMETRY_EMIT(sink, EventKind::rach_attempt, 0, 0, payload(), 0);
    EXPECT_FALSE(evaluated);

    CampaignSink live{kFull};
    NBMG_TELEMETRY_EMIT(&live, EventKind::rach_attempt, 0, 0, payload(), 0);
    EXPECT_TRUE(evaluated);
    EXPECT_EQ(live.counter(EventKind::rach_attempt), 1u);
}

TEST(CollectorTest, SlotAddressingIsStableAndRunMajor) {
    Collector collector{kFull, /*runs=*/2, /*cells=*/3, {"unicast", "dr-sc"}};
    EXPECT_EQ(collector.runs(), 2u);
    EXPECT_EQ(collector.cells(), 3u);
    EXPECT_EQ(collector.campaigns(), 2u);
    EXPECT_EQ(collector.label(0), "unicast");
    EXPECT_EQ(collector.label(1), "dr-sc");

    CampaignSink* sink = collector.sink(1, 2, 1);
    ASSERT_NE(sink, nullptr);
    EXPECT_EQ(sink, collector.sink(1, 2, 1));  // stable address
    sink->emit(EventKind::tx_multicast, 7, 9, 0, 0);
    EXPECT_EQ(collector.slot(1, 2, 1).counter(EventKind::tx_multicast), 1u);
    // Distinct slots are distinct sinks.
    EXPECT_EQ(collector.slot(0, 0, 0).records().size(), 0u);

    CampaignSink* city = collector.city_sink(0);
    ASSERT_NE(city, nullptr);
    city->emit(EventKind::backhaul_chunk, 0, 2, 40, 10);
    EXPECT_EQ(collector.city_slot(0).counter(EventKind::backhaul_chunk), 1u);
}

TEST(CollectorTest, RejectsEmptyDimensions) {
    EXPECT_THROW((Collector{kFull, 0, 1, {"unicast"}}), std::invalid_argument);
    EXPECT_THROW((Collector{kFull, 1, 0, {"unicast"}}), std::invalid_argument);
    EXPECT_THROW((Collector{kFull, 1, 1, {}}), std::invalid_argument);
}

TEST(ExportTest, TraceJsonlRendersOneRecordPerLineWithEscaping) {
    Collector collector{kFull, 1, 1, {R"(uni"cast)"}};
    collector.sink(0, 0, 0)->emit(EventKind::rach_attempt, 42, 7, 3, 5);
    collector.city_sink(0)->emit(EventKind::backhaul_chunk, 0, 0, 40, 10);
    const std::string jsonl = telemetry::trace_jsonl(collector);
    EXPECT_EQ(jsonl,
              "{\"run\":0,\"cell\":0,\"campaign\":\"uni\\\"cast\","
              "\"stratum\":-1,\"at\":42,\"kind\":\"rach_attempt\","
              "\"device\":7,\"a\":3,\"b\":5}\n"
              "{\"run\":0,\"cell\":0,\"campaign\":\"coordinator\","
              "\"stratum\":-1,\"at\":0,\"kind\":\"backhaul_chunk\","
              "\"device\":0,\"a\":40,\"b\":10}\n");
}

TEST(ExportTest, MetricsTableSumsAcrossRunsAndCells) {
    Collector collector{kFull, 2, 2, {"unicast"}};
    collector.sink(0, 0, 0)->emit(EventKind::rach_attempt, 0, 1, 0, 0);
    collector.sink(0, 1, 0)->emit(EventKind::rach_attempt, 0, 1, 0, 0);
    collector.sink(1, 0, 0)->emit(EventKind::rach_attempt, 150, 1, 0, 0);
    const std::string csv = telemetry::metrics_table(collector).to_csv();
    EXPECT_NE(csv.find("campaign,metric,window_start_ms,value"),
              std::string::npos)
        << csv;
    // Counter row: three attempts summed across (run, cell) slots.
    EXPECT_NE(csv.find("unicast,rach_attempt,-,3"), std::string::npos) << csv;
    // Series rows: two in bucket [0, 100), one in bucket [100, 200).
    EXPECT_NE(csv.find("unicast,rach_attempt,0,2"), std::string::npos) << csv;
    EXPECT_NE(csv.find("unicast,rach_attempt,100,1"), std::string::npos) << csv;
}

TEST(ExportTest, TimelineCarriesSpansMetadataAndSentinel) {
    Collector collector{kFull, 1, 1, {"unicast"}};
    // campaign_span: a = devices, b = horizon (ms).
    collector.sink(0, 0, 0)->emit_span(EventKind::campaign_span,
                                       telemetry::kNoStratum, 40, 5000);
    collector.city_sink(0)->emit(EventKind::backhaul_chunk, 0, 0, 80, 40);
    const std::string json = telemetry::timeline_json(collector);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"name\":\"cell 0\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"name\":\"backhaul feed\""), std::string::npos)
        << json;
    // The campaign slice: ts/dur are microseconds (ms * 1000).
    EXPECT_NE(json.find("{\"ph\":\"X\",\"pid\":0,\"tid\":1,"
                        "\"name\":\"unicast\",\"ts\":0,\"dur\":5000000,"
                        "\"args\":{\"devices\":40}}"),
              std::string::npos)
        << json;
    // Valid JSON array: the sentinel terminates the trailing commas.
    EXPECT_NE(json.find("\"trace_end\""), std::string::npos) << json;
}

/// A small single-cell comparison spec; runs in well under a second.
scenario::ScenarioSpec small_spec() {
    return scenario::ScenarioSpec{}
        .with_name("telemetry-test")
        .with_devices(40)
        .with_payload_bytes(50 * 1024)
        .with_runs(2)
        .with_seed(42)
        .with_inactivity_timer_ms(10'000);
}

TEST(ScenarioTelemetryTest, MetricsCollectionNeverPerturbsResults) {
    const scenario::ScenarioResult off = scenario::run_scenario(small_spec());
    const scenario::ScenarioResult on = scenario::run_scenario(
        small_spec().with_telemetry_modes(true, true));
    ASSERT_TRUE(on.telemetry.has_value());
    EXPECT_FALSE(off.telemetry.has_value());
    // Bit-identical summary: telemetry is purely observational.
    EXPECT_EQ(off.summary_csv(), on.summary_csv());
    EXPECT_GT(on.telemetry->trace_jsonl.size(), 0u);
    ASSERT_TRUE(on.telemetry->metrics.has_value());
}

TEST(ScenarioTelemetryTest, ArtifactsBitIdenticalAcrossThreadsAndStrata) {
    // Strata are semantic (they add stratum tags and span records), so the
    // golden is per strata count; thread count must never matter.
    for (const std::size_t strata : {std::size_t{1}, std::size_t{8}}) {
        const auto run_with = [&](std::size_t threads) {
            return scenario::run_scenario(small_spec()
                                              .with_telemetry_modes(true, true)
                                              .with_strata(strata)
                                              .with_threads(threads));
        };
        const scenario::ScenarioResult one = run_with(1);
        const scenario::ScenarioResult eight = run_with(8);
        ASSERT_TRUE(one.telemetry && eight.telemetry);
        EXPECT_EQ(one.telemetry->trace_jsonl, eight.telemetry->trace_jsonl)
            << "strata=" << strata;
        EXPECT_EQ(one.telemetry->metrics->to_csv(),
                  eight.telemetry->metrics->to_csv())
            << "strata=" << strata;
        EXPECT_EQ(one.summary_csv(), eight.summary_csv())
            << "strata=" << strata;
    }
}

TEST(ScenarioTelemetryDeathTest, UnwritableTraceOutExitsWithUsageError) {
    const scenario::ScenarioSpec spec =
        small_spec().with_trace_out("/nonexistent_nbmg_dir/trace.jsonl");
    EXPECT_EXIT((void)scenario::run_scenario_or_exit(spec),
                ::testing::ExitedWithCode(2), "error:");
}

}  // namespace
}  // namespace nbmg
