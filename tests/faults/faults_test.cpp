// Failure-injection layer: spec validity, the strict "cell@t" spelling,
// the Ue power_off/power_on contract, and campaign-level churn/outage
// effects — including the faults-off identity (a config that spells out
// disabled faults is bit-identical to one that never mentions them).
#include "faults/spec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "nbiot/cell.hpp"
#include "nbiot/ue.hpp"
#include "tests/support/campaign_equal.hpp"
#include "traffic/population.hpp"

namespace nbmg::faults {
namespace {

using nbiot::SimTime;

TEST(ChurnSpecTest, DefaultIsDisabledAndValid) {
    const ChurnSpec churn;
    EXPECT_FALSE(churn.enabled());
    EXPECT_TRUE(churn.valid());
}

TEST(ChurnSpecTest, ValidityBoundaries) {
    ChurnSpec churn;
    churn.leave_rate = 2.0;
    churn.rejoin_ms = 0;  // enabled churn needs a rejoin delay
    EXPECT_TRUE(churn.enabled());
    EXPECT_FALSE(churn.valid());
    churn.rejoin_ms = 1;
    EXPECT_TRUE(churn.valid());
    churn.leave_rate = -0.5;
    EXPECT_FALSE(churn.valid());
    churn.leave_rate = std::nan("");
    EXPECT_FALSE(churn.valid());
    churn.leave_rate = std::numeric_limits<double>::infinity();
    EXPECT_FALSE(churn.valid());
}

TEST(ChurnSpecTest, MeanLeaveGapInvertsTheHourlyRate) {
    ChurnSpec churn;
    churn.leave_rate = 2.0;  // two departures per device-hour
    EXPECT_DOUBLE_EQ(churn.mean_leave_gap_ms(), 1'800'000.0);
}

TEST(OutageSpecTest, ValidityRequiresPositiveInstant) {
    EXPECT_FALSE((OutageSpec{0, 0}.valid()));
    EXPECT_FALSE((OutageSpec{3, -5}.valid()));
    EXPECT_TRUE((OutageSpec{3, 1}.valid()));
}

TEST(OutageSpecTest, ParseCellDownAcceptsStrictSpelling) {
    const auto outage = parse_cell_down("3@600000");
    ASSERT_TRUE(outage.has_value());
    EXPECT_EQ(outage->cell, 3u);
    EXPECT_EQ(outage->at_ms, 600'000);
    const auto zero_cell = parse_cell_down("0@1");
    ASSERT_TRUE(zero_cell.has_value());
    EXPECT_EQ(zero_cell->cell, 0u);
    EXPECT_EQ(zero_cell->at_ms, 1);
}

TEST(OutageSpecTest, FormatRoundTrips) {
    const OutageSpec outage{7, 120'000};
    const auto parsed = parse_cell_down(format_cell_down(outage));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, outage);
}

TEST(OutageSpecTest, ParseCellDownRejectsMalformedSpellings) {
    for (const char* text :
         {"", "3", "@5", "3@", "3@0", "-1@5", "3@-7", "x@5", "3@1x", "0x3@5",
          "3@0x10", " 3@5", "3@5 ", "3@@5", "3@6e5", "3.0@5"}) {
        EXPECT_FALSE(parse_cell_down(text).has_value()) << "'" << text << "'";
    }
}

// --- Ue power cycle ------------------------------------------------------

class UePowerTest : public ::testing::Test {
protected:
    UePowerTest() : cell_(1234, nbiot::PagingConfig{}, nbiot::RachConfig{},
                          nbiot::TimingModel{}) {}

    nbiot::Ue& make_ue(nbiot::DrxCycle cycle, std::uint64_t imsi = 777'000'111) {
        return cell_.add_ue(nbiot::UeSpec{
            nbiot::DeviceId{static_cast<std::uint32_t>(cell_.ue_count())},
            nbiot::Imsi{imsi}, cycle, nbiot::CeLevel::ce0});
    }

    void run() { cell_.simulation().queue().run_all(); }

    nbiot::Cell cell_;
    nbiot::TimingModel timing_{};
};

TEST_F(UePowerTest, PowerOffFreezesAccountingAndListening) {
    nbiot::Ue& ue = make_ue(nbiot::drx::seconds_2_56());
    const SimTime horizon{60'000};
    ue.start_monitoring(horizon);
    ue.power_off();
    run();
    EXPECT_FALSE(ue.powered());
    EXPECT_EQ(ue.po_count(), 0u);
    EXPECT_EQ(ue.energy().uptime(nbiot::PowerState::po_monitor), SimTime{0});
    const SimTime po = cell_.paging().first_po_at_or_after(SimTime{0}, ue.imsi(),
                                                           ue.current_cycle());
    EXPECT_FALSE(ue.listening_at(po));
}

TEST_F(UePowerTest, PowerOnChargesReattachAndResumesMonitoring) {
    nbiot::Ue& ue = make_ue(nbiot::drx::seconds_2_56());
    const SimTime horizon{120'000};
    const SimTime rejoin{30'000};
    ue.start_monitoring(horizon);
    ue.power_off();
    cell_.simulation().queue().schedule_at(rejoin, [&] { ue.power_on(); });
    run();
    EXPECT_TRUE(ue.powered());
    EXPECT_EQ(ue.state(), nbiot::UeState::idle);
    EXPECT_EQ(ue.current_cycle(), ue.original_cycle());
    // One clean RACH exchange plus RRC setup/release, charged analytically.
    EXPECT_EQ(ue.energy().uptime(nbiot::PowerState::rach),
              cell_.rach().config().attempt_active_time());
    EXPECT_EQ(ue.energy().uptime(nbiot::PowerState::connected_signaling),
              timing_.rrc_setup + timing_.rrc_release);
    // PO monitoring resumes from the rejoin instant, not from zero.
    const std::int64_t expected = cell_.paging().po_count_in_range(
        rejoin + SimTime{1}, horizon, ue.imsi(), ue.current_cycle());
    EXPECT_EQ(static_cast<std::int64_t>(ue.po_count()), expected);
    EXPECT_GT(expected, 0);
}

TEST_F(UePowerTest, DoublePowerTransitionsThrow) {
    nbiot::Ue& ue = make_ue(nbiot::drx::seconds_2_56());
    ue.start_monitoring(SimTime{60'000});
    EXPECT_THROW(ue.power_on(), std::logic_error);  // already on
    ue.power_off();
    EXPECT_THROW(ue.power_off(), std::logic_error);  // already off
    ue.power_on();
    EXPECT_THROW(ue.power_on(), std::logic_error);
}

TEST_F(UePowerTest, HaltMonitoringClosesTheLedgerWithoutPoweringOff) {
    nbiot::Ue& ue = make_ue(nbiot::drx::seconds_2_56());
    ue.start_monitoring(SimTime{60'000});
    ue.halt_monitoring();
    run();
    EXPECT_TRUE(ue.powered());
    EXPECT_EQ(ue.po_count(), 0u);
    EXPECT_EQ(ue.energy().uptime(nbiot::PowerState::po_monitor), SimTime{0});
}

// --- campaign-level effects ---------------------------------------------

std::vector<nbiot::UeSpec> make_population(std::size_t n, std::uint64_t seed) {
    sim::RandomStream rng{seed};
    return traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), n, rng));
}

core::CampaignResult run_campaign(core::MechanismKind kind,
                                  std::span<const nbiot::UeSpec> devices,
                                  const core::CampaignConfig& config,
                                  std::uint64_t seed = 7) {
    return core::plan_and_run(*core::make_mechanism(kind), devices, config,
                              100 * 1024, seed);
}

SimTime total_uptime(const core::CampaignResult& result,
                     nbiot::PowerState state) {
    SimTime total{0};
    for (const core::DeviceOutcome& device : result.devices) {
        total = total + device.energy.uptime(state);
    }
    return total;
}

TEST(FaultsCampaignTest, ExplicitFaultsOffIsBitIdenticalToDefault) {
    const auto devices = make_population(60, 11);
    const core::CampaignConfig plain;
    core::CampaignConfig spelled_out;
    spelled_out.churn = ChurnSpec{};  // leave_rate 0: disabled
    spelled_out.outage_at_ms = -1;
    const core::CampaignResult a =
        run_campaign(core::MechanismKind::dr_sc, devices, plain);
    const core::CampaignResult b =
        run_campaign(core::MechanismKind::dr_sc, devices, spelled_out);
    test_support::expect_campaign_results_equal(a, b);
    EXPECT_EQ(a.churn_leaves, 0u);
    EXPECT_EQ(a.stranded, 0u);
    EXPECT_EQ(a.redelivery_bytes, 0);
}

TEST(FaultsCampaignTest, ChurnRecordsLeavesAndReattachSignaling) {
    const auto devices = make_population(60, 11);
    core::CampaignConfig faulted;
    faulted.churn.leave_rate = 50.0;  // aggressive: hourly-scale horizons
    faulted.churn.rejoin_ms = 60'000;
    const core::CampaignResult churned =
        run_campaign(core::MechanismKind::dr_sc, devices, faulted);
    const core::CampaignResult baseline = run_campaign(
        core::MechanismKind::dr_sc, devices, core::CampaignConfig{});
    EXPECT_GT(churned.churn_leaves, 0u);
    // Horizons are derived from the population and payload only, so the
    // comparison axis is unchanged by churn.
    EXPECT_EQ(churned.observation_horizon, baseline.observation_horizon);
    // Every rejoin pays one clean RACH exchange, so total RACH uptime
    // strictly exceeds the faults-off run's.
    EXPECT_GT(total_uptime(churned, nbiot::PowerState::rach),
              total_uptime(baseline, nbiot::PowerState::rach));
}

TEST(FaultsCampaignTest, ChurnedDeliveryMissesCountRedeliveryBytes) {
    const auto devices = make_population(300, 5);
    core::CampaignConfig faulted;
    // Moderate churn: devices survive to their next paging occasion after
    // rejoin, so a missed shared delivery is actually recovered (extreme
    // rates just keep re-departing before the recovery page can land).
    faulted.churn.leave_rate = 30.0;
    faulted.churn.rejoin_ms = 120'000;
    const core::CampaignResult result =
        run_campaign(core::MechanismKind::da_sc, devices, faulted);
    EXPECT_GT(result.churn_leaves, 0u);
    // With departures this dense some device misses the shared bearer and
    // is re-served by a dedicated copy, which is fault overhead.
    EXPECT_GT(result.redelivery_bytes, 0);
    EXPECT_EQ(result.redelivery_bytes % result.payload_bytes, 0);
}

TEST(FaultsCampaignTest, OutageStrandsIncompleteDevices) {
    const auto devices = make_population(60, 11);
    core::CampaignConfig faulted;
    faulted.outage_at_ms = 60'000;  // long before eDRX tails complete
    const core::CampaignResult result =
        run_campaign(core::MechanismKind::dr_sc, devices, faulted);
    EXPECT_GT(result.stranded, 0u);
    std::size_t unreceived = 0;
    for (const core::DeviceOutcome& device : result.devices) {
        unreceived += device.received ? 0 : 1;
    }
    EXPECT_EQ(result.stranded, unreceived);
    EXPECT_LT(result.received_count(), devices.size());
    // The horizon is derived before the outage fires, so the comparison
    // axis is the same one a healthy run would report.
    const core::CampaignResult healthy = run_campaign(
        core::MechanismKind::dr_sc, devices, core::CampaignConfig{});
    EXPECT_EQ(result.observation_horizon, healthy.observation_horizon);
}

}  // namespace
}  // namespace nbmg::faults
