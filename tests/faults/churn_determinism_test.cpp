// Property battery for the failure-injection layer: faulted runs (churn,
// cell outage, lossy backhaul) stay bit-identical at any --threads for
// every strata shape — telemetry artifacts byte for byte included — while
// faults-on and faults-off runs genuinely differ; and a checkpointed run
// interrupted before an injected outage resumes to aggregates identical
// to the uninterrupted faulted run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>

#include "faults/spec.hpp"
#include "scenario/run.hpp"
#include "sim/random.hpp"
#include "snapshot/checkpoint.hpp"
#include "tests/support/deployment_equal.hpp"

namespace nbmg::scenario {
namespace {

struct Shape {
    std::size_t strata;
    std::size_t threads_a;
    std::size_t threads_b;
};

/// A faulted single-cell workload: aggressive churn so departures land in
/// every run, telemetry on so the fault events are compared byte for byte.
ScenarioSpec churn_spec(std::size_t strata) {
    ScenarioSpec spec;
    spec.name = "churn-property";
    spec.device_count = 50;
    spec.runs = 3;
    spec.payload_bytes = 60 * 1024;
    spec.base_seed = 90'210;
    spec.with_strata(strata);
    spec.with_churn(40.0, 90'000);
    spec.with_telemetry_modes(true, true);
    return spec;
}

/// A multicell workload with all three fault classes engaged: churn, a
/// mid-campaign outage of cell 1, and 10% backhaul chunk loss.
ScenarioSpec faulted_city_spec(std::size_t strata) {
    ScenarioSpec spec;
    spec.name = "faulted-city-property";
    spec.device_count = 120;
    spec.runs = 2;
    spec.payload_bytes = 60 * 1024;
    spec.base_seed = 4'242;
    spec.with_strata(strata);
    spec.with_cells(3);
    spec.with_backhaul_kbps(256.0);
    spec.with_backhaul_loss(0.1);
    spec.with_churn(20.0, 120'000);
    spec.with_cell_down(faults::OutageSpec{1, 60'000});
    spec.with_telemetry_modes(true, true);
    return spec;
}

void expect_comparison_equal(const ScenarioResult& a, const ScenarioResult& b) {
    test_support::expect_mechanism_stats_equal(a.comparison().unicast,
                                               b.comparison().unicast);
    ASSERT_EQ(a.comparison().mechanisms.size(), b.comparison().mechanisms.size());
    for (std::size_t m = 0; m < a.comparison().mechanisms.size(); ++m) {
        test_support::expect_mechanism_stats_equal(a.comparison().mechanisms[m],
                                                   b.comparison().mechanisms[m]);
    }
}

void expect_telemetry_equal(const ScenarioResult& a, const ScenarioResult& b) {
    ASSERT_TRUE(a.telemetry.has_value());
    ASSERT_TRUE(b.telemetry.has_value());
    EXPECT_EQ(a.telemetry->trace_jsonl, b.telemetry->trace_jsonl);
    EXPECT_EQ(a.telemetry->timeline_json, b.telemetry->timeline_json);
    ASSERT_TRUE(a.telemetry->metrics.has_value());
    ASSERT_TRUE(b.telemetry->metrics.has_value());
    EXPECT_EQ(a.telemetry->metrics->to_csv(), b.telemetry->metrics->to_csv());
}

class FaultDeterminismProperty : public ::testing::TestWithParam<Shape> {};

TEST_P(FaultDeterminismProperty, ChurnedComparisonIsThreadInvariant) {
    const Shape shape = GetParam();
    ScenarioSpec a = churn_spec(shape.strata);
    a.with_threads(shape.threads_a);
    ScenarioSpec b = churn_spec(shape.strata);
    b.with_threads(shape.threads_b);
    const ScenarioResult ra = run_scenario(a);
    const ScenarioResult rb = run_scenario(b);
    expect_comparison_equal(ra, rb);
    expect_telemetry_equal(ra, rb);
    // The fault process actually fired: the trace carries churn events.
    EXPECT_NE(ra.telemetry->trace_jsonl.find("device_leave"), std::string::npos);
}

TEST_P(FaultDeterminismProperty, FaultedCityIsThreadInvariant) {
    const Shape shape = GetParam();
    ScenarioSpec a = faulted_city_spec(shape.strata);
    a.with_threads(shape.threads_a);
    ScenarioSpec b = faulted_city_spec(shape.strata);
    b.with_threads(shape.threads_b);
    const ScenarioResult ra = run_scenario(a);
    const ScenarioResult rb = run_scenario(b);
    test_support::expect_deployment_results_equal(ra.deployment(),
                                                  rb.deployment());
    ASSERT_TRUE(ra.coordination.has_value());
    ASSERT_TRUE(rb.coordination.has_value());
    EXPECT_TRUE(ra.coordination->completion_ms == rb.coordination->completion_ms);
    EXPECT_TRUE(ra.coordination->backhaul_busy_ms ==
                rb.coordination->backhaul_busy_ms);
    EXPECT_TRUE(ra.coordination->redelivered_bytes ==
                rb.coordination->redelivered_bytes);
    expect_telemetry_equal(ra, rb);
    // All three fault classes left their marks.
    EXPECT_NE(ra.telemetry->trace_jsonl.find("device_leave"), std::string::npos);
    EXPECT_NE(ra.telemetry->trace_jsonl.find("cell_outage"), std::string::npos);
    EXPECT_GT(ra.coordination->redelivered_bytes.mean(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, FaultDeterminismProperty,
                         ::testing::Values(Shape{1, 1, 8}, Shape{8, 1, 8}),
                         [](const auto& info) {
                             return "strata" + std::to_string(info.param.strata) +
                                    "_t" + std::to_string(info.param.threads_a) +
                                    "v" + std::to_string(info.param.threads_b);
                         });

TEST(FaultDeterminismTest, ChurnOnActuallyDiffersFromOff) {
    ScenarioSpec off = churn_spec(1);
    off.config.churn = faults::ChurnSpec{};
    off.with_threads(1);
    ScenarioSpec on = churn_spec(1);
    on.with_threads(1);
    const ScenarioResult roff = run_scenario(off);
    const ScenarioResult ron = run_scenario(on);
    // Departed devices sleep through paging occasions they would have
    // monitored, so the light-sleep aggregate cannot coincide.
    EXPECT_FALSE(ron.comparison().mechanisms[0].mean_light_sleep_seconds ==
                 roff.comparison().mechanisms[0].mean_light_sleep_seconds);
    EXPECT_EQ(roff.telemetry->trace_jsonl.find("device_leave"),
              std::string::npos);
}

TEST(FaultDeterminismTest, CheckpointResumeThroughOutageMatchesUninterrupted) {
    const ScenarioSpec base = [] {
        ScenarioSpec spec = faulted_city_spec(8);
        spec.with_telemetry_modes(true, true);
        return spec;
    }();
    const std::string snap =
        testing::TempDir() + "churn_outage_checkpoint.bin";
    std::remove(snap.c_str());

    ScenarioSpec full = base;
    full.with_threads(1);
    const ScenarioResult expected = run_scenario(full);

    // Interrupt after half the (run, cell) grid — before some of the
    // outage-afflicted tasks have executed.
    const std::uint64_t budget = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(base.runs) * base.cell_count() / 2);
    ScenarioSpec interrupted = base;
    interrupted.with_threads(1)
        .with_checkpoint_out(snap)
        .with_checkpoint_stop_after(budget);
    bool stopped = false;
    try {
        (void)run_scenario(interrupted);
    } catch (const snapshot::CheckpointStop& stop) {
        stopped = true;
        EXPECT_GE(stop.completed(), budget);
    }
    ASSERT_TRUE(stopped) << "stop budget " << budget << " never fired";

    ScenarioSpec resumed = base;
    resumed.with_threads(8).with_resume(snap);
    const ScenarioResult actual = run_scenario(resumed);
    test_support::expect_deployment_results_equal(actual.deployment(),
                                                  expected.deployment());
    expect_telemetry_equal(actual, expected);
    std::remove(snap.c_str());
}

}  // namespace
}  // namespace nbmg::scenario
