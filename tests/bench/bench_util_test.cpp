// Unit coverage for the bench harness flag parsing, in particular the
// multicell --cells/--assignment flags: absent flags fall back, valid
// values parse, and every malformed spelling exits with the usage status
// (2) instead of silently using a default.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nbmg::bench {
namespace {

/// argv builder: argv[0] is the program name, the rest the given tokens.
template <std::size_t N>
struct Args {
    std::array<const char*, N + 1> tokens;
    int argc = static_cast<int>(N + 1);

    explicit Args(const std::array<const char*, N>& rest) {
        tokens[0] = "bench_test";
        for (std::size_t i = 0; i < N; ++i) tokens[i + 1] = rest[i];
    }
    [[nodiscard]] char** argv() {
        return const_cast<char**>(tokens.data());
    }
};

TEST(BenchFlagTest, AbsentFlagsFallBack) {
    Args<0> args({});
    EXPECT_EQ(flag_value(args.argc, args.argv(), "--runs", 50), 50u);
    EXPECT_EQ(flag_u64(args.argc, args.argv(), "--seed", 42), 42u);
    EXPECT_EQ(flag_cells(args.argc, args.argv()), 1u);
    EXPECT_EQ(flag_cells(args.argc, args.argv(), 16), 16u);
    EXPECT_EQ(flag_assignment(args.argc, args.argv()),
              multicell::AssignmentPolicy::uniform_hash);
    EXPECT_EQ(flag_assignment(args.argc, args.argv(),
                              multicell::AssignmentPolicy::hotspot),
              multicell::AssignmentPolicy::hotspot);
}

TEST(BenchFlagTest, ValidValuesParse) {
    Args<4> cells({"--cells", "64", "--seed", "0"});
    EXPECT_EQ(flag_cells(cells.argc, cells.argv()), 64u);
    EXPECT_EQ(flag_u64(cells.argc, cells.argv(), "--seed", 42), 0u);

    Args<2> uniform({"--assignment", "uniform"});
    EXPECT_EQ(flag_assignment(uniform.argc, uniform.argv()),
              multicell::AssignmentPolicy::uniform_hash);
    Args<2> hotspot({"--assignment", "hotspot"});
    EXPECT_EQ(flag_assignment(hotspot.argc, hotspot.argv()),
              multicell::AssignmentPolicy::hotspot);
    Args<2> affinity({"--assignment", "class-affinity"});
    EXPECT_EQ(flag_assignment(affinity.argc, affinity.argv()),
              multicell::AssignmentPolicy::class_affinity);
}

TEST(BenchFlagDeathTest, MalformedCellCountsRejected) {
    Args<2> zero({"--cells", "0"});
    EXPECT_EXIT((void)flag_cells(zero.argc, zero.argv()),
                ::testing::ExitedWithCode(2), "value must be >= 1");
    Args<2> junk({"--cells", "16x"});
    EXPECT_EXIT((void)flag_cells(junk.argc, junk.argv()),
                ::testing::ExitedWithCode(2), "not a decimal integer");
    Args<2> negative({"--cells", "-4"});
    EXPECT_EXIT((void)flag_cells(negative.argc, negative.argv()),
                ::testing::ExitedWithCode(2), "must be non-negative");
    Args<1> missing({"--cells"});
    EXPECT_EXIT((void)flag_cells(missing.argc, missing.argv()),
                ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchFlagDeathTest, MalformedAssignmentsRejected) {
    Args<2> unknown({"--assignment", "zipf"});
    EXPECT_EXIT((void)flag_assignment(unknown.argc, unknown.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<2> cased({"--assignment", "Uniform"});
    EXPECT_EXIT((void)flag_assignment(cased.argc, cased.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<2> empty({"--assignment", ""});
    EXPECT_EXIT((void)flag_assignment(empty.argc, empty.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<1> missing({"--assignment"});
    EXPECT_EXIT((void)flag_assignment(missing.argc, missing.argv()),
                ::testing::ExitedWithCode(2), "missing value");
}

}  // namespace
}  // namespace nbmg::bench
