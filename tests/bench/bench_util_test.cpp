// Unit coverage for the bench harness flag parsing, in particular the
// multicell --cells/--assignment flags: absent flags fall back, valid
// values parse, and every malformed spelling exits with the usage status
// (2) instead of silently using a default.
#include "bench/bench_util.hpp"

#include <gtest/gtest.h>

#include <array>

namespace nbmg::bench {
namespace {

/// argv builder: argv[0] is the program name, the rest the given tokens.
template <std::size_t N>
struct Args {
    std::array<const char*, N + 1> tokens;
    int argc = static_cast<int>(N + 1);

    explicit Args(const std::array<const char*, N>& rest) {
        tokens[0] = "bench_test";
        for (std::size_t i = 0; i < N; ++i) tokens[i + 1] = rest[i];
    }
    [[nodiscard]] char** argv() {
        return const_cast<char**>(tokens.data());
    }
};

TEST(BenchFlagTest, AbsentFlagsFallBack) {
    Args<0> args({});
    EXPECT_EQ(flag_value(args.argc, args.argv(), "--runs", 50), 50u);
    EXPECT_EQ(flag_u64(args.argc, args.argv(), "--seed", 42), 42u);
    EXPECT_EQ(flag_cells(args.argc, args.argv()), 1u);
    EXPECT_EQ(flag_cells(args.argc, args.argv(), 16), 16u);
    EXPECT_EQ(flag_assignment(args.argc, args.argv()),
              multicell::AssignmentPolicy::uniform_hash);
    EXPECT_EQ(flag_assignment(args.argc, args.argv(),
                              multicell::AssignmentPolicy::hotspot),
              multicell::AssignmentPolicy::hotspot);
}

TEST(BenchFlagTest, ValidValuesParse) {
    Args<4> cells({"--cells", "64", "--seed", "0"});
    EXPECT_EQ(flag_cells(cells.argc, cells.argv()), 64u);
    EXPECT_EQ(flag_u64(cells.argc, cells.argv(), "--seed", 42), 0u);

    Args<2> uniform({"--assignment", "uniform"});
    EXPECT_EQ(flag_assignment(uniform.argc, uniform.argv()),
              multicell::AssignmentPolicy::uniform_hash);
    Args<2> hotspot({"--assignment", "hotspot"});
    EXPECT_EQ(flag_assignment(hotspot.argc, hotspot.argv()),
              multicell::AssignmentPolicy::hotspot);
    Args<2> affinity({"--assignment", "class-affinity"});
    EXPECT_EQ(flag_assignment(affinity.argc, affinity.argv()),
              multicell::AssignmentPolicy::class_affinity);
}

TEST(BenchFlagDeathTest, MalformedCellCountsRejected) {
    Args<2> zero({"--cells", "0"});
    EXPECT_EXIT((void)flag_cells(zero.argc, zero.argv()),
                ::testing::ExitedWithCode(2), "value must be >= 1");
    Args<2> junk({"--cells", "16x"});
    EXPECT_EXIT((void)flag_cells(junk.argc, junk.argv()),
                ::testing::ExitedWithCode(2), "not a decimal integer");
    Args<2> negative({"--cells", "-4"});
    EXPECT_EXIT((void)flag_cells(negative.argc, negative.argv()),
                ::testing::ExitedWithCode(2), "must be non-negative");
    Args<1> missing({"--cells"});
    EXPECT_EXIT((void)flag_cells(missing.argc, missing.argv()),
                ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchFlagDeathTest, ScenarioAndPresetResolutionRejected) {
    // Unknown preset: exits with the usage status and lists the registered
    // names so a typo is self-diagnosing.
    Args<2> unknown({"--preset", "figure-8"});
    EXPECT_EXIT((void)spec_from_args(unknown.argc, unknown.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "unknown preset");
    EXPECT_EXIT((void)spec_from_args(unknown.argc, unknown.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "fig6a | fig6b");
    // Unreadable scenario file.
    Args<2> missing_file({"--scenario", "/no/such/file.scenario"});
    EXPECT_EXIT(
        (void)spec_from_args(missing_file.argc, missing_file.argv(), "fig6a"),
        ::testing::ExitedWithCode(2), "cannot read scenario file");
    // The two sources are mutually exclusive.
    Args<4> both({"--scenario", "x.scenario", "--preset", "fig6a"});
    EXPECT_EXIT((void)spec_from_args(both.argc, both.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "mutually exclusive");
    // Malformed override values still die strictly after resolution.
    Args<4> bad_override({"--preset", "fig6a", "--runs", "many"});
    EXPECT_EXIT(
        (void)spec_from_args(bad_override.argc, bad_override.argv(), "fig6a"),
        ::testing::ExitedWithCode(2), "not a decimal integer");
}

TEST(BenchFlagTest, StrataOverrideApplies) {
    Args<4> args({"--preset", "fig6a", "--strata", "8"});
    const scenario::ScenarioSpec spec =
        spec_from_args(args.argc, args.argv(), "fig6a");
    EXPECT_EQ(spec.config.strata, 8u);
}

TEST(BenchFlagDeathTest, MalformedStrataRejected) {
    Args<4> zero({"--preset", "fig6a", "--strata", "0"});
    EXPECT_EXIT((void)spec_from_args(zero.argc, zero.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "value must be >= 1");
    Args<4> junk({"--preset", "fig6a", "--strata", "4x"});
    EXPECT_EXIT((void)spec_from_args(junk.argc, junk.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a decimal integer");
    // Above the kMaxStrata cap: rejected, not silently rounded (rounding is
    // reserved for valid requests flowing through resolve_strata).
    Args<4> over({"--preset", "fig6a", "--strata", "33"});
    EXPECT_EXIT((void)spec_from_args(over.argc, over.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "value out of range");
    Args<3> missing({"--preset", "fig6a", "--strata"});
    EXPECT_EXIT((void)spec_from_args(missing.argc, missing.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchFlagTest, SpecFromArgsAppliesOverrides) {
    Args<8> args({"--preset", "fig6b", "--runs", "7", "--devices", "44",
                  "--payload-kb", "2048"});
    const scenario::ScenarioSpec spec =
        spec_from_args(args.argc, args.argv(), "fig6a");
    EXPECT_EQ(spec.name, "fig6b");
    EXPECT_EQ(spec.runs, 7u);
    EXPECT_EQ(spec.device_count, 44u);
    EXPECT_EQ(spec.payload_bytes, 2048 * 1024);

    Args<4> multicell_args({"--cells", "5", "--assignment", "hotspot"});
    const scenario::ScenarioSpec multicell_spec =
        spec_from_args(multicell_args.argc, multicell_args.argv(), "citywide");
    EXPECT_EQ(multicell_spec.cell_count(), 5u);
    EXPECT_EQ(multicell_spec.assignment,
              nbmg::multicell::AssignmentPolicy::hotspot);
}

TEST(BenchFlagTest, PositionalsSkipFlagValuePairs) {
    Args<5> args({"--preset", "quickstart", "123", "--seed", "9"});
    EXPECT_STREQ(positional_text(args.argc, args.argv(), 0), "123");
    EXPECT_EQ(positional_value(args.argc, args.argv(), 0, 1), 123u);
    EXPECT_EQ(positional_u64(args.argc, args.argv(), 1, 77), 77u);
}

TEST(BenchFlagDeathTest, MalformedPositionalsRejected) {
    Args<1> junk({"12x"});
    EXPECT_EXIT((void)positional_value(junk.argc, junk.argv(), 0, 1),
                ::testing::ExitedWithCode(2), "not a decimal integer");
}

TEST(BenchFlagDeathTest, UnknownFlagCannotSwallowAPositional) {
    // '--bogus 800 8' must not silently shift the positionals.
    Args<3> args({"--bogus", "800", "8"});
    EXPECT_EXIT((void)positional_value(args.argc, args.argv(), 0, 1),
                ::testing::ExitedWithCode(2), "unknown flag");
}

TEST(BenchFlagDeathTest, SingleCellShellsRejectMulticellScenarios) {
    // A multicell spec reaching a single-cell shell is a usage error (exit
    // 2 naming the binary), never a std::bad_variant_access abort or a
    // silently ignored topology.
    EXPECT_EXIT((void)require_single_cell(
                    scenario::ScenarioSpec{}.with_cells(4), "fig6a_test"),
                ::testing::ExitedWithCode(2),
                "fig6a_test drives the single-cell engine");
}

TEST(BenchFlagTest, RequireSingleCellPassesThroughSingleCellSpecs) {
    const scenario::ScenarioSpec spec = scenario::ScenarioSpec{}.with_devices(7);
    EXPECT_EQ(require_single_cell(spec, "test").device_count, 7u);
}

TEST(BenchFlagDeathTest, MisspelledFlagsRejectedBySpecResolution) {
    // A typoed override must not silently run the default experiment.
    Args<2> typo({"--devces", "5"});
    EXPECT_EXIT((void)spec_from_args(typo.argc, typo.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "unknown flag");
    // Shell-declared extra flags pass the scan.
    scenario::ShellFlags shell;
    shell.value_flags = {"--updates-per-year"};
    shell.bare_flags = {"--csv"};
    shell.prefixes = {"--benchmark_"};
    Args<5> extras({"--updates-per-year", "6", "--csv", "--benchmark_filter",
                    "foo"});
    EXPECT_EQ(spec_from_args(extras.argc, extras.argv(), "fig6a", shell).name,
              "fig6a");
}

TEST(BenchFlagDeathTest, PayloadKbOverrideCannotWrapInt64) {
    Args<4> args({"--preset", "fig6a", "--payload-kb", "18014398509481985"});
    EXPECT_EXIT((void)spec_from_args(args.argc, args.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "value out of range");
}

TEST(BenchFlagDeathTest, SpecFromArgsValidatesTheFinalSpec) {
    // Overrides are applied before validation, so an impossible resolved
    // spec dies with a usage error instead of deep in the engine.
    Args<4> args({"--preset", "fig6a", "--payload-kb", "0"});
    EXPECT_EXIT((void)spec_from_args(args.argc, args.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "value must be >= 1");
}

TEST(BenchFlagDeathTest, AssignmentOverrideRequiresMulticell) {
    // Mirrors the file parser's "multicell keys require 'cells'" rule.
    Args<4> args({"--preset", "fig6a", "--assignment", "hotspot"});
    EXPECT_EXIT((void)spec_from_args(args.argc, args.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "requires a multicell scenario");
}

TEST(BenchFlagTest, CellsOverridePreservesTopologyKind) {
    Args<2> args({"--cells", "9"});
    scenario::ScenarioSpec spec =
        scenario::ScenarioSpec{}.with_hotspot(4, 1.5);
    apply_spec_overrides(spec, args.argc, args.argv());
    EXPECT_EQ(spec.cell_count(), 9u);
    EXPECT_EQ(spec.topology->kind, scenario::TopologySpec::Kind::hotspot);
    EXPECT_EQ(spec.topology->hotspot_exponent, 1.5);
}

TEST(BenchFlagTest, CoordinatorOverridesApply) {
    Args<6> staggered({"--cells", "8", "--coordinator", "fixed-stagger",
                       "--stagger-ms", "45000"});
    scenario::ScenarioSpec spec;
    apply_spec_overrides(spec, staggered.argc, staggered.argv());
    ASSERT_TRUE(spec.is_coordinated());
    EXPECT_EQ(spec.coordinator->policy, multicell::StartPolicy::fixed_stagger);
    EXPECT_EQ(spec.coordinator->stagger_ms, 45'000);

    Args<6> budgeted({"--cells", "8", "--coordinator", "backhaul",
                      "--backhaul-kbps", "128.5"});
    scenario::ScenarioSpec backhaul;
    apply_spec_overrides(backhaul, budgeted.argc, budgeted.argv());
    ASSERT_TRUE(backhaul.is_coordinated());
    EXPECT_EQ(backhaul.coordinator->policy,
              multicell::StartPolicy::backhaul_budgeted);
    EXPECT_EQ(backhaul.coordinator->backhaul_kbps, 128.5);

    // "none" clears a preset's coordinator; the knob flags then have no
    // policy to attach to (covered by the death tests below).
    Args<2> cleared({"--coordinator", "none"});
    scenario::ScenarioSpec preset =
        scenario::ScenarioSpec{}.with_cells(4).with_stagger_ms(1'000);
    apply_spec_overrides(preset, cleared.argc, cleared.argv());
    EXPECT_FALSE(preset.is_coordinated());

    // A same-policy override keeps the scenario's knobs.
    Args<2> same({"--coordinator", "fixed-stagger"});
    scenario::ScenarioSpec keep =
        scenario::ScenarioSpec{}.with_cells(4).with_stagger_ms(7'000);
    apply_spec_overrides(keep, same.argc, same.argv());
    EXPECT_EQ(keep.coordinator->stagger_ms, 7'000);
}

TEST(BenchFlagDeathTest, CoordinatorOverridesValidated) {
    Args<2> single_cell({"--coordinator", "simultaneous"});
    EXPECT_EXIT((void)spec_from_args(single_cell.argc, single_cell.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "requires a multicell scenario");

    Args<4> unknown({"--cells", "4", "--coordinator", "staggered"});
    EXPECT_EXIT((void)spec_from_args(unknown.argc, unknown.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "unknown start policy");

    // Policy-scoped knobs without their policy.
    Args<4> bare_stagger({"--cells", "4", "--stagger-ms", "1000"});
    EXPECT_EXIT((void)spec_from_args(bare_stagger.argc, bare_stagger.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "fixed-stagger");
    Args<6> wrong_policy({"--cells", "4", "--coordinator", "backhaul",
                          "--stagger-ms", "1000"});
    EXPECT_EXIT((void)spec_from_args(wrong_policy.argc, wrong_policy.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "fixed-stagger");

    // A freshly engaged fixed-stagger needs its stagger (a forgotten
    // --stagger-ms must not silently run simultaneous starts).
    Args<4> no_stagger({"--cells", "4", "--coordinator", "fixed-stagger"});
    EXPECT_EXIT((void)spec_from_args(no_stagger.argc, no_stagger.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "needs a stagger");

    // backhaul needs a usable budget.
    Args<4> no_budget({"--cells", "4", "--coordinator", "backhaul"});
    EXPECT_EXIT((void)spec_from_args(no_budget.argc, no_budget.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "feed budget");
    Args<6> bad_budget({"--cells", "4", "--coordinator", "backhaul",
                        "--backhaul-kbps", "0"});
    EXPECT_EXIT((void)spec_from_args(bad_budget.argc, bad_budget.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "must be > 0");
    Args<6> junk_budget({"--cells", "4", "--coordinator", "backhaul",
                         "--backhaul-kbps", "fast"});
    EXPECT_EXIT((void)spec_from_args(junk_budget.argc, junk_budget.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
    Args<6> inf_budget({"--cells", "4", "--coordinator", "backhaul",
                        "--backhaul-kbps", "inf"});
    EXPECT_EXIT((void)spec_from_args(inf_budget.argc, inf_budget.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "not a finite number");
}

TEST(BenchFlagTest, CheckpointOverridesApply) {
    Args<8> args({"--checkpoint-out", "run.snapshot", "--checkpoint-every-ms",
                  "5000", "--checkpoint-stop-after", "3", "--resume",
                  "prev.snapshot"});
    const scenario::ScenarioSpec spec =
        spec_from_args(args.argc, args.argv(), "fig6a");
    EXPECT_EQ(spec.checkpoint.out, "run.snapshot");
    EXPECT_EQ(spec.checkpoint.every_ms, 5000);
    EXPECT_EQ(spec.checkpoint.stop_after, 3u);
    EXPECT_EQ(spec.checkpoint.resume, "prev.snapshot");
}

TEST(BenchFlagDeathTest, CheckpointOverridesValidated) {
    // The sub-flags need a snapshot path from somewhere.
    Args<2> bare_every({"--checkpoint-every-ms", "5000"});
    EXPECT_EXIT((void)spec_from_args(bare_every.argc, bare_every.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "requires a snapshot path");
    Args<2> bare_stop({"--checkpoint-stop-after", "3"});
    EXPECT_EXIT((void)spec_from_args(bare_stop.argc, bare_stop.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "requires a snapshot path");
    // Value domains: 0 (the default) is expressed by omitting the flag.
    Args<4> zero_every({"--checkpoint-out", "s.bin", "--checkpoint-every-ms",
                        "0"});
    EXPECT_EXIT((void)spec_from_args(zero_every.argc, zero_every.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "must be >= 1");
    Args<4> zero_stop({"--checkpoint-out", "s.bin", "--checkpoint-stop-after",
                       "0"});
    EXPECT_EXIT((void)spec_from_args(zero_stop.argc, zero_stop.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "must be >= 1");
    // Empty paths.
    Args<2> empty_out({"--checkpoint-out", ""});
    EXPECT_EXIT((void)spec_from_args(empty_out.argc, empty_out.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "empty path");
    Args<2> empty_resume({"--resume", ""});
    EXPECT_EXIT((void)spec_from_args(empty_resume.argc, empty_resume.argv(),
                                     "fig6a"),
                ::testing::ExitedWithCode(2), "empty path");
}

TEST(BenchFlagDeathTest, MalformedAssignmentsRejected) {
    Args<2> unknown({"--assignment", "zipf"});
    EXPECT_EXIT((void)flag_assignment(unknown.argc, unknown.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<2> cased({"--assignment", "Uniform"});
    EXPECT_EXIT((void)flag_assignment(cased.argc, cased.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<2> empty({"--assignment", ""});
    EXPECT_EXIT((void)flag_assignment(empty.argc, empty.argv()),
                ::testing::ExitedWithCode(2), "unknown assignment policy");
    Args<1> missing({"--assignment"});
    EXPECT_EXIT((void)flag_assignment(missing.argc, missing.argv()),
                ::testing::ExitedWithCode(2), "missing value");
}

TEST(BenchFlagDeathTest, HexFloatTokensRejectedAtFlagEntryPoints) {
    // strtod happily parses C99 hex-float tokens ('0x10' = 16.0,
    // '0X1p-3' = 0.125); the strict grammar must reject them at every
    // double-valued flag, not run a different experiment.
    Args<4> hex({"--preset", "fig6a", "--churn-leave-rate", "0x10"});
    EXPECT_EXIT((void)spec_from_args(hex.argc, hex.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
    Args<4> hexp({"--preset", "fig6a", "--churn-leave-rate", "0X1p-3"});
    EXPECT_EXIT((void)spec_from_args(hexp.argc, hexp.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
    Args<4> trailing({"--preset", "fig6a", "--churn-leave-rate", "1x"});
    EXPECT_EXIT((void)spec_from_args(trailing.argc, trailing.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
    Args<8> kbps({"--preset", "fig6a", "--cells", "2", "--coordinator",
                  "backhaul", "--backhaul-kbps", "0x10"});
    EXPECT_EXIT((void)spec_from_args(kbps.argc, kbps.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
    Args<10> loss({"--preset", "fig6a", "--cells", "2", "--coordinator",
                   "backhaul", "--backhaul-kbps", "256", "--backhaul-loss",
                   "0x1p-3"});
    EXPECT_EXIT((void)spec_from_args(loss.argc, loss.argv(), "fig6a"),
                ::testing::ExitedWithCode(2), "not a number");
}

TEST(BenchFlagDeathTest, HexTokensRejectedAtPositionalEntryPoint) {
    Args<1> hex({"0x10"});
    EXPECT_EXIT((void)positional_value(hex.argc, hex.argv(), 0, 1),
                ::testing::ExitedWithCode(2), "not a decimal integer");
}

}  // namespace
}  // namespace nbmg::bench
