#include "setcover/window_cover.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "setcover/solvers.hpp"

namespace nbmg::setcover {
namespace {

using sim::SimTime;

std::vector<PoEvent> paper_figure4_events() {
    // Loosely mirrors Fig. 4: 7 devices with scattered POs.
    return {
        {SimTime{100}, 0}, {SimTime{150}, 1}, {SimTime{180}, 2},  // cluster A
        {SimTime{500}, 3}, {SimTime{520}, 4},                      // cluster B
        {SimTime{900}, 5},                                         // loner
        {SimTime{1'300}, 6}, {SimTime{1'350}, 5},                  // cluster C
    };
}

TEST(WindowCoverTest, CoversAllDevicesOnce) {
    sim::RandomStream rng{1};
    const auto result = greedy_window_cover(paper_figure4_events(), SimTime{100}, 7, rng);
    EXPECT_TRUE(result.uncoverable.empty());
    std::set<std::uint32_t> covered;
    for (const auto& w : result.windows) {
        for (const auto d : w.devices) {
            EXPECT_TRUE(covered.insert(d).second) << "device covered twice";
        }
    }
    EXPECT_EQ(covered.size(), 7u);
}

TEST(WindowCoverTest, PicksDensestClusterFirst) {
    sim::RandomStream rng{1};
    const auto result = greedy_window_cover(paper_figure4_events(), SimTime{100}, 7, rng);
    ASSERT_FALSE(result.windows.empty());
    EXPECT_EQ(result.windows.front().devices.size(), 3u);  // cluster A
}

TEST(WindowCoverTest, SingleWindowWhenAllWithinTi) {
    sim::RandomStream rng{2};
    std::vector<PoEvent> events;
    for (std::uint32_t d = 0; d < 10; ++d) {
        events.push_back({SimTime{1'000 + d * 30}, d});
    }
    const auto result = greedy_window_cover(events, SimTime{300}, 10, rng);
    ASSERT_EQ(result.windows.size(), 1u);
    EXPECT_EQ(result.windows.front().devices.size(), 10u);
    EXPECT_EQ(result.windows.front().start, SimTime{1'000});
}

TEST(WindowCoverTest, ZeroWindowGroupsOnlyExactCoincidence) {
    sim::RandomStream rng{3};
    const std::vector<PoEvent> events{
        {SimTime{10}, 0}, {SimTime{10}, 1}, {SimTime{11}, 2}};
    const auto result = greedy_window_cover(events, SimTime{0}, 3, rng);
    EXPECT_EQ(result.windows.size(), 2u);
}

TEST(WindowCoverTest, WindowBoundaryIsInclusive) {
    sim::RandomStream rng{4};
    const std::vector<PoEvent> events{{SimTime{0}, 0}, {SimTime{100}, 1}};
    const auto one = greedy_window_cover(events, SimTime{100}, 2, rng);
    EXPECT_EQ(one.windows.size(), 1u);
    const auto two = greedy_window_cover(events, SimTime{99}, 2, rng);
    EXPECT_EQ(two.windows.size(), 2u);
}

TEST(WindowCoverTest, DevicesWithoutEventsReportedUncoverable) {
    sim::RandomStream rng{5};
    const std::vector<PoEvent> events{{SimTime{10}, 0}};
    const auto result = greedy_window_cover(events, SimTime{50}, 3, rng);
    EXPECT_EQ(result.uncoverable, (std::vector<std::uint32_t>{1, 2}));
}

TEST(WindowCoverTest, EmptyEventsAllUncoverable) {
    sim::RandomStream rng{6};
    const auto result = greedy_window_cover({}, SimTime{50}, 2, rng);
    EXPECT_TRUE(result.windows.empty());
    EXPECT_EQ(result.uncoverable.size(), 2u);
}

TEST(WindowCoverTest, DeviceIdOutOfRangeThrows) {
    sim::RandomStream rng{7};
    const std::vector<PoEvent> events{{SimTime{10}, 5}};
    EXPECT_THROW((void)greedy_window_cover(events, SimTime{50}, 3, rng),
                 std::invalid_argument);
}

TEST(WindowCoverTest, NegativeWindowThrows) {
    sim::RandomStream rng{7};
    EXPECT_THROW((void)greedy_window_cover({}, SimTime{-1}, 0, rng),
                 std::invalid_argument);
}

TEST(WindowCoverTest, MultiplePosPerDeviceAnyOneSuffices) {
    sim::RandomStream rng{8};
    // Device 0 has POs far apart; device 1 sits next to the second one.
    const std::vector<PoEvent> events{
        {SimTime{0}, 0}, {SimTime{10'000}, 0}, {SimTime{10'050}, 1}};
    const auto result = greedy_window_cover(events, SimTime{100}, 2, rng);
    EXPECT_EQ(result.windows.size(), 1u);
    EXPECT_EQ(result.windows.front().start, SimTime{10'000});
}

TEST(WindowCoverTest, DeterministicGivenSeed) {
    auto run = [](std::uint64_t seed) {
        sim::RandomStream rng{seed};
        std::vector<PoEvent> events;
        sim::RandomStream gen{99};
        for (std::uint32_t d = 0; d < 50; ++d) {
            for (int k = 0; k < 3; ++k) {
                events.push_back({SimTime{gen.uniform_int(0, 100'000)}, d});
            }
        }
        const auto result = greedy_window_cover(events, SimTime{2'000}, 50, rng);
        std::vector<std::int64_t> starts;
        for (const auto& w : result.windows) starts.push_back(w.start.count());
        return starts;
    };
    EXPECT_EQ(run(3), run(3));
}

TEST(WindowCoverTest, GreedyMatchesGenericGreedyCount) {
    // The specialized sliding-window greedy and the generic set-cover
    // greedy choose max-coverage sets the same way; with deterministic
    // tie-breaks their cover sizes agree on small instances.
    sim::RandomStream gen{123};
    std::vector<PoEvent> events;
    for (std::uint32_t d = 0; d < 20; ++d) {
        events.push_back({SimTime{gen.uniform_int(0, 5'000)}, d});
    }
    sim::RandomStream rng{1};
    const auto fast = greedy_window_cover(events, SimTime{400}, 20, rng);
    const SetCoverInstance inst = to_set_cover_instance(events, SimTime{400}, 20);
    const SetCoverSolution generic = greedy_cover(inst);
    EXPECT_TRUE(generic.covers_all);
    EXPECT_EQ(fast.windows.size(), generic.chosen.size());
}

TEST(WindowCoverTest, NeverWorseThanExactAndWithinBound) {
    sim::RandomStream gen{5};
    std::vector<PoEvent> events;
    for (std::uint32_t d = 0; d < 12; ++d) {
        events.push_back({SimTime{gen.uniform_int(0, 3'000)}, d});
    }
    sim::RandomStream rng{1};
    const auto fast = greedy_window_cover(events, SimTime{500}, 12, rng);
    const auto exact = exact_cover(to_set_cover_instance(events, SimTime{500}, 12));
    ASSERT_TRUE(exact.has_value());
    EXPECT_GE(fast.windows.size(), exact->chosen.size());
    EXPECT_LE(static_cast<double>(fast.windows.size()),
              harmonic(12) * static_cast<double>(exact->chosen.size()) + 1e-9);
}

/// The seed window-cover greedy, kept verbatim as the trace reference
/// (std::vector<bool> coverage, per-round scratch reset).  The bitset
/// version must produce identical windows and consume the RNG identically.
WindowCoverResult reference_window_cover(std::vector<PoEvent> events,
                                         sim::SimTime window,
                                         std::uint32_t device_count,
                                         sim::RandomStream& rng) {
    struct RoundBest {
        std::size_t anchor = 0;
        std::size_t coverage = 0;
    };
    const auto find_best = [&](const std::vector<PoEvent>& evs,
                               std::vector<std::uint32_t>& counts) {
        counts.assign(device_count, 0);
        std::size_t distinct = 0;
        RoundBest best;
        std::vector<std::size_t> ties;
        std::size_t j = 0;
        for (std::size_t i = 0; i < evs.size(); ++i) {
            const sim::SimTime limit = evs[i].at + window;
            while (j < evs.size() && evs[j].at <= limit) {
                if (counts[evs[j].device]++ == 0) ++distinct;
                ++j;
            }
            if (distinct > best.coverage) {
                best.coverage = distinct;
                best.anchor = i;
                ties.assign(1, i);
            } else if (distinct == best.coverage && distinct > 0) {
                ties.push_back(i);
            }
            if (--counts[evs[i].device] == 0) --distinct;
        }
        if (!ties.empty() && ties.size() > 1) {
            best.anchor = ties[static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(ties.size()) - 1))];
        }
        return best;
    };

    std::sort(events.begin(), events.end(), [](const PoEvent& a, const PoEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.device < b.device;
    });

    WindowCoverResult result;
    std::vector<bool> seen(device_count, false);
    for (const PoEvent& e : events) seen[e.device] = true;
    for (std::uint32_t d = 0; d < device_count; ++d) {
        if (!seen[d]) result.uncoverable.push_back(d);
    }

    std::vector<bool> covered(device_count, false);
    std::vector<std::uint32_t> counts;
    while (!events.empty()) {
        const RoundBest best = find_best(events, counts);
        if (best.coverage == 0) break;
        const sim::SimTime start = events[best.anchor].at;
        const sim::SimTime limit = start + window;
        CoverWindow chosen{start, limit, {}};
        for (std::size_t k = best.anchor;
             k < events.size() && events[k].at <= limit; ++k) {
            const std::uint32_t d = events[k].device;
            if (!covered[d]) {
                covered[d] = true;
                chosen.devices.push_back(d);
            }
        }
        result.windows.push_back(std::move(chosen));
        std::erase_if(events,
                      [&covered](const PoEvent& e) { return covered[e.device]; });
    }
    return result;
}

class WindowCoverTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WindowCoverTraceTest, BitsetGreedyMatchesReference) {
    sim::RandomStream gen{GetParam() * 131 + 5};
    const std::uint32_t devices = 60;
    std::vector<PoEvent> events;
    for (std::uint32_t d = 0; d < devices; ++d) {
        const int pos = static_cast<int>(gen.uniform_int(1, 6));
        for (int k = 0; k < pos; ++k) {
            // Coarse grid -> frequent exact ties between windows.
            events.push_back({SimTime{100 * gen.uniform_int(0, 40)}, d});
        }
    }
    sim::RandomStream ref_rng{GetParam()};
    sim::RandomStream fast_rng{GetParam()};
    const WindowCoverResult ref =
        reference_window_cover(events, SimTime{500}, devices, ref_rng);
    const WindowCoverResult fast =
        greedy_window_cover(events, SimTime{500}, devices, fast_rng);

    EXPECT_EQ(fast.uncoverable, ref.uncoverable);
    ASSERT_EQ(fast.windows.size(), ref.windows.size());
    for (std::size_t w = 0; w < ref.windows.size(); ++w) {
        EXPECT_EQ(fast.windows[w].start, ref.windows[w].start);
        EXPECT_EQ(fast.windows[w].end, ref.windows[w].end);
        EXPECT_EQ(fast.windows[w].devices, ref.windows[w].devices);
    }
    EXPECT_EQ(fast_rng.next_u64(), ref_rng.next_u64());
}

INSTANTIATE_TEST_SUITE_P(RandomPoPatterns, WindowCoverTraceTest,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{16}));

TEST(ToSetCoverInstanceTest, OneSetPerAnchor) {
    const std::vector<PoEvent> events{{SimTime{0}, 0}, {SimTime{50}, 1}};
    const SetCoverInstance inst = to_set_cover_instance(events, SimTime{100}, 2);
    ASSERT_EQ(inst.set_count(), 2u);
    EXPECT_EQ(inst.set(0).size(), 2u);  // window at 0 covers both
    EXPECT_EQ(inst.set(1).size(), 1u);  // window at 50 covers only device 1
}

}  // namespace
}  // namespace nbmg::setcover
