// Set-cover solvers: correctness on hand-built instances plus a randomized
// property sweep comparing greedy against exact (Chvátal's H_k bound).
#include <gtest/gtest.h>

#include "setcover/instance.hpp"
#include "setcover/solvers.hpp"
#include "sim/random.hpp"

namespace nbmg::setcover {
namespace {

SetCoverInstance simple_instance() {
    // Universe {0..4}; optimal cover is sets 1+2 (size 2).
    return SetCoverInstance{5,
                            {
                                {0, 1},        // 0
                                {0, 1, 2},     // 1
                                {3, 4},        // 2
                                {2},           // 3
                                {4},           // 4
                            }};
}

TEST(SetCoverInstanceTest, RejectsElementOutsideUniverse) {
    EXPECT_THROW(SetCoverInstance(2, {{0, 2}}), std::invalid_argument);
}

TEST(SetCoverInstanceTest, DeduplicatesWithinSets) {
    const SetCoverInstance inst{3, {{0, 0, 1, 1, 1}}};
    EXPECT_EQ(inst.set(0).size(), 2u);
}

TEST(SetCoverInstanceTest, IsCoverDetectsFullAndPartial) {
    const SetCoverInstance inst = simple_instance();
    const std::vector<std::size_t> full{1, 2};
    const std::vector<std::size_t> partial{0, 3};
    EXPECT_TRUE(inst.is_cover(full));
    EXPECT_FALSE(inst.is_cover(partial));
}

TEST(SetCoverInstanceTest, IsCoverableDetectsGaps) {
    EXPECT_TRUE(simple_instance().is_coverable());
    const SetCoverInstance gap{3, {{0}, {1}}};
    EXPECT_FALSE(gap.is_coverable());
}

TEST(SetCoverInstanceTest, HarmonicNumbers) {
    EXPECT_DOUBLE_EQ(harmonic(1), 1.0);
    EXPECT_NEAR(harmonic(4), 1.0 + 0.5 + 1.0 / 3 + 0.25, 1e-12);
    EXPECT_EQ(harmonic(0), 0.0);
}

TEST(GreedyCoverTest, FindsOptimalOnEasyInstance) {
    const SetCoverSolution sol = greedy_cover(simple_instance());
    EXPECT_TRUE(sol.covers_all);
    EXPECT_EQ(sol.chosen.size(), 2u);
    EXPECT_TRUE(simple_instance().is_cover(sol.chosen));
}

TEST(GreedyCoverTest, StopsOnUncoverable) {
    const SetCoverInstance gap{3, {{0}, {1}}};
    const SetCoverSolution sol = greedy_cover(gap);
    EXPECT_FALSE(sol.covers_all);
    EXPECT_EQ(sol.chosen.size(), 2u);
}

TEST(GreedyCoverTest, EmptyUniverseNeedsNothing) {
    const SetCoverInstance empty{0, {{}}};
    const SetCoverSolution sol = greedy_cover(empty);
    EXPECT_TRUE(sol.covers_all);
    EXPECT_TRUE(sol.chosen.empty());
}

TEST(GreedyCoverTest, ClassicGreedyTrap) {
    // Optimal: {0,1,2,3},{4,5,6,7} (2 sets).  Greedy with first-index ties
    // may take the size-4 trap set only if it is strictly larger; here all
    // are size 4, so greedy still finds 2.  Shrink to force the trap:
    const SetCoverInstance trap{6,
                                {
                                    {0, 1, 2, 3},  // trap: greedy takes it first
                                    {0, 1, 4},
                                    {2, 3, 5},
                                }};
    const SetCoverSolution sol = greedy_cover(trap);
    EXPECT_TRUE(sol.covers_all);
    EXPECT_EQ(sol.chosen.size(), 3u);  // greedy pays one extra
    const auto exact = exact_cover(trap);
    ASSERT_TRUE(exact.has_value());
    EXPECT_EQ(exact->chosen.size(), 2u);
}

TEST(GreedyCoverTest, RandomTieBreakIsDeterministicPerSeed) {
    const SetCoverInstance inst{4, {{0, 1}, {2, 3}, {0, 2}, {1, 3}}};
    auto run = [&](std::uint64_t seed) {
        sim::RandomStream rng{seed};
        return greedy_cover(inst, &rng).chosen;
    };
    EXPECT_EQ(run(5), run(5));
}

TEST(FirstFitCoverTest, TakesSetsInOrder) {
    const SetCoverSolution sol = first_fit_cover(simple_instance());
    EXPECT_TRUE(sol.covers_all);
    // Scans 0,1,2,...: takes 0 (new), 1 (adds 2), 2 (adds 3,4).
    EXPECT_EQ(sol.chosen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(RandomCoverTest, AlwaysCoversCoverableInstances) {
    sim::RandomStream rng{11};
    for (int trial = 0; trial < 20; ++trial) {
        const SetCoverSolution sol = random_cover(simple_instance(), rng);
        EXPECT_TRUE(sol.covers_all);
        EXPECT_TRUE(simple_instance().is_cover(sol.chosen));
    }
}

TEST(ExactCoverTest, NulloptOnUncoverable) {
    const SetCoverInstance gap{3, {{0}, {1}}};
    EXPECT_FALSE(exact_cover(gap).has_value());
}

TEST(ExactCoverTest, NulloptWhenBudgetExhausted) {
    // A moderately sized random-ish instance with a 1-node budget.
    const SetCoverInstance inst{4, {{0, 1}, {1, 2}, {2, 3}, {0, 3}}};
    EXPECT_FALSE(exact_cover(inst, 1).has_value());
}

TEST(ExactCoverTest, SolvesSingletonInstances) {
    const SetCoverInstance inst{3, {{0, 1, 2}}};
    const auto sol = exact_cover(inst);
    ASSERT_TRUE(sol.has_value());
    EXPECT_EQ(sol->chosen.size(), 1u);
}

/// Property sweep: on random instances, exact <= greedy <= H_k * exact and
/// greedy <= first_fit-ish baselines on average.
class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertyTest, GreedyWithinChvatalBoundOfExact) {
    sim::RandomStream rng{GetParam()};
    const std::size_t universe = 12;
    const std::size_t sets = 10;
    std::vector<std::vector<Element>> raw(sets);
    for (auto& s : raw) {
        const auto size = static_cast<std::size_t>(rng.uniform_int(1, 5));
        for (std::size_t i = 0; i < size; ++i) {
            s.push_back(static_cast<Element>(
                rng.uniform_int(0, static_cast<std::int64_t>(universe) - 1)));
        }
    }
    // Guarantee coverability.
    for (Element e = 0; e < universe; ++e) {
        raw[e % sets].push_back(e);
    }
    const SetCoverInstance inst{universe, std::move(raw)};

    const SetCoverSolution greedy = greedy_cover(inst);
    const auto exact = exact_cover(inst);
    ASSERT_TRUE(exact.has_value());
    ASSERT_TRUE(greedy.covers_all);
    EXPECT_TRUE(inst.is_cover(greedy.chosen));
    EXPECT_TRUE(inst.is_cover(exact->chosen));
    EXPECT_LE(exact->chosen.size(), greedy.chosen.size());

    std::size_t max_set = 0;
    for (const auto& s : inst.sets()) max_set = std::max(max_set, s.size());
    EXPECT_LE(static_cast<double>(greedy.chosen.size()),
              harmonic(max_set) * static_cast<double>(exact->chosen.size()) + 1e-9);
}

TEST_P(SolverPropertyTest, GreedyNeverWorseThanRandomOnAverage) {
    sim::RandomStream rng{GetParam() * 31 + 7};
    const std::size_t universe = 20;
    std::vector<std::vector<Element>> raw(15);
    for (auto& s : raw) {
        const auto size = static_cast<std::size_t>(rng.uniform_int(1, 8));
        for (std::size_t i = 0; i < size; ++i) {
            s.push_back(static_cast<Element>(
                rng.uniform_int(0, static_cast<std::int64_t>(universe) - 1)));
        }
    }
    for (Element e = 0; e < universe; ++e) raw[e % raw.size()].push_back(e);
    const SetCoverInstance inst{universe, std::move(raw)};

    const std::size_t greedy_size = greedy_cover(inst).chosen.size();
    double random_total = 0.0;
    for (int t = 0; t < 10; ++t) {
        random_total += static_cast<double>(random_cover(inst, rng).chosen.size());
    }
    EXPECT_LE(static_cast<double>(greedy_size), random_total / 10.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverPropertyTest,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{21}));

/// The seed greedy, kept verbatim as the trace reference: full O(sets)
/// rescan per round over a std::vector<bool> coverage map.  The lazy-greedy
/// bitset solver must choose the identical set sequence and consume the
/// tie-break RNG identically.
SetCoverSolution reference_greedy(const SetCoverInstance& instance,
                                  sim::RandomStream* tie_break) {
    const auto gain = [](const std::vector<Element>& set,
                         const std::vector<bool>& covered) {
        std::size_t g = 0;
        for (const Element e : set) {
            if (!covered[e]) ++g;
        }
        return g;
    };

    SetCoverSolution solution;
    std::vector<bool> covered(instance.universe_size(), false);
    std::size_t remaining = instance.universe_size();
    std::vector<std::size_t> ties;
    while (remaining > 0) {
        std::size_t best_gain = 0;
        ties.clear();
        for (std::size_t i = 0; i < instance.set_count(); ++i) {
            const std::size_t g = gain(instance.sets()[i], covered);
            if (g > best_gain) {
                best_gain = g;
                ties.assign(1, i);
            } else if (g == best_gain && g > 0) {
                ties.push_back(i);
            }
        }
        if (best_gain == 0) break;
        const std::size_t pick =
            tie_break ? ties[static_cast<std::size_t>(tie_break->uniform_int(
                            0, static_cast<std::int64_t>(ties.size()) - 1))]
                      : ties.front();
        solution.chosen.push_back(pick);
        for (const Element e : instance.sets()[pick]) {
            if (!covered[e]) {
                covered[e] = true;
                --remaining;
            }
        }
    }
    solution.covers_all = remaining == 0;
    return solution;
}

/// Random instance with many duplicate set sizes (to force ties) and no
/// coverability guarantee (to exercise the early-break path).
SetCoverInstance random_tie_heavy_instance(std::uint64_t seed) {
    sim::RandomStream gen{seed};
    const std::size_t universe = 60;
    const std::size_t sets = 40;
    std::vector<std::vector<Element>> raw(sets);
    for (auto& s : raw) {
        // Few distinct sizes -> rounds see wide tie lists.
        const auto size = static_cast<std::size_t>(2 * gen.uniform_int(1, 4));
        for (std::size_t k = 0; k < size; ++k) {
            s.push_back(static_cast<Element>(
                gen.uniform_int(0, static_cast<std::int64_t>(universe) - 1)));
        }
    }
    return SetCoverInstance{universe, std::move(raw)};
}

class GreedyTraceTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyTraceTest, LazyGreedyMatchesReferenceWithTieBreakRng) {
    const SetCoverInstance inst = random_tie_heavy_instance(GetParam());
    sim::RandomStream ref_rng{GetParam() * 7 + 1};
    sim::RandomStream lazy_rng{GetParam() * 7 + 1};
    const SetCoverSolution ref = reference_greedy(inst, &ref_rng);
    const SetCoverSolution lazy = greedy_cover(inst, &lazy_rng);
    EXPECT_EQ(lazy.chosen, ref.chosen);
    EXPECT_EQ(lazy.covers_all, ref.covers_all);
    // Identical RNG consumption: the engines must be in the same state.
    EXPECT_TRUE(lazy_rng.engine() == ref_rng.engine());
    EXPECT_EQ(lazy_rng.next_u64(), ref_rng.next_u64());
}

TEST_P(GreedyTraceTest, LazyGreedyMatchesReferenceWithoutTieBreak) {
    const SetCoverInstance inst = random_tie_heavy_instance(GetParam() + 1000);
    const SetCoverSolution ref = reference_greedy(inst, nullptr);
    const SetCoverSolution lazy = greedy_cover(inst, nullptr);
    EXPECT_EQ(lazy.chosen, ref.chosen);
    EXPECT_EQ(lazy.covers_all, ref.covers_all);
}

INSTANTIATE_TEST_SUITE_P(RandomTieHeavyInstances, GreedyTraceTest,
                         ::testing::Range(std::uint64_t{1}, std::uint64_t{26}));

}  // namespace
}  // namespace nbmg::setcover
