#!/usr/bin/env bash
# Records the kernel microbenchmarks as google-benchmark JSON at the repo
# root — the perf trajectory file future PRs regress against.
#
#   $ ci/bench.sh                             # single run -> BENCH_pr8.json
#   $ ci/bench.sh --repeat 3                  # best-of-3 (recommended)
#   $ ci/bench.sh --repeat 3 BENCH_pr8.json   # explicit output name
#
# --repeat N runs the suite N times and merges with ci/bench_merge.py:
# the committed file carries the per-benchmark MIN (best-of-N) as
# real_time/cpu_time plus the median as real_time_median/cpu_time_median.
# Rationale: this box is single-core shared tenancy, and one-off drift of
# up to ±15% on a single reading is routine (the "1.16x" event-queue
# reading in the PR 5 recording re-measured at ~1.1x) — best-of-N keeps
# such drift out of the committed baseline, and the min/median pair lets
# reviewers separate noise from real movement.  Treat ratios within ±15%
# of the previous BENCH_prN.json as noise unless min AND median agree.
#
# The suite includes the large-n cases (event queue at 10^6 events, greedy
# cover at 10^4 sets x 10^5 elements, the full campaign at 10^4 and 10^6
# devices, the stratified campaign at 10^5 devices x {1, 2, 8} strata, and
# the multicell deployment at 10^5 devices x {1, 16, 64} cells), so a full
# run takes several minutes — times N with --repeat.
set -euo pipefail

cd "$(dirname "$0")/.."

repeat=1
out=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --repeat)
      [[ $# -ge 2 ]] || { echo "error: --repeat needs a value" >&2; exit 2; }
      repeat="$2"
      shift 2
      ;;
    --repeat=*)
      repeat="${1#--repeat=}"
      shift
      ;;
    -*)
      echo "error: unknown flag '$1' (usage: ci/bench.sh [--repeat N] [OUT.json])" >&2
      exit 2
      ;;
    *)
      [[ -z "${out}" ]] || { echo "error: multiple outputs named" >&2; exit 2; }
      out="$1"
      shift
      ;;
  esac
done
out="${out:-BENCH_pr8.json}"
if ! [[ "${repeat}" =~ ^[1-9][0-9]*$ ]]; then
  echo "error: --repeat must be a positive integer, got '${repeat}'" >&2
  exit 2
fi

jobs="$(nproc 2>/dev/null || echo 2)"
build_dir=build-release

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release -DNBMG_WERROR=ON \
      -DNBMG_ENABLE_LTO=ON
cmake --build "${build_dir}" -j"${jobs}" --target microbench_kernels

if [[ ! -x "${build_dir}/bench/microbench_kernels" ]]; then
  echo "error: microbench_kernels was not built (google-benchmark missing?)" >&2
  exit 1
fi

if [[ "${repeat}" -eq 1 ]]; then
  "${build_dir}/bench/microbench_kernels" \
    --benchmark_out="${out}" --benchmark_out_format=json
  echo "bench: wrote ${out} (single run; prefer --repeat 3 for baselines)"
else
  tmp_dir="$(mktemp -d)"
  trap 'rm -rf "${tmp_dir}"' EXIT
  raw_files=()
  for ((i = 1; i <= repeat; i++)); do
    echo "=== bench: repeat ${i}/${repeat} ==="
    raw="${tmp_dir}/run${i}.json"
    "${build_dir}/bench/microbench_kernels" \
      --benchmark_out="${raw}" --benchmark_out_format=json
    raw_files+=("${raw}")
  done
  python3 ci/bench_merge.py "${out}" "${raw_files[@]}"
  echo "bench: wrote ${out} (best of ${repeat}, min+median per benchmark)"
fi
