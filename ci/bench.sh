#!/usr/bin/env bash
# Records the kernel microbenchmarks as google-benchmark JSON at the repo
# root — the perf trajectory file future PRs regress against.
#
#   $ ci/bench.sh                  # writes BENCH_pr5.json
#   $ ci/bench.sh BENCH_pr6.json   # explicit output name
#
# The suite includes the large-n cases (event queue at 10^6 events, greedy
# cover at 10^4 sets x 10^5 elements, full campaign at 10^4 devices, and
# the multicell deployment at 10^5 devices x {1, 16, 64} cells), so a full
# run takes several minutes.
set -euo pipefail

cd "$(dirname "$0")/.."

out="${1:-BENCH_pr5.json}"
jobs="$(nproc 2>/dev/null || echo 2)"
build_dir=build-release

cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release -DNBMG_WERROR=ON \
      -DNBMG_ENABLE_LTO=ON
cmake --build "${build_dir}" -j"${jobs}" --target microbench_kernels

if [[ ! -x "${build_dir}/bench/microbench_kernels" ]]; then
  echo "error: microbench_kernels was not built (google-benchmark missing?)" >&2
  exit 1
fi

"${build_dir}/bench/microbench_kernels" \
  --benchmark_out="${out}" --benchmark_out_format=json
echo "bench: wrote ${out}"
