#!/usr/bin/env python3
"""Merges N google-benchmark JSON recordings into one best-of-N file.

ci/bench.sh --repeat N runs microbench_kernels N times and hands the raw
recordings here.  For every benchmark we keep the entry from the run
with the smallest real_time (best-of-N is the standard defense against
one-off scheduler/thermal drift on a shared box — the 1.16x queue
reading that tripped the PR 5 review was exactly such a one-off) and
annotate it with the median across runs, so a future diff can tell "fast
machine moment" from "the code actually changed".

Output shape stays google-benchmark-compatible: {"context": ...,
"benchmarks": [...]}; consumers that read `real_time` get the min.  The
context block leads with the nbmg_* header keys documenting repeat count
and the noise band.

Usage: bench_merge.py OUT.json RAW1.json [RAW2.json ...]
"""

from __future__ import annotations

import json
import statistics
import sys


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    out_path, raw_paths = argv[0], argv[1:]

    runs = []
    for path in raw_paths:
        with open(path, encoding="utf-8") as fh:
            runs.append(json.load(fh))

    # name -> list of entries, one per run, in run order.
    by_name: dict[str, list[dict]] = {}
    order: list[str] = []
    for run in runs:
        for entry in run.get("benchmarks", []):
            if entry.get("run_type", "iteration") != "iteration":
                continue
            name = entry["name"]
            if name not in by_name:
                by_name[name] = []
                order.append(name)
            by_name[name].append(entry)

    merged = []
    for name in order:
        entries = by_name[name]
        best = min(entries, key=lambda e: e["real_time"])
        combined = dict(best)
        combined["nbmg_repeats"] = len(entries)
        combined["real_time_median"] = statistics.median(
            e["real_time"] for e in entries)
        combined["cpu_time_median"] = statistics.median(
            e["cpu_time"] for e in entries)
        merged.append(combined)

    context = {
        "nbmg_mode": f"best-of-{len(runs)} (ci/bench.sh --repeat)",
        "nbmg_noise_band":
            "ratios within ±15% of the previous BENCH_prN.json are noise "
            "on this box (single-core CI, shared tenancy); only flag a "
            "regression when BOTH the best-of-N real_time and "
            "real_time_median sit outside the band",
        "nbmg_fields":
            "real_time/cpu_time = min across repeats; "
            "real_time_median/cpu_time_median = median across repeats",
    }
    context.update(runs[0].get("context", {}))

    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump({"context": context, "benchmarks": merged}, fh, indent=1)
        fh.write("\n")
    print(f"bench_merge: wrote {out_path} "
          f"({len(merged)} benchmarks, best of {len(runs)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
