#!/usr/bin/env bash
# Single verification entry point (CI and local).
#
# Legs, in default order:
#   analyze — ci/analyze.sh: determinism lint, clang-tidy gate (skipped
#             loudly when the binary is absent), -Wshadow -Wconversion
#             trial build of the nbmg lib.
#   Debug   — warnings-as-errors build of everything; fast tier-1 CTest
#             subset (ctest -L tier1, which now includes the analysis
#             and stress labels); scenario-file + coordinator smokes;
#             failure-injection smoke (churn scenario, outage preset,
#             lossy backhaul — the churn CSV is byte-diffed Debug vs
#             Release); kill-and-resume checkpoint smoke (stop a citywide run
#             mid-flight, resume at a different --threads, byte-diff
#             every artifact against the uninterrupted run).
#   Release — same build with NBMG_ENABLE_LTO (so the option cannot
#             rot); the full suite including the randomized property
#             batteries; microbenchmark + multicell smokes.
#   asan    — NBMG_SANITIZE=address+undefined (ASan+UBSan+LSan), tests
#             only, tier-1 label incl. the high-contention sweep stress
#             suite; suppressions from ci/sanitizers/ (policy: empty).
#   tsan    — NBMG_SANITIZE=thread, same test set; the stress suite runs
#             the citywide presets at --threads 8 specifically to put
#             the worker pool under TSan.
#
#   $ ci/verify.sh                 # all legs
#   $ ci/verify.sh Release         # just one
#   $ ci/verify.sh asan tsan       # just the sanitizer legs
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
legs=("${@:-Debug}")
if [[ $# -eq 0 ]]; then
  legs=(analyze Debug Release asan tsan)
fi

run_scenario_smokes() {
  local build_dir="$1"
  echo "=== ${build_dir}: scenario-file smoke (--scenario / --preset) ==="
  "${build_dir}/bench/fig6a_light_sleep_uptime" \
    --scenario examples/scenarios/smoke.scenario --threads 2
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/smoke.scenario --threads 2
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/citywide_16cells.scenario \
    --devices 800 --cells 8 --csv
  "${build_dir}/examples/citywide_rollout" \
    --scenario examples/scenarios/citywide_16cells.scenario 800 8 42
  "${build_dir}/bench/ablation_scptm" --preset ablation-scptm \
    --devices 50 --runs 2 --threads 2

  echo "=== ${build_dir}: wall-clock coordinator smoke (staggered + backhaul) ==="
  "${build_dir}/examples/run_scenario" --preset citywide-staggered \
    --devices 400 --runs 1 --threads 2
  "${build_dir}/examples/run_scenario" --preset citywide-backhaul \
    --devices 400 --runs 1 --threads 2 --csv
  "${build_dir}/examples/citywide_rollout" \
    --scenario examples/scenarios/citywide_staggered.scenario \
    --devices 800 --cells 8
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/citywide_backhaul.scenario \
    --devices 400 --runs 1

  echo "=== ${build_dir}: telemetry smoke (trace + metrics + timeline) ==="
  "${build_dir}/examples/run_scenario" --preset smoke --threads 2 \
    --telemetry full \
    --trace-out "${build_dir}/telemetry_smoke.trace.jsonl" \
    --metrics-out "${build_dir}/telemetry_smoke.metrics.csv" \
    --timeline-out "${build_dir}/telemetry_smoke.timeline.json"

  echo "=== ${build_dir}: failure-injection smoke (churn + outage + lossy backhaul) ==="
  # The churn CSV is captured for the Debug-vs-Release byte-diff below:
  # fault draws come only from the derived "faults" streams, so the
  # faulted aggregates are pure functions of (spec, seed) too.
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/churn.scenario \
    --devices 100 --runs 2 --threads 2 --csv \
    > "${build_dir}/churn_smoke.csv"
  "${build_dir}/examples/run_scenario" --preset outage \
    --devices 400 --runs 1 --threads 2 --csv > /dev/null
  "${build_dir}/examples/run_scenario" --preset citywide-backhaul \
    --devices 400 --runs 1 --threads 2 --backhaul-loss 0.2 --csv > /dev/null

  run_checkpoint_smoke "${build_dir}"
}

run_checkpoint_smoke() {
  local build_dir="$1"
  echo "=== ${build_dir}: kill-and-resume smoke (checkpoint -> stop -> resume) ==="
  # A citywide run is checkpointed, killed mid-flight via the stop
  # budget (exit 3 is the deliberate-stop code), then resumed at a
  # different --threads.  Every artifact — stdout CSV, trace, metrics,
  # timeline — must match the uninterrupted run byte for byte.
  local ckpt_dir="${build_dir}/checkpoint_smoke"
  rm -rf "${ckpt_dir}"
  mkdir -p "${ckpt_dir}"
  local common=(--scenario examples/scenarios/citywide_16cells.scenario
                --devices 400 --cells 4 --runs 2 --telemetry full --csv)

  "${build_dir}/examples/run_scenario" "${common[@]}" --threads 8 \
    --trace-out "${ckpt_dir}/full.trace.jsonl" \
    --metrics-out "${ckpt_dir}/full.metrics.csv" \
    --timeline-out "${ckpt_dir}/full.timeline.json" \
    > "${ckpt_dir}/full.csv"

  set +e
  "${build_dir}/examples/run_scenario" "${common[@]}" --threads 8 \
    --checkpoint-out "${ckpt_dir}/snap.bin" --checkpoint-stop-after 3 \
    > "${ckpt_dir}/interrupted.csv"
  local status=$?
  set -e
  if [[ ${status} -ne 3 ]]; then
    echo "error: interrupted run exited ${status}, expected checkpoint-stop code 3" >&2
    exit 1
  fi
  [[ -f "${ckpt_dir}/snap.bin" ]]

  "${build_dir}/examples/run_scenario" "${common[@]}" --threads 2 \
    --resume "${ckpt_dir}/snap.bin" \
    --trace-out "${ckpt_dir}/resumed.trace.jsonl" \
    --metrics-out "${ckpt_dir}/resumed.metrics.csv" \
    --timeline-out "${ckpt_dir}/resumed.timeline.json" \
    > "${ckpt_dir}/resumed.csv"

  cmp "${ckpt_dir}/full.csv" "${ckpt_dir}/resumed.csv"
  cmp "${ckpt_dir}/full.trace.jsonl" "${ckpt_dir}/resumed.trace.jsonl"
  cmp "${ckpt_dir}/full.metrics.csv" "${ckpt_dir}/resumed.metrics.csv"
  cmp "${ckpt_dir}/full.timeline.json" "${ckpt_dir}/resumed.timeline.json"
}

run_sanitizer_leg() {
  local mode="$1" build_dir="$2"
  echo "=== sanitize(${mode}) -> ${build_dir} ==="
  # Suppression files are checked in (policy: they stay empty; see the
  # headers in ci/sanitizers/).  halt_on_error turns any report into a
  # failing leg.
  export ASAN_OPTIONS="suppressions=$(pwd)/ci/sanitizers/asan.supp:detect_leaks=1:halt_on_error=1"
  export LSAN_OPTIONS="suppressions=$(pwd)/ci/sanitizers/lsan.supp"
  export UBSAN_OPTIONS="suppressions=$(pwd)/ci/sanitizers/ubsan.supp:print_stacktrace=1:halt_on_error=1"
  export TSAN_OPTIONS="suppressions=$(pwd)/ci/sanitizers/tsan.supp:halt_on_error=1"
  # Tests only: the sanitizer legs exist to run the tier-1 + stress
  # suites under instrumentation, not to rebuild benches/examples.
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Debug -DNBMG_WERROR=ON \
        -DNBMG_SANITIZE="${mode}" -DNBMG_BUILD_BENCH=OFF \
        -DNBMG_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j"${jobs}"
  # tier1 includes the analysis (determinism lint) and stress
  # (high-contention citywide sweep at --threads 8) labels.
  ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}" -L tier1
}

for leg in "${legs[@]}"; do
  case "${leg}" in
    analyze)
      ci/analyze.sh
      continue
      ;;
    asan)
      run_sanitizer_leg "address+undefined" build-asan
      continue
      ;;
    tsan)
      run_sanitizer_leg "thread" build-tsan
      continue
      ;;
    Debug|Release)
      ;;
    *)
      echo "error: unknown leg '${leg}' (expected analyze, Debug, Release, asan, tsan)" >&2
      exit 2
      ;;
  esac

  config="${leg}"
  build_dir="build-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  lto=OFF
  if [[ "${config}" == "Release" ]]; then
    lto=ON
  fi
  echo "=== ${config} -> ${build_dir} (LTO=${lto}) ==="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}" -DNBMG_WERROR=ON \
        -DNBMG_ENABLE_LTO="${lto}"
  cmake --build "${build_dir}" -j"${jobs}"
  if [[ "${config}" == "Release" ]]; then
    # Full suite: tier 1 plus the property batteries.
    ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}" -L tier1
  fi

  run_scenario_smokes "${build_dir}"

  # The telemetry artifacts are pure functions of (spec, seed): the Debug
  # and Release runs of the smoke above must agree byte for byte.
  if [[ "${config}" == "Release" && -f build-debug/telemetry_smoke.trace.jsonl ]]; then
    echo "=== cross-config determinism: Debug vs Release telemetry artifacts ==="
    cmp build-debug/telemetry_smoke.trace.jsonl "${build_dir}/telemetry_smoke.trace.jsonl"
    cmp build-debug/telemetry_smoke.metrics.csv "${build_dir}/telemetry_smoke.metrics.csv"
    cmp build-debug/telemetry_smoke.timeline.json "${build_dir}/telemetry_smoke.timeline.json"
    cmp build-debug/churn_smoke.csv "${build_dir}/churn_smoke.csv"
  fi

  if [[ "${config}" == "Release" ]]; then
    if [[ -x "${build_dir}/bench/microbench_kernels" ]]; then
      echo "=== ${config}: microbenchmark smoke (small kernel cases) ==="
      "${build_dir}/bench/microbench_kernels" \
        --benchmark_filter='PagingFirstPoAtOrAfter/3$|EventQueueScheduleRun/1000$|EventQueueCancelHeavy/10000$|WindowCoverGreedy/100$|GreedyCover/1000/|DrScPlan/200$|FullCampaign/100$' \
        --benchmark_min_time=0.01
    fi

    echo "=== ${config}: multicell smoke (sharded fleet, 8 cells) ==="
    "${build_dir}/bench/fig_multicell_scaling" \
      --devices 2000 --cells 8 --runs 1 --threads 2
  fi
done

echo "verify: all legs green"
