#!/usr/bin/env bash
# Single verification entry point (CI and local): configure Debug and
# Release with warnings-as-errors, build everything, run the full CTest
# suite in both configurations.
#
#   $ ci/verify.sh            # both configurations
#   $ ci/verify.sh Release    # just one
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
configs=("${@:-Debug}")
if [[ $# -eq 0 ]]; then
  configs=(Debug Release)
fi

for config in "${configs[@]}"; do
  build_dir="build-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "=== ${config} -> ${build_dir} ==="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}" -DNBMG_WERROR=ON
  cmake --build "${build_dir}" -j"${jobs}"
  ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}"
done

echo "verify: all configurations green"
