#!/usr/bin/env bash
# Single verification entry point (CI and local): configure Debug and
# Release with warnings-as-errors and build everything.  The Debug leg
# runs the fast tier-1 CTest subset (ctest -L tier1); the Release leg runs
# the full suite — tier 1 plus the randomized property batteries
# (ctest -L property covers them alone) — builds with NBMG_ENABLE_LTO (so
# the option cannot rot) and finishes with a short microbenchmark smoke.
# Every configuration then runs a scenario-file smoke (checked-in
# examples/scenarios/*.scenario through the unified --scenario entry
# point, a --preset resolution, and the two coordinated citywide presets).
#
#   $ ci/verify.sh            # both configurations
#   $ ci/verify.sh Release    # just one
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
configs=("${@:-Debug}")
if [[ $# -eq 0 ]]; then
  configs=(Debug Release)
fi

for config in "${configs[@]}"; do
  build_dir="build-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  lto=OFF
  if [[ "${config}" == "Release" ]]; then
    lto=ON
  fi
  echo "=== ${config} -> ${build_dir} (LTO=${lto}) ==="
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}" -DNBMG_WERROR=ON \
        -DNBMG_ENABLE_LTO="${lto}"
  cmake --build "${build_dir}" -j"${jobs}"
  if [[ "${config}" == "Release" ]]; then
    # Full suite: tier 1 plus the property batteries.
    ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}"
  else
    ctest --test-dir "${build_dir}" --output-on-failure -j"${jobs}" -L tier1
  fi

  echo "=== ${config}: scenario-file smoke (--scenario / --preset) ==="
  "${build_dir}/bench/fig6a_light_sleep_uptime" \
    --scenario examples/scenarios/smoke.scenario --threads 2
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/smoke.scenario --threads 2
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/citywide_16cells.scenario \
    --devices 800 --cells 8 --csv
  "${build_dir}/examples/citywide_rollout" \
    --scenario examples/scenarios/citywide_16cells.scenario 800 8 42
  "${build_dir}/bench/ablation_scptm" --preset ablation-scptm \
    --devices 50 --runs 2 --threads 2

  echo "=== ${config}: wall-clock coordinator smoke (staggered + backhaul) ==="
  "${build_dir}/examples/run_scenario" --preset citywide-staggered \
    --devices 400 --runs 1 --threads 2
  "${build_dir}/examples/run_scenario" --preset citywide-backhaul \
    --devices 400 --runs 1 --threads 2 --csv
  "${build_dir}/examples/citywide_rollout" \
    --scenario examples/scenarios/citywide_staggered.scenario \
    --devices 800 --cells 8
  "${build_dir}/examples/run_scenario" \
    --scenario examples/scenarios/citywide_backhaul.scenario \
    --devices 400 --runs 1

  if [[ "${config}" == "Release" ]]; then
    if [[ -x "${build_dir}/bench/microbench_kernels" ]]; then
      echo "=== ${config}: microbenchmark smoke (small kernel cases) ==="
      "${build_dir}/bench/microbench_kernels" \
        --benchmark_filter='PagingFirstPoAtOrAfter/3$|EventQueueScheduleRun/1000$|EventQueueCancelHeavy/10000$|WindowCoverGreedy/100$|GreedyCover/1000/|DrScPlan/200$|FullCampaign/100$' \
        --benchmark_min_time=0.01
    fi

    echo "=== ${config}: multicell smoke (sharded fleet, 8 cells) ==="
    "${build_dir}/bench/fig_multicell_scaling" \
      --devices 2000 --cells 8 --runs 1 --threads 2
  fi
done

echo "verify: all configurations green"
