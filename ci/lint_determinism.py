#!/usr/bin/env python3
"""nbmg determinism lint.

Every result this repro reports rests on one invariant: campaigns are
bit-identical at any --threads and across mechanisms.  This checker scans
C++ sources for the nondeterminism sources this codebase specifically must
never grow:

  wall-clock      time(), clock(), std::chrono::system_clock — and
                  steady_clock outside bench/ (benches time themselves;
                  simulation code must never read a host clock).
  raw-rng         std::rand/srand/random_device, or constructing a
                  std::mt19937* engine outside sim/random.* — every draw
                  must flow through a derive_seed()-rooted RandomStream.
  unordered-iter  any use of std::unordered_map/std::unordered_set.
                  Iteration order is implementation-defined, so an
                  unordered container that feeds output or RNG draws
                  breaks bit-identity.  Lookup-only uses are fine but
                  must be audited by a human and annotated (below).
  pointer-key     std::map/set/multimap/multiset keyed on a pointer:
                  iteration follows allocation addresses, which vary
                  run to run (ASLR, allocator state).
  uninit-pod      struct members of arithmetic type without an
                  initializer.  Aggregates flow into Summary::merge and
                  the bit-exact golden comparisons; an uninitialized
                  member merges garbage that happens to be zero — until
                  it is not.
  telemetry       two rules for the observability layer.  (1) Host
                  clocks inside src/telemetry/ are confined to the
                  self-profiler TU (telemetry/profiler.cpp, the one
                  audited clock read; bench shells only) — a clock
                  anywhere else in telemetry/ is a finding NO pragma can
                  excuse, because telemetry artifacts are compared
                  byte-for-byte across thread counts.  (2) An
                  NBMG_TELEMETRY_EMIT call whose payload looks like a
                  pointer (reinterpret_cast, uintptr_t, void* cast, or a
                  &-of-lvalue argument): addresses vary run to run
                  (ASLR, allocator state), so a pointer smuggled into a
                  trace payload breaks byte-identical traces.  Rule (2)
                  is excusable with allow(telemetry) after human audit.
  snapshot        three rules for src/snapshot/, whose persisted
                  artifacts must read back on any build of any host.
                  (1) reinterpret_cast — the raw-struct-dump idiom
                  serializes padding, field order, and host endianness;
                  a finding NO pragma can excuse.  Serialize
                  field-by-field through the Writer/Reader primitives.
                  (2) sizeof — sizing a write from a host struct layout
                  instead of spelling the wire width.  (3) host-width
                  integer types (size_t, uintptr_t, intptr_t,
                  ptrdiff_t) — their width differs across platforms, so
                  a snapshot written on one host would not parse on
                  another.  Rules (2) and (3) are excusable with
                  allow(snapshot) after human audit.

Audited exceptions carry an inline pragma on the flagged line or the line
directly above:

    // nbmg-lint: allow(<category>) <reason>

The pragma is itself verified: the category must be one of those
above, a non-empty reason is mandatory, and a pragma that no longer
annotates a finding of its category is reported as stale (so allowlist
entries cannot outlive the code they excused).

Usage:
    lint_determinism.py [--root DIR] [FILE...]

With no FILE arguments, scans every *.cpp/*.hpp/*.h under DIR/src
(DIR defaults to the repository root containing this script).  Exits 0
when clean, 1 with file:line diagnostics when findings remain, 2 on
usage errors.  stdlib only; runs in both ci/verify.sh sanitizer legs and
ci/analyze.sh, and under ctest -L analysis.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

CATEGORIES = (
    "wall-clock",
    "raw-rng",
    "unordered-iter",
    "pointer-key",
    "uninit-pod",
    "telemetry",
    "snapshot",
)

PRAGMA_RE = re.compile(
    r"//\s*nbmg-lint:\s*allow\(([a-z-]+)\)\s*(.*)$"
)

# Files whose job is randomness: the one place engine construction and
# seeding primitives are allowed.
RNG_HOME_RE = re.compile(r"(^|/)sim/random\.(cpp|hpp|h)$")
# Benches may read the host clock to time themselves.
BENCH_DIR_RE = re.compile(r"(^|/)bench/")
# The telemetry layer, whose artifacts are compared byte-for-byte across
# thread counts — and its self-profiler TU, the one audited clock read in
# the library (opt-in, bench shells only, never feeds an artifact).
TELEMETRY_DIR_RE = re.compile(r"(^|/)telemetry/")
PROFILER_HOME_RE = re.compile(r"(^|/)telemetry/profiler\.(cpp|hpp|h)$")
# The snapshot layer, whose persisted bytes must be portable across builds
# and platforms: struct dumps and host-width integer types are banned.
SNAPSHOT_DIR_RE = re.compile(r"(^|/)snapshot/")
SNAPSHOT_CAST_RE = re.compile(r"\breinterpret_cast\b")
SNAPSHOT_SIZEOF_RE = re.compile(r"\bsizeof\b")
SNAPSHOT_HOST_WIDTH_RE = re.compile(
    r"\b(?:std::)?(?:size_t|uintptr_t|intptr_t|ptrdiff_t)\b")

WALL_CLOCK_RE = re.compile(
    r"std::chrono::system_clock"
    r"|std::chrono::high_resolution_clock"
    r"|(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|\)|&)"
    r"|(?<![\w:])clock\s*\(\s*\)"
    r"|gettimeofday|clock_gettime|localtime|gmtime"
)
STEADY_CLOCK_RE = re.compile(r"std::chrono::steady_clock")
RAW_RNG_RE = re.compile(
    r"std::rand\b|(?<![\w:])srand\s*\("
    r"|std::random_device|(?<![\w:])random_device\b"
    r"|std::(?:mt19937|mt19937_64|minstd_rand|minstd_rand0|ranlux\w+|"
    r"knuth_b|default_random_engine)\b"
)
UNORDERED_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")
UNORDERED_INCLUDE_RE = re.compile(r'#\s*include\s*<unordered_(?:map|set)>')
POINTER_KEY_RE = re.compile(
    r"std::(?:map|set|multimap|multiset)\s*<\s*(?:const\s+)?[\w:]+"
    r"(?:\s*<[^<>]*>)?\s*(?:const\s*)?\*"
)

# Arithmetic/POD member declaration with no initializer, e.g.
#   double mean_;      std::uint64_t count_;      int attempts;
# but not
#   double mean_ = 0;  std::uint64_t count_{0};   SimTime t{0};
ARITH_TYPE = (
    r"(?:unsigned\s+|signed\s+)?"
    r"(?:bool|char|short|int|long|long\s+long|float|double|size_t|"
    r"std::size_t|std::u?int(?:8|16|32|64)_t|std::ptrdiff_t|"
    r"u?int(?:8|16|32|64)_t)"
    r"(?:\s+(?:unsigned|signed|int|long))*"
)
UNINIT_POD_RE = re.compile(
    r"^\s*(?:static\s+)?(?:mutable\s+)?" + ARITH_TYPE +
    r"\s+\w+(?:\s*,\s*\w+)*\s*;\s*$"
)
STRUCT_OPEN_RE = re.compile(r"^\s*(?:struct|class)\s+\w+[^;]*$")

TELEMETRY_EMIT_RE = re.compile(r"NBMG_TELEMETRY_EMIT\s*\(")
# Pointer-like payload inside an emit call: a raw address, an integer
# that was an address a cast ago, or a &-of-lvalue argument.
TELEMETRY_POINTER_RE = re.compile(
    r"reinterpret_cast"
    r"|\bu?intptr_t\b"
    r"|\(\s*(?:const\s+)?void\s*\*\s*\)"
    r"|,\s*&[A-Za-z_]"
)


class Finding:
    def __init__(self, path: Path, line: int, category: str, message: str):
        self.path = path
        self.line = line
        self.category = category
        self.message = message

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.category}] {self.message}"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks comment and string-literal text, preserving line structure
    so diagnostics keep their line numbers.  Pragmas are extracted from
    the raw lines before this runs."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            if in_block:
                end = raw.find("*/", i)
                if end == -1:
                    buf.append(" " * (n - i))
                    i = n
                else:
                    buf.append(" " * (end + 2 - i))
                    i = end + 2
                    in_block = False
                continue
            ch = raw[i]
            two = raw[i:i + 2]
            if two == "//":
                buf.append(" " * (n - i))
                break
            if two == "/*":
                in_block = True
                i += 2
                buf.append("  ")
                continue
            if ch in "\"'":
                quote = ch
                j = i + 1
                while j < n:
                    if raw[j] == "\\":
                        j += 2
                        continue
                    if raw[j] == quote:
                        break
                    j += 1
                j = min(j, n - 1)
                buf.append(quote + " " * (j - i - 1) + quote)
                i = j + 1
                continue
            buf.append(ch)
            i += 1
        out.append("".join(buf))
    return out


def scan_file(path: Path, rel: str) -> list[Finding]:
    raw_lines = path.read_text(encoding="utf-8").splitlines()
    findings: list[Finding] = []
    pragma_findings: list[Finding] = []

    # Pass 1: pragmas, from the raw text (they live in comments).
    # pragmas[line_no] = (category, reason); line numbers are 1-based.
    pragmas: dict[int, str] = {}
    for no, line in enumerate(raw_lines, 1):
        m = PRAGMA_RE.search(line)
        if not m:
            continue
        category, reason = m.group(1), m.group(2).strip()
        if category not in CATEGORIES:
            pragma_findings.append(Finding(
                path, no, "pragma",
                f"unknown allow() category '{category}' "
                f"(expected one of: {', '.join(CATEGORIES)})"))
            continue
        if not reason:
            pragma_findings.append(Finding(
                path, no, "pragma",
                f"allow({category}) pragma has no reason; write "
                f"'// nbmg-lint: allow({category}) <why this is safe>'"))
            continue
        pragmas[no] = category

    code = strip_comments_and_strings(raw_lines)
    in_rng_home = bool(RNG_HOME_RE.search(rel))
    in_bench = bool(BENCH_DIR_RE.search(rel))
    in_telemetry = bool(TELEMETRY_DIR_RE.search(rel))
    in_profiler_home = bool(PROFILER_HOME_RE.search(rel))
    in_snapshot = bool(SNAPSHOT_DIR_RE.search(rel))

    def emit(no: int, category: str, message: str) -> None:
        findings.append(Finding(path, no, category, message))

    struct_depth = 0
    brace_depth = 0
    struct_stack: list[int] = []
    used_pragmas: set[int] = set()

    def allowed(no: int, category: str) -> bool:
        for cand in (no, no - 1):
            if pragmas.get(cand) == category:
                used_pragmas.add(cand)
                return True
        return False

    for no, line in enumerate(code, 1):
        if STRUCT_OPEN_RE.match(line) and ";" not in line:
            struct_stack.append(brace_depth)
            struct_depth += 1
        opens = line.count("{")
        closes = line.count("}")
        brace_depth += opens - closes
        while struct_stack and brace_depth <= struct_stack[-1] and closes:
            struct_stack.pop()
            struct_depth -= 1

        hits_wall = bool(WALL_CLOCK_RE.search(line))
        hits_steady = bool(STEADY_CLOCK_RE.search(line))
        if in_telemetry and not in_profiler_home and (hits_wall or hits_steady):
            # Deliberately bypasses allowed(): telemetry artifacts are
            # byte-compared across thread counts, so the only audited clock
            # read lives in the self-profiler TU — no pragma can move it.
            emit(no, "telemetry",
                 "host clock in telemetry/ outside the self-profiler TU "
                 "(telemetry/profiler.cpp); telemetry artifacts are "
                 "byte-identical goldens — no pragma can excuse this")
        else:
            if hits_wall:
                if not allowed(no, "wall-clock"):
                    emit(no, "wall-clock",
                         "wall-clock source; simulation results must be a pure "
                         "function of (spec, seed)")
            if hits_steady and not in_bench:
                if not allowed(no, "wall-clock"):
                    emit(no, "wall-clock",
                         "steady_clock outside bench/; host time must not "
                         "reach simulation code")
        if TELEMETRY_EMIT_RE.search(line) and "#define" not in line:
            # The payload may wrap onto continuation lines: scan the call
            # line plus the next two code lines.
            window = " ".join(code[no - 1:no + 2])
            if TELEMETRY_POINTER_RE.search(window):
                if not allowed(no, "telemetry"):
                    emit(no, "telemetry",
                         "NBMG_TELEMETRY_EMIT with a pointer-like payload: "
                         "addresses vary run to run (ASLR, allocator state) "
                         "and break byte-identical traces — pass values, "
                         "not pointers")
        if not in_rng_home and RAW_RNG_RE.search(line):
            if not allowed(no, "raw-rng"):
                emit(no, "raw-rng",
                     "raw RNG primitive outside sim/random.*; draw through "
                     "a derive_seed()-rooted sim::RandomStream")
        if UNORDERED_RE.search(line) or UNORDERED_INCLUDE_RE.search(line):
            if not allowed(no, "unordered-iter"):
                emit(no, "unordered-iter",
                     "unordered container: iteration order is "
                     "implementation-defined; prove lookup-only use and "
                     "annotate, or switch to a sorted/indexed container")
        if POINTER_KEY_RE.search(line):
            if not allowed(no, "pointer-key"):
                emit(no, "pointer-key",
                     "pointer-keyed ordered container: iteration follows "
                     "allocation addresses, which vary run to run")
        if in_snapshot:
            if SNAPSHOT_CAST_RE.search(line):
                # Deliberately bypasses allowed(): a reinterpret_cast in the
                # serialization layer is the raw-struct-dump idiom (padding,
                # field order, host endianness on the wire) — no pragma can
                # make that portable.
                emit(no, "snapshot",
                     "reinterpret_cast in snapshot/: raw struct dumps "
                     "serialize padding and host endianness — write "
                     "field-by-field through the Writer/Reader primitives; "
                     "no pragma can excuse this")
            if SNAPSHOT_SIZEOF_RE.search(line):
                if not allowed(no, "snapshot"):
                    emit(no, "snapshot",
                         "sizeof in snapshot/: sizes a write from a host "
                         "struct layout — spell the wire width explicitly")
            if SNAPSHOT_HOST_WIDTH_RE.search(line):
                if not allowed(no, "snapshot"):
                    emit(no, "snapshot",
                         "host-width integer type in snapshot/: width "
                         "differs across platforms, so the persisted bytes "
                         "would not read back everywhere — use a fixed-width "
                         "std::uintNN_t")
        if struct_depth > 0 and UNINIT_POD_RE.match(line):
            if not allowed(no, "uninit-pod"):
                emit(no, "uninit-pod",
                     "uninitialized arithmetic struct member; aggregates "
                     "reach Summary::merge and bit-exact goldens — "
                     "default-initialize it")

    for no in sorted(set(pragmas) - used_pragmas):
        pragma_findings.append(Finding(
            path, no, "pragma",
            f"stale allow({pragmas[no]}) pragma: no {pragmas[no]} finding "
            f"on this or the next line — delete it"))

    return findings + pragma_findings


def collect_default_files(root: Path) -> list[Path]:
    src = root / "src"
    if not src.is_dir():
        print(f"lint_determinism: no src/ under {root}", file=sys.stderr)
        sys.exit(2)
    return sorted(p for p in src.rglob("*")
                  if p.suffix in (".cpp", ".hpp", ".h") and p.is_file())


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="lint_determinism.py",
        description="nbmg determinism lint (see module docstring)")
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: this script's repo)")
    parser.add_argument("files", nargs="*", type=Path,
                        help="explicit files to scan (default: root/src)")
    args = parser.parse_args(argv)

    files = [f.resolve() for f in args.files] if args.files \
        else collect_default_files(args.root.resolve())
    for f in files:
        if not f.is_file():
            print(f"lint_determinism: no such file: {f}", file=sys.stderr)
            return 2

    root = args.root.resolve()
    all_findings: list[Finding] = []
    for f in files:
        try:
            rel = str(f.relative_to(root))
        except ValueError:
            rel = str(f)
        all_findings.extend(scan_file(f, rel))

    for finding in all_findings:
        print(finding.render())
    if all_findings:
        print(f"lint_determinism: {len(all_findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: clean ({len(files)} file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
