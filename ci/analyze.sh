#!/usr/bin/env bash
# Static-analysis entry point (CI and local): the three correctness gates
# that don't need to execute the simulator.
#
#   1. determinism lint — ci/lint_determinism.py over src/ (wall-clock,
#      raw RNG, unordered iteration, pointer-keyed comparators,
#      uninitialized POD members; see the script docstring).
#   2. clang-tidy — the curated .clang-tidy over every TU in
#      compile_commands.json, --warnings-as-errors=*.  Skipped with a
#      loud warning when clang-tidy is absent (this box may be gcc-only);
#      the lint and trial-warnings gates below still run.
#   3. -Wshadow -Wconversion trial leg — the nbmg library must stay clean
#      under the stricter warning set (NBMG_TRIAL_WARNINGS scopes the
#      flags to the lib; gtest/benchmark macros keep tests out of scope).
#
#   $ ci/analyze.sh             # all three gates
#   $ ci/analyze.sh --no-tidy   # skip clang-tidy explicitly
set -euo pipefail

cd "$(dirname "$0")/.."

jobs="$(nproc 2>/dev/null || echo 2)"
build_dir=build-analyze
run_tidy=1
if [[ "${1:-}" == "--no-tidy" ]]; then
  run_tidy=0
fi

echo "=== analyze: determinism lint (ci/lint_determinism.py) ==="
python3 ci/lint_determinism.py

echo "=== analyze: configure ${build_dir} (compile_commands + trial warnings) ==="
# Tests stay out of the database (gtest macro expansions drown tidy);
# bench/ and examples/ stay in — the gate covers them too.
cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE=Release -DNBMG_WERROR=ON \
      -DNBMG_TRIAL_WARNINGS=ON -DNBMG_BUILD_TESTS=OFF

if [[ "${run_tidy}" -eq 1 ]] && command -v clang-tidy >/dev/null 2>&1; then
  echo "=== analyze: clang-tidy over compile_commands.json ==="
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "${build_dir}" -quiet -warnings-as-errors='*' \
      "$(pwd)/(src|bench|examples)/.*"
  else
    # Portable fallback: feed every nbmg TU from the database directly.
    python3 - "$build_dir" <<'EOF'
import json, subprocess, sys
build_dir = sys.argv[1]
entries = json.load(open(f"{build_dir}/compile_commands.json"))
files = sorted({e["file"] for e in entries
                if any(f"/{d}/" in e["file"]
                       for d in ("src", "bench", "examples"))})
failed = 0
for f in files:
    r = subprocess.run(["clang-tidy", "-p", build_dir,
                        "--warnings-as-errors=*", "--quiet", f])
    failed += r.returncode != 0
sys.exit(1 if failed else 0)
EOF
  fi
else
  echo "!!! analyze: clang-tidy NOT FOUND on this box — SKIPPING the tidy"
  echo "!!! gate.  The checked-in .clang-tidy is still authoritative: run"
  echo "!!! 'ci/analyze.sh' on a box with clang-tidy before merging"
  echo "!!! non-trivial C++ changes."
fi

echo "=== analyze: -Wshadow -Wconversion trial leg (nbmg lib) ==="
cmake --build "${build_dir}" --target nbmg -j"${jobs}"

echo "analyze: all gates green"
