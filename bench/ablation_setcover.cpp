// Ablation A1: set-cover solver comparison on the DR-SC window instances.
//
// The paper justifies the greedy heuristic by NP-hardness (Sec. III-A,
// Fig. 3).  This bench quantifies what the heuristic costs: on small
// instances we compare greedy (the paper's choice), first-fit and random
// baselines against the exact branch-and-bound optimum.
#include <cstdio>
#include <utility>

#include "bench/bench_util.hpp"
#include "core/mechanism.hpp"
#include "core/sweep.hpp"
#include "setcover/solvers.hpp"
#include "setcover/window_cover.hpp"
#include "stats/summary.hpp"
#include "traffic/population.hpp"

namespace {

/// One instance's cover sizes; exact < 0 means the node budget ran out.
struct InstanceResult {
    double greedy = 0.0;
    double first_fit = 0.0;
    double random = 0.0;
    double exact = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 40);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 24);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Ablation A1",
                        "set-cover solvers on DR-SC window instances");
    std::printf("n=%zu devices per instance, %zu instances\n", devices, runs);

    const core::CampaignConfig config;
    const traffic::PopulationProfile profile = traffic::massive_iot_city();

    const auto solve_instance = [&](std::size_t run) {
        const nbiot::PagingSchedule paging(config.paging);
        sim::RandomStream pop_rng{sim::derive_seed(seed, "pop", run)};
        const auto population = traffic::generate_population(profile, devices, pop_rng);
        const auto specs = traffic::to_specs(population);
        const nbiot::SimTime horizon{
            2 * core::population_max_cycle(specs).period_ms()};

        std::vector<setcover::PoEvent> events;
        for (const auto& dev : specs) {
            for (const auto po :
                 paging.pos_in_range(nbiot::SimTime{0}, horizon, dev.imsi, dev.cycle)) {
                events.push_back({po, dev.device.value});
            }
        }

        InstanceResult out;
        // Build the generic instance first so the window greedy can consume
        // `events` without a copy.
        const setcover::SetCoverInstance instance = setcover::to_set_cover_instance(
            events, config.inactivity_timer, static_cast<std::uint32_t>(devices));
        sim::RandomStream tie_rng{sim::derive_seed(seed, "tie", run)};
        const auto fast = setcover::greedy_window_cover(
            std::move(events), config.inactivity_timer,
            static_cast<std::uint32_t>(devices), tie_rng);
        out.greedy = static_cast<double>(fast.windows.size());
        out.first_fit =
            static_cast<double>(setcover::first_fit_cover(instance).chosen.size());
        sim::RandomStream rnd_rng{sim::derive_seed(seed, "rnd", run)};
        out.random =
            static_cast<double>(setcover::random_cover(instance, rnd_rng).chosen.size());

        if (const auto exact = setcover::exact_cover(instance, 2'000'000)) {
            out.exact = static_cast<double>(exact->chosen.size());
        }
        return out;
    };
    const std::vector<InstanceResult> instances =
        core::sweep_indexed(runs, threads, solve_instance);

    stats::Summary greedy_size;
    stats::Summary first_fit_size;
    stats::Summary random_size;
    stats::Summary exact_size;
    stats::Summary greedy_ratio;
    std::size_t exact_solved = 0;
    for (const InstanceResult& r : instances) {
        greedy_size.add(r.greedy);
        first_fit_size.add(r.first_fit);
        random_size.add(r.random);
        if (r.exact >= 0.0) {
            ++exact_solved;
            exact_size.add(r.exact);
            greedy_ratio.add(r.greedy / r.exact);
        }
    }

    stats::Table table({"solver", "mean cover size", "vs exact"});
    table.add_row({"exact (branch&bound)", stats::Table::cell(exact_size.mean(), 2),
                   "1.000"});
    table.add_row({"greedy (paper)", stats::Table::cell(greedy_size.mean(), 2),
                   stats::Table::cell(greedy_ratio.mean(), 3)});
    table.add_row({"first-fit", stats::Table::cell(first_fit_size.mean(), 2),
                   stats::Table::cell(first_fit_size.mean() / exact_size.mean(), 3)});
    table.add_row({"random", stats::Table::cell(random_size.mean(), 2),
                   stats::Table::cell(random_size.mean() / exact_size.mean(), 3)});
    bench::print_table(table);
    std::printf("exact solved %zu/%zu instances within node budget\n", exact_solved,
                runs);
    return 0;
}
