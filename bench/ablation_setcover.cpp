// Ablation A1: set-cover solver comparison on the DR-SC window instances.
//
// The paper justifies the greedy heuristic by NP-hardness (Sec. III-A,
// Fig. 3).  This bench quantifies what the heuristic costs: on small
// instances we compare greedy (the paper's choice), first-fit and random
// baselines against the exact branch-and-bound optimum.
//
// Scenario shell: the `ablation-setcover` preset (or --scenario/--preset)
// provides profile, campaign config, instance size (devices), instance
// count (runs), seed and threads.
#include <cstdio>
#include <utility>

#include "bench/bench_util.hpp"
#include "core/mechanism.hpp"
#include "core/sweep.hpp"
#include "scenario/spec.hpp"
#include "setcover/solvers.hpp"
#include "setcover/window_cover.hpp"
#include "stats/summary.hpp"
#include "traffic/population.hpp"

namespace {

/// One instance's cover sizes; exact < 0 means the node budget ran out.
struct InstanceResult {
    double greedy = 0.0;
    double first_fit = 0.0;
    double random = 0.0;
    double exact = -1.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    // Pure cover-instance solving: no payload is ever transmitted.
    bench::reject_flags(argc, argv, {"--payload-kb"},
                        "has no effect here: the solver comparison plans "
                        "window covers, no payload is delivered");
    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-setcover"),
        "ablation_setcover");
    const std::size_t devices = spec.device_count;

    bench::print_header("Ablation A1",
                        "set-cover solvers on DR-SC window instances");
    bench::print_scenario_line(spec);
    std::printf("n=%zu devices per instance, %zu instances\n", devices, spec.runs);

    const core::CampaignConfig& config = spec.config;

    const auto solve_instance = [&](std::size_t run) {
        const nbiot::PagingSchedule paging(config.paging);
        sim::RandomStream pop_rng{sim::derive_seed(spec.base_seed, "pop", run)};
        const auto population =
            traffic::generate_population(spec.profile, devices, pop_rng);
        const auto specs = traffic::to_specs(population);
        const nbiot::SimTime horizon{
            2 * core::population_max_cycle(specs).period_ms()};

        std::vector<setcover::PoEvent> events;
        for (const auto& dev : specs) {
            for (const auto po :
                 paging.pos_in_range(nbiot::SimTime{0}, horizon, dev.imsi, dev.cycle)) {
                events.push_back({po, dev.device.value});
            }
        }

        InstanceResult out;
        // Build the generic instance first so the window greedy can consume
        // `events` without a copy.
        const setcover::SetCoverInstance instance = setcover::to_set_cover_instance(
            events, config.inactivity_timer, static_cast<std::uint32_t>(devices));
        sim::RandomStream tie_rng{sim::derive_seed(spec.base_seed, "tie", run)};
        const auto fast = setcover::greedy_window_cover(
            std::move(events), config.inactivity_timer,
            static_cast<std::uint32_t>(devices), tie_rng);
        out.greedy = static_cast<double>(fast.windows.size());
        out.first_fit =
            static_cast<double>(setcover::first_fit_cover(instance).chosen.size());
        sim::RandomStream rnd_rng{sim::derive_seed(spec.base_seed, "rnd", run)};
        out.random =
            static_cast<double>(setcover::random_cover(instance, rnd_rng).chosen.size());

        if (const auto exact = setcover::exact_cover(instance, 2'000'000)) {
            out.exact = static_cast<double>(exact->chosen.size());
        }
        return out;
    };
    const std::vector<InstanceResult> instances =
        core::sweep_indexed(spec.runs, spec.threads, solve_instance);

    stats::Summary greedy_size;
    stats::Summary first_fit_size;
    stats::Summary random_size;
    stats::Summary exact_size;
    stats::Summary greedy_ratio;
    std::size_t exact_solved = 0;
    for (const InstanceResult& r : instances) {
        greedy_size.add(r.greedy);
        first_fit_size.add(r.first_fit);
        random_size.add(r.random);
        if (r.exact >= 0.0) {
            ++exact_solved;
            exact_size.add(r.exact);
            greedy_ratio.add(r.greedy / r.exact);
        }
    }

    stats::Table table({"solver", "mean cover size", "vs exact"});
    table.add_row({"exact (branch&bound)", stats::Table::cell(exact_size.mean(), 2),
                   "1.000"});
    table.add_row({"greedy (paper)", stats::Table::cell(greedy_size.mean(), 2),
                   stats::Table::cell(greedy_ratio.mean(), 3)});
    table.add_row({"first-fit", stats::Table::cell(first_fit_size.mean(), 2),
                   stats::Table::cell(first_fit_size.mean() / exact_size.mean(), 3)});
    table.add_row({"random", stats::Table::cell(random_size.mean(), 2),
                   stats::Table::cell(random_size.mean() / exact_size.mean(), 3)});
    bench::print_table(table);
    std::printf("exact solved %zu/%zu instances within node budget\n", exact_solved,
                spec.runs);
    return 0;
}
