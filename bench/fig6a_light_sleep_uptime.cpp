// Reproduces Fig. 6(a): relative uptime increase in light-sleep mode
// (paging-occasion monitoring + paging reception) versus the unicast
// reference, for DR-SC, DA-SC and DR-SI.
//
// Paper's reported shape: DR-SC identical to unicast (exactly 0), DR-SI a
// negligible increase (only a longer paging message), DA-SC a visible
// increase (extra POs on the shortened cycle).  Because the baseline
// light-sleep uptime of very sleepy eDRX devices is tiny, the relative
// number for DA-SC is large; the paper's own conclusion frames it against
// the total uptime, which the last column reports (see EXPERIMENTS.md,
// note R1).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 50);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 300);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);

    core::ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = devices;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = runs;
    setup.base_seed = seed;
    setup.threads = bench::flag_threads(argc, argv);

    bench::print_header("Fig. 6(a)", "relative light-sleep uptime increase vs unicast");
    std::printf("profile=%s n=%zu payload=100KB TI=%.1fs runs=%zu\n",
                setup.profile.name.c_str(), devices,
                static_cast<double>(setup.config.inactivity_timer.count()) / 1000.0,
                runs);

    const core::ComparisonOutcome outcome = core::run_comparison(setup);
    const double base_light = outcome.unicast.mean_light_sleep_seconds.mean();
    const double base_total =
        base_light + outcome.unicast.mean_connected_seconds.mean();

    stats::Table table({"mechanism", "light-sleep uptime (s/device)",
                        "increase vs unicast", "ci95",
                        "as % of total unicast uptime", "paper shape"});
    table.add_row({"Unicast", stats::Table::cell(base_light, 2), "-", "-", "-",
                   "reference"});
    for (const auto& s : outcome.mechanisms) {
        // Light-sleep delta expressed against the unicast *total* uptime
        // (light sleep + connected), the conclusions' framing.
        const double light_vs_total =
            (s.mean_light_sleep_seconds.mean() - base_light) / base_total;
        const char* expected = s.kind == core::MechanismKind::dr_sc ? "exactly 0"
                               : s.kind == core::MechanismKind::da_sc
                                   ? "minor increase"
                                   : "negligible increase";
        table.add_row(
            {std::string{core::to_string(s.kind)},
             stats::Table::cell(s.mean_light_sleep_seconds.mean(), 2),
             stats::Table::cell_percent(s.light_sleep_increase.mean(), 2),
             stats::Table::cell_percent(s.light_sleep_increase.ci95_half_width(), 2),
             stats::Table::cell_percent(light_vs_total, 3), expected});
    }
    bench::print_table(table);
    return 0;
}
