// Reproduces Fig. 6(a): relative uptime increase in light-sleep mode
// (paging-occasion monitoring + paging reception) versus the unicast
// reference, for DR-SC, DA-SC and DR-SI.
//
// Scenario shell: the workload comes from the `fig6a` preset, a
// `--scenario FILE`, or `--preset NAME`; the classic flags (--runs,
// --devices, --seed, --threads, ...) override on top.
//
// Paper's reported shape: DR-SC identical to unicast (exactly 0), DR-SI a
// negligible increase (only a longer paging message), DA-SC a visible
// increase (extra POs on the shortened cycle).  Because the baseline
// light-sleep uptime of very sleepy eDRX devices is tiny, the relative
// number for DA-SC is large; the paper's own conclusion frames it against
// the total uptime, which the last column reports (see EXPERIMENTS.md,
// note R1).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "fig6a"), "fig6a_light_sleep_uptime");

    bench::print_header("Fig. 6(a)", "relative light-sleep uptime increase vs unicast");
    bench::print_scenario_line(spec);

    const scenario::ScenarioResult result = scenario::run_scenario(spec);
    const core::ComparisonOutcome& outcome = result.comparison();
    const double base_light = outcome.unicast.mean_light_sleep_seconds.mean();
    const double base_total =
        base_light + outcome.unicast.mean_connected_seconds.mean();

    stats::Table table({"mechanism", "light-sleep uptime (s/device)",
                        "increase vs unicast", "ci95",
                        "as % of total unicast uptime", "paper shape"});
    table.add_row({"Unicast", stats::Table::cell(base_light, 2), "-", "-", "-",
                   "reference"});
    for (const auto& s : outcome.mechanisms) {
        // Light-sleep delta expressed against the unicast *total* uptime
        // (light sleep + connected), the conclusions' framing.
        const double light_vs_total =
            (s.mean_light_sleep_seconds.mean() - base_light) / base_total;
        const char* expected = s.kind == core::MechanismKind::dr_sc ? "exactly 0"
                               : s.kind == core::MechanismKind::da_sc
                                   ? "minor increase"
                                   : "negligible increase";
        table.add_row(
            {std::string{core::to_string(s.kind)},
             stats::Table::cell(s.mean_light_sleep_seconds.mean(), 2),
             stats::Table::cell_percent(s.light_sleep_increase.mean(), 2),
             stats::Table::cell_percent(s.light_sleep_increase.ci95_half_width(), 2),
             stats::Table::cell_percent(light_vs_total, 3), expected});
    }
    bench::print_table(table);
    return 0;
}
