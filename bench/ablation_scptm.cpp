// Ablation A5: why the on-demand scheme of [3] exists at all.  SC-PTM-style
// delivery needs a single transmission and no connections, but every device
// pays a standing SC-MCCH monitoring cost forever — on-demand paging pays
// only when there is data.
//
// Scenario shell: the `ablation-scptm` preset (or --scenario/--preset)
// carries the four-mechanism list (DR-SC, DA-SC, DR-SI, SC-PTM); run it
// through the unified entry point.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-scptm"), "ablation_scptm");

    bench::print_header("Ablation A5", "SC-PTM baseline vs on-demand mechanisms");
    bench::print_scenario_line(spec);
    std::printf("(uptime per device over one campaign horizon)\n");

    const core::ComparisonOutcome outcome =
        scenario::run_scenario(spec).comparison();

    stats::Table table({"mechanism", "light-sleep (s/device)", "connected (s/device)",
                        "vs unicast light-sleep", "transmissions"});
    table.add_row({"Unicast",
                   stats::Table::cell(outcome.unicast.mean_light_sleep_seconds.mean(), 2),
                   stats::Table::cell(outcome.unicast.mean_connected_seconds.mean(), 2),
                   "-", stats::Table::cell(outcome.unicast.transmissions.mean(), 0)});
    for (const auto& s : outcome.mechanisms) {
        table.add_row({std::string{core::to_string(s.kind)},
                       stats::Table::cell(s.mean_light_sleep_seconds.mean(), 2),
                       stats::Table::cell(s.mean_connected_seconds.mean(), 2),
                       stats::Table::cell_percent(s.light_sleep_increase.mean(), 1),
                       stats::Table::cell(s.transmissions.mean(), 0)});
    }
    bench::print_table(table);
    std::printf(
        "SC-PTM receives in idle mode (low connected time, single transmission)\n"
        "but its SC-MCCH monitoring dominates light-sleep uptime — and unlike\n"
        "the on-demand mechanisms it keeps paying between campaigns.\n");
    return 0;
}
