// Ablation A5: why the on-demand scheme of [3] exists at all.  SC-PTM-style
// delivery needs a single transmission and no connections, but every device
// pays a standing SC-MCCH monitoring cost forever — on-demand paging pays
// only when there is data.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 15);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 200);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);

    bench::print_header("Ablation A5", "SC-PTM baseline vs on-demand mechanisms");
    std::printf("n=%zu runs=%zu payload=100KB (uptime per device over one campaign "
                "horizon)\n",
                devices, runs);

    core::ComparisonSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = devices;
    setup.payload_bytes = traffic::firmware_100kb().bytes;
    setup.runs = runs;
    setup.base_seed = seed;
    setup.threads = bench::flag_threads(argc, argv);
    setup.mechanisms = {core::MechanismKind::dr_sc, core::MechanismKind::da_sc,
                        core::MechanismKind::dr_si, core::MechanismKind::sc_ptm};

    const core::ComparisonOutcome outcome = core::run_comparison(setup);

    stats::Table table({"mechanism", "light-sleep (s/device)", "connected (s/device)",
                        "vs unicast light-sleep", "transmissions"});
    table.add_row({"Unicast",
                   stats::Table::cell(outcome.unicast.mean_light_sleep_seconds.mean(), 2),
                   stats::Table::cell(outcome.unicast.mean_connected_seconds.mean(), 2),
                   "-", stats::Table::cell(outcome.unicast.transmissions.mean(), 0)});
    for (const auto& s : outcome.mechanisms) {
        table.add_row({std::string{core::to_string(s.kind)},
                       stats::Table::cell(s.mean_light_sleep_seconds.mean(), 2),
                       stats::Table::cell(s.mean_connected_seconds.mean(), 2),
                       stats::Table::cell_percent(s.light_sleep_increase.mean(), 1),
                       stats::Table::cell(s.transmissions.mean(), 0)});
    }
    bench::print_table(table);
    std::printf(
        "SC-PTM receives in idle mode (low connected time, single transmission)\n"
        "but its SC-MCCH monitoring dominates light-sleep uptime — and unlike\n"
        "the on-demand mechanisms it keeps paying between campaigns.\n");
    return 0;
}
