// Multicell scaling: one firmware campaign for a fixed city-wide fleet,
// sharded over an increasing number of cells.  Planning stays per cell, so
// the dominant costs (DR-SC cover, paging-slot search, the event loop)
// shrink superlinearly with the shard size, and the independent (run, cell)
// loops fan across the worker pool — wall-clock drops from one serial loop
// toward max-over-cells.  The fleet population is generated once and shared
// by every sweep point, and aggregates stay bit-identical for any
// --threads.
//
// Scenario shell: the `multicell-scaling` preset (or --scenario/--preset)
// provides the fleet; --cells sets the sweep's end point.  With a
// wall-clock coordinator engaged (--coordinator fixed-stagger/backhaul or
// the coordinator.* scenario keys) three city time-axis columns are
// appended — completion, peak concurrently-active cells, backhaul
// utilization.
//
// --profile turns on the wall-clock self-profiler (telemetry/profiler.hpp):
// a per-phase timing report on stderr.  Bench shells are the only place
// that may read the wall clock — the simulation itself never does.
//
//   $ fig_multicell_scaling --devices 100000 --cells 64 --runs 1 --threads 8
//   $ fig_multicell_scaling --cells 16 --coordinator fixed-stagger --stagger-ms 30000
//   $ fig_multicell_scaling --cells 16 --profile 2>profile.txt
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"
#include "telemetry/profiler.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    bool profile = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--profile") == 0) profile = true;
    }
    scenario::ShellFlags shell;
    shell.bare_flags = {"--profile"};
    scenario::ScenarioSpec base =
        bench::spec_from_args(argc, argv, "multicell-scaling", shell);
    const std::size_t max_cells = base.cell_count();

    bench::print_header("Multicell scaling",
                        "fleet campaign sharded across independent cells");
    bench::print_scenario_line(base);

    telemetry::PhaseProfiler profiler(profile);

    // One fleet, every sweep point: population generation is paid once.
    profiler.begin("generate populations");
    base.with_populations(core::generate_comparison_populations(
        base.profile, base.device_count, base.runs, base.base_seed));
    profiler.end();

    // The per-mechanism columns report the scenario's *first* mechanism
    // (DR-SC in the preset); label them accordingly.
    const std::string first_mechanism{core::to_string(base.mechanisms.front())};
    std::vector<std::string> columns{"cells", "wall-clock (s)", "speedup vs 1 cell",
                                     "max cell load", "empty cell-runs",
                                     first_mechanism + " tx (fleet)",
                                     "light-sleep incr", "RACH collision p50",
                                     "p95 across cells"};
    // A coordinated sweep additionally reports the city time axis.
    if (base.is_coordinated()) {
        columns.insert(columns.end(),
                       {"city completion (s)", "peak cells", "backhaul util"});
    }
    stats::Table table(columns);
    // Sweep 1, 4, 16, ... and always finish at the requested --cells value,
    // whether or not it is a power of 4.
    std::vector<std::size_t> cell_counts;
    for (std::size_t cells = 1; cells < max_cells; cells *= 4) {
        cell_counts.push_back(cells);
    }
    cell_counts.push_back(max_cells);

    double serial_seconds = 0.0;
    for (const std::size_t cells : cell_counts) {
        scenario::ScenarioSpec point = base;
        // Count-only change: a hotspot scenario sweeps as a hotspot.
        point.with_cell_count(cells);

        profiler.begin("cells " + std::to_string(cells));
        const auto started = std::chrono::steady_clock::now();
        const scenario::ScenarioResult scenario_result = scenario::run_scenario(point);
        const multicell::DeploymentResult& result = scenario_result.deployment();
        const double seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                .count();
        if (cells == 1) serial_seconds = seconds;

        const auto& dr_sc = result.mechanisms.front();
        std::vector<std::string> row{
            stats::Table::cell(static_cast<std::int64_t>(cells)),
            stats::Table::cell(seconds, 2),
            stats::Table::cell(serial_seconds / seconds, 2),
            stats::Table::cell(result.cell_load.max(), 0),
            stats::Table::cell(static_cast<std::int64_t>(result.empty_cell_runs)),
            stats::Table::cell(dr_sc.stats.transmissions.mean(), 1),
            stats::Table::cell_percent(dr_sc.stats.light_sleep_increase.mean(), 2),
            stats::Table::cell(result.rach_collision_across_cells.quantile(0.5), 4),
            stats::Table::cell(result.rach_collision_across_cells.quantile(0.95),
                               4)};
        if (scenario_result.is_coordinated()) {
            const multicell::CoordinationAggregates& city =
                *scenario_result.coordination;
            row.insert(row.end(),
                       {stats::Table::cell(city.completion_ms.mean() / 1000.0, 1),
                        stats::Table::cell(city.peak_concurrent_cells.mean(), 1),
                        stats::Table::cell(city.backhaul_utilization.mean(), 3)});
        }
        profiler.end();
        table.add_row(std::move(row));
    }
    bench::print_table(table);
    if (profiler.enabled()) std::fputs(profiler.report().c_str(), stderr);
    std::printf(
        "\nReading the table: the fleet aggregates stay in the same regime while\n"
        "wall-clock falls — planning is per cell, so sharding cuts the greedy\n"
        "cover and paging-slot search superlinearly and the cells run in\n"
        "parallel.  Per-cell RACH contention drops as each cell's RACH only\n"
        "carries its own camped devices.\n");
    return 0;
}
