// Ablation A6 (extension): battery-life projection.  The paper uses uptime
// as the energy proxy; this bench pushes one step further with a concrete
// current model (typical NB-IoT module, 5 Ah primary cell) and a firmware
// cadence of N campaigns per year, answering the question the paper's
// introduction poses: does grouping preserve the 10-year battery target?
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace {

struct MechanismProjection {
    double energy_mj = 0.0;
    double avg_ma = 0.0;
    double years = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 150);
    const std::size_t updates_per_year =
        bench::flag_value(argc, argv, "--updates-per-year", 12);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Ablation A6", "battery-life projection per mechanism");
    std::printf("n=%zu, %zu firmware campaigns per year, payload=1MB, 5 Ah cell\n",
                devices, updates_per_year);

    const nbiot::PowerProfile profile = nbiot::PowerProfile::typical_nbiot();
    const core::CampaignConfig config;
    sim::RandomStream pop_rng{sim::derive_seed(seed, "pop")};
    const auto specs = traffic::to_specs(
        traffic::generate_population(traffic::massive_iot_city(), devices, pop_rng));
    const std::int64_t payload = traffic::firmware_1mb().bytes;

    const std::vector<core::MechanismKind> kinds = {
        core::MechanismKind::unicast, core::MechanismKind::dr_sc,
        core::MechanismKind::da_sc, core::MechanismKind::dr_si,
        core::MechanismKind::sc_ptm};
    const auto project = [&](std::size_t k) {
        const core::MechanismKind kind = kinds[k];
        const auto result = core::plan_and_run(*core::make_mechanism(kind), specs,
                                               config, payload, seed);
        // Mean per-device energy and idle-life current over the horizon.
        double energy_mj = 0.0;
        for (const auto& d : result.devices) {
            energy_mj += d.energy.active_energy_mj(profile);
        }
        energy_mj /= static_cast<double>(result.devices.size());

        // Year-scale average current: baseline PO monitoring (amortized from
        // the horizon) plus the campaign overhead at the configured cadence.
        const double horizon_s =
            static_cast<double>(result.observation_horizon.count()) / 1000.0;
        const double year_s = 365.25 * 24 * 3600;
        const double campaigns = static_cast<double>(updates_per_year);
        // Light-sleep (PO) cost continues all year; connected cost happens
        // `campaigns` times per year.
        double light_ma_ms = 0.0;
        double connected_ma_ms = 0.0;
        for (const auto& d : result.devices) {
            light_ma_ms +=
                profile.current_ma[static_cast<std::size_t>(
                    nbiot::PowerState::po_monitor)] *
                static_cast<double>(d.energy.light_sleep_uptime().count());
            connected_ma_ms +=
                profile.current_ma[static_cast<std::size_t>(
                    nbiot::PowerState::connected_rx)] *
                static_cast<double>(d.energy.connected_uptime().count());
        }
        light_ma_ms /= static_cast<double>(result.devices.size());
        connected_ma_ms /= static_cast<double>(result.devices.size());
        const double avg_ma = profile.current_ma[0]  // deep sleep floor
                              + light_ma_ms / 1000.0 / horizon_s
                              + connected_ma_ms / 1000.0 * campaigns / year_s;
        return MechanismProjection{energy_mj, avg_ma,
                                   nbiot::battery_life_years(profile, avg_ma)};
    };
    const std::vector<MechanismProjection> projections =
        core::sweep_indexed(kinds.size(), threads, project);

    stats::Table table({"mechanism", "campaign energy (J/device)",
                        "avg current w/ campaigns (uA)", "battery life (years)"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        table.add_row({std::string{core::to_string(kinds[k])},
                       stats::Table::cell(projections[k].energy_mj / 1000.0, 2),
                       stats::Table::cell(projections[k].avg_ma * 1000.0, 1),
                       stats::Table::cell(projections[k].years, 1)});
    }
    bench::print_table(table);
    std::printf(
        "The grouping overheads are invisible at year scale: reception energy\n"
        "dominates, so all on-demand mechanisms keep the ~10-year target.\n");
    return 0;
}
