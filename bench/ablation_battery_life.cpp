// Ablation A6 (extension): battery-life projection.  The paper uses uptime
// as the energy proxy; this bench pushes one step further with a concrete
// current model (typical NB-IoT module, 5 Ah primary cell) and a firmware
// cadence of N campaigns per year, answering the question the paper's
// introduction poses: does grouping preserve the 10-year battery target?
//
// Scenario shell: the `ablation-battery` preset (or --scenario/--preset)
// provides population, payload, seed and the mechanism list; the unicast
// reference is prepended, and --updates-per-year stays a binary-local knob.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "core/sweep.hpp"
#include "scenario/spec.hpp"

namespace {

struct MechanismProjection {
    double energy_mj = 0.0;
    double avg_ma = 0.0;
    double years = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    // The projection runs one deterministic campaign per mechanism.
    bench::reject_flags(argc, argv, {"--runs"},
                        "has no effect here: the battery projection runs one "
                        "campaign per mechanism");
    scenario::ShellFlags shell;
    shell.value_flags = {"--updates-per-year"};
    scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-battery", shell),
        "ablation_battery_life");
    if (spec.runs != 1) {
        // The scenario-file `runs` key has no flag to reject; normalize it
        // loudly so the banner cannot claim runs that never happen.
        std::fprintf(stderr,
                     "note: scenario runs=%zu ignored — the battery projection "
                     "runs one campaign per mechanism\n",
                     spec.runs);
        spec.with_runs(1);
    }
    const std::size_t devices = spec.device_count;
    const std::size_t updates_per_year =
        bench::flag_value(argc, argv, "--updates-per-year", 12);

    bench::print_header("Ablation A6", "battery-life projection per mechanism");
    bench::print_scenario_line(spec);
    std::printf("%zu firmware campaigns per year, 5 Ah cell\n", updates_per_year);

    const nbiot::PowerProfile profile = nbiot::PowerProfile::typical_nbiot();
    const core::CampaignConfig& config = spec.config;
    sim::RandomStream pop_rng{sim::derive_seed(spec.base_seed, "pop")};
    const auto specs = traffic::to_specs(
        traffic::generate_population(spec.profile, devices, pop_rng));
    const std::int64_t payload = spec.payload_bytes;

    // Unicast reference first, then the spec's mechanism list (minus any
    // unicast already in it — no point projecting the reference twice).
    std::vector<core::MechanismKind> kinds;
    kinds.reserve(spec.mechanisms.size() + 1);
    kinds.push_back(core::MechanismKind::unicast);
    for (const core::MechanismKind kind : spec.mechanisms) {
        if (kind != core::MechanismKind::unicast) kinds.push_back(kind);
    }
    const auto project = [&](std::size_t k) {
        const core::MechanismKind kind = kinds[k];
        const auto result = core::plan_and_run(*core::make_mechanism(kind), specs,
                                               config, payload, spec.base_seed);
        // Mean per-device energy and idle-life current over the horizon.
        double energy_mj = 0.0;
        for (const auto& d : result.devices) {
            energy_mj += d.energy.active_energy_mj(profile);
        }
        energy_mj /= static_cast<double>(result.devices.size());

        // Year-scale average current: baseline PO monitoring (amortized from
        // the horizon) plus the campaign overhead at the configured cadence.
        const double horizon_s =
            static_cast<double>(result.observation_horizon.count()) / 1000.0;
        const double year_s = 365.25 * 24 * 3600;
        const double campaigns = static_cast<double>(updates_per_year);
        // Light-sleep (PO) cost continues all year; connected cost happens
        // `campaigns` times per year.
        double light_ma_ms = 0.0;
        double connected_ma_ms = 0.0;
        for (const auto& d : result.devices) {
            light_ma_ms +=
                profile.current_ma[static_cast<std::size_t>(
                    nbiot::PowerState::po_monitor)] *
                static_cast<double>(d.energy.light_sleep_uptime().count());
            connected_ma_ms +=
                profile.current_ma[static_cast<std::size_t>(
                    nbiot::PowerState::connected_rx)] *
                static_cast<double>(d.energy.connected_uptime().count());
        }
        light_ma_ms /= static_cast<double>(result.devices.size());
        connected_ma_ms /= static_cast<double>(result.devices.size());
        const double avg_ma = profile.current_ma[0]  // deep sleep floor
                              + light_ma_ms / 1000.0 / horizon_s
                              + connected_ma_ms / 1000.0 * campaigns / year_s;
        return MechanismProjection{energy_mj, avg_ma,
                                   nbiot::battery_life_years(profile, avg_ma)};
    };
    const std::vector<MechanismProjection> projections =
        core::sweep_indexed(kinds.size(), spec.threads, project);

    stats::Table table({"mechanism", "campaign energy (J/device)",
                        "avg current w/ campaigns (uA)", "battery life (years)"});
    for (std::size_t k = 0; k < kinds.size(); ++k) {
        table.add_row({std::string{core::to_string(kinds[k])},
                       stats::Table::cell(projections[k].energy_mj / 1000.0, 2),
                       stats::Table::cell(projections[k].avg_ma * 1000.0, 1),
                       stats::Table::cell(projections[k].years, 1)});
    }
    bench::print_table(table);
    std::printf(
        "The grouping overheads are invisible at year scale: reception energy\n"
        "dominates, so all on-demand mechanisms keep the ~10-year target.\n");
    return 0;
}
