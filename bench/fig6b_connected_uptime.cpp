// Reproduces Fig. 6(b): relative uptime increase in connected mode
// (random access, RRC signaling, waiting for the multicast, receiving the
// data) versus the unicast reference, for multicast payloads of 100 KB,
// 1 MB and 10 MB.
//
// Scenario shell: the `fig6b` preset (or --scenario FILE / --preset NAME)
// provides the base point; the binary sweeps the paper's three payload
// sizes from it, with the classic flags as overrides.
//
// Paper's reported shape: DR-SC and DR-SI slightly above unicast (they wait
// for the transmission to start), DA-SC the longest (it also connects once
// more for the DRX reconfiguration), and all three relative increases
// shrink as the payload grows — practically negligible above 1 MB.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"
#include "traffic/firmware.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // The payload axis IS the figure; an override would be overwritten by
    // the sweep, so refuse it rather than echo a value that never runs.
    bench::reject_flags(argc, argv, {"--payload-kb"},
                        "has no effect here: fig6b sweeps the paper's "
                        "100KB/1MB/10MB payloads");
    scenario::ScenarioSpec base = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "fig6b"), "fig6b_connected_uptime");
    if (base.payload_bytes != traffic::firmware_100kb().bytes) {
        std::fprintf(stderr,
                     "note: scenario payload ignored — fig6b sweeps the "
                     "paper's 100KB/1MB/10MB payloads\n");
    }

    bench::print_header("Fig. 6(b)",
                        "relative connected-mode uptime increase vs unicast");
    bench::print_scenario_line(base);

    // The payload sweep replays the same per-run populations at every
    // point; generate them once and share.
    base.with_populations(core::generate_comparison_populations(
        base.profile, base.device_count, base.runs, base.base_seed));

    stats::Table table({"payload", "mechanism", "connected uptime (s/device)",
                        "increase vs unicast", "ci95", "paper shape"});
    for (const auto& payload : traffic::paper_payloads()) {
        scenario::ScenarioSpec point = base;
        point.with_payload_bytes(payload.bytes);

        const core::ComparisonOutcome outcome =
            scenario::run_scenario(point).comparison();
        table.add_row({payload.name, "Unicast",
                       stats::Table::cell(
                           outcome.unicast.mean_connected_seconds.mean(), 2),
                       "-", "-", "reference"});
        for (const auto& s : outcome.mechanisms) {
            const char* expected =
                s.kind == core::MechanismKind::da_sc
                    ? "longest"
                    : "slightly above unicast";
            table.add_row({payload.name, std::string{core::to_string(s.kind)},
                           stats::Table::cell(s.mean_connected_seconds.mean(), 2),
                           stats::Table::cell_percent(s.connected_increase.mean(), 2),
                           stats::Table::cell_percent(
                               s.connected_increase.ci95_half_width(), 2),
                           expected});
        }
    }
    std::printf("expectation: increases shrink with payload size\n");
    bench::print_table(table);
    return 0;
}
