// Reproduces Fig. 6(b): relative uptime increase in connected mode
// (random access, RRC signaling, waiting for the multicast, receiving the
// data) versus the unicast reference, for multicast payloads of 100 KB,
// 1 MB and 10 MB.
//
// Paper's reported shape: DR-SC and DR-SI slightly above unicast (they wait
// for the transmission to start), DA-SC the longest (it also connects once
// more for the DRX reconfiguration), and all three relative increases
// shrink as the payload grows — practically negligible above 1 MB.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 30);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 300);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Fig. 6(b)",
                        "relative connected-mode uptime increase vs unicast");

    stats::Table table({"payload", "mechanism", "connected uptime (s/device)",
                        "increase vs unicast", "ci95", "paper shape"});
    // The payload sweep replays the same per-run populations at every
    // point; generate them once and share.
    const core::SharedPopulations populations =
        core::generate_comparison_populations(traffic::massive_iot_city(), devices,
                                              runs, seed);
    for (const auto& payload : traffic::paper_payloads()) {
        core::ComparisonSetup setup;
        setup.profile = traffic::massive_iot_city();
        setup.device_count = devices;
        setup.payload_bytes = payload.bytes;
        setup.runs = runs;
        setup.base_seed = seed;
        setup.threads = threads;
        setup.populations = populations;

        const core::ComparisonOutcome outcome = core::run_comparison(setup);
        table.add_row({payload.name, "Unicast",
                       stats::Table::cell(
                           outcome.unicast.mean_connected_seconds.mean(), 2),
                       "-", "-", "reference"});
        for (const auto& s : outcome.mechanisms) {
            const char* expected =
                s.kind == core::MechanismKind::da_sc
                    ? "longest"
                    : "slightly above unicast";
            table.add_row({payload.name, std::string{core::to_string(s.kind)},
                           stats::Table::cell(s.mean_connected_seconds.mean(), 2),
                           stats::Table::cell_percent(s.connected_increase.mean(), 2),
                           stats::Table::cell_percent(
                               s.connected_increase.ci95_half_width(), 2),
                           expected});
        }
    }
    std::printf("n=%zu runs=%zu per payload; expectation: increases shrink with size\n",
                devices, runs);
    bench::print_table(table);
    return 0;
}
