// Ablation A4: control-plane contention.  The paper assumes the paging
// channel and RACH absorb the grouping load; this bench stresses both —
// paging-occasion capacity (maxPageRec), background RA traffic, and page
// loss — and reports what the recovery machinery had to clean up.
//
// Scenario shell: the `ablation-contention` preset (or --scenario/--preset)
// provides the base point.  The first table row runs the scenario's config
// exactly as given (so a file like stress_contention.scenario shows its own
// knobs); the canonical stress rows then layer their paging/RACH/loss
// deltas on top of the remaining config.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "scenario/spec.hpp"

namespace {

struct RunResult {
    double delivered = 0.0;
    double recovery = 0.0;
    double collisions = 0.0;
    double failures = 0.0;
    double connected = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    const scenario::ScenarioSpec base = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-contention"),
        "ablation_contention");
    const std::size_t devices = base.device_count;
    const std::size_t runs = base.runs;

    bench::print_header("Ablation A4", "paging capacity, RACH load and page loss");
    bench::print_scenario_line(base);
    std::printf("mechanism=DR-SI\n");

    struct Scenario {
        std::string name;
        int max_page_records = -1;  // < 0: keep the base config's value
        double background_ra = -1.0;   // < 0: keep
        double page_miss = -1.0;       // < 0: keep
    };
    // Row 0 is the scenario's own config, untouched — unless it already
    // equals the canonical baseline row, which would just run the most
    // expensive sweep twice for identical numbers.  The rest is the
    // canonical stress grid.
    std::vector<Scenario> scenarios;
    const bool base_is_baseline = base.config.paging.max_page_records == 16 &&
                                  base.config.background_ra_per_second == 0.0 &&
                                  base.config.page_miss_prob == 0.0;
    if (!base_is_baseline) {
        scenarios.push_back({"as configured ('" + base.name + "')", -1, -1.0, -1.0});
    }
    scenarios.push_back({"baseline (16 rec/PO, quiet)", 16, 0.0, 0.0});
    scenarios.push_back({"tight paging (1 rec/PO)", 1, 0.0, 0.0});
    scenarios.push_back({"busy RACH (40 RA/s bg)", 16, 40.0, 0.0});
    scenarios.push_back({"lossy paging (20% miss)", 16, 0.0, 0.20});
    scenarios.push_back({"all of the above", 1, 40.0, 0.20});

    stats::Table table({"scenario", "delivered", "recovery tx", "RA collisions",
                        "RA failures", "connected vs unicast"});
    for (const Scenario& sc : scenarios) {
        core::CampaignConfig config = base.config;
        if (sc.max_page_records >= 0) {
            config.paging.max_page_records = sc.max_page_records;
        }
        if (sc.background_ra >= 0.0) {
            config.background_ra_per_second = sc.background_ra;
        }
        if (sc.page_miss >= 0.0) config.page_miss_prob = sc.page_miss;

        const auto stress_run = [&](std::size_t run) {
            sim::RandomStream pop_rng{sim::derive_seed(base.base_seed, "pop", run)};
            const auto specs = traffic::to_specs(
                traffic::generate_population(base.profile, devices, pop_rng));
            const std::uint64_t run_seed =
                sim::derive_seed(base.base_seed, "run", run);
            const auto unicast =
                core::plan_and_run(core::UnicastBaseline{}, specs, config,
                                   base.payload_bytes, run_seed);
            const auto result = core::plan_and_run(core::DrSiMechanism{}, specs,
                                                   config, base.payload_bytes,
                                                   run_seed);
            RunResult out;
            out.delivered = static_cast<double>(result.received_count()) /
                            static_cast<double>(devices);
            out.recovery = static_cast<double>(result.recovery_transmissions);
            out.collisions = static_cast<double>(result.rach_collisions);
            out.failures = static_cast<double>(result.rach_failures);
            out.connected =
                core::relative_uptime(result, unicast).connected_increase;
            return out;
        };

        stats::Summary delivered;
        stats::Summary recovery;
        stats::Summary collisions;
        stats::Summary failures;
        stats::Summary connected;
        for (const RunResult& r :
             core::sweep_indexed(runs, base.threads, stress_run)) {
            delivered.add(r.delivered);
            recovery.add(r.recovery);
            collisions.add(r.collisions);
            failures.add(r.failures);
            connected.add(r.connected);
        }
        table.add_row({sc.name, stats::Table::cell_percent(delivered.mean(), 2),
                       stats::Table::cell(recovery.mean(), 1),
                       stats::Table::cell(collisions.mean(), 0),
                       stats::Table::cell(failures.mean(), 1),
                       stats::Table::cell_percent(connected.mean(), 1)});
    }
    bench::print_table(table);
    std::printf(
        "Every scenario must end at 100%% delivery; stress shows up as recovery\n"
        "transmissions and extra connected time, not as lost devices.\n");
    return 0;
}
