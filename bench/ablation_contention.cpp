// Ablation A4: control-plane contention.  The paper assumes the paging
// channel and RACH absorb the grouping load; this bench stresses both —
// paging-occasion capacity (maxPageRec), background RA traffic, and page
// loss — and reports what the recovery machinery had to clean up.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

namespace {

struct RunResult {
    double delivered = 0.0;
    double recovery = 0.0;
    double collisions = 0.0;
    double failures = 0.0;
    double connected = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 10);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 400);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Ablation A4", "paging capacity, RACH load and page loss");
    std::printf("n=%zu runs=%zu mechanism=DR-SI payload=100KB\n", devices, runs);

    struct Scenario {
        const char* name;
        int max_page_records;
        double background_ra;
        double page_miss;
    };
    const Scenario scenarios[] = {
        {"baseline (16 rec/PO, quiet)", 16, 0.0, 0.0},
        {"tight paging (1 rec/PO)", 1, 0.0, 0.0},
        {"busy RACH (40 RA/s bg)", 16, 40.0, 0.0},
        {"lossy paging (20% miss)", 16, 0.0, 0.20},
        {"all of the above", 1, 40.0, 0.20},
    };

    stats::Table table({"scenario", "delivered", "recovery tx", "RA collisions",
                        "RA failures", "connected vs unicast"});
    for (const Scenario& sc : scenarios) {
        core::CampaignConfig config;
        config.paging.max_page_records = sc.max_page_records;
        config.background_ra_per_second = sc.background_ra;
        config.page_miss_prob = sc.page_miss;

        const auto stress_run = [&](std::size_t run) {
            sim::RandomStream pop_rng{sim::derive_seed(seed, "pop", run)};
            const auto specs = traffic::to_specs(traffic::generate_population(
                traffic::massive_iot_city(), devices, pop_rng));
            const std::uint64_t run_seed = sim::derive_seed(seed, "run", run);
            const std::int64_t payload = traffic::firmware_100kb().bytes;
            const auto unicast =
                core::plan_and_run(core::UnicastBaseline{}, specs, config, payload,
                                   run_seed);
            const auto result = core::plan_and_run(core::DrSiMechanism{}, specs,
                                                   config, payload, run_seed);
            RunResult out;
            out.delivered = static_cast<double>(result.received_count()) /
                            static_cast<double>(devices);
            out.recovery = static_cast<double>(result.recovery_transmissions);
            out.collisions = static_cast<double>(result.rach_collisions);
            out.failures = static_cast<double>(result.rach_failures);
            out.connected =
                core::relative_uptime(result, unicast).connected_increase;
            return out;
        };

        stats::Summary delivered;
        stats::Summary recovery;
        stats::Summary collisions;
        stats::Summary failures;
        stats::Summary connected;
        for (const RunResult& r : core::sweep_indexed(runs, threads, stress_run)) {
            delivered.add(r.delivered);
            recovery.add(r.recovery);
            collisions.add(r.collisions);
            failures.add(r.failures);
            connected.add(r.connected);
        }
        table.add_row({sc.name, stats::Table::cell_percent(delivered.mean(), 2),
                       stats::Table::cell(recovery.mean(), 1),
                       stats::Table::cell(collisions.mean(), 0),
                       stats::Table::cell(failures.mean(), 1),
                       stats::Table::cell_percent(connected.mean(), 1)});
    }
    bench::print_table(table);
    std::printf(
        "Every scenario must end at 100%% delivery; stress shows up as recovery\n"
        "transmissions and extra connected time, not as lost devices.\n");
    return 0;
}
