// M1: google-benchmark microbenchmarks of the computational kernels —
// paging-occasion arithmetic, the DR-SC window-cover greedy, the event
// queue, and a full small campaign.
//
// Scenario shell: --scenario FILE / --preset NAME (with the classic flag
// overrides) swap the population profile and campaign config the
// campaign-shaped cases (BM_DrScPlan, BM_MulticellCampaign,
// BM_FullCampaign) run on; without them the defaults are byte-identical to
// the pre-scenario binary, so BENCH_pr*.json baselines stay comparable.
// The scenario flags are stripped before google-benchmark parses argv.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "multicell/deployment.hpp"
#include "nbiot/paging.hpp"
#include "scenario/cli.hpp"
#include "setcover/solvers.hpp"
#include "setcover/window_cover.hpp"
#include "sim/event_queue.hpp"
#include "telemetry/sink.hpp"
#include "traffic/population.hpp"

namespace {

using namespace nbmg;

/// Base workload of the campaign-shaped cases; main() overwrites it from
/// --scenario/--preset before any benchmark runs.
scenario::ScenarioSpec& bench_base_spec() {
    static scenario::ScenarioSpec spec;
    return spec;
}

void BM_PagingFirstPoAtOrAfter(benchmark::State& state) {
    const nbiot::PagingSchedule paging;
    const nbiot::DrxCycle cycle =
        nbiot::DrxCycle::from_index(static_cast<int>(state.range(0)));
    std::uint64_t imsi = 100'000'000'000'000ULL;
    nbiot::SimTime t{0};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            paging.first_po_at_or_after(t, nbiot::Imsi{imsi}, cycle));
        ++imsi;
        t += nbiot::SimTime{997};
    }
}
BENCHMARK(BM_PagingFirstPoAtOrAfter)->Arg(3)->Arg(9)->Arg(15);

void BM_EventQueueScheduleRun(benchmark::State& state) {
    for (auto _ : state) {
        sim::EventQueue queue;
        const auto n = state.range(0);
        for (std::int64_t i = 0; i < n; ++i) {
            queue.schedule_at(sim::SimTime{(i * 7919) % 100'000}, [] {});
        }
        queue.run_all();
        benchmark::DoNotOptimize(queue.executed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1'000)->Arg(10'000)->Arg(1'000'000);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
    // Cancellation-path cost: schedule n events, cancel every other one up
    // front, then drain — the popped heap is half stale entries.
    for (auto _ : state) {
        sim::EventQueue queue;
        const auto n = state.range(0);
        std::vector<sim::EventId> ids;
        ids.reserve(static_cast<std::size_t>(n));
        for (std::int64_t i = 0; i < n; ++i) {
            ids.push_back(
                queue.schedule_at(sim::SimTime{(i * 7919) % 100'000}, [] {}));
        }
        for (std::size_t i = 0; i < ids.size(); i += 2) queue.cancel(ids[i]);
        queue.run_all();
        benchmark::DoNotOptimize(queue.executed());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(10'000)->Arg(1'000'000);

void BM_WindowCoverGreedy(benchmark::State& state) {
    const auto devices = static_cast<std::uint32_t>(state.range(0));
    sim::RandomStream gen{42};
    std::vector<setcover::PoEvent> events;
    for (std::uint32_t d = 0; d < devices; ++d) {
        const int pos = static_cast<int>(gen.uniform_int(2, 64));
        for (int k = 0; k < pos; ++k) {
            events.push_back({sim::SimTime{gen.uniform_int(0, 20'000'000)}, d});
        }
    }
    for (auto _ : state) {
        sim::RandomStream rng{7};
        auto copy = events;
        benchmark::DoNotOptimize(
            setcover::greedy_window_cover(std::move(copy), sim::SimTime{10'000},
                                          devices, rng));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(events.size()));
}
BENCHMARK(BM_WindowCoverGreedy)->Arg(100)->Arg(500)->Arg(5'000);

/// Random coverable instance shaped like the DR-SC window instances:
/// `sets` candidate windows over a universe of `universe` devices.
setcover::SetCoverInstance make_cover_instance(std::size_t sets,
                                               std::size_t universe) {
    sim::RandomStream gen{123};
    std::vector<std::vector<setcover::Element>> raw(sets);
    for (auto& s : raw) {
        const auto size = static_cast<std::size_t>(gen.uniform_int(16, 128));
        s.reserve(size);
        for (std::size_t k = 0; k < size; ++k) {
            s.push_back(static_cast<setcover::Element>(
                gen.uniform_int(0, static_cast<std::int64_t>(universe) - 1)));
        }
    }
    for (std::size_t e = 0; e < universe; ++e) {
        raw[e % sets].push_back(static_cast<setcover::Element>(e));
    }
    return setcover::SetCoverInstance{universe, std::move(raw)};
}

void BM_GreedyCover(benchmark::State& state) {
    const setcover::SetCoverInstance instance =
        make_cover_instance(static_cast<std::size_t>(state.range(0)),
                            static_cast<std::size_t>(state.range(1)));
    for (auto _ : state) {
        sim::RandomStream rng{7};
        benchmark::DoNotOptimize(setcover::greedy_cover(instance, &rng));
    }
    state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_GreedyCover)
    ->Args({1'000, 10'000})
    ->Args({10'000, 100'000})
    ->Unit(benchmark::kMillisecond);

void BM_DrScPlan(benchmark::State& state) {
    sim::RandomStream pop_rng{1};
    const auto specs = traffic::to_specs(traffic::generate_population(
        bench_base_spec().profile, static_cast<std::size_t>(state.range(0)),
        pop_rng));
    const core::CampaignConfig config = bench_base_spec().config;
    const core::DrScMechanism mechanism;
    for (auto _ : state) {
        sim::RandomStream rng{7};
        benchmark::DoNotOptimize(mechanism.plan(specs, config, rng));
    }
}
BENCHMARK(BM_DrScPlan)->Arg(200)->Arg(1'000)->Arg(10'000)->Unit(benchmark::kMillisecond);

void BM_MulticellCampaign(benchmark::State& state) {
    // One fleet-wide comparison run (unicast reference + DR-SC) sharded
    // across `cells` cells with 8 workers: the deployment-layer scaling
    // case.  The population is generated once outside the timed region and
    // shared, exactly as fig_multicell_scaling shares it across points.
    multicell::DeploymentSetup setup;
    setup.profile = bench_base_spec().profile;
    setup.config = bench_base_spec().config;
    setup.payload_bytes = bench_base_spec().payload_bytes;
    setup.device_count = static_cast<std::size_t>(state.range(0));
    setup.runs = 1;
    setup.base_seed = 42;
    setup.threads = 8;
    setup.mechanisms = {core::MechanismKind::dr_sc};
    setup.topology = multicell::CellTopology::uniform(
        static_cast<std::size_t>(state.range(1)));
    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed);
    for (auto _ : state) {
        benchmark::DoNotOptimize(multicell::run_deployment(setup));
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MulticellCampaign)
    ->Args({100'000, 1})
    ->Args({100'000, 16})
    ->Args({100'000, 64})
    ->Unit(benchmark::kSecond)
    ->Iterations(1);

void BM_FullCampaign(benchmark::State& state) {
    sim::RandomStream pop_rng{1};
    const auto specs = traffic::to_specs(traffic::generate_population(
        bench_base_spec().profile, static_cast<std::size_t>(state.range(0)),
        pop_rng));
    const core::CampaignConfig config = bench_base_spec().config;
    const core::DrSiMechanism mechanism;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::plan_and_run(
            mechanism, specs, config, bench_base_spec().payload_bytes, 7));
    }
}
BENCHMARK(BM_FullCampaign)
    ->Arg(100)
    ->Arg(400)
    ->Arg(10'000)
    ->Arg(1'000'000)
    ->Unit(benchmark::kMillisecond);

void BM_FullCampaign_TelemetryOff(benchmark::State& state) {
    // Pins the zero-cost-when-disabled claim: the campaign layers carry
    // NBMG_TELEMETRY_EMIT on every hot path, and with the default null
    // sink this case must track BM_FullCampaign — one pointer test per
    // would-be record, arguments never evaluated.
    sim::RandomStream pop_rng{1};
    const auto specs = traffic::to_specs(traffic::generate_population(
        bench_base_spec().profile, static_cast<std::size_t>(state.range(0)),
        pop_rng));
    core::CampaignConfig config = bench_base_spec().config;
    config.telemetry = nullptr;
    const core::DrSiMechanism mechanism;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::plan_and_run(
            mechanism, specs, config, bench_base_spec().payload_bytes, 7));
    }
}
BENCHMARK(BM_FullCampaign_TelemetryOff)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_FullCampaign_TelemetryFull(benchmark::State& state) {
    // The priced alternative: trace + metrics recording on the same
    // campaign, fresh sink per iteration so the record buffer cannot grow
    // across iterations.
    sim::RandomStream pop_rng{1};
    const auto specs = traffic::to_specs(traffic::generate_population(
        bench_base_spec().profile, static_cast<std::size_t>(state.range(0)),
        pop_rng));
    const core::CampaignConfig base_config = bench_base_spec().config;
    const core::DrSiMechanism mechanism;
    for (auto _ : state) {
        telemetry::CampaignSink sink{
            telemetry::TelemetryConfig{.trace = true, .metrics = true}};
        core::CampaignConfig config = base_config;
        config.telemetry = &sink;
        benchmark::DoNotOptimize(core::plan_and_run(
            mechanism, specs, config, bench_base_spec().payload_bytes, 7));
        benchmark::DoNotOptimize(sink.records().size());
    }
}
BENCHMARK(BM_FullCampaign_TelemetryFull)
    ->Arg(100'000)
    ->Unit(benchmark::kMillisecond);

void BM_StratifiedCampaign(benchmark::State& state) {
    // Intra-cell parallelism: one DR-SI campaign over a fixed 10^5-device
    // fleet, split into range(0) paging-frame strata and fanned over 8
    // workers.  strata = 1 is the classic serial execution; larger counts
    // measure the stratified model (smaller per-stratum event sets) plus
    // whatever fan-out the host's cores provide — on the single-core CI
    // box the recorded delta is the algorithmic part alone.
    constexpr std::size_t kDevices = 100'000;
    sim::RandomStream pop_rng{1};
    const auto specs = traffic::to_specs(traffic::generate_population(
        bench_base_spec().profile, kDevices, pop_rng));
    core::CampaignConfig config = bench_base_spec().config;
    config.strata = static_cast<std::size_t>(state.range(0));
    const core::DrSiMechanism mechanism;
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::plan_and_run(
            mechanism, specs, config, bench_base_spec().payload_bytes, 7, 8));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(kDevices));
}
BENCHMARK(BM_StratifiedCampaign)
    ->Arg(1)
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    // The kernel cases fix their own sizes and seeds (Arg() grids, pinned
    // RNG streams) so the BENCH_pr*.json trajectory stays comparable; only
    // profile/config/payload from the scenario take effect.  Reject the
    // overrides that would be silently ignored.
    scenario::reject_flags(
        argc, argv,
        {"--runs", "--devices", "--seed", "--threads", "--cells",
         "--assignment"},
        "has no effect on the kernel microbenchmarks (cases fix their own "
        "sizes and seeds); use --scenario/--preset/--payload-kb/--ti-ms or "
        "the --benchmark_* flags");
    // Resolve the scenario flags first, then hide them from
    // google-benchmark's own strict argv parsing.
    scenario::ShellFlags shell;
    shell.prefixes = {"--benchmark_"};
    // google-benchmark's own discovery flags pass through to Initialize.
    shell.bare_flags = {"--help", "--version"};
    bench_base_spec() = scenario::require_single_cell(
        scenario::spec_from_args(
            argc, argv, scenario::ScenarioSpec{}.with_name("microbench"),
            shell),
        "microbench_kernels");
    std::vector<char*> remaining;
    remaining.reserve(static_cast<std::size_t>(argc));
    remaining.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (scenario::is_scenario_flag(argv[i])) {
            ++i;  // the flag's value
            continue;
        }
        remaining.push_back(argv[i]);
    }
    int bench_argc = static_cast<int>(remaining.size());
    benchmark::Initialize(&bench_argc, remaining.data());
    if (benchmark::ReportUnrecognizedArguments(bench_argc, remaining.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
