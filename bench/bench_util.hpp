// Shared helpers for the benchmark harness binaries.
//
// The flag parsing and the --scenario/--preset resolution now live in the
// scenario layer (src/scenario/cli.hpp) so every driver — bench shells,
// examples, tests — shares one strict parser; this header re-exports them
// under nbmg::bench and keeps the printing helpers.
#pragma once

#include <cstdio>

#include "scenario/cli.hpp"
#include "stats/table.hpp"

namespace nbmg::bench {

using scenario::apply_spec_overrides;
using scenario::flag_assignment;
using scenario::flag_cells;
using scenario::flag_error;
using scenario::flag_text;
using scenario::flag_threads;
using scenario::flag_u64;
using scenario::flag_value;
using scenario::positional_text;
using scenario::positional_u64;
using scenario::positional_value;
using scenario::reject_flags;
using scenario::require_single_cell;
using scenario::spec_from_args;

inline void print_header(const char* experiment_id, const char* title) {
    std::printf("\n=== %s — %s ===\n", experiment_id, title);
}

inline void print_table(const stats::Table& table) {
    std::fputs(table.to_markdown().c_str(), stdout);
}

/// Banner line for scenario-driven shells: which spec is running and the
/// knobs every scenario shares.
inline void print_scenario_line(const scenario::ScenarioSpec& spec) {
    std::printf("scenario=%s profile=%s n=%zu payload=%.0fKB runs=%zu seed=%llu",
                spec.name.c_str(), spec.profile.name.c_str(), spec.device_count,
                static_cast<double>(spec.payload_bytes) / 1024.0, spec.runs,
                static_cast<unsigned long long>(spec.base_seed));
    if (spec.is_multicell()) {
        std::printf(" cells=%zu assignment=%s", spec.cell_count(),
                    multicell::to_string(spec.assignment));
    }
    if (spec.coordinator) {
        std::printf(" coordinator=%s", multicell::to_string(spec.coordinator->policy));
        if (spec.coordinator->policy == multicell::StartPolicy::fixed_stagger) {
            std::printf(" stagger=%lldms",
                        static_cast<long long>(spec.coordinator->stagger_ms));
        }
        if (spec.coordinator->policy == multicell::StartPolicy::backhaul_budgeted) {
            std::printf(" backhaul=%.3gKB/s", spec.coordinator->backhaul_kbps);
        }
    }
    std::printf("\n");
}

}  // namespace nbmg::bench
