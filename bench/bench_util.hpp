// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "multicell/assignment.hpp"
#include "stats/table.hpp"

namespace nbmg::bench {

/// Prints a usage message for a malformed flag and exits with status 2.
/// `expected` describes the value shape in the usage line.
[[noreturn]] inline void flag_error(const char* flag, const char* value,
                                    const char* reason,
                                    const char* expected =
                                        "N where N is a non-negative decimal "
                                        "integer") {
    if (value != nullptr) {
        std::fprintf(stderr, "error: bad value '%s' for %s: %s\n", value, flag,
                     reason);
    } else {
        std::fprintf(stderr, "error: %s: %s\n", flag, reason);
    }
    std::fprintf(stderr, "usage: flags take the form '%s %s'\n", flag, expected);
    std::exit(2);
}

/// Locates `flag` and returns its value string, or nullptr when the flag is
/// absent.  A flag with no following value is a usage error.
[[nodiscard]] inline const char* flag_text(int argc, char** argv, const char* flag) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            if (i + 1 >= argc) flag_error(flag, nullptr, "missing value");
            return argv[i + 1];
        }
    }
    return nullptr;
}

/// Parses "--seed N" style overrides strictly: the whole value must be a
/// non-negative decimal integer >= min_value (0 is valid — seeds may be 0).
/// Returns fallback only when the flag is absent; malformed input exits
/// with a usage message instead of silently falling back.
[[nodiscard]] inline std::uint64_t flag_u64(int argc, char** argv, const char* flag,
                                            std::uint64_t fallback,
                                            std::uint64_t min_value = 0) {
    const char* text = flag_text(argc, argv, flag);
    if (text == nullptr) return fallback;
    if (*text == '\0') flag_error(flag, text, "empty value");
    if (*text == '-') flag_error(flag, text, "value must be non-negative");
    // strtoull itself skips whitespace and accepts a sign; insist the value
    // starts with a digit so ' -5' or '+7' cannot sneak past.
    if (std::isdigit(static_cast<unsigned char>(*text)) == 0) {
        flag_error(flag, text, "not a decimal integer");
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(text, &end, 10);
    if (errno == ERANGE) flag_error(flag, text, "value out of range");
    if (end == text || *end != '\0') {
        flag_error(flag, text, "not a decimal integer");
    }
    if (v < min_value) {
        char reason[64];
        std::snprintf(reason, sizeof reason, "value must be >= %" PRIu64, min_value);
        flag_error(flag, text, reason);
    }
    return static_cast<std::uint64_t>(v);
}

/// Parses "--runs N" / "--devices N" style overrides (strictly, as
/// flag_u64); by default the value must be at least 1.
[[nodiscard]] inline std::size_t flag_value(int argc, char** argv, const char* flag,
                                            std::size_t fallback,
                                            std::size_t min_value = 1) {
    return static_cast<std::size_t>(
        flag_u64(argc, argv, flag, fallback, min_value));
}

/// Parses "--threads N"; 0 (the default) means one worker per hardware
/// thread.  Results never depend on the thread count.
[[nodiscard]] inline std::size_t flag_threads(int argc, char** argv) {
    return static_cast<std::size_t>(flag_u64(argc, argv, "--threads", 0));
}

/// Parses "--cells N" for multicell deployments; at least one cell.
[[nodiscard]] inline std::size_t flag_cells(int argc, char** argv,
                                            std::size_t fallback = 1) {
    return flag_value(argc, argv, "--cells", fallback, 1);
}

/// Parses "--assignment NAME" strictly: the value must be one of the
/// multicell policy spellings (uniform | hotspot | class-affinity); any
/// other value exits with a usage message instead of silently falling back.
[[nodiscard]] inline multicell::AssignmentPolicy flag_assignment(
    int argc, char** argv,
    multicell::AssignmentPolicy fallback = multicell::AssignmentPolicy::uniform_hash) {
    const char* text = flag_text(argc, argv, "--assignment");
    if (text == nullptr) return fallback;
    const auto parsed = multicell::parse_assignment_policy(text);
    if (!parsed.has_value()) {
        flag_error("--assignment", text, "unknown assignment policy",
                   "uniform | hotspot | class-affinity");
    }
    return *parsed;
}

inline void print_header(const char* experiment_id, const char* title) {
    std::printf("\n=== %s — %s ===\n", experiment_id, title);
}

inline void print_table(const stats::Table& table) {
    std::fputs(table.to_markdown().c_str(), stdout);
}

}  // namespace nbmg::bench
