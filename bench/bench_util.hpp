// Shared helpers for the benchmark harness binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stats/table.hpp"

namespace nbmg::bench {

/// Parses "--runs N" / "--devices N" style overrides; returns fallback when
/// the flag is absent.
inline std::size_t flag_value(int argc, char** argv, const char* flag,
                              std::size_t fallback) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            const long v = std::strtol(argv[i + 1], nullptr, 10);
            if (v > 0) return static_cast<std::size_t>(v);
        }
    }
    return fallback;
}

inline void print_header(const char* experiment_id, const char* title) {
    std::printf("\n=== %s — %s ===\n", experiment_id, title);
}

inline void print_table(const stats::Table& table) {
    std::fputs(table.to_markdown().c_str(), stdout);
}

}  // namespace nbmg::bench
