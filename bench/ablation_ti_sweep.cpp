// Ablation A2: the inactivity timer TI (the grouping window) trades DR-SC
// bandwidth against everyone's connected-mode waiting time.  Commercial
// networks use 10-30 s (Sec. II-B).
//
// Scenario shell: the `ablation-ti` preset (or --scenario/--preset)
// provides the base point; the binary sweeps TI over the commercial range.
#include <cstdio>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // TI is the swept axis; an override would be overwritten point by point.
    bench::reject_flags(argc, argv, {"--ti-ms"},
                        "has no effect here: the ablation sweeps TI over "
                        "5/10/20/30 s");
    scenario::ScenarioSpec base = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-ti"), "ablation_ti_sweep");
    if (base.config.inactivity_timer != core::CampaignConfig{}.inactivity_timer) {
        std::fprintf(stderr,
                     "note: scenario ti_ms ignored — the ablation sweeps TI "
                     "over 5/10/20/30 s\n");
    }

    bench::print_header("Ablation A2", "inactivity timer (TI) sweep");
    bench::print_scenario_line(base);

    stats::Table table({"TI (s)", "DR-SC tx/device", "DR-SC connected vs unicast",
                        "DA-SC connected vs unicast", "DR-SI connected vs unicast",
                        "DA-SC light-sleep vs unicast"});
    // Every TI point replays the same per-run populations; generate them
    // once and share (bit-identical to regenerating at each point).
    base.with_populations(core::generate_comparison_populations(
        base.profile, base.device_count, base.runs, base.base_seed));
    for (const std::int64_t ti_ms : {5'000, 10'000, 20'000, 30'000}) {
        scenario::ScenarioSpec point = base;
        point.with_inactivity_timer_ms(ti_ms);

        const core::ComparisonOutcome outcome =
            scenario::run_scenario(point).comparison();
        double drsc_tx = 0.0;
        double drsc_conn = 0.0;
        double dasc_conn = 0.0;
        double drsi_conn = 0.0;
        double dasc_light = 0.0;
        for (const auto& s : outcome.mechanisms) {
            switch (s.kind) {
                case core::MechanismKind::dr_sc:
                    drsc_tx = s.transmissions_per_device.mean();
                    drsc_conn = s.connected_increase.mean();
                    break;
                case core::MechanismKind::da_sc:
                    dasc_conn = s.connected_increase.mean();
                    dasc_light = s.light_sleep_increase.mean();
                    break;
                case core::MechanismKind::dr_si:
                    drsi_conn = s.connected_increase.mean();
                    break;
                default:
                    break;
            }
        }
        table.add_row({stats::Table::cell(static_cast<double>(ti_ms) / 1000.0, 0),
                       stats::Table::cell(drsc_tx, 3),
                       stats::Table::cell_percent(drsc_conn, 1),
                       stats::Table::cell_percent(dasc_conn, 1),
                       stats::Table::cell_percent(drsi_conn, 1),
                       stats::Table::cell_percent(dasc_light, 1)});
    }
    bench::print_table(table);
    std::printf(
        "Expectation: larger TI -> fewer DR-SC transmissions but longer waits\n"
        "(connected-mode increase grows roughly with TI/2).\n");
    return 0;
}
