// Ablation A2: the inactivity timer TI (the grouping window) trades DR-SC
// bandwidth against everyone's connected-mode waiting time.  Commercial
// networks use 10-30 s (Sec. II-B).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 20);
    const std::size_t devices = bench::flag_value(argc, argv, "--devices", 300);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Ablation A2", "inactivity timer (TI) sweep");
    std::printf("n=%zu runs=%zu payload=100KB\n", devices, runs);

    stats::Table table({"TI (s)", "DR-SC tx/device", "DR-SC connected vs unicast",
                        "DA-SC connected vs unicast", "DR-SI connected vs unicast",
                        "DA-SC light-sleep vs unicast"});
    // Every TI point replays the same per-run populations; generate them
    // once and share (bit-identical to regenerating at each point).
    const core::SharedPopulations populations =
        core::generate_comparison_populations(traffic::massive_iot_city(), devices,
                                              runs, seed);
    for (const std::int64_t ti_ms : {5'000, 10'000, 20'000, 30'000}) {
        core::ComparisonSetup setup;
        setup.profile = traffic::massive_iot_city();
        setup.device_count = devices;
        setup.payload_bytes = traffic::firmware_100kb().bytes;
        setup.runs = runs;
        setup.base_seed = seed;
        setup.threads = threads;
        setup.populations = populations;
        setup.config.inactivity_timer = nbiot::SimTime{ti_ms};

        const core::ComparisonOutcome outcome = core::run_comparison(setup);
        double drsc_tx = 0.0;
        double drsc_conn = 0.0;
        double dasc_conn = 0.0;
        double drsi_conn = 0.0;
        double dasc_light = 0.0;
        for (const auto& s : outcome.mechanisms) {
            switch (s.kind) {
                case core::MechanismKind::dr_sc:
                    drsc_tx = s.transmissions_per_device.mean();
                    drsc_conn = s.connected_increase.mean();
                    break;
                case core::MechanismKind::da_sc:
                    dasc_conn = s.connected_increase.mean();
                    dasc_light = s.light_sleep_increase.mean();
                    break;
                case core::MechanismKind::dr_si:
                    drsi_conn = s.connected_increase.mean();
                    break;
                default:
                    break;
            }
        }
        table.add_row({stats::Table::cell(static_cast<double>(ti_ms) / 1000.0, 0),
                       stats::Table::cell(drsc_tx, 3),
                       stats::Table::cell_percent(drsc_conn, 1),
                       stats::Table::cell_percent(dasc_conn, 1),
                       stats::Table::cell_percent(drsi_conn, 1),
                       stats::Table::cell_percent(dasc_light, 1)});
    }
    bench::print_table(table);
    std::printf(
        "Expectation: larger TI -> fewer DR-SC transmissions but longer waits\n"
        "(connected-mode increase grows roughly with TI/2).\n");
    return 0;
}
