// Reproduces Fig. 7: average number of DR-SC multicast transmissions needed
// to update all devices, for 100..1000 devices, averaged over 100 runs.
//
// Scenario shell: the `fig7` preset (or --scenario FILE / --preset NAME)
// provides profile, campaign config, runs, seed and threads, and the
// scenario's device count is the grid's end point: the sweep runs
// 100, 200, ... in steps of 100 up to and always including it (the preset's
// 1000 reproduces the paper's grid; --devices shrinks or extends it).
//
// Paper's reported shape: ~50% of the device count at small n, falling to
// ~40% at n = 1000 (figure caption; see EXPERIMENTS.md for the text/caption
// discrepancy note).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/analysis.hpp"
#include "scenario/run.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // Fig. 7 only plans (no payload is ever transmitted).
    bench::reject_flags(argc, argv, {"--payload-kb"},
                        "has no effect here: fig7 counts planned DR-SC "
                        "transmissions, no payload is delivered");
    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "fig7"), "fig7_transmissions");

    bench::print_header("Fig. 7", "DR-SC multicast transmissions vs device count");
    bench::print_scenario_line(spec);
    std::printf("TI=%.2fs\n",
                static_cast<double>(spec.config.inactivity_timer.count()) / 1000.0);

    // 100-step grid ending exactly at the scenario's device count, which is
    // always simulated even off the step (the preset's 1000 gives the
    // paper's 100..1000 grid).
    std::vector<std::size_t> device_counts;
    for (std::size_t n = 100; n <= spec.device_count; n += 100) {
        device_counts.push_back(n);
    }
    if (device_counts.empty() || device_counts.back() != spec.device_count) {
        device_counts.push_back(spec.device_count);
    }
    if (device_counts.size() == 1) {
        std::printf("device grid: %zu only\n", spec.device_count);
    } else if (device_counts.back() % 100 == 0) {
        std::printf("device grid: 100..%zu step 100\n", spec.device_count);
    } else {
        std::printf("device grid: 100..%zu step 100, plus %zu\n",
                    device_counts[device_counts.size() - 2], spec.device_count);
    }
    // The full devices x runs grid fans across the worker pool at once.
    const std::vector<core::TransmissionSweepPoint> points =
        core::drsc_transmission_sweep(spec.profile, device_counts, spec.config,
                                      spec.runs, spec.base_seed, spec.threads);

    stats::Table table({"devices", "mean transmissions", "ci95", "tx/device",
                        "slot-model bound", "savings vs unicast",
                        "paper tx/device"});
    for (const core::TransmissionSweepPoint& point : points) {
        const std::size_t n = point.device_count;
        // Paper anchor points: caption states ~0.5 at low n, ~0.4 at n=1000.
        const double paper = n <= 200 ? 0.50 : (n >= 900 ? 0.40 : -1.0);
        table.add_row({stats::Table::cell(static_cast<std::int64_t>(n)),
                       stats::Table::cell(point.transmissions.mean(), 1),
                       stats::Table::cell(point.transmissions.ci95_half_width(), 1),
                       stats::Table::cell(point.transmissions_per_device.mean(), 3),
                       stats::Table::cell(
                           core::analysis::slot_model_transmission_ratio(
                               spec.profile, n, spec.config),
                           3),
                       stats::Table::cell_percent(
                           1.0 - point.transmissions_per_device.mean()),
                       paper > 0 ? stats::Table::cell(paper, 2) : "-"});
    }
    bench::print_table(table);
    return 0;
}
