// Reproduces Fig. 7: average number of DR-SC multicast transmissions needed
// to update all devices, for 100..1000 devices, averaged over 100 runs.
//
// Paper's reported shape: ~50% of the device count at small n, falling to
// ~40% at n = 1000 (figure caption; see EXPERIMENTS.md for the text/caption
// discrepancy note).
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/analysis.hpp"
#include "core/experiment.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 100);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    core::CampaignConfig config;  // paper defaults: TI = 20 s
    const traffic::PopulationProfile profile = traffic::massive_iot_city();

    bench::print_header("Fig. 7", "DR-SC multicast transmissions vs device count");
    std::printf("profile=%s TI=%.2fs runs=%zu seed=%llu\n", profile.name.c_str(),
                static_cast<double>(config.inactivity_timer.count()) / 1000.0, runs,
                static_cast<unsigned long long>(seed));

    std::vector<std::size_t> device_counts;
    for (std::size_t n = 100; n <= 1000; n += 100) device_counts.push_back(n);
    // The full devices x runs grid fans across the worker pool at once.
    const std::vector<core::TransmissionSweepPoint> points =
        core::drsc_transmission_sweep(profile, device_counts, config, runs, seed,
                                      threads);

    stats::Table table({"devices", "mean transmissions", "ci95", "tx/device",
                        "slot-model bound", "savings vs unicast",
                        "paper tx/device"});
    for (const core::TransmissionSweepPoint& point : points) {
        const std::size_t n = point.device_count;
        // Paper anchor points: caption states ~0.5 at low n, ~0.4 at n=1000.
        const double paper = n <= 200 ? 0.50 : (n >= 900 ? 0.40 : -1.0);
        table.add_row({stats::Table::cell(static_cast<std::int64_t>(n)),
                       stats::Table::cell(point.transmissions.mean(), 1),
                       stats::Table::cell(point.transmissions.ci95_half_width(), 1),
                       stats::Table::cell(point.transmissions_per_device.mean(), 3),
                       stats::Table::cell(
                           core::analysis::slot_model_transmission_ratio(profile, n,
                                                                         config),
                           3),
                       stats::Table::cell_percent(
                           1.0 - point.transmissions_per_device.mean()),
                       paper > 0 ? stats::Table::cell(paper, 2) : "-"});
    }
    bench::print_table(table);
    return 0;
}
