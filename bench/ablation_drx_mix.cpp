// Ablation A3: sensitivity of the Fig. 7 curve to the device mix.  The
// paper's population ("realistic NB-IoT traffic patterns") is not public;
// this bench shows how the transmissions-per-device ratio moves across
// plausible mixes, including the IMSI-batching knob (fleet provisioning).
//
// Scenario shell: the `ablation-drx-mix` preset (or --scenario/--preset)
// provides config, runs, seed and threads; the binary sweeps the builtin
// profiles (plus the no-batching variant) at three device counts.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "scenario/spec.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // Planning-only sweep: no payload is ever transmitted.
    bench::reject_flags(argc, argv, {"--payload-kb"},
                        "has no effect here: the mix sensitivity counts "
                        "planned DR-SC transmissions, no payload is delivered");
    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "ablation-drx-mix"),
        "ablation_drx_mix");

    if (spec.profile.name != "massive_iot_city") {
        std::fprintf(stderr,
                     "note: scenario profile ignored — the mix sensitivity "
                     "sweeps every builtin profile (it is the table's rows)\n");
    }

    bench::print_header("Ablation A3", "DRX mix sensitivity of DR-SC transmissions");
    bench::print_scenario_line(spec);

    // Device-count columns: the paper-band anchors 100 and 1000 plus the
    // scenario's own count (the preset's 500 gives the classic 3-column
    // table); duplicates collapse.
    std::vector<std::size_t> grid{100, spec.device_count, 1000};
    std::sort(grid.begin(), grid.end());
    grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

    std::vector<traffic::PopulationProfile> profiles = {
        traffic::massive_iot_city(), traffic::alarm_heavy(), traffic::meter_heavy(),
        traffic::uniform_edrx()};
    traffic::PopulationProfile no_batching = traffic::massive_iot_city();
    no_batching.name = "massive_iot_city (no IMSI batching)";
    no_batching.batch_mean = 1.0;
    profiles.push_back(no_batching);

    std::vector<std::string> columns{"profile"};
    for (const std::size_t n : grid) {
        columns.push_back("tx/device n=" + std::to_string(n));
    }
    stats::Table table(columns);
    for (const auto& profile : profiles) {
        std::vector<std::string> row{profile.name};
        for (const std::size_t n : grid) {
            const auto point = core::drsc_transmission_point(
                profile, n, spec.config, spec.runs, spec.base_seed, spec.threads);
            row.push_back(stats::Table::cell(point.transmissions_per_device.mean(), 3));
        }
        table.add_row(std::move(row));
    }
    bench::print_table(table);
    std::printf(
        "Short-cycle-heavy mixes cluster trivially (tiny ratios); the paper's\n"
        "0.5 -> 0.4 band needs long-eDRX-dominated mixes with fleet batching.\n");
    return 0;
}
