// Ablation A3: sensitivity of the Fig. 7 curve to the device mix.  The
// paper's population ("realistic NB-IoT traffic patterns") is not public;
// this bench shows how the transmissions-per-device ratio moves across
// plausible mixes, including the IMSI-batching knob (fleet provisioning).
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/experiment.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t runs = bench::flag_value(argc, argv, "--runs", 30);
    const std::uint64_t seed = bench::flag_u64(argc, argv, "--seed", 42);
    const std::size_t threads = bench::flag_threads(argc, argv);

    bench::print_header("Ablation A3", "DRX mix sensitivity of DR-SC transmissions");
    const core::CampaignConfig config;

    std::vector<traffic::PopulationProfile> profiles = {
        traffic::massive_iot_city(), traffic::alarm_heavy(), traffic::meter_heavy(),
        traffic::uniform_edrx()};
    traffic::PopulationProfile no_batching = traffic::massive_iot_city();
    no_batching.name = "massive_iot_city (no IMSI batching)";
    no_batching.batch_mean = 1.0;
    profiles.push_back(no_batching);

    stats::Table table({"profile", "tx/device n=100", "tx/device n=500",
                        "tx/device n=1000"});
    for (const auto& profile : profiles) {
        std::vector<std::string> row{profile.name};
        for (const std::size_t n : {std::size_t{100}, std::size_t{500},
                                    std::size_t{1000}}) {
            const auto point =
                core::drsc_transmission_point(profile, n, config, runs, seed,
                                              threads);
            row.push_back(stats::Table::cell(point.transmissions_per_device.mean(), 3));
        }
        table.add_row(std::move(row));
    }
    bench::print_table(table);
    std::printf(
        "Short-cycle-heavy mixes cluster trivially (tiny ratios); the paper's\n"
        "0.5 -> 0.4 band needs long-eDRX-dominated mixes with fleet batching.\n");
    return 0;
}
