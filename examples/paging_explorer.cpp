// Substrate explorer: prints the TS 36.304 paging geometry for a device —
// its PO offset for every ladder cycle, the nesting property, and what a
// DA-SC adjustment window would look like.  Useful for understanding why
// the grouping mechanisms behave the way they do.
//
//   $ ./paging_explorer [imsi] [ti_ms]
//   $ ./paging_explorer --scenario examples/scenarios/smoke.scenario
// A scenario (--scenario/--preset) supplies the campaign config whose
// inactivity timer (TI) frames the DA-SC window; the positionals override.
#include <cstdio>
#include <limits>

#include "bench/bench_util.hpp"
#include "nbiot/drx.hpp"
#include "nbiot/frames.hpp"
#include "nbiot/paging.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;
    using nbiot::SimTime;

    // Pure paging geometry: only the scenario's paging config and TI are
    // consulted — reject the overrides that could not matter.
    bench::reject_flags(
        argc, argv,
        {"--runs", "--devices", "--seed", "--threads", "--payload-kb"},
        "has no effect here: paging_explorer only reads the scenario's "
        "paging config and TI");
    const scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(
            argc, argv, scenario::ScenarioSpec{}.with_name("paging-explorer")),
        "paging_explorer");
    const std::uint64_t imsi_value =
        bench::positional_u64(argc, argv, 0, 262'042'000'012'345ULL);
    const std::uint64_t ti_raw = bench::positional_u64(
        argc, argv, 1,
        static_cast<std::uint64_t>(spec.config.inactivity_timer.count()));
    // Same no-silent-wrap rule as the --ti-ms flag path.
    if (ti_raw > static_cast<std::uint64_t>(
                     std::numeric_limits<std::int64_t>::max())) {
        bench::flag_error("positional #2", bench::positional_text(argc, argv, 1),
                          "value out of range");
    }
    const std::int64_t ti_ms = static_cast<std::int64_t>(ti_raw);

    const nbiot::PagingSchedule paging(spec.config.paging);
    const nbiot::Imsi imsi{imsi_value};

    std::printf("paging_explorer: IMSI=%llu  UE_ID=%llu (mod 2^20)  TI=%.1fs\n\n",
                static_cast<unsigned long long>(imsi_value),
                static_cast<unsigned long long>(imsi_value % (1ULL << 20)),
                static_cast<double>(ti_ms) / 1000.0);

    stats::Table table({"cycle", "kind", "PO offset (s)", "PF (frame)", "subframe",
                        "POs per hour"});
    for (const nbiot::DrxCycle cycle : nbiot::drx_ladder()) {
        const SimTime offset = paging.po_offset(imsi, cycle);
        const auto rt = nbiot::to_radio_time(offset);
        table.add_row({cycle.to_string(),
                       cycle.is_nbiot_edrx() ? "NB-IoT eDRX"
                                             : (cycle.is_edrx() ? "eDRX" : "DRX"),
                       stats::Table::cell(
                           static_cast<double>(offset.count()) / 1000.0, 2),
                       stats::Table::cell(rt.frame), stats::Table::cell(rt.subframe),
                       stats::Table::cell(3600.0 / cycle.period_seconds(), 2)});
    }
    std::fputs(table.to_markdown().c_str(), stdout);

    // Demonstrate the nesting property the DA-SC mechanism exploits.
    std::printf("\nLadder nesting: every PO of a cycle is also a PO of every\n"
                "shorter cycle (same UE).  Check for the 20.48s PO:\n");
    const nbiot::DrxCycle long_cycle = nbiot::drx::seconds_20_48();
    const SimTime po = paging.first_po_at_or_after(SimTime{0}, imsi, long_cycle);
    for (int idx = long_cycle.index(); idx >= long_cycle.index() - 3; --idx) {
        const nbiot::DrxCycle cycle = nbiot::DrxCycle::from_index(idx);
        std::printf("  PO %.2fs on the %s grid: %s\n",
                    static_cast<double>(po.count()) / 1000.0,
                    cycle.to_string().c_str(),
                    paging.is_po(po, imsi, cycle) ? "yes" : "NO (bug!)");
    }

    // What DA-SC would do for this device at t = 2 * cycle.
    const nbiot::DrxCycle original = nbiot::drx::seconds_2621_44();
    const SimTime t{2 * original.period_ms()};
    const SimTime window_start = t - SimTime{ti_ms};
    std::printf("\nDA-SC view for original cycle %s, t=%.1fs, window=[%.1fs, %.1fs):\n",
                original.to_string().c_str(),
                static_cast<double>(t.count()) / 1000.0,
                static_cast<double>(window_start.count()) / 1000.0,
                static_cast<double>(t.count()) / 1000.0);
    std::printf("  natural PO in window: %s\n",
                paging.has_po_in_range(window_start, t, imsi, original) ? "yes (no "
                                                                          "adjustment)"
                                                                        : "no");
    const auto p_adj = paging.last_po_before(window_start, imsi, original);
    if (p_adj) {
        std::printf("  adjustment PO (last before window): %.1fs\n",
                    static_cast<double>(p_adj->count()) / 1000.0);
    }
    for (int idx = original.index() - 1; idx >= 0; --idx) {
        const nbiot::DrxCycle candidate = nbiot::DrxCycle::from_index(idx);
        if (paging.has_po_in_range(window_start, t, imsi, candidate)) {
            const SimTime hit =
                paging.first_po_at_or_after(window_start, imsi, candidate);
            std::printf("  longest adapted cycle with a PO in the window: %s "
                        "(PO at %.1fs)\n",
                        candidate.to_string().c_str(),
                        static_cast<double>(hit.count()) / 1000.0);
            break;
        }
    }
    return 0;
}
