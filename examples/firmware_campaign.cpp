// City-scale firmware campaign: plan a DA-SC update for a large metering
// fleet, inspect the plan (who is adjusted, to what cycle, when), execute
// it, and report per-class energy impact and delivery statistics.
//
//   $ ./firmware_campaign [devices] [payload_kb] [seed]
//   $ ./firmware_campaign --preset firmware-campaign --payload-kb 512
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.hpp"
#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // One narrated DA-SC rollout (plan inspection + execution), on the
    // calling thread.
    bench::reject_flags(argc, argv, {"--runs", "--threads"},
                        "has no effect here: firmware_campaign narrates a "
                        "single campaign on the calling thread");
    scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "firmware-campaign"),
        "firmware_campaign");
    if (spec.runs != 1) {
        std::fprintf(stderr,
                     "note: scenario runs=%zu ignored — firmware_campaign "
                     "narrates a single campaign\n",
                     spec.runs);
        spec.with_runs(1);
    }
    if (spec.mechanisms !=
        std::vector<core::MechanismKind>{core::MechanismKind::da_sc}) {
        std::fprintf(stderr,
                     "note: scenario mechanisms ignored — firmware_campaign "
                     "narrates the DA-SC rollout (its plan-inspection "
                     "sections are DA-SC specific)\n");
    }
    spec.with_devices(bench::positional_value(argc, argv, 0, spec.device_count));
    // Only an actually-given positional converts KB -> bytes; the fallback
    // keeps the spec's payload untouched (it need not be KiB-aligned).
    if (const char* payload_kb = bench::positional_text(argc, argv, 1);
        payload_kb != nullptr) {
        spec.with_payload_bytes(scenario::payload_kb_to_bytes(
            bench::positional_value(argc, argv, 1, 1), "positional #2",
            payload_kb));
    }
    spec.with_seed(bench::positional_u64(argc, argv, 2, spec.base_seed));
    const std::size_t n = spec.device_count;

    sim::RandomStream pop_rng{sim::derive_seed(spec.base_seed, "population")};
    const auto population =
        traffic::generate_population(spec.profile, n, pop_rng);
    const auto specs = traffic::to_specs(population);

    const core::CampaignConfig& config = spec.config;
    std::printf("firmware_campaign: %zu devices, %.0f KB image, DA-SC grouping\n\n",
                n, static_cast<double>(spec.payload_bytes) / 1024.0);

    // --- plan ---
    const core::DaScMechanism mechanism;
    sim::RandomStream plan_rng{sim::derive_seed(spec.base_seed, "planner")};
    const core::MulticastPlan plan = mechanism.plan(specs, config, plan_rng);
    core::validate_plan(plan, specs);

    std::size_t adjusted = 0;
    std::map<int, std::size_t> adapted_hist;  // ladder index -> count
    for (const auto& s : plan.schedules) {
        if (s.adjustment) {
            ++adjusted;
            ++adapted_hist[s.adjustment->adapted_cycle.index()];
        }
    }
    std::printf("plan: multicast at t=%.1fs (2 x maxDRX + guard), %zu/%zu devices "
                "need a DRX adjustment\n",
                static_cast<double>(plan.transmissions.front().start.count()) / 1000.0,
                adjusted, n);
    std::printf("adapted-cycle histogram:\n");
    for (const auto& [index, count] : adapted_hist) {
        std::printf("  %-18s %6zu devices\n",
                    nbiot::DrxCycle::from_index(index).to_string().c_str(), count);
    }

    // --- execute ---
    const core::CampaignRunner runner(config);
    const nbiot::SimTime horizon =
        core::recommended_horizon(specs, config, spec.payload_bytes);
    const core::CampaignResult result =
        runner.run(plan, specs, spec.payload_bytes, horizon, spec.base_seed);
    const core::MulticastPlan unicast_plan =
        core::UnicastBaseline{}.plan(specs, config, plan_rng);
    const core::CampaignResult reference =
        runner.run(unicast_plan, specs, spec.payload_bytes, horizon, spec.base_seed);

    std::printf("\nexecution: %zu/%zu delivered, %zu transmissions (%zu recovery), "
                "%.2f MB on air vs %.2f MB unicast\n",
                result.received_count(), n, result.total_transmissions(),
                result.recovery_transmissions,
                static_cast<double>(result.bytes_on_air) / 1e6,
                static_cast<double>(reference.bytes_on_air) / 1e6);

    // --- per-class impact ---
    stats::Table table({"device class", "devices", "connected s/device",
                        "light-sleep s/device", "light-sleep vs unicast"});
    for (std::size_t c = 0; c < spec.profile.classes.size(); ++c) {
        stats::Summary connected;
        stats::Summary light;
        stats::Summary base_light;
        for (std::size_t i = 0; i < population.size(); ++i) {
            if (population[i].class_index != c) continue;
            connected.add(static_cast<double>(
                              result.devices[i].energy.connected_uptime().count()) /
                          1000.0);
            light.add(static_cast<double>(
                          result.devices[i].energy.light_sleep_uptime().count()) /
                      1000.0);
            base_light.add(static_cast<double>(
                               reference.devices[i].energy.light_sleep_uptime().count()) /
                           1000.0);
        }
        if (connected.count() == 0) continue;
        table.add_row({spec.profile.classes[c].name,
                       stats::Table::cell(static_cast<std::int64_t>(connected.count())),
                       stats::Table::cell(connected.mean(), 1),
                       stats::Table::cell(light.mean(), 2),
                       stats::Table::cell_percent(
                           base_light.mean() > 0
                               ? light.mean() / base_light.mean() - 1.0
                               : 0.0,
                           1)});
    }
    std::fputs(table.to_markdown().c_str(), stdout);
    std::printf("\nNote how the sleepiest classes pay the largest *relative*\n"
                "light-sleep increase (their baseline is a handful of POs), while\n"
                "in absolute terms the cost stays a few seconds per device.\n");
    return result.all_received() ? 0 : 1;
}
