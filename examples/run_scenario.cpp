// The canonical thin shell over the unified scenario API: resolve a spec
// (--preset NAME / --scenario FILE / flag overrides), run it through
// run_scenario — single-cell or multicell, decided by the spec — and print
// the common report surface both engines share, as a markdown table or as
// CSV.  Everything the figure shells do beyond this is presentation.
//
//   $ ./run_scenario --preset fig6a --runs 5
//   $ ./run_scenario --scenario examples/scenarios/citywide_16cells.scenario
//   $ ./run_scenario --preset citywide --csv > citywide.csv
//   $ ./run_scenario --list            # registered presets, one per line
#include <cstdio>
#include <cstring>

#include "bench/bench_util.hpp"
#include "scenario/registry.hpp"
#include "scenario/run.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--list") == 0) {
            for (const scenario::Registry::PresetEntry& entry :
                 scenario::Registry::instance().presets()) {
                std::printf("%-20s %s\n", entry.name.c_str(),
                            entry.description.c_str());
            }
            return 0;
        }
    }
    bool csv = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    }

    scenario::ShellFlags shell;
    shell.bare_flags = {"--csv", "--list"};
    const scenario::ScenarioSpec spec =
        bench::spec_from_args(argc, argv, "quickstart", shell);
    // run_scenario_or_exit: an unwritable --trace-out/--metrics-out/
    // --timeline-out exits 2 with a diagnostic, like every other usage error.
    const scenario::ScenarioResult result = scenario::run_scenario_or_exit(spec);

    if (csv) {
        std::fputs(result.summary_csv().c_str(), stdout);
        // Coordinated scenarios append the time-axis table as a second CSV
        // block (own header) after a blank line.
        if (result.is_coordinated()) {
            std::fputs("\n", stdout);
            std::fputs(result.coordination_csv().c_str(), stdout);
        }
        // Metrics-collecting scenarios append the telemetry counters as a
        // further CSV block.
        if (result.telemetry && result.telemetry->metrics) {
            std::fputs("\n", stdout);
            std::fputs(result.telemetry->metrics->to_csv().c_str(), stdout);
        }
        return 0;
    }

    bench::print_header("run_scenario", spec.description.empty()
                                            ? spec.name.c_str()
                                            : spec.description.c_str());
    bench::print_scenario_line(spec);
    bench::print_table(result.summary_table());
    if (result.is_multicell()) {
        const multicell::DeploymentResult& deployment = result.deployment();
        std::printf(
            "cells=%zu  max cell load=%.0f  empty cell-runs=%zu  "
            "RACH collision p50=%.4f p95=%.4f (across cells)\n",
            deployment.cell_count(), deployment.cell_load.max(),
            deployment.empty_cell_runs,
            deployment.rach_collision_across_cells.quantile(0.5),
            deployment.rach_collision_across_cells.quantile(0.95));
    }
    if (result.is_coordinated()) {
        std::printf("\ncity wall-clock (%s policy):\n",
                    multicell::to_string(result.coordination->coordinator.policy));
        bench::print_table(result.coordination_table());
    }
    if (result.telemetry) {
        const scenario::TelemetryReport& report = *result.telemetry;
        std::size_t trace_lines = 0;
        for (const char c : report.trace_jsonl) {
            if (c == '\n') ++trace_lines;
        }
        std::printf("\ntelemetry: trace=%s metrics=%s",
                    report.config.trace ? "on" : "off",
                    report.config.metrics ? "on" : "off");
        if (report.config.trace) std::printf("  trace records=%zu", trace_lines);
        std::printf("\n");
        if (!report.config.trace_out.empty()) {
            std::printf("  wrote trace    -> %s\n", report.config.trace_out.c_str());
        }
        if (!report.config.metrics_out.empty()) {
            std::printf("  wrote metrics  -> %s\n", report.config.metrics_out.c_str());
        }
        if (!report.config.timeline_out.empty()) {
            std::printf("  wrote timeline -> %s (chrome://tracing)\n",
                        report.config.timeline_out.c_str());
        }
    }
    return 0;
}
