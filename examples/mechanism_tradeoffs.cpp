// Mechanism recommendation: sweeps payload size and TI, scores the three
// grouping mechanisms on the paper's three axes (bandwidth, energy,
// standards compliance), and prints the recommendation logic of the
// paper's conclusions.
//
//   $ ./mechanism_tradeoffs [devices] [seed]
//   $ ./mechanism_tradeoffs --preset mechanism-tradeoffs --runs 10
#include <cstdio>
#include <string>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"
#include "traffic/firmware.hpp"

namespace {

struct Scorecard {
    double bandwidth_tx_per_device = 0.0;
    double connected_increase = 0.0;
    double light_sleep_increase = 0.0;
    bool standards = true;
};

const char* recommend(const Scorecard& dr_sc, const Scorecard& da_sc,
                      const Scorecard& dr_si, bool allow_protocol_changes) {
    // The paper's conclusion: DR-SC wastes bandwidth; DR-SI is best but not
    // compliant; DA-SC is the best compliant trade-off.
    if (allow_protocol_changes &&
        dr_si.connected_increase <= da_sc.connected_increase &&
        dr_si.light_sleep_increase <= da_sc.light_sleep_increase) {
        return "DR-SI";
    }
    if (dr_sc.bandwidth_tx_per_device < 0.02) return "DR-SC";  // trivially groupable
    return "DA-SC";
}

}  // namespace

int main(int argc, char** argv) {
    using namespace nbmg;

    // Payload and TI are the two swept axes of the recommendation table.
    bench::reject_flags(argc, argv, {"--payload-kb", "--ti-ms"},
                        "has no effect here: the trade-off table sweeps "
                        "payload x TI itself");
    scenario::ScenarioSpec base = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "mechanism-tradeoffs"),
        "mechanism_tradeoffs");
    base.with_devices(bench::positional_value(argc, argv, 0, base.device_count));
    base.with_seed(bench::positional_u64(argc, argv, 1, base.base_seed));

    std::printf("mechanism_tradeoffs: n=%zu, profile=%s\n", base.device_count,
                base.profile.name.c_str());

    stats::Table table({"payload", "TI (s)", "DR-SC tx/dev", "DR-SC conn",
                        "DA-SC conn", "DA-SC light", "DR-SI conn",
                        "pick (compliant)", "pick (any)"});
    for (const auto& payload : traffic::paper_payloads()) {
        for (const std::int64_t ti : {10'000, 30'000}) {
            scenario::ScenarioSpec point = base;
            point.with_payload_bytes(payload.bytes).with_inactivity_timer_ms(ti);

            const core::ComparisonOutcome outcome =
                scenario::run_scenario(point).comparison();
            Scorecard dr_sc;
            Scorecard da_sc;
            Scorecard dr_si;
            for (const auto& s : outcome.mechanisms) {
                Scorecard card;
                card.bandwidth_tx_per_device = s.transmissions_per_device.mean();
                card.connected_increase = s.connected_increase.mean();
                card.light_sleep_increase = s.light_sleep_increase.mean();
                card.standards = core::standards_compliant(s.kind);
                if (s.kind == core::MechanismKind::dr_sc) dr_sc = card;
                if (s.kind == core::MechanismKind::da_sc) da_sc = card;
                if (s.kind == core::MechanismKind::dr_si) dr_si = card;
            }
            table.add_row({payload.name,
                           stats::Table::cell(static_cast<double>(ti) / 1000.0, 0),
                           stats::Table::cell(dr_sc.bandwidth_tx_per_device, 2),
                           stats::Table::cell_percent(dr_sc.connected_increase, 1),
                           stats::Table::cell_percent(da_sc.connected_increase, 1),
                           stats::Table::cell_percent(da_sc.light_sleep_increase, 0),
                           stats::Table::cell_percent(dr_si.connected_increase, 1),
                           recommend(dr_sc, da_sc, dr_si, false),
                           recommend(dr_sc, da_sc, dr_si, true)});
        }
    }
    std::fputs(table.to_markdown().c_str(), stdout);
    std::printf(
        "\nThe paper's conclusion in one table: with protocol changes on the\n"
        "table DR-SI wins (unicast-like energy, one transmission); within the\n"
        "standard, DA-SC offers the best trade-off — its overhead shrinks to\n"
        "noise once the image size passes 1 MB.\n");
    return 0;
}
