// Quickstart: plan and run one firmware campaign with each grouping
// mechanism on a small city population and compare the paper's metrics.
//
//   $ ./quickstart [devices] [seed]
//   $ ./quickstart --preset quickstart --devices 500
//   $ ./quickstart --scenario examples/scenarios/smoke.scenario
#include <cstdio>

#include "bench/bench_util.hpp"
#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    // One narrated campaign per mechanism, on the calling thread.
    bench::reject_flags(argc, argv, {"--runs", "--threads"},
                        "has no effect here: quickstart runs one campaign "
                        "per mechanism on the calling thread");
    scenario::ScenarioSpec spec = bench::require_single_cell(
        bench::spec_from_args(argc, argv, "quickstart"), "quickstart");
    if (spec.runs != 1) {
        std::fprintf(stderr,
                     "note: scenario runs=%zu ignored — quickstart runs one "
                     "campaign per mechanism\n",
                     spec.runs);
        spec.with_runs(1);
    }
    spec.with_devices(bench::positional_value(argc, argv, 0, spec.device_count));
    spec.with_seed(bench::positional_u64(argc, argv, 1, spec.base_seed));

    // 1. The device population from the scenario's profile (default: the
    //    calibrated "Massive IoT in the City" mix).
    sim::RandomStream pop_rng{sim::derive_seed(spec.base_seed, "population")};
    const auto population =
        traffic::generate_population(spec.profile, spec.device_count, pop_rng);
    const auto specs = traffic::to_specs(population);

    // 2. Campaign configuration and payload, also from the scenario.
    const core::CampaignConfig& config = spec.config;

    std::printf("nbmg quickstart: %zu devices, payload %.0f KB, TI=%.1fs, seed %llu\n",
                spec.device_count,
                static_cast<double>(spec.payload_bytes) / 1024.0,
                static_cast<double>(config.inactivity_timer.count()) / 1000.0,
                static_cast<unsigned long long>(spec.base_seed));

    // 3. Run the unicast reference, then each grouping mechanism.
    const core::UnicastBaseline unicast;
    const core::CampaignResult reference = core::plan_and_run(
        unicast, specs, config, spec.payload_bytes, spec.base_seed);

    stats::Table table({"mechanism", "standards", "DRX", "transmissions",
                        "light-sleep uptime vs unicast", "connected uptime vs unicast",
                        "all received"});
    table.add_row({"Unicast", "yes", "respected",
                   stats::Table::cell(static_cast<std::int64_t>(
                       reference.total_transmissions())),
                   "-", "-", reference.all_received() ? "yes" : "NO"});

    for (const core::MechanismKind kind : spec.mechanisms) {
        const auto mechanism = core::make_mechanism(kind);
        const core::CampaignResult result = core::plan_and_run(
            *mechanism, specs, config, spec.payload_bytes, spec.base_seed);
        const core::RelativeUptime rel = core::relative_uptime(result, reference);
        table.add_row(
            {std::string{core::to_string(kind)},
             core::standards_compliant(kind) ? "yes" : "no",
             core::respects_drx(kind) ? "respected" : "adjusted",
             stats::Table::cell(static_cast<std::int64_t>(result.total_transmissions())),
             stats::Table::cell_percent(rel.light_sleep_increase, 2),
             stats::Table::cell_percent(rel.connected_increase, 2),
             result.all_received() ? "yes" : "NO"});
    }
    std::fputs(table.to_markdown().c_str(), stdout);

    std::printf(
        "\nReading the table: DA-SC and DR-SI need a single transmission; DR-SC\n"
        "needs many.  DR-SC costs no extra light-sleep energy, DR-SI almost none,\n"
        "DA-SC a little (shortened DRX cycles).  All three pay roughly TI/2 of\n"
        "connected waiting compared to unicast (Sec. IV-B of the paper).\n");
    return 0;
}
