// Quickstart: plan and run one firmware campaign with each grouping
// mechanism on a small city population and compare the paper's metrics.
//
//   $ ./quickstart [devices] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/campaign.hpp"
#include "core/planners.hpp"
#include "core/report.hpp"
#include "stats/table.hpp"
#include "traffic/firmware.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 200;
    const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

    // 1. A device population: the calibrated "Massive IoT in the City" mix.
    const traffic::PopulationProfile profile = traffic::massive_iot_city();
    sim::RandomStream pop_rng{sim::derive_seed(seed, "population")};
    const auto population = traffic::generate_population(profile, n, pop_rng);
    const auto specs = traffic::to_specs(population);

    // 2. Campaign configuration (defaults follow the paper's setting) and
    //    the payload: a 100 KB firmware image.
    const core::CampaignConfig config;
    const traffic::PayloadSpec payload = traffic::firmware_100kb();

    std::printf("nbmg quickstart: %zu devices, payload %s, TI=%.1fs, seed %llu\n",
                n, payload.name.c_str(),
                static_cast<double>(config.inactivity_timer.count()) / 1000.0,
                static_cast<unsigned long long>(seed));

    // 3. Run the unicast reference, then each grouping mechanism.
    const core::UnicastBaseline unicast;
    const core::CampaignResult reference =
        core::plan_and_run(unicast, specs, config, payload.bytes, seed);

    stats::Table table({"mechanism", "standards", "DRX", "transmissions",
                        "light-sleep uptime vs unicast", "connected uptime vs unicast",
                        "all received"});
    table.add_row({"Unicast", "yes", "respected",
                   stats::Table::cell(static_cast<std::int64_t>(
                       reference.total_transmissions())),
                   "-", "-", reference.all_received() ? "yes" : "NO"});

    for (const core::MechanismKind kind :
         {core::MechanismKind::dr_sc, core::MechanismKind::da_sc,
          core::MechanismKind::dr_si}) {
        const auto mechanism = core::make_mechanism(kind);
        const core::CampaignResult result =
            core::plan_and_run(*mechanism, specs, config, payload.bytes, seed);
        const core::RelativeUptime rel = core::relative_uptime(result, reference);
        table.add_row(
            {std::string{core::to_string(kind)},
             core::standards_compliant(kind) ? "yes" : "no",
             core::respects_drx(kind) ? "respected" : "adjusted",
             stats::Table::cell(static_cast<std::int64_t>(result.total_transmissions())),
             stats::Table::cell_percent(rel.light_sleep_increase, 2),
             stats::Table::cell_percent(rel.connected_increase, 2),
             result.all_received() ? "yes" : "NO"});
    }
    std::fputs(table.to_markdown().c_str(), stdout);

    std::printf(
        "\nReading the table: DA-SC and DR-SI need a single transmission; DR-SC\n"
        "needs many.  DR-SC costs no extra light-sleep energy, DR-SI almost none,\n"
        "DA-SC a little (shortened DRX cycles).  All three pay roughly TI/2 of\n"
        "connected waiting compared to unicast (Sec. IV-B of the paper).\n");
    return 0;
}
