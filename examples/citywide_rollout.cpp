// City-wide rollout: one firmware campaign delivered to a fleet camped
// across a grid of cells, under the three assignment scenarios the
// deployment layer models — i.i.d. camping, a downtown hotspot gradient,
// and class-affinity clustering (fleets deployed building by building).
//
// Planning runs per cell (each eNB covers only its own camped devices), so
// besides the scaling win this surfaces genuinely multicell effects:
// skewed per-cell load, per-cell RACH contention, and what clustering does
// to DR-SC's grouping opportunities.
//
// With a wall-clock coordinator engaged (--coordinator / the coordinator.*
// scenario keys, e.g. the citywide-staggered and citywide-backhaul
// presets) every row also reports the city time axis: completion time and
// peak concurrently-active cells under that camping scenario.
//
//   $ ./citywide_rollout [devices] [cells] [seed]
//   $ ./citywide_rollout --preset citywide --cells 64
//   $ ./citywide_rollout --preset citywide-backhaul
//   $ ./citywide_rollout --scenario examples/scenarios/citywide_16cells.scenario
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.hpp"
#include "scenario/run.hpp"
#include "stats/table.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    scenario::ScenarioSpec base = bench::spec_from_args(argc, argv, "citywide");
    base.with_devices(bench::positional_value(argc, argv, 0, base.device_count));
    base.with_cell_count(bench::positional_value(argc, argv, 1, base.cell_count()));
    base.with_seed(bench::positional_u64(argc, argv, 2, base.base_seed));
    const std::size_t devices = base.device_count;
    const std::size_t cells = base.cell_count();

    std::printf(
        "citywide rollout: %zu devices over %zu cells, %zu runs, seed %llu\n"
        "payload %.0fKB, mechanisms DR-SC / DA-SC / DR-SI vs per-cell unicast\n",
        devices, cells, base.runs,
        static_cast<unsigned long long>(base.base_seed),
        static_cast<double>(base.payload_bytes) / 1024.0);

    // The fleet is the same under every scenario: generate it once.
    base.with_populations(core::generate_comparison_populations(
        base.profile, base.device_count, base.runs, base.base_seed));

    // The DR-SC/DA-SC columns follow the scenario's mechanism list; a list
    // without one of them shows "-" instead of indexing out of bounds.
    const auto mechanism_index = [&](core::MechanismKind kind) -> std::ptrdiff_t {
        for (std::size_t m = 0; m < base.mechanisms.size(); ++m) {
            if (base.mechanisms[m] == kind) return static_cast<std::ptrdiff_t>(m);
        }
        return -1;
    };
    const std::ptrdiff_t dr_sc_index = mechanism_index(core::MechanismKind::dr_sc);
    const std::ptrdiff_t da_sc_index = mechanism_index(core::MechanismKind::da_sc);

    std::vector<std::string> columns{"assignment", "max/min cell load",
                                     "DR-SC tx (fleet)", "DR-SC connected incr",
                                     "DA-SC light-sleep incr",
                                     "RACH collision p95 across cells"};
    if (base.is_coordinated()) {
        columns.insert(columns.end(), {"city completion (s)", "peak cells"});
    }
    stats::Table table(columns);
    for (const multicell::AssignmentPolicy policy :
         {multicell::AssignmentPolicy::uniform_hash,
          multicell::AssignmentPolicy::hotspot,
          multicell::AssignmentPolicy::class_affinity}) {
        scenario::ScenarioSpec point = base;
        point.with_assignment(policy);
        if (policy == multicell::AssignmentPolicy::hotspot) {
            // Keep a scenario-provided Zipf exponent; default to the classic
            // downtown gradient otherwise.
            const double exponent =
                base.topology &&
                        base.topology->kind == scenario::TopologySpec::Kind::hotspot
                    ? base.topology->hotspot_exponent
                    : 1.0;
            point.with_hotspot(cells, exponent);
        } else {
            point.with_cells(cells);
        }

        const scenario::ScenarioResult scenario_result =
            scenario::run_scenario(point);
        const multicell::DeploymentResult& result = scenario_result.deployment();

        double min_load = static_cast<double>(devices);
        double max_load = 0.0;
        for (const multicell::CellAggregates& cell : result.cells) {
            min_load = std::min(min_load, cell.devices.mean());
            max_load = std::max(max_load, cell.devices.mean());
        }
        char load[64];
        std::snprintf(load, sizeof load, "%.0f / %.0f", max_load, min_load);

        const auto& mechanisms = result.mechanisms;
        std::vector<std::string> row{
            multicell::to_string(policy), load,
            dr_sc_index >= 0
                ? stats::Table::cell(
                      mechanisms[static_cast<std::size_t>(dr_sc_index)]
                          .stats.transmissions.mean(),
                      1)
                : "-",
            dr_sc_index >= 0
                ? stats::Table::cell_percent(
                      mechanisms[static_cast<std::size_t>(dr_sc_index)]
                          .stats.connected_increase.mean(),
                      1)
                : "-",
            da_sc_index >= 0
                ? stats::Table::cell_percent(
                      mechanisms[static_cast<std::size_t>(da_sc_index)]
                          .stats.light_sleep_increase.mean(),
                      2)
                : "-",
            stats::Table::cell(result.rach_collision_across_cells.quantile(0.95),
                               4)};
        if (scenario_result.is_coordinated()) {
            const multicell::CoordinationAggregates& city =
                *scenario_result.coordination;
            row.insert(row.end(),
                       {stats::Table::cell(city.completion_ms.mean() / 1000.0, 1),
                        stats::Table::cell(city.peak_concurrent_cells.mean(), 1)});
        }
        table.add_row(std::move(row));
    }
    std::fputs(table.to_markdown().c_str(), stdout);

    std::printf(
        "\nReading the table: the hotspot scenario concentrates load (and RACH\n"
        "contention) on the downtown cells; class affinity packs devices with\n"
        "the same DRX behaviour onto shared cells, which is exactly where\n"
        "DR-SC's window grouping finds dense clusters.  All numbers are\n"
        "bit-identical for any thread count.\n");
    return 0;
}
