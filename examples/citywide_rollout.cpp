// City-wide rollout: one firmware campaign delivered to a fleet camped
// across a grid of cells, under the three assignment scenarios the
// deployment layer models — i.i.d. camping, a downtown hotspot gradient,
// and class-affinity clustering (fleets deployed building by building).
//
// Planning runs per cell (each eNB covers only its own camped devices), so
// besides the scaling win this surfaces genuinely multicell effects:
// skewed per-cell load, per-cell RACH contention, and what clustering does
// to DR-SC's grouping opportunities.
//
//   $ ./citywide_rollout [devices] [cells] [seed]
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "multicell/deployment.hpp"
#include "stats/table.hpp"
#include "traffic/population.hpp"

int main(int argc, char** argv) {
    using namespace nbmg;

    const std::size_t devices =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6'000;
    const std::size_t cells = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
    const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

    multicell::DeploymentSetup setup;
    setup.profile = traffic::massive_iot_city();
    setup.device_count = devices;
    setup.runs = 2;
    setup.base_seed = seed;

    std::printf(
        "citywide rollout: %zu devices over %zu cells, %zu runs, seed %llu\n"
        "payload 100KB, mechanisms DR-SC / DA-SC / DR-SI vs per-cell unicast\n",
        devices, cells, setup.runs,
        static_cast<unsigned long long>(seed));

    // The fleet is the same under every scenario: generate it once.
    setup.populations = core::generate_comparison_populations(
        setup.profile, setup.device_count, setup.runs, setup.base_seed);

    stats::Table table({"assignment", "max/min cell load", "DR-SC tx (fleet)",
                        "DR-SC connected incr", "DA-SC light-sleep incr",
                        "RACH collision p95 across cells"});
    for (const multicell::AssignmentPolicy policy :
         {multicell::AssignmentPolicy::uniform_hash,
          multicell::AssignmentPolicy::hotspot,
          multicell::AssignmentPolicy::class_affinity}) {
        setup.assignment = policy;
        setup.topology =
            policy == multicell::AssignmentPolicy::hotspot
                ? multicell::CellTopology::hotspot(cells, 1.0)
                : multicell::CellTopology::uniform(cells);

        const multicell::DeploymentResult result = multicell::run_deployment(setup);

        double min_load = static_cast<double>(devices);
        double max_load = 0.0;
        for (const multicell::CellAggregates& cell : result.cells) {
            min_load = std::min(min_load, cell.devices.mean());
            max_load = std::max(max_load, cell.devices.mean());
        }
        char load[64];
        std::snprintf(load, sizeof load, "%.0f / %.0f", max_load, min_load);

        table.add_row(
            {multicell::to_string(policy), load,
             stats::Table::cell(result.mechanisms[0].stats.transmissions.mean(), 1),
             stats::Table::cell_percent(
                 result.mechanisms[0].stats.connected_increase.mean(), 1),
             stats::Table::cell_percent(
                 result.mechanisms[1].stats.light_sleep_increase.mean(), 2),
             stats::Table::cell(result.rach_collision_across_cells.quantile(0.95),
                                4)});
    }
    std::fputs(table.to_markdown().c_str(), stdout);

    std::printf(
        "\nReading the table: the hotspot scenario concentrates load (and RACH\n"
        "contention) on the downtown cells; class affinity packs devices with\n"
        "the same DRX behaviour onto shared cells, which is exactly where\n"
        "DR-SC's window grouping finds dense clusters.  All numbers are\n"
        "bit-identical for any thread count.\n");
    return 0;
}
