#include "telemetry/sink.hpp"

#include <utility>

namespace nbmg::telemetry {

namespace {
const std::vector<std::uint64_t> kEmptySeries;
}  // namespace

bool CampaignSink::bucketed(EventKind kind) noexcept {
    return kind == EventKind::rach_attempt || kind == EventKind::rach_collision ||
           kind == EventKind::page_delivered;
}

const std::vector<std::uint64_t>& CampaignSink::series(EventKind kind) const {
    switch (kind) {
        case EventKind::rach_attempt: return rach_attempt_buckets_;
        case EventKind::rach_collision: return rach_collision_buckets_;
        case EventKind::page_delivered: return page_delivered_buckets_;
        default: return kEmptySeries;
    }
}

void CampaignSink::bump_bucket(std::vector<std::uint64_t>& buckets,
                               std::int64_t at_ms) {
    const std::int64_t clamped = at_ms < 0 ? 0 : at_ms;
    const auto index = static_cast<std::size_t>(clamped / config_.bucket_ms);
    if (buckets.size() <= index) buckets.resize(index + 1, 0);
    ++buckets[index];
}

void CampaignSink::count(EventKind kind, std::int64_t at_ms) {
    ++counters_[static_cast<std::size_t>(kind)];
    switch (kind) {
        case EventKind::rach_attempt: bump_bucket(rach_attempt_buckets_, at_ms); break;
        case EventKind::rach_collision:
            bump_bucket(rach_collision_buckets_, at_ms);
            break;
        case EventKind::page_delivered:
            bump_bucket(page_delivered_buckets_, at_ms);
            break;
        default: break;
    }
}

void CampaignSink::absorb(const CampaignSink& child) {
    records_.insert(records_.end(), child.records_.begin(), child.records_.end());
    for (std::size_t k = 0; k < kEventKindCount; ++k) {
        counters_[k] += child.counters_[k];
    }
    const auto add_buckets = [](std::vector<std::uint64_t>& into,
                                const std::vector<std::uint64_t>& from) {
        if (into.size() < from.size()) into.resize(from.size(), 0);
        for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
    };
    add_buckets(rach_attempt_buckets_, child.rach_attempt_buckets_);
    add_buckets(rach_collision_buckets_, child.rach_collision_buckets_);
    add_buckets(page_delivered_buckets_, child.page_delivered_buckets_);
}

void CampaignSink::restore(std::vector<TraceRecord> records,
                           const std::array<std::uint64_t, kEventKindCount>& counters,
                           std::vector<std::uint64_t> rach_attempt_buckets,
                           std::vector<std::uint64_t> rach_collision_buckets,
                           std::vector<std::uint64_t> page_delivered_buckets) {
    records_ = std::move(records);
    counters_ = counters;
    rach_attempt_buckets_ = std::move(rach_attempt_buckets);
    rach_collision_buckets_ = std::move(rach_collision_buckets);
    page_delivered_buckets_ = std::move(page_delivered_buckets);
}

}  // namespace nbmg::telemetry
