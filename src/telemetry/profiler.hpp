// Opt-in wall-clock self-profiler for bench shells.
//
// This is the ONE place in the library that may read a wall clock: the
// determinism lint (ci/lint_determinism.py, `telemetry` category) rejects
// clock reads everywhere else under src/telemetry/ and keeps the general
// wall-clock rule for the rest of the library.  Nothing in the simulation
// or campaign layers may depend on these numbers — they exist to tell a
// human which phase of a bench shell burned the time, and they are
// intentionally NOT part of any deterministic artifact (traces, metrics,
// tables all come from sim-time).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nbmg::telemetry {

/// Accumulates named wall-clock phases.  Usage in a bench shell:
///
///   telemetry::PhaseProfiler profiler(enabled);
///   profiler.begin("plan");
///   ... work ...
///   profiler.end();              // closes "plan"
///   fputs(profiler.report().c_str(), stderr);
///
/// Disabled profilers never touch the clock, so the default-off path adds
/// one branch per phase boundary.
class PhaseProfiler {
public:
    explicit PhaseProfiler(bool enabled = false) : enabled_(enabled) {}

    [[nodiscard]] bool enabled() const noexcept { return enabled_; }

    /// Opens a phase; an open phase is closed first (phases never nest —
    /// bench shells are linear pipelines).
    void begin(std::string name);

    /// Closes the open phase, accumulating its wall-clock duration.
    void end();

    struct Phase {
        std::string name;
        std::int64_t wall_us = 0;
    };

    /// Closed phases in begin() order.
    [[nodiscard]] const std::vector<Phase>& phases() const noexcept {
        return phases_;
    }

    /// Human-readable per-phase report ("phase  12.345 ms" lines), with a
    /// total line.  Empty when disabled or no phase closed.
    [[nodiscard]] std::string report() const;

private:
    [[nodiscard]] static std::int64_t now_us();

    bool enabled_ = false;
    bool open_ = false;
    std::int64_t started_us_ = 0;
    std::vector<Phase> phases_;
};

}  // namespace nbmg::telemetry
