// Slot-addressed telemetry collector for a whole scenario run.
//
// The collector pre-allocates one CampaignSink per (run, cell, campaign)
// slot — campaign 0 is the unicast reference, campaign m+1 the m-th
// requested mechanism — plus one city-level sink per run for the
// coordinator's backhaul feed.  Sink addresses are stable for the
// collector's lifetime, and the sweep engine executes each (run, cell)
// grid point in exactly one task, so parallel campaigns write disjoint
// slots with no locking.  Exporters iterate the slots in
// run-major -> cell -> campaign order, which makes every exported artifact
// a pure function of (spec, seed) — never of --threads.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/sink.hpp"

namespace nbmg::telemetry {

class Collector {
public:
    /// `campaign_labels` names the per-(run, cell) campaigns in slot order
    /// (index 0 = unicast reference).  Throws std::invalid_argument when
    /// any dimension is zero.
    Collector(TelemetryConfig config, std::size_t runs, std::size_t cells,
              std::vector<std::string> campaign_labels);

    [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::size_t runs() const noexcept { return runs_; }
    [[nodiscard]] std::size_t cells() const noexcept { return cells_; }
    [[nodiscard]] std::size_t campaigns() const noexcept { return labels_.size(); }
    [[nodiscard]] const std::string& label(std::size_t campaign) const {
        return labels_.at(campaign);
    }

    /// Mutable sink of one campaign slot; the address is stable.
    [[nodiscard]] CampaignSink* sink(std::size_t run, std::size_t cell,
                                     std::size_t campaign);
    [[nodiscard]] const CampaignSink& slot(std::size_t run, std::size_t cell,
                                           std::size_t campaign) const;

    /// Per-run city-level sink (coordinator backhaul feed; records use the
    /// device field as the cell index).
    [[nodiscard]] CampaignSink* city_sink(std::size_t run);
    [[nodiscard]] const CampaignSink& city_slot(std::size_t run) const;

private:
    [[nodiscard]] std::size_t index(std::size_t run, std::size_t cell,
                                    std::size_t campaign) const;

    TelemetryConfig config_;
    std::size_t runs_ = 0;
    std::size_t cells_ = 0;
    std::vector<std::string> labels_;
    std::vector<CampaignSink> sinks_;       // run-major, then cell, then campaign
    std::vector<CampaignSink> city_sinks_;  // one per run
};

}  // namespace nbmg::telemetry
