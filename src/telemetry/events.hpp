// Typed trace event taxonomy for the telemetry subsystem.
//
// Every observable the campaign layers emit is one fixed-size TraceRecord
// tagged with an EventKind — no strings, no allocation, no owning of
// caller buffers (the replacement for the old sim::TraceEvent, whose
// string_view `source` dangled on any sink that deferred processing).
// Records carry sim-time plus two kind-specific integer payload slots; the
// (run, cell, campaign, stratum) coordinates come from the sink the record
// is emitted into, so the hot emit path never repeats them.
#pragma once

#include <cstddef>
#include <cstdint>

namespace nbmg::telemetry {

/// Every event the instrumented layers can emit.  The enumerator value is
/// the dense counter index of the metrics registry (see CampaignSink), so
/// the order is part of the exporter format — append, never reorder.
enum class EventKind : std::uint8_t {
    rach_attempt = 0,   // a = preamble chosen, b = entrants in the window
    rach_collision,     // a = preamble chosen, b = devices on that preamble
    rach_failure,       // a = attempts used, b = entrants in the window
    page_scheduled,     // a = occasion occupancy after placement, b = 1 for mltc
    page_delivered,     // a = page kind (0 normal, 1 reconfig, 2 mltc)
    page_miss,          // a = device was listening, b = page was lost
    page_retry,         // a = page kind as above
    drx_transition,     // a = old cycle period (ms), b = new cycle period (ms)
    rrc_connected,      // a = RACH attempts this connection, b = cause
    rrc_released,       // a/b = 0
    rrc_failure,        // RACH gave up; a = attempts
    tx_multicast,       // a = transmission index, b = devices on the bearer
    tx_unicast,         // a/b = 0
    tx_recovery,        // a/b = 0
    backhaul_chunk,     // a = feed busy duration (ms), b = devices in the cell
    stratum_span,       // a = member devices, b = campaign horizon (ms)
    campaign_span,      // a = total devices, b = campaign horizon (ms)
    device_leave,       // a = rejoin delay (ms), b = device had received payload
    device_rejoin,      // a = off-air duration (ms), b = recovery page queued
    cell_outage,        // a = stranded devices, b = devices already complete
    redelivery,         // a = re-delivered bytes, b = 0 churn / 1 outage / 2 backhaul
};

inline constexpr std::size_t kEventKindCount = 21;

[[nodiscard]] constexpr const char* to_string(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::rach_attempt: return "rach_attempt";
        case EventKind::rach_collision: return "rach_collision";
        case EventKind::rach_failure: return "rach_failure";
        case EventKind::page_scheduled: return "page_scheduled";
        case EventKind::page_delivered: return "page_delivered";
        case EventKind::page_miss: return "page_miss";
        case EventKind::page_retry: return "page_retry";
        case EventKind::drx_transition: return "drx_transition";
        case EventKind::rrc_connected: return "rrc_connected";
        case EventKind::rrc_released: return "rrc_released";
        case EventKind::rrc_failure: return "rrc_failure";
        case EventKind::tx_multicast: return "tx_multicast";
        case EventKind::tx_unicast: return "tx_unicast";
        case EventKind::tx_recovery: return "tx_recovery";
        case EventKind::backhaul_chunk: return "backhaul_chunk";
        case EventKind::stratum_span: return "stratum_span";
        case EventKind::campaign_span: return "campaign_span";
        case EventKind::device_leave: return "device_leave";
        case EventKind::device_rejoin: return "device_rejoin";
        case EventKind::cell_outage: return "cell_outage";
        case EventKind::redelivery: return "redelivery";
    }
    return "?";
}

/// Sentinel device index for events not tied to one device (RACH windows
/// resolve anonymous procedures; spans cover the whole campaign).
inline constexpr std::uint32_t kNoDevice = 0xFFFF'FFFFU;

/// Sentinel stratum for records emitted outside a stratified execution.
inline constexpr std::uint16_t kNoStratum = 0xFFFFU;

/// One emitted event: 32 bytes, trivially copyable, all-integer payload —
/// a vector of these is the trace.  `stratum` is stamped from the emitting
/// sink's context, everything else from the call site.
struct TraceRecord {
    std::int64_t at_ms = 0;  // sim-time of the event (campaign-local clock)
    std::int64_t a = 0;      // kind-specific payload (see EventKind)
    std::int64_t b = 0;      // kind-specific payload (see EventKind)
    std::uint32_t device = kNoDevice;
    std::uint16_t stratum = kNoStratum;
    EventKind kind = EventKind::rach_attempt;

    bool operator==(const TraceRecord&) const = default;
};

}  // namespace nbmg::telemetry
