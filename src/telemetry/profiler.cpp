#include "telemetry/profiler.hpp"

#include <chrono>
#include <utility>

namespace nbmg::telemetry {

std::int64_t PhaseProfiler::now_us() {
    // nbmg-lint: allow(wall-clock) self-profiler TU: the one audited clock read in the library; bench shells only, never feeds a deterministic artifact
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::microseconds>(now).count();
}

void PhaseProfiler::begin(std::string name) {
    if (!enabled_) return;
    if (open_) end();
    phases_.push_back(Phase{std::move(name), 0});
    open_ = true;
    started_us_ = now_us();
}

void PhaseProfiler::end() {
    if (!enabled_ || !open_) return;
    phases_.back().wall_us = now_us() - started_us_;
    open_ = false;
}

std::string PhaseProfiler::report() const {
    if (phases_.empty()) return {};
    std::string out;
    std::int64_t total_us = 0;
    for (const Phase& phase : phases_) {
        out += "[profile] ";
        out += phase.name;
        out += ": ";
        out += std::to_string(phase.wall_us / 1000);
        out += ".";
        const std::int64_t frac = (phase.wall_us % 1000) / 100;
        out += std::to_string(frac);
        out += " ms\n";
        total_us += phase.wall_us;
    }
    out += "[profile] total: ";
    out += std::to_string(total_us / 1000);
    out += ".";
    out += std::to_string((total_us % 1000) / 100);
    out += " ms\n";
    return out;
}

}  // namespace nbmg::telemetry
