// Telemetry exporters: JSONL trace dump, metrics table on the stats::Table
// surface, and a Chrome-trace_event-format phase timeline.
//
// All three iterate the collector's slots in run-major -> cell -> campaign
// order and print integers only, so the rendered artifacts are byte-for-
// byte deterministic whenever the underlying run is (which the sink/merge
// discipline guarantees at any --threads/--strata).
#pragma once

#include <string>

#include "stats/table.hpp"
#include "telemetry/collector.hpp"

namespace nbmg::multicell {
struct CoordinationAggregates;
}  // namespace nbmg::multicell

namespace nbmg::telemetry {

/// One JSON object per line, one line per trace record, slots in
/// deterministic order.  Each run's city-level backhaul records (campaign
/// "coordinator") follow the run's campaign slots.
[[nodiscard]] std::string trace_jsonl(const Collector& collector);

/// Counter + bucketed-series registry summed across runs and cells, one
/// block per campaign label: columns {campaign, metric, window_start_ms,
/// value}.  Counter rows carry "-" for the window; series rows one row per
/// non-empty bucket.
[[nodiscard]] stats::Table metrics_table(const Collector& collector);

/// Chrome trace_event JSON (chrome://tracing / Perfetto): one process per
/// run, one thread row per cell carrying the campaign spans and their
/// per-stratum sub-spans, plus a dedicated backhaul-feed row when the
/// coordinator recorded feed busy intervals.  Cell spans are offset by the
/// coordinated start times when `coordination` is given.
[[nodiscard]] std::string timeline_json(
    const Collector& collector,
    const multicell::CoordinationAggregates* coordination = nullptr);

}  // namespace nbmg::telemetry
