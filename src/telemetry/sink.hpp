// Per-campaign telemetry sink: typed trace records plus the deterministic
// counter/metrics registry.
//
// One CampaignSink belongs to exactly one campaign execution (one
// (run, cell, mechanism) slot of a Collector, or one stratum's child
// inside run_stratified).  It is single-writer by construction — the
// campaign layers emit into it from the one thread executing that
// campaign — so emission needs no synchronization and never perturbs the
// simulation: no RNG draws, no event scheduling, no reads back.
//
// Determinism contract: a stratified execution gives every stratum its own
// child sink and absorbs the children in stratum order (exactly like the
// counter merge in run_stratified / Summary::merge), so the merged trace,
// counters and time-series are bit-identical at any --threads/--strata
// fan-out width.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "telemetry/events.hpp"

namespace nbmg::telemetry {

/// What a sink records.  Trace and metrics toggle independently; both off
/// means every emit is a no-op (and call sites skip argument evaluation
/// entirely when the sink pointer itself is null — see NBMG_TELEMETRY_EMIT).
struct TelemetryConfig {
    bool trace = false;    // keep the full TraceRecord stream
    bool metrics = false;  // keep dense counters + sim-time-bucketed series
    /// Bucket width of the sim-time histograms (ms).
    std::int64_t bucket_ms = 60'000;

    [[nodiscard]] bool enabled() const noexcept { return trace || metrics; }
    bool operator==(const TelemetryConfig&) const = default;
};

class CampaignSink {
public:
    /// A default-constructed sink is disabled: every emit is a no-op.
    CampaignSink() = default;

    explicit CampaignSink(TelemetryConfig config, std::uint16_t stratum = kNoStratum)
        : config_(config), stratum_(stratum) {}

    [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
    [[nodiscard]] const TelemetryConfig& config() const noexcept { return config_; }
    [[nodiscard]] std::uint16_t stratum() const noexcept { return stratum_; }

    /// Records one event: appends a TraceRecord (trace mode), bumps the
    /// kind's dense counter and — for the bucketed kinds — its sim-time
    /// series (metrics mode).  Purely observational; never fails.
    void emit(EventKind kind, std::int64_t at_ms, std::uint32_t device,
              std::int64_t a, std::int64_t b) {
        if (config_.trace) {
            records_.push_back(TraceRecord{at_ms, a, b, device, stratum_, kind});
        }
        if (config_.metrics) count(kind, at_ms);
    }

    /// Span record carrying an explicit stratum tag (the parent sink of a
    /// stratified run emits its children's spans; its own stratum is
    /// kNoStratum).
    void emit_span(EventKind kind, std::uint16_t stratum, std::int64_t a,
                   std::int64_t b) {
        if (config_.trace) {
            records_.push_back(TraceRecord{0, a, b, kNoDevice, stratum, kind});
        }
        if (config_.metrics) count(kind, 0);
    }

    /// Merges a stratum child: counters and buckets add elementwise, trace
    /// records append in the child's emission order.  Call in stratum order
    /// for a thread-count-independent result.
    void absorb(const CampaignSink& child);

    /// Overwrites the recorded payload with a previously captured state —
    /// the checkpoint/resume path.  Config and stratum are identity, not
    /// payload: the caller re-creates the sink with the same config and
    /// restore() fills in what it had recorded.
    void restore(std::vector<TraceRecord> records,
                 const std::array<std::uint64_t, kEventKindCount>& counters,
                 std::vector<std::uint64_t> rach_attempt_buckets,
                 std::vector<std::uint64_t> rach_collision_buckets,
                 std::vector<std::uint64_t> page_delivered_buckets);

    [[nodiscard]] const std::vector<TraceRecord>& records() const noexcept {
        return records_;
    }
    [[nodiscard]] std::uint64_t counter(EventKind kind) const noexcept {
        return counters_[static_cast<std::size_t>(kind)];
    }
    [[nodiscard]] const std::array<std::uint64_t, kEventKindCount>& counters()
        const noexcept {
        return counters_;
    }

    /// Sim-time-bucketed series (bucket i covers [i * bucket_ms,
    /// (i+1) * bucket_ms)); empty unless metrics mode saw the kind.
    [[nodiscard]] const std::vector<std::uint64_t>& series(EventKind kind) const;

    /// True when this sink owns a bucketed series for `kind`.
    [[nodiscard]] static bool bucketed(EventKind kind) noexcept;

private:
    void count(EventKind kind, std::int64_t at_ms);
    void bump_bucket(std::vector<std::uint64_t>& buckets, std::int64_t at_ms);

    TelemetryConfig config_{};
    std::uint16_t stratum_ = kNoStratum;
    std::vector<TraceRecord> records_;
    std::array<std::uint64_t, kEventKindCount> counters_{};
    std::vector<std::uint64_t> rach_attempt_buckets_;
    std::vector<std::uint64_t> rach_collision_buckets_;
    std::vector<std::uint64_t> page_delivered_buckets_;
};

}  // namespace nbmg::telemetry

/// Zero-cost-when-disabled emission: the arguments are not evaluated when
/// the sink pointer is null, so hot loops pay one pointer test.  Payloads
/// must be deterministic values (sim-time, indices, counts) — pointer
/// values and addresses are non-deterministic across runs and are flagged
/// by ci/lint_determinism.py's `telemetry` category.
#define NBMG_TELEMETRY_EMIT(sink_ptr, ...)                                     \
    do {                                                                       \
        if (::nbmg::telemetry::CampaignSink* nbmg_emit_sink_ = (sink_ptr)) {   \
            nbmg_emit_sink_->emit(__VA_ARGS__);                                \
        }                                                                      \
    } while (0)
