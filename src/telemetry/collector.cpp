#include "telemetry/collector.hpp"

#include <stdexcept>
#include <utility>

namespace nbmg::telemetry {

Collector::Collector(TelemetryConfig config, std::size_t runs, std::size_t cells,
                     std::vector<std::string> campaign_labels)
    : config_(config), runs_(runs), cells_(cells), labels_(std::move(campaign_labels)) {
    if (runs_ == 0 || cells_ == 0 || labels_.empty()) {
        throw std::invalid_argument("Collector: empty runs/cells/campaigns grid");
    }
    sinks_.assign(runs_ * cells_ * labels_.size(), CampaignSink{config_});
    city_sinks_.assign(runs_, CampaignSink{config_});
}

std::size_t Collector::index(std::size_t run, std::size_t cell,
                             std::size_t campaign) const {
    if (run >= runs_ || cell >= cells_ || campaign >= labels_.size()) {
        throw std::out_of_range("Collector: slot outside the grid");
    }
    return (run * cells_ + cell) * labels_.size() + campaign;
}

CampaignSink* Collector::sink(std::size_t run, std::size_t cell,
                              std::size_t campaign) {
    return &sinks_[index(run, cell, campaign)];
}

const CampaignSink& Collector::slot(std::size_t run, std::size_t cell,
                                    std::size_t campaign) const {
    return sinks_[index(run, cell, campaign)];
}

CampaignSink* Collector::city_sink(std::size_t run) {
    return &city_sinks_.at(run);
}

const CampaignSink& Collector::city_slot(std::size_t run) const {
    return city_sinks_.at(run);
}

}  // namespace nbmg::telemetry
