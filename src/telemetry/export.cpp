#include "telemetry/export.hpp"

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "multicell/coordinator.hpp"

namespace nbmg::telemetry {
namespace {

void append_escaped(std::string& out, const std::string& text) {
    for (const char ch : text) {
        if (ch == '"' || ch == '\\') out.push_back('\\');
        out.push_back(ch);
    }
}

void append_record_line(std::string& out, std::size_t run, std::int64_t cell,
                        const std::string& campaign, const TraceRecord& record) {
    out += "{\"run\":";
    out += std::to_string(run);
    out += ",\"cell\":";
    out += std::to_string(cell);
    out += ",\"campaign\":\"";
    append_escaped(out, campaign);
    out += "\",\"stratum\":";
    out += record.stratum == kNoStratum ? "-1" : std::to_string(record.stratum);
    out += ",\"at\":";
    out += std::to_string(record.at_ms);
    out += ",\"kind\":\"";
    out += to_string(record.kind);
    out += "\",\"device\":";
    out += record.device == kNoDevice
               ? "-1"
               : std::to_string(static_cast<std::int64_t>(record.device));
    out += ",\"a\":";
    out += std::to_string(record.a);
    out += ",\"b\":";
    out += std::to_string(record.b);
    out += "}\n";
}

/// One trace_event "complete" slice; Chrome timestamps are microseconds.
void append_slice(std::string& out, std::size_t pid, std::int64_t tid,
                  const std::string& name, std::int64_t start_ms,
                  std::int64_t duration_ms, std::int64_t devices) {
    out += "  {\"ph\":\"X\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"";
    append_escaped(out, name);
    out += "\",\"ts\":";
    out += std::to_string(start_ms * 1000);
    out += ",\"dur\":";
    out += std::to_string(duration_ms * 1000);
    out += ",\"args\":{\"devices\":";
    out += std::to_string(devices);
    out += "}},\n";
}

void append_thread_name(std::string& out, std::size_t pid, std::int64_t tid,
                        const std::string& name) {
    out += "  {\"ph\":\"M\",\"pid\":";
    out += std::to_string(pid);
    out += ",\"tid\":";
    out += std::to_string(tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    append_escaped(out, name);
    out += "\"}},\n";
}

}  // namespace

std::string trace_jsonl(const Collector& collector) {
    std::string out;
    const std::string coordinator_label = "coordinator";
    for (std::size_t run = 0; run < collector.runs(); ++run) {
        for (std::size_t cell = 0; cell < collector.cells(); ++cell) {
            for (std::size_t k = 0; k < collector.campaigns(); ++k) {
                const CampaignSink& sink = collector.slot(run, cell, k);
                for (const TraceRecord& record : sink.records()) {
                    append_record_line(out, run, static_cast<std::int64_t>(cell),
                                       collector.label(k), record);
                }
            }
        }
        // City-level records use the device field as the cell index.
        for (const TraceRecord& record : collector.city_slot(run).records()) {
            append_record_line(out, run,
                               record.device == kNoDevice
                                   ? -1
                                   : static_cast<std::int64_t>(record.device),
                               coordinator_label, record);
        }
    }
    return out;
}

stats::Table metrics_table(const Collector& collector) {
    stats::Table table({"campaign", "metric", "window_start_ms", "value"});
    const std::int64_t bucket_ms = collector.config().bucket_ms;
    for (std::size_t k = 0; k < collector.campaigns(); ++k) {
        std::array<std::uint64_t, kEventKindCount> counters{};
        std::vector<std::vector<std::uint64_t>> series(kEventKindCount);
        for (std::size_t run = 0; run < collector.runs(); ++run) {
            for (std::size_t cell = 0; cell < collector.cells(); ++cell) {
                const CampaignSink& sink = collector.slot(run, cell, k);
                for (std::size_t e = 0; e < kEventKindCount; ++e) {
                    counters[e] += sink.counters()[e];
                    const auto kind = static_cast<EventKind>(e);
                    if (!CampaignSink::bucketed(kind)) continue;
                    const std::vector<std::uint64_t>& buckets = sink.series(kind);
                    if (series[e].size() < buckets.size()) {
                        series[e].resize(buckets.size(), 0);
                    }
                    for (std::size_t i = 0; i < buckets.size(); ++i) {
                        series[e][i] += buckets[i];
                    }
                }
            }
        }
        for (std::size_t e = 0; e < kEventKindCount; ++e) {
            const auto kind = static_cast<EventKind>(e);
            table.add_row({collector.label(k), to_string(kind), "-",
                           std::to_string(counters[e])});
        }
        for (std::size_t e = 0; e < kEventKindCount; ++e) {
            const auto kind = static_cast<EventKind>(e);
            for (std::size_t i = 0; i < series[e].size(); ++i) {
                if (series[e][i] == 0) continue;
                table.add_row(
                    {collector.label(k), to_string(kind),
                     std::to_string(static_cast<std::int64_t>(i) * bucket_ms),
                     std::to_string(series[e][i])});
            }
        }
    }
    return table;
}

std::string timeline_json(const Collector& collector,
                          const multicell::CoordinationAggregates* coordination) {
    std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    constexpr std::int64_t kBackhaulTid = 0;
    for (std::size_t run = 0; run < collector.runs(); ++run) {
        out += "  {\"ph\":\"M\",\"pid\":";
        out += std::to_string(run);
        out += ",\"name\":\"process_name\",\"args\":{\"name\":\"run ";
        out += std::to_string(run);
        out += "\"}},\n";

        const multicell::RunTimeline* timeline = nullptr;
        if (coordination != nullptr && run < coordination->timelines.size()) {
            timeline = &coordination->timelines[run];
        }

        for (std::size_t cell = 0; cell < collector.cells(); ++cell) {
            const auto tid = static_cast<std::int64_t>(cell) + 1;
            append_thread_name(out, run, tid, "cell " + std::to_string(cell));
            std::int64_t start_ms = 0;
            if (timeline != nullptr && cell < timeline->cells.size()) {
                start_ms = timeline->cells[cell].start_ms;
            }
            for (std::size_t k = 0; k < collector.campaigns(); ++k) {
                const CampaignSink& sink = collector.slot(run, cell, k);
                for (const TraceRecord& record : sink.records()) {
                    if (record.kind == EventKind::campaign_span) {
                        append_slice(out, run, tid, collector.label(k), start_ms,
                                     record.b, record.a);
                    } else if (record.kind == EventKind::stratum_span) {
                        append_slice(out, run, tid,
                                     collector.label(k) + " stratum " +
                                         std::to_string(record.stratum),
                                     start_ms, record.b, record.a);
                    }
                }
            }
        }

        const CampaignSink& city = collector.city_slot(run);
        if (!city.records().empty()) {
            append_thread_name(out, run, kBackhaulTid, "backhaul feed");
            for (const TraceRecord& record : city.records()) {
                if (record.kind != EventKind::backhaul_chunk) continue;
                append_slice(out, run, kBackhaulTid,
                             "feed cell " +
                                 std::to_string(static_cast<std::int64_t>(
                                     record.device)),
                             record.at_ms, record.a, record.b);
            }
        }
    }
    // Closing sentinel keeps the array valid after the trailing commas above.
    out += "  {\"ph\":\"M\",\"pid\":0,\"name\":\"trace_end\",\"args\":{}}\n]}\n";
    return out;
}

}  // namespace nbmg::telemetry
