#include "multicell/assignment.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/random.hpp"

namespace nbmg::multicell {
namespace {

/// Uniform [0, 1) from a derived 64-bit hash.
double unit_hash(std::uint64_t root, std::string_view label, std::uint64_t index) {
    return static_cast<double>(sim::derive_seed(root, label, index)) * 0x1.0p-64;
}

std::uint32_t uniform_cell(std::size_t cells, std::uint64_t seed, std::uint64_t imsi) {
    return static_cast<std::uint32_t>(sim::derive_seed(seed, "assign-uniform", imsi) %
                                      cells);
}

}  // namespace

std::optional<AssignmentPolicy> parse_assignment_policy(
    std::string_view text) noexcept {
    if (text == "uniform") return AssignmentPolicy::uniform_hash;
    if (text == "hotspot") return AssignmentPolicy::hotspot;
    if (text == "class-affinity") return AssignmentPolicy::class_affinity;
    return std::nullopt;
}

DeviceAssignment assign_devices(const CellTopology& topology,
                                std::span<const nbiot::UeSpec> devices,
                                std::span<const std::uint32_t> class_indices,
                                AssignmentPolicy policy, std::uint64_t seed) {
    if (!topology.valid()) {
        throw std::invalid_argument("assign_devices: invalid topology");
    }
    if (policy == AssignmentPolicy::class_affinity &&
        class_indices.size() != devices.size()) {
        throw std::invalid_argument(
            "assign_devices: class_affinity needs one class index per device");
    }
    const std::size_t cells = topology.cell_count();

    // Cumulative weights for the hotspot policy's weighted hash.
    std::vector<double> cumulative;
    if (policy == AssignmentPolicy::hotspot) {
        cumulative.reserve(cells);
        double total = 0.0;
        for (const CellSite& site : topology.cells) {
            total += site.weight;
            cumulative.push_back(total);
        }
    }

    DeviceAssignment assignment;
    assignment.cell_of_device.reserve(devices.size());
    assignment.cell_sizes.assign(cells, 0);
    for (std::size_t d = 0; d < devices.size(); ++d) {
        const std::uint64_t imsi = devices[d].imsi.value;
        std::uint32_t cell = 0;
        switch (policy) {
            case AssignmentPolicy::uniform_hash:
                cell = uniform_cell(cells, seed, imsi);
                break;
            case AssignmentPolicy::hotspot: {
                const double u = unit_hash(seed, "assign-hotspot", imsi) *
                                 cumulative.back();
                const auto it =
                    std::upper_bound(cumulative.begin(), cumulative.end(), u);
                cell = static_cast<std::uint32_t>(
                    std::min<std::size_t>(
                        static_cast<std::size_t>(it - cumulative.begin()),
                        cells - 1));
                break;
            }
            case AssignmentPolicy::class_affinity: {
                if (unit_hash(seed, "affinity-spill", imsi) < kClassAffinitySpill) {
                    cell = uniform_cell(cells, seed, imsi);
                } else {
                    cell = static_cast<std::uint32_t>(
                        sim::derive_seed(seed, "class-home", class_indices[d]) %
                        cells);
                }
                break;
            }
        }
        assignment.cell_of_device.push_back(cell);
        ++assignment.cell_sizes[cell];
    }
    return assignment;
}

}  // namespace nbmg::multicell
