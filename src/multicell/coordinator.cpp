#include "multicell/coordinator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "faults/spec.hpp"
#include "sim/random.hpp"
#include "telemetry/collector.hpp"

namespace nbmg::multicell {
namespace {

/// Milliseconds the serial feed needs to push one payload image to one
/// cell, rounded up so a positive payload never takes zero time.  The
/// whole feed schedule (cells x delivery) must stay inside the int64
/// clock; absurd budgets fail loudly instead of overflowing.
std::int64_t delivery_ms(std::int64_t payload_bytes, double backhaul_kbps,
                         std::size_t active_cells) {
    const double ms = std::ceil(static_cast<double>(payload_bytes) / 1024.0 /
                                backhaul_kbps * 1000.0);
    const double limit =
        static_cast<double>(std::numeric_limits<std::int64_t>::max()) /
        static_cast<double>(active_cells == 0 ? 1 : active_cells);
    if (!(ms < limit)) {
        throw std::invalid_argument(
            "schedule_run: backhaul delivery schedule overflows the city "
            "clock (budget too small for this payload)");
    }
    return static_cast<std::int64_t>(ms);
}

/// Peak overlap of half-open [start, end) intervals: classic two-pointer
/// sweep over the sorted endpoints; an end releases before a start at the
/// same instant, so back-to-back slots do not count as concurrent.
std::size_t peak_overlap(std::vector<std::int64_t> starts,
                         std::vector<std::int64_t> ends) {
    std::sort(starts.begin(), starts.end());
    std::sort(ends.begin(), ends.end());
    std::size_t active = 0;
    std::size_t peak = 0;
    std::size_t s = 0;
    std::size_t e = 0;
    while (s < starts.size()) {
        if (active > 0 && ends[e] <= starts[s]) {
            --active;
            ++e;
        } else {
            ++active;
            ++s;
            peak = std::max(peak, active);
        }
    }
    return peak;
}

/// Feed chunk size under loss_prob > 0.  64 KiB keeps the retransmission
/// granularity fine enough that a lost tail chunk never re-sends the whole
/// image, while the chunk count stays small (a 100 KiB image is 2 chunks).
constexpr std::int64_t kFeedChunkBytes = 64 * 1024;

/// Overflow-checked accumulation onto the city feed clock.
std::int64_t feed_add(std::int64_t clock, std::int64_t ms) {
    if (ms > std::numeric_limits<std::int64_t>::max() - clock) {
        throw std::invalid_argument(
            "schedule_run: backhaul delivery schedule overflows the city "
            "clock (budget too small for this payload)");
    }
    return clock + ms;
}

}  // namespace

std::optional<StartPolicy> parse_start_policy(std::string_view text) noexcept {
    if (text == "simultaneous") return StartPolicy::simultaneous;
    if (text == "fixed-stagger") return StartPolicy::fixed_stagger;
    if (text == "backhaul") return StartPolicy::backhaul_budgeted;
    return std::nullopt;
}

bool CoordinatorSpec::valid() const noexcept {
    switch (policy) {
        case StartPolicy::simultaneous:
            return stagger_ms == 0 && backhaul_kbps == 0.0 && loss_prob == 0.0;
        case StartPolicy::fixed_stagger:
            return stagger_ms >= 0 && backhaul_kbps == 0.0 && loss_prob == 0.0;
        case StartPolicy::backhaul_budgeted:
            return stagger_ms == 0 && std::isfinite(backhaul_kbps) &&
                   backhaul_kbps > 0.0 && std::isfinite(loss_prob) &&
                   loss_prob >= 0.0 && loss_prob < 1.0;
    }
    return false;
}

RunTimeline schedule_run(const CoordinatorSpec& coordinator,
                         std::span<const CellRunSpan> spans,
                         std::int64_t payload_bytes,
                         telemetry::CampaignSink* sink,
                         std::uint64_t loss_seed) {
    if (!coordinator.valid()) {
        throw std::invalid_argument(
            "schedule_run: invalid coordinator spec (policy-scoped knobs: "
            "stagger_ms needs fixed-stagger, backhaul_kbps > 0 needs backhaul)");
    }

    RunTimeline timeline;
    timeline.cells.resize(spans.size());
    for (std::size_t c = 0; c < spans.size(); ++c) {
        CellSchedule& slot = timeline.cells[c];
        slot.cell = static_cast<std::uint32_t>(c);
        slot.devices = spans[c].devices;
        slot.active = spans[c].devices > 0;
    }

    switch (coordinator.policy) {
        case StartPolicy::simultaneous:
            break;  // every start stays 0
        case StartPolicy::fixed_stagger:
            // Topology order: cell c's campaign begins c * stagger_ms after
            // the rollout starts, whether or not earlier cells are active —
            // the operator staggers sites, not load.
            if (!spans.empty() && coordinator.stagger_ms > 0 &&
                static_cast<std::uint64_t>(spans.size() - 1) >
                    static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max() /
                        coordinator.stagger_ms)) {
                throw std::invalid_argument(
                    "schedule_run: stagger schedule overflows the city clock "
                    "(stagger_ms x cells too large)");
            }
            for (std::size_t c = 0; c < spans.size(); ++c) {
                timeline.cells[c].start_ms =
                    static_cast<std::int64_t>(c) * coordinator.stagger_ms;
            }
            break;
        case StartPolicy::backhaul_budgeted: {
            // Deterministic admission priority: most camped devices first
            // (heaviest cells get their image earliest), ties by ascending
            // cell id.  Only active cells consume feed time.
            std::vector<std::size_t> order;
            order.reserve(spans.size());
            for (std::size_t c = 0; c < spans.size(); ++c) {
                if (timeline.cells[c].active) order.push_back(c);
            }
            std::sort(order.begin(), order.end(),
                      [&](std::size_t a, std::size_t b) {
                          if (spans[a].devices != spans[b].devices) {
                              return spans[a].devices > spans[b].devices;
                          }
                          return a < b;
                      });
            if (coordinator.loss_prob == 0.0) {
                // Lossless whole-image feed: the original serial schedule,
                // bit-identical to pre-fault-injection versions.
                const std::int64_t per_cell = delivery_ms(
                    payload_bytes, coordinator.backhaul_kbps, order.size());
                std::int64_t feed_clock = 0;
                for (const std::size_t c : order) {
                    // The image occupies [feed_clock, feed_clock + per_cell)
                    // on the feed; the cell starts when delivery completes.
                    NBMG_TELEMETRY_EMIT(
                        sink, telemetry::EventKind::backhaul_chunk, feed_clock,
                        static_cast<std::uint32_t>(c), per_cell,
                        static_cast<std::int64_t>(spans[c].devices));
                    feed_clock += per_cell;
                    timeline.cells[c].start_ms = feed_clock;
                }
                timeline.backhaul_busy_ms = feed_clock;
                break;
            }
            // Lossy pipelined feed: the image streams in 64 KiB chunks, each
            // chunk retransmitted until it lands (per-chunk Bernoulli loss
            // from the dedicated fault stream), and the cell's campaign
            // starts as soon as the FIRST chunk lands — paging rolls while
            // the image tail is still on the wire.  The feed itself stays
            // serial: all of cell A's chunks (including retransmissions)
            // precede cell B's.
            sim::RandomStream loss_rng{loss_seed};
            const std::int64_t chunks =
                payload_bytes > 0
                    ? (payload_bytes + kFeedChunkBytes - 1) / kFeedChunkBytes
                    : 0;
            std::int64_t feed_clock = 0;
            for (const std::size_t c : order) {
                const std::int64_t cell_feed_start = feed_clock;
                std::int64_t redelivered = 0;
                for (std::int64_t k = 0; k < chunks; ++k) {
                    const std::int64_t bytes = std::min<std::int64_t>(
                        kFeedChunkBytes, payload_bytes - k * kFeedChunkBytes);
                    const std::int64_t base =
                        delivery_ms(bytes, coordinator.backhaul_kbps, 1);
                    // Draw per-attempt losses until the chunk lands; every
                    // failed attempt re-occupies the feed and re-sends the
                    // chunk's bytes.
                    while (loss_rng.bernoulli(coordinator.loss_prob)) {
                        feed_clock = feed_add(feed_clock, base);
                        redelivered += bytes;
                    }
                    feed_clock = feed_add(feed_clock, base);
                    if (k == 0) timeline.cells[c].start_ms = feed_clock;
                }
                if (chunks == 0) timeline.cells[c].start_ms = feed_clock;
                NBMG_TELEMETRY_EMIT(
                    sink, telemetry::EventKind::backhaul_chunk, cell_feed_start,
                    static_cast<std::uint32_t>(c), feed_clock - cell_feed_start,
                    static_cast<std::int64_t>(spans[c].devices));
                if (redelivered > 0) {
                    NBMG_TELEMETRY_EMIT(
                        sink, telemetry::EventKind::redelivery, cell_feed_start,
                        static_cast<std::uint32_t>(c), redelivered,
                        std::int64_t{2});
                }
                timeline.redelivered_bytes += redelivered;
            }
            timeline.backhaul_busy_ms = feed_clock;
            break;
        }
    }

    std::vector<std::int64_t> starts;
    std::vector<std::int64_t> ends;
    std::int64_t first_start = 0;
    std::int64_t last_start = 0;
    bool any_active = false;
    for (CellSchedule& slot : timeline.cells) {
        if (!slot.active) {
            slot.start_ms = 0;  // inactive cells hold no slot on the clock
            slot.end_ms = 0;
            continue;
        }
        if (spans[slot.cell].horizon_ms >
            std::numeric_limits<std::int64_t>::max() - slot.start_ms) {
            throw std::invalid_argument(
                "schedule_run: a cell's campaign end overflows the city clock "
                "(start offset + horizon too large)");
        }
        slot.end_ms = slot.start_ms + spans[slot.cell].horizon_ms;
        timeline.completion_ms = std::max(timeline.completion_ms, slot.end_ms);
        first_start = any_active ? std::min(first_start, slot.start_ms)
                                 : slot.start_ms;
        last_start = any_active ? std::max(last_start, slot.start_ms)
                                : slot.start_ms;
        any_active = true;
        starts.push_back(slot.start_ms);
        ends.push_back(slot.end_ms);
    }
    timeline.start_spread_ms = any_active ? last_start - first_start : 0;
    timeline.peak_concurrent_cells = peak_overlap(std::move(starts), std::move(ends));
    timeline.backhaul_utilization =
        timeline.completion_ms > 0
            ? static_cast<double>(timeline.backhaul_busy_ms) /
                  static_cast<double>(timeline.completion_ms)
            : 0.0;
    return timeline;
}

CoordinationAggregates coordinate_deployment(const DeploymentResult& deployment,
                                             const CoordinatorSpec& coordinator,
                                             std::int64_t payload_bytes,
                                             telemetry::Collector* telemetry,
                                             std::uint64_t base_seed) {
    const std::size_t cells = deployment.cell_count();
    if (cells == 0 || deployment.spans.empty() ||
        deployment.spans.size() % cells != 0) {
        throw std::invalid_argument(
            "coordinate_deployment: deployment result carries no per-cell "
            "spans (cells x runs grid mismatch)");
    }
    const std::size_t runs = deployment.spans.size() / cells;

    CoordinationAggregates aggregates;
    aggregates.coordinator = coordinator;
    aggregates.timelines.reserve(runs);
    for (std::size_t run = 0; run < runs; ++run) {
        RunTimeline timeline = schedule_run(
            coordinator,
            std::span<const CellRunSpan>(deployment.spans.data() + run * cells,
                                         cells),
            payload_bytes,
            telemetry != nullptr ? telemetry->city_sink(run) : nullptr,
            sim::derive_seed(base_seed, faults::kFaultStreamLabel, run));
        aggregates.completion_ms.add(static_cast<double>(timeline.completion_ms));
        aggregates.peak_concurrent_cells.add(
            static_cast<double>(timeline.peak_concurrent_cells));
        aggregates.start_spread_ms.add(
            static_cast<double>(timeline.start_spread_ms));
        aggregates.backhaul_busy_ms.add(
            static_cast<double>(timeline.backhaul_busy_ms));
        aggregates.backhaul_utilization.add(timeline.backhaul_utilization);
        aggregates.redelivered_bytes.add(
            static_cast<double>(timeline.redelivered_bytes));
        aggregates.timelines.push_back(std::move(timeline));
    }
    return aggregates;
}

CoordinatedResult run_coordinated(const DeploymentSetup& setup,
                                  const CoordinatorSpec& coordinator) {
    if (!coordinator.valid()) {
        throw std::invalid_argument(
            "run_coordinated: invalid coordinator spec (policy-scoped knobs: "
            "stagger_ms needs fixed-stagger, backhaul_kbps > 0 needs backhaul)");
    }
    CoordinatedResult result;
    result.deployment = run_deployment(setup);
    result.coordination = coordinate_deployment(result.deployment, coordinator,
                                                setup.payload_bytes,
                                                setup.telemetry,
                                                setup.base_seed);
    return result;
}

}  // namespace nbmg::multicell
