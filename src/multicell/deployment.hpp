// City-scale deployment driver: shards one firmware campaign's fleet
// across N independent cells and fans the per-cell plan+campaign event
// loops over the sweep worker pool.
//
// Per run, the fleet population is generated once (the same
// "population"-stream derivation run_comparison uses), assigned to cells by
// a deterministic policy, and every cell plans (DR-SC/DA-SC/DR-SI over its
// own camped devices) and executes its campaign as an independent event
// loop.  Per-cell results are merged in (run, cell) order into fleet-wide
// and per-cell aggregates, so every number is bit-identical for any
// --threads.
//
// Determinism contract: a 1-cell deployment reproduces the single-cell
// run_comparison aggregates bit for bit — the cell's RNG root degenerates
// to the base seed, the whole fleet camps on cell 0 under every policy, and
// the fleet-wide reduction applies run_comparison's formulas to the same
// campaign results (tests/multicell/deployment_test.cpp pins this).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/experiment.hpp"
#include "faults/spec.hpp"
#include "multicell/assignment.hpp"
#include "multicell/topology.hpp"
#include "stats/histogram.hpp"

namespace nbmg::multicell {

/// Engine-level setup of the multicell deployment.  Deprecated as a front
/// door: new callers should describe the workload declaratively with
/// scenario::ScenarioSpec (topology engaged) and call
/// scenario::run_scenario, which converts through
/// scenario::to_deployment_setup (the only adapter) and reaches
/// run_deployment with bit-identical aggregates.  Kept because it is the
/// struct the engine itself consumes and out-of-tree callers may hold.
struct DeploymentSetup {
    traffic::PopulationProfile profile;
    /// Fleet-wide device count, before sharding.
    std::size_t device_count = 500;
    std::int64_t payload_bytes = 100 * 1024;
    core::CampaignConfig config{};
    std::size_t runs = 20;
    std::uint64_t base_seed = 42;
    /// Worker threads for the runs x cells fan-out; 0 = one per hardware
    /// thread.  Results do not depend on this value.
    std::size_t threads = 0;
    std::vector<core::MechanismKind> mechanisms{
        core::MechanismKind::dr_sc, core::MechanismKind::da_sc,
        core::MechanismKind::dr_si};
    CellTopology topology = CellTopology::uniform(1);
    AssignmentPolicy assignment = AssignmentPolicy::uniform_hash;
    /// Failure injection: this cell goes dark at the given simulated time
    /// in every run.  Its campaigns stop cold at that instant; devices
    /// still incomplete are stranded and — when surviving cells exist —
    /// deterministically re-assigned to them through the assignment
    /// machinery, each receiving an analytic serialized unicast
    /// re-delivery (counted in redelivery_bytes and the completion tail).
    std::optional<faults::OutageSpec> cell_down;
    /// Optional precomputed fleet populations (see
    /// generate_comparison_populations); reused across every cell and — by
    /// sharing the handle — across cell-count sweep points.  Must match
    /// (profile, device_count, base_seed) and cover `runs`; class_affinity
    /// additionally needs its class_indices.
    core::SharedPopulations populations;
    /// Optional telemetry collector (telemetry/collector.hpp); not owned,
    /// null = telemetry disabled.  Must be sized for at least `runs` runs,
    /// topology.cell_count() cells and mechanisms.size() + 1 campaigns
    /// (slot 0 = unicast).  Every (run, cell, campaign) writes its own
    /// pre-allocated sink, so attaching a collector changes no aggregate
    /// and no RNG draw.
    telemetry::Collector* telemetry = nullptr;
    /// Optional checkpoint context (snapshot/checkpoint.hpp); not owned,
    /// null = checkpointing disabled.  Grid slots (run * cells + cell)
    /// listed as completed in the context restore from their snapshot
    /// blobs — including the telemetry sinks they filled — instead of
    /// re-executing; fresh slots are recorded back.  Attaching a context
    /// changes no aggregate and no RNG draw.
    snapshot::CheckpointContext* checkpoint = nullptr;
};

/// Fleet- or cell-level aggregates of one mechanism, plus deployment-only
/// extensions the single-cell MechanismStats does not track.
struct DeploymentMechanismStats {
    /// Same per-run sample definitions as run_comparison (ratios against
    /// the same-scope unicast reference).
    core::MechanismStats stats;
    /// Absolute bytes on the air interface per run (fleet/cell total).
    stats::Summary bytes_on_air;
    /// RACH collision fraction samples, one per (run, cell) with attempts.
    stats::Summary rach_collision_rate;
};

/// Per-cell aggregates across runs.
struct CellAggregates {
    std::uint32_t cell = 0;
    /// Devices camped on this cell, one sample per run.
    stats::Summary devices;
    DeploymentMechanismStats unicast;
    std::vector<DeploymentMechanismStats> mechanisms;  // setup.mechanisms order
};

/// Timing footprint of one (run, cell) campaign on the city wall-clock:
/// how many devices camped there and how long the cell's event loop spans
/// in simulated time.  The multicell coordinator (multicell/coordinator.hpp)
/// schedules these spans onto a shared clock; run_deployment itself never
/// reads them back, so recording them cannot perturb the aggregates.
struct CellRunSpan {
    std::size_t devices = 0;
    /// Observation horizon of this cell's campaign in simulated ms (shared
    /// by every mechanism of the run, see recommended_horizon); 0 for an
    /// empty cell, which executes nothing.
    std::int64_t horizon_ms = 0;
};

struct DeploymentResult {
    /// Fleet-wide aggregates: per run, cell totals are summed in cell order
    /// and run through run_comparison's ratio formulas.
    DeploymentMechanismStats unicast;
    std::vector<DeploymentMechanismStats> mechanisms;  // setup.mechanisms order
    std::vector<CellAggregates> cells;                 // topology order
    /// Devices per (run, cell): the realized load distribution.
    stats::Summary cell_load;
    /// RACH collision fraction across every (run, cell, campaign) with
    /// attempts — quantile() gives the contention percentiles across cells.
    stats::Histogram rach_collision_across_cells{0.0, 1.0, 64};
    /// (run, cell) pairs that received no devices (skipped, no campaign).
    std::size_t empty_cell_runs = 0;
    /// Per-(run, cell) campaign spans, indexed run * cell_count + cell —
    /// the raw material of cross-cell wall-clock coordination.
    std::vector<CellRunSpan> spans;

    [[nodiscard]] std::size_t cell_count() const noexcept { return cells.size(); }
    [[nodiscard]] const CellRunSpan& span(std::size_t run, std::size_t cell) const {
        return spans.at(run * cells.size() + cell);
    }
};

/// Runs the deployment: `runs` campaigns of the full fleet, each sharded
/// over `setup.topology` by `setup.assignment`, all (run, cell) event loops
/// fanned across the worker pool.  Throws std::invalid_argument on an
/// empty/invalid setup or mismatched shared populations.
[[nodiscard]] DeploymentResult run_deployment(const DeploymentSetup& setup);

/// The RNG root of one cell: the base seed itself for a 1-cell deployment
/// (the single-cell determinism contract above), an independent derived
/// root per cell otherwise.
[[nodiscard]] std::uint64_t cell_seed_root(std::uint64_t base_seed,
                                           std::size_t cell_count,
                                           std::uint32_t cell) noexcept;

}  // namespace nbmg::multicell
