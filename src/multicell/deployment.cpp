#include "multicell/deployment.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/planners.hpp"
#include "core/report.hpp"
#include "core/sweep.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/codec.hpp"
#include "telemetry/collector.hpp"

namespace nbmg::multicell {
namespace {

/// Raw totals of one executed campaign on one cell in one run.  Cell
/// totals are summed (in cell order) into fleet totals before any ratio is
/// formed, so fleet aggregates are genuine fleet-level numbers rather than
/// means of per-cell ratios — and with one cell they reduce to exactly the
/// values run_comparison computes.
struct CellRunTotals {
    std::size_t devices = 0;
    std::size_t transmissions = 0;
    std::size_t recovery_transmissions = 0;
    std::size_t unreceived = 0;
    double light_sleep_ms = 0.0;
    double connected_ms = 0.0;
    std::int64_t bytes_on_air = 0;
    std::uint64_t rach_attempts = 0;
    std::uint64_t rach_collisions = 0;
    std::size_t stranded = 0;
    std::int64_t redelivery_bytes = 0;
    double completion_p99_ms = 0.0;

    void accumulate(const CellRunTotals& other) noexcept {
        devices += other.devices;
        transmissions += other.transmissions;
        recovery_transmissions += other.recovery_transmissions;
        unreceived += other.unreceived;
        light_sleep_ms += other.light_sleep_ms;
        connected_ms += other.connected_ms;
        bytes_on_air += other.bytes_on_air;
        rach_attempts += other.rach_attempts;
        rach_collisions += other.rach_collisions;
        stranded += other.stranded;
        redelivery_bytes += other.redelivery_bytes;
        // Cells run independent campaigns on a shared wall clock, so the
        // fleet's completion tail is bounded by the slowest cell's tail —
        // a max, not a sum.
        completion_p99_ms = std::max(completion_p99_ms, other.completion_p99_ms);
    }
};

CellRunTotals totals_from(const core::CampaignResult& result) {
    CellRunTotals t;
    t.devices = result.devices.size();
    t.transmissions = result.total_transmissions();
    t.recovery_transmissions = result.recovery_transmissions;
    t.unreceived = result.devices.size() - result.received_count();
    t.light_sleep_ms = core::total_light_sleep_ms(result);
    t.connected_ms = core::total_connected_ms(result);
    t.bytes_on_air = result.bytes_on_air;
    t.rach_attempts = result.rach_attempts;
    t.rach_collisions = result.rach_collisions;
    t.stranded = result.stranded;
    t.redelivery_bytes = result.redelivery_bytes;
    t.completion_p99_ms = core::completion_p99_ms(result);
    return t;
}

/// Nearest-rank p99 over completion instants (the same rank rule as
/// core::completion_p99_ms, reused on the recovery-adjusted list).
double p99_of(std::vector<std::int64_t>& completion) {
    if (completion.empty()) return 0.0;
    const std::size_t rank = (completion.size() * 99 + 99) / 100;
    const std::size_t index = std::min(rank, completion.size()) - 1;
    std::nth_element(completion.begin(),
                     completion.begin() + static_cast<std::ptrdiff_t>(index),
                     completion.end());
    return static_cast<double>(completion[index]);
}

/// Self-healing pass of the down cell: every device its stopped campaign
/// left without the payload is deterministically re-assigned to a
/// surviving cell (the existing assignment machinery over the reduced
/// topology; class_affinity re-hashes uniformly because the fleet's class
/// indices do not survive the shard) and served by an analytic serialized
/// unicast re-delivery there — one re-attach exchange plus the payload
/// airtime per adopted device, queued per neighbor from the outage
/// instant.  Adjusts the totals in place: re-delivered devices stop
/// counting as unreceived, their bytes and completion instants join the
/// tallies, and `stranded` keeps the outage's raw hit count.
void apply_outage_recovery(CellRunTotals& t, const DeploymentSetup& setup,
                           const core::CampaignConfig& config,
                           const core::CampaignResult& result,
                           telemetry::CampaignSink* sink) {
    std::vector<nbiot::UeSpec> stranded_specs;
    for (const core::DeviceOutcome& d : result.devices) {
        if (!d.received) stranded_specs.push_back(d.spec);
    }
    if (stranded_specs.empty()) return;

    CellTopology survivors;
    for (const CellSite& site : setup.topology.cells) {
        if (site.id == setup.cell_down->cell) continue;
        CellSite s = site;
        s.id = static_cast<std::uint32_t>(survivors.cells.size());
        survivors.cells.push_back(s);
    }
    if (survivors.cells.empty()) return;  // nobody left to heal into

    const AssignmentPolicy policy =
        setup.assignment == AssignmentPolicy::class_affinity
            ? AssignmentPolicy::uniform_hash
            : setup.assignment;
    const DeviceAssignment assignment =
        assign_devices(survivors, stranded_specs, {}, policy, setup.base_seed);

    std::vector<std::int64_t> completion;
    completion.reserve(result.devices.size());
    for (const core::DeviceOutcome& d : result.devices) {
        if (d.received && d.released_at) completion.push_back(d.released_at->count());
    }

    const nbiot::RadioModel radio(config.radio);
    const std::int64_t reattach_ms = config.rach.attempt_active_time().count() +
                                     config.timing.rrc_setup.count() +
                                     config.timing.rrc_release.count();
    const std::int64_t reattach_bytes = config.sizes.rach_exchange +
                                        config.sizes.rrc_setup_exchange +
                                        config.sizes.rrc_release;
    std::vector<std::int64_t> feed_clock(survivors.cells.size(),
                                         setup.cell_down->at_ms);
    for (std::size_t i = 0; i < stranded_specs.size(); ++i) {
        const std::uint32_t target = assignment.cell_of_device[i];
        feed_clock[target] +=
            reattach_ms +
            radio.downlink_airtime(result.payload_bytes, stranded_specs[i].ce_level)
                .count();
        completion.push_back(feed_clock[target]);
        t.redelivery_bytes += result.payload_bytes;
        t.bytes_on_air += result.payload_bytes + reattach_bytes;
        NBMG_TELEMETRY_EMIT(sink, telemetry::EventKind::redelivery,
                            feed_clock[target], stranded_specs[i].device.value,
                            result.payload_bytes, 1);
    }
    t.unreceived -= stranded_specs.size();
    t.completion_p99_ms = p99_of(completion);
}

/// One (run, cell) contribution: the unicast reference plus every
/// requested mechanism, executed on this cell's camped devices only.
struct CellRunOutcome {
    std::size_t devices = 0;  // 0 = empty cell, nothing executed
    std::int64_t horizon_ms = 0;
    CellRunTotals unicast;
    std::vector<CellRunTotals> mechanisms;
};

CellRunOutcome run_cell(const DeploymentSetup& setup,
                        std::span<const nbiot::UeSpec> specs,
                        const core::CampaignConfig& config,
                        std::uint64_t cell_root, std::size_t run,
                        std::size_t cell) {
    CellRunOutcome out;
    out.devices = specs.size();
    out.mechanisms.resize(setup.mechanisms.size());
    if (specs.empty()) return out;

    // Telemetry: each (run, cell, campaign) writes its own pre-allocated
    // collector slot; the pointer is the only config field that differs.
    const auto campaign_config = [&](std::size_t campaign_slot) {
        core::CampaignConfig cfg = config;
        if (setup.telemetry != nullptr) {
            cfg.telemetry = setup.telemetry->sink(run, cell, campaign_slot);
        }
        return cfg;
    };

    // Identical structure (and, for one cell, identical streams) to
    // run_comparison's per-run body: one horizon and one execution seed
    // shared by every mechanism of this cell's run.
    const sim::RngFactory rng_factory(cell_root);
    const core::UnicastBaseline unicast;
    const nbiot::SimTime horizon =
        core::recommended_horizon(specs, config, setup.payload_bytes);
    out.horizon_ms = horizon.count();
    const std::uint64_t run_seed = sim::derive_seed(cell_root, "run", run);

    // The down cell's campaigns stop at the outage and hand their
    // incomplete devices to the surviving cells.
    const bool outage_here =
        setup.cell_down && config.outage_at_ms >= 1 &&
        setup.cell_down->cell == cell && setup.cell_down->at_ms < out.horizon_ms;

    sim::RandomStream unicast_rng = rng_factory.stream("plan-unicast", run);
    const core::CampaignConfig unicast_config = campaign_config(0);
    const core::MulticastPlan unicast_plan =
        unicast.plan(specs, unicast_config, unicast_rng);
    {
        const core::CampaignResult result =
            core::CampaignRunner(unicast_config)
                .run(unicast_plan, specs, setup.payload_bytes, horizon, run_seed);
        out.unicast = totals_from(result);
        if (outage_here) {
            apply_outage_recovery(out.unicast, setup, unicast_config, result,
                                  unicast_config.telemetry);
        }
    }

    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        const auto mechanism = core::make_mechanism(setup.mechanisms[m]);
        sim::RandomStream plan_rng = rng_factory.stream(mechanism->name(), run);
        const core::CampaignConfig mech_config = campaign_config(m + 1);
        const core::MulticastPlan plan = mechanism->plan(specs, mech_config, plan_rng);
        const core::CampaignResult result =
            core::CampaignRunner(mech_config)
                .run(plan, specs, setup.payload_bytes, horizon, run_seed);
        out.mechanisms[m] = totals_from(result);
        if (outage_here) {
            apply_outage_recovery(out.mechanisms[m], setup, mech_config, result,
                                  mech_config.telemetry);
        }
    }
    return out;
}

void put_totals(snapshot::Writer& w, const CellRunTotals& t) {
    w.put_u64(t.devices);
    w.put_u64(t.transmissions);
    w.put_u64(t.recovery_transmissions);
    w.put_u64(t.unreceived);
    w.put_f64(t.light_sleep_ms);
    w.put_f64(t.connected_ms);
    w.put_i64(t.bytes_on_air);
    w.put_u64(t.rach_attempts);
    w.put_u64(t.rach_collisions);
    w.put_u64(t.stranded);
    w.put_i64(t.redelivery_bytes);
    w.put_f64(t.completion_p99_ms);
}

CellRunTotals take_totals(snapshot::Reader& r) {
    CellRunTotals t;
    t.devices = r.take_u64();
    t.transmissions = r.take_u64();
    t.recovery_transmissions = r.take_u64();
    t.unreceived = r.take_u64();
    t.light_sleep_ms = r.take_f64();
    t.connected_ms = r.take_f64();
    t.bytes_on_air = r.take_i64();
    t.rach_attempts = r.take_u64();
    t.rach_collisions = r.take_u64();
    t.stranded = r.take_u64();
    t.redelivery_bytes = r.take_i64();
    t.completion_p99_ms = r.take_f64();
    return t;
}

/// Checkpoint slot blob of one (run, cell) task: the raw campaign totals
/// plus — when a collector is attached — the sinks this task filled.
std::vector<std::uint8_t> encode_cell_outcome(const DeploymentSetup& setup,
                                              std::size_t run, std::size_t cell,
                                              const CellRunOutcome& out) {
    snapshot::Writer w;
    w.put_u64(out.devices);
    w.put_i64(out.horizon_ms);
    put_totals(w, out.unicast);
    w.put_u64(out.mechanisms.size());
    for (const CellRunTotals& m : out.mechanisms) put_totals(w, m);
    w.put_u8(setup.telemetry != nullptr ? 1 : 0);
    if (setup.telemetry != nullptr) {
        for (std::size_t c = 0; c < setup.mechanisms.size() + 1; ++c) {
            snapshot::put_sink(w, *setup.telemetry->sink(run, cell, c));
        }
    }
    return w.take();
}

/// Inverse of encode_cell_outcome; also restores the task's collector
/// sinks.  Runs inside the sweep worker that owns this grid slot, so the
/// sink writes stay single-writer.
CellRunOutcome decode_cell_outcome(const DeploymentSetup& setup, std::size_t run,
                                   std::size_t cell,
                                   const std::vector<std::uint8_t>& blob) {
    const std::string label = "checkpoint slot (run " + std::to_string(run) +
                              ", cell " + std::to_string(cell) + ")";
    snapshot::Reader r(blob, label);
    CellRunOutcome out;
    out.devices = r.take_u64();
    out.horizon_ms = r.take_i64();
    out.unicast = take_totals(r);
    const std::uint64_t mechanism_count = r.take_u64();
    if (mechanism_count != setup.mechanisms.size()) {
        throw snapshot::SnapshotError(
            label + ": " + std::to_string(mechanism_count) +
            " mechanisms in snapshot, setup has " +
            std::to_string(setup.mechanisms.size()));
    }
    out.mechanisms.reserve(setup.mechanisms.size());
    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        out.mechanisms.push_back(take_totals(r));
    }
    const bool had_telemetry = r.take_u8() != 0;
    if (had_telemetry != (setup.telemetry != nullptr)) {
        throw snapshot::SnapshotError(
            label + ": telemetry attachment differs from the checkpointed run");
    }
    if (setup.telemetry != nullptr) {
        for (std::size_t c = 0; c < setup.mechanisms.size() + 1; ++c) {
            snapshot::restore_sink(r, *setup.telemetry->sink(run, cell, c));
        }
    }
    r.expect_end();
    return out;
}

/// The unicast reference's per-run samples, exactly as comparison_run adds
/// them (no relative-increase samples for the reference itself).
void add_unicast_samples(DeploymentMechanismStats& out, const CellRunTotals& u) {
    const double n = static_cast<double>(u.devices);
    core::MechanismStats& s = out.stats;
    s.transmissions.add(static_cast<double>(u.transmissions));
    s.transmissions_per_device.add(static_cast<double>(u.transmissions) / n);
    s.bytes_ratio.add(1.0);
    s.recovery_transmissions.add(static_cast<double>(u.recovery_transmissions));
    s.unreceived_devices.add(static_cast<double>(u.unreceived));
    s.mean_connected_seconds.add(u.connected_ms / n / 1000.0);
    s.mean_light_sleep_seconds.add(u.light_sleep_ms / n / 1000.0);
    s.completion_p99_ms.add(u.completion_p99_ms);
    s.redelivery_bytes.add(static_cast<double>(u.redelivery_bytes));
    s.stranded_devices.add(static_cast<double>(u.stranded));
    out.bytes_on_air.add(static_cast<double>(u.bytes_on_air));
}

/// A mechanism's per-run samples against the same-scope unicast reference,
/// with run_comparison's formulas (relative_uptime / bandwidth_comparison
/// applied to the summed totals, including their zero-baseline guards).
void add_mechanism_samples(DeploymentMechanismStats& out, const CellRunTotals& m,
                           const CellRunTotals& u) {
    const double n = static_cast<double>(m.devices);
    core::MechanismStats& s = out.stats;
    s.light_sleep_increase.add(
        u.light_sleep_ms > 0.0 ? m.light_sleep_ms / u.light_sleep_ms - 1.0 : 0.0);
    s.connected_increase.add(
        u.connected_ms > 0.0 ? m.connected_ms / u.connected_ms - 1.0 : 0.0);
    s.transmissions.add(static_cast<double>(m.transmissions));
    s.transmissions_per_device.add(static_cast<double>(m.transmissions) / n);
    s.bytes_ratio.add(u.bytes_on_air > 0
                          ? static_cast<double>(m.bytes_on_air) /
                                static_cast<double>(u.bytes_on_air)
                          : 0.0);
    s.recovery_transmissions.add(static_cast<double>(m.recovery_transmissions));
    s.unreceived_devices.add(static_cast<double>(m.unreceived));
    s.mean_connected_seconds.add(m.connected_ms / n / 1000.0);
    s.mean_light_sleep_seconds.add(m.light_sleep_ms / n / 1000.0);
    s.completion_p99_ms.add(m.completion_p99_ms);
    s.redelivery_bytes.add(static_cast<double>(m.redelivery_bytes));
    s.stranded_devices.add(static_cast<double>(m.stranded));
    out.bytes_on_air.add(static_cast<double>(m.bytes_on_air));
}

void add_rach_sample(DeploymentMechanismStats& fleet, DeploymentMechanismStats& cell,
                     stats::Histogram& across_cells, const CellRunTotals& t) {
    if (t.rach_attempts == 0) return;
    const double rate = static_cast<double>(t.rach_collisions) /
                        static_cast<double>(t.rach_attempts);
    fleet.rach_collision_rate.add(rate);
    cell.rach_collision_rate.add(rate);
    across_cells.add(rate);
}

/// Merges a per-run contribution, field-wise, exactly as run_comparison
/// merges its per-run single-sample summaries (the merge path rounds
/// differently from adding samples directly; bit-identity with the
/// single-cell driver requires reproducing it).
void merge_contribution(DeploymentMechanismStats& into,
                        const DeploymentMechanismStats& contrib) {
    into.stats.merge(contrib.stats);
    into.bytes_on_air.merge(contrib.bytes_on_air);
    into.rach_collision_rate.merge(contrib.rach_collision_rate);
}

}  // namespace

std::uint64_t cell_seed_root(std::uint64_t base_seed, std::size_t cell_count,
                             std::uint32_t cell) noexcept {
    return cell_count == 1 ? base_seed : sim::derive_seed(base_seed, "cell", cell);
}

DeploymentResult run_deployment(const DeploymentSetup& setup) {
    if (setup.runs == 0 || setup.device_count == 0) {
        throw std::invalid_argument("run_deployment: empty setup");
    }
    if (!setup.topology.valid()) {
        throw std::invalid_argument("run_deployment: invalid topology");
    }

    core::SharedPopulations populations = setup.populations;
    if (populations) {
        if (populations->base_seed != setup.base_seed ||
            populations->device_count != setup.device_count ||
            populations->profile_name != setup.profile.name) {
            throw std::invalid_argument(
                "run_deployment: shared populations were generated for a "
                "different (profile, device_count, base_seed)");
        }
        if (populations->runs.size() < setup.runs) {
            throw std::invalid_argument(
                "run_deployment: shared populations cover fewer runs than "
                "setup.runs");
        }
        if (setup.assignment == AssignmentPolicy::class_affinity &&
            populations->class_indices.size() < setup.runs) {
            throw std::invalid_argument(
                "run_deployment: class_affinity needs shared populations with "
                "class indices");
        }
    } else {
        populations = core::generate_comparison_populations(
            setup.profile, setup.device_count, setup.runs, setup.base_seed);
    }

    const std::size_t cells = setup.topology.cell_count();

    // Per-cell campaign configs (paging-capacity overrides).
    std::vector<core::CampaignConfig> cell_configs(cells, setup.config);
    for (std::size_t c = 0; c < cells; ++c) {
        const int override_records = setup.topology.cells[c].max_page_records_override;
        if (override_records > 0) {
            cell_configs[c].paging.max_page_records = override_records;
        }
    }
    if (setup.cell_down) {
        if (!setup.cell_down->valid() || setup.cell_down->cell >= cells) {
            throw std::invalid_argument(
                "run_deployment: faults.cell_down names cell " +
                std::to_string(setup.cell_down->cell) + " of " +
                std::to_string(cells) + " (or a non-positive outage time)");
        }
        cell_configs[setup.cell_down->cell].outage_at_ms = setup.cell_down->at_ms;
    }

    // Phase 1 — shard every run's fleet into per-cell spec slices (local
    // dense device ids, fleet order preserved within a cell).  Assignment
    // hashes IMSIs against the base seed, so the map is independent of the
    // thread count.
    struct RunShards {
        std::vector<std::vector<nbiot::UeSpec>> cell_specs;
    };
    const std::vector<RunShards> shards = core::sweep_indexed(
        setup.runs, setup.threads, [&](std::size_t run) {
            RunShards out;
            out.cell_specs.resize(cells);
            const std::vector<nbiot::UeSpec>& fleet = populations->runs[run];
            std::span<const std::uint32_t> classes;
            if (setup.assignment == AssignmentPolicy::class_affinity) {
                classes = populations->class_indices[run];
            }
            const DeviceAssignment assignment = assign_devices(
                setup.topology, fleet, classes, setup.assignment, setup.base_seed);
            for (std::size_t c = 0; c < cells; ++c) {
                out.cell_specs[c].reserve(assignment.cell_sizes[c]);
            }
            for (std::size_t d = 0; d < fleet.size(); ++d) {
                std::vector<nbiot::UeSpec>& bucket =
                    out.cell_specs[assignment.cell_of_device[d]];
                nbiot::UeSpec spec = fleet[d];
                spec.device =
                    nbiot::DeviceId{static_cast<std::uint32_t>(bucket.size())};
                bucket.push_back(spec);
            }
            return out;
        });

    // Phase 2 — every (run, cell) campaign is an independent event loop;
    // fan the whole grid across the pool.
    const std::vector<CellRunOutcome> outcomes = core::sweep_indexed(
        setup.runs * cells, setup.threads, [&](std::size_t slot) {
            const std::size_t run = slot / cells;
            const std::size_t cell = slot % cells;
            snapshot::CheckpointContext* const checkpoint = setup.checkpoint;
            if (checkpoint != nullptr) {
                if (const std::vector<std::uint8_t>* blob =
                        checkpoint->restored(slot)) {
                    return decode_cell_outcome(setup, run, cell, *blob);
                }
                // Once the stop budget fired, remaining slots return a
                // dummy: the pending CheckpointStop unwinds the sweep
                // before any outcome is reduced.
                if (checkpoint->stopping()) return CellRunOutcome{};
            }
            CellRunOutcome out = run_cell(
                setup, shards[run].cell_specs[cell], cell_configs[cell],
                cell_seed_root(setup.base_seed, cells,
                               static_cast<std::uint32_t>(cell)),
                run, cell);
            if (checkpoint != nullptr) {
                checkpoint->complete_slot(
                    slot, encode_cell_outcome(setup, run, cell, out),
                    out.horizon_ms);
            }
            return out;
        });

    // Phase 3 — reduce in (run, cell) order on this thread.
    DeploymentResult result;
    result.unicast.stats.kind = core::MechanismKind::unicast;
    result.mechanisms.resize(setup.mechanisms.size());
    result.cells.resize(cells);
    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        result.mechanisms[m].stats.kind = setup.mechanisms[m];
    }
    for (std::size_t c = 0; c < cells; ++c) {
        CellAggregates& agg = result.cells[c];
        agg.cell = static_cast<std::uint32_t>(c);
        agg.unicast.stats.kind = core::MechanismKind::unicast;
        agg.mechanisms.resize(setup.mechanisms.size());
        for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
            agg.mechanisms[m].stats.kind = setup.mechanisms[m];
        }
    }

    result.spans.reserve(outcomes.size());
    for (const CellRunOutcome& outcome : outcomes) {
        result.spans.push_back(CellRunSpan{outcome.devices, outcome.horizon_ms});
    }

    std::vector<CellRunTotals> fleet_mechanisms(setup.mechanisms.size());
    for (std::size_t run = 0; run < setup.runs; ++run) {
        CellRunTotals fleet_unicast{};
        fleet_mechanisms.assign(setup.mechanisms.size(), CellRunTotals{});

        for (std::size_t c = 0; c < cells; ++c) {
            const CellRunOutcome& outcome = outcomes[run * cells + c];
            CellAggregates& agg = result.cells[c];
            result.cell_load.add(static_cast<double>(outcome.devices));
            agg.devices.add(static_cast<double>(outcome.devices));
            if (outcome.devices == 0) {
                ++result.empty_cell_runs;
                continue;
            }

            fleet_unicast.accumulate(outcome.unicast);
            DeploymentMechanismStats cell_contrib;
            add_unicast_samples(cell_contrib, outcome.unicast);
            merge_contribution(agg.unicast, cell_contrib);
            add_rach_sample(result.unicast, agg.unicast,
                            result.rach_collision_across_cells, outcome.unicast);
            for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
                fleet_mechanisms[m].accumulate(outcome.mechanisms[m]);
                DeploymentMechanismStats mech_contrib;
                add_mechanism_samples(mech_contrib, outcome.mechanisms[m],
                                      outcome.unicast);
                merge_contribution(agg.mechanisms[m], mech_contrib);
                add_rach_sample(result.mechanisms[m], agg.mechanisms[m],
                                result.rach_collision_across_cells,
                                outcome.mechanisms[m]);
            }
        }

        DeploymentMechanismStats unicast_contrib;
        add_unicast_samples(unicast_contrib, fleet_unicast);
        merge_contribution(result.unicast, unicast_contrib);
        for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
            DeploymentMechanismStats mech_contrib;
            add_mechanism_samples(mech_contrib, fleet_mechanisms[m], fleet_unicast);
            merge_contribution(result.mechanisms[m], mech_contrib);
        }
    }
    return result;
}

}  // namespace nbmg::multicell
