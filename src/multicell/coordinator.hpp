// City-wide wall-clock coordinator: puts every cell's campaign of a
// deployment onto one shared clock.
//
// The deployment layer runs each (run, cell) campaign as an independent
// event loop in its own local time — cells share no radio state, so
// shifting a cell's start on the city clock changes nothing inside the
// cell.  The coordinator exploits exactly that: it runs the deployment
// engine untouched (run_coordinated's embedded DeploymentResult is
// bit-identical to calling run_deployment directly, for every policy) and
// schedules the per-cell campaign spans run_deployment records
// (DeploymentResult::spans) onto a shared wall-clock with a deterministic
// start policy:
//
//  - simultaneous: every cell starts at t = 0 — the pre-coordinator
//    behaviour, now with the time axis made explicit.
//  - fixed_stagger: cell c starts at c * stagger_ms (topology order), the
//    classic staged rollout that bounds how many eNBs page new firmware at
//    once.
//  - backhaul_budgeted: a central eNB feed with a finite KB/s budget pushes
//    the payload image to each cell over a serial backhaul; a cell's
//    campaign starts when its delivery completes.  Cells are admitted in
//    deterministic priority order: most camped devices first, ties by
//    ascending cell id.
//
// Everything is a pure function of (spans, policy knobs): no RNG, no
// threads, so timelines and the derived fleet time-axis aggregates
// (city-wide completion, peak concurrently-active cells, backhaul
// utilization) are bit-identical at any --threads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "multicell/deployment.hpp"
#include "stats/summary.hpp"

namespace nbmg::telemetry {
class CampaignSink;
}  // namespace nbmg::telemetry

namespace nbmg::multicell {

enum class StartPolicy : std::uint8_t {
    simultaneous,
    fixed_stagger,
    backhaul_budgeted,
};

[[nodiscard]] constexpr const char* to_string(StartPolicy policy) noexcept {
    switch (policy) {
        case StartPolicy::simultaneous: return "simultaneous";
        case StartPolicy::fixed_stagger: return "fixed-stagger";
        case StartPolicy::backhaul_budgeted: return "backhaul";
    }
    return "?";
}

/// Parses the scenario-file / --coordinator spelling (the to_string names
/// above).  Returns nullopt for anything else.
[[nodiscard]] std::optional<StartPolicy> parse_start_policy(
    std::string_view text) noexcept;

/// The coordination policy and its knobs.  Policy-scoped: stagger_ms is
/// only read under fixed_stagger, backhaul_kbps only under
/// backhaul_budgeted (valid() enforces the pairing).
struct CoordinatorSpec {
    StartPolicy policy = StartPolicy::simultaneous;
    /// fixed_stagger: start offset between consecutive cells (>= 0).
    std::int64_t stagger_ms = 0;
    /// backhaul_budgeted: central feed budget in KB/s (> 0, finite).
    double backhaul_kbps = 0.0;
    /// backhaul_budgeted: per-chunk packet-loss probability on the feed
    /// (in [0, 1)).  0 keeps the lossless whole-image delivery
    /// bit-identical to earlier versions; > 0 switches the feed to 64 KiB
    /// chunks with deterministic seeded retransmissions and pipelined
    /// starts — a cell begins paging when its first chunk lands, while
    /// the image tail is still streaming.
    double loss_prob = 0.0;

    [[nodiscard]] bool valid() const noexcept;
};

/// One cell's slot on the city clock for one run.
struct CellSchedule {
    std::uint32_t cell = 0;
    std::size_t devices = 0;
    /// True when the cell received devices and therefore runs a campaign;
    /// empty cells carry no activity and are excluded from every metric.
    bool active = false;
    /// Campaign start offset on the city clock (ms).
    std::int64_t start_ms = 0;
    /// start_ms + the cell's campaign span (the per-cell horizon).
    std::int64_t end_ms = 0;
};

/// The scheduled city clock of one run.
struct RunTimeline {
    std::vector<CellSchedule> cells;  // topology order
    /// When the last active cell's campaign ends (the city-wide completion
    /// time of the rollout).
    std::int64_t completion_ms = 0;
    /// Maximum number of cells whose campaigns overlap at any instant
    /// (intervals are half-open [start, end)).
    std::size_t peak_concurrent_cells = 0;
    /// Last start minus first start among active cells.
    std::int64_t start_spread_ms = 0;
    /// Total busy time of the central feed (backhaul policy; 0 otherwise).
    /// Includes the retransmission time of lost chunks under loss_prob > 0.
    std::int64_t backhaul_busy_ms = 0;
    /// backhaul_busy_ms / completion_ms (0 when the feed is unused).
    double backhaul_utilization = 0.0;
    /// Bytes re-sent over the feed due to chunk loss (backhaul policy with
    /// loss_prob > 0; 0 otherwise).
    std::int64_t redelivered_bytes = 0;
};

/// Fleet time-axis aggregates across runs (one sample per run each).
struct CoordinationAggregates {
    CoordinatorSpec coordinator;
    std::vector<RunTimeline> timelines;  // run order
    stats::Summary completion_ms;
    stats::Summary peak_concurrent_cells;
    stats::Summary start_spread_ms;
    stats::Summary backhaul_busy_ms;
    stats::Summary backhaul_utilization;
    stats::Summary redelivered_bytes;
};

struct CoordinatedResult {
    /// Bit-identical to run_deployment(setup): coordination never reaches
    /// into the cells' event loops.
    DeploymentResult deployment;
    CoordinationAggregates coordination;
};

/// Schedules one run's cell spans onto the city clock.  Pure and
/// deterministic; exposed for direct testing.  `payload_bytes` is the
/// per-cell image size the backhaul policy must deliver.  `sink` (not
/// owned, may be null) receives one backhaul_chunk event per admitted cell
/// under the backhaul policy — purely observational, never read back.
/// `loss_seed` roots the lossy feed's retransmission draws (only consumed
/// when loss_prob > 0); callers derive it per run from the fault stream
/// label so campaign RNG is never perturbed.
[[nodiscard]] RunTimeline schedule_run(const CoordinatorSpec& coordinator,
                                       std::span<const CellRunSpan> spans,
                                       std::int64_t payload_bytes,
                                       telemetry::CampaignSink* sink = nullptr,
                                       std::uint64_t loss_seed = 0);

/// Runs the deployment and coordinates every run's cells on the shared
/// wall-clock.  Throws std::invalid_argument on an invalid coordinator
/// spec (see CoordinatorSpec::valid) or deployment setup.
[[nodiscard]] CoordinatedResult run_coordinated(const DeploymentSetup& setup,
                                                const CoordinatorSpec& coordinator);

/// Coordinates an already-executed deployment (reuses its recorded spans;
/// the run count is spans.size() / cell_count).  run_coordinated is this
/// composed with run_deployment.  `telemetry` (not owned, may be null)
/// routes each run's backhaul feed events to the collector's per-run city
/// sink (telemetry::Collector::city_sink).  `base_seed` roots the lossy
/// feed's per-run retransmission streams (ignored when loss_prob == 0).
[[nodiscard]] CoordinationAggregates coordinate_deployment(
    const DeploymentResult& deployment, const CoordinatorSpec& coordinator,
    std::int64_t payload_bytes, telemetry::Collector* telemetry = nullptr,
    std::uint64_t base_seed = 0);

}  // namespace nbmg::multicell
