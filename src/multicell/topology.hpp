// Multi-cell deployment topology.
//
// The paper evaluates "a single eNB scenario"; a city-scale firmware
// campaign spans hundreds of cells, each an independent eNB with its own
// paging channel, RACH and camped devices.  A CellTopology describes that
// grid: per-cell load weights (for skewed-load scenarios) and optional
// per-cell paging-capacity overrides (heterogeneous eNB configurations).
// Planning and campaign execution stay strictly per cell — cells share no
// radio state — which is what lets the deployment layer fan them across
// the sweep worker pool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nbmg::multicell {

/// One eNB site of the deployment grid.
struct CellSite {
    std::uint32_t id = 0;
    /// Relative attraction weight for load-aware assignment policies
    /// (hotspot).  Must be > 0; uniform_hash ignores it.
    double weight = 1.0;
    /// Per-cell paging capacity (records per paging occasion).  0 keeps the
    /// campaign config's value; > 0 overrides it for this cell only.
    int max_page_records_override = 0;
};

struct CellTopology {
    std::vector<CellSite> cells;

    [[nodiscard]] std::size_t cell_count() const noexcept { return cells.size(); }

    /// Non-empty, ids dense 0..n-1 in order, positive weights, non-negative
    /// capacity overrides.
    [[nodiscard]] bool valid() const noexcept;

    /// `cells` identical sites of weight 1.
    [[nodiscard]] static CellTopology uniform(std::size_t cells);

    /// Zipf-skewed load: cell k carries weight (k+1)^-exponent, modeling a
    /// downtown-to-suburb density gradient.  exponent = 0 degenerates to
    /// uniform; exponent around 1 gives the classic heavy-headed skew.
    [[nodiscard]] static CellTopology hotspot(std::size_t cells, double exponent);
};

}  // namespace nbmg::multicell
