// Device-to-cell assignment policies.
//
// Assignment is a pure function of (topology, devices, policy, seed): every
// device's cell is derived by hashing its IMSI (and, for class affinity,
// its profile class) through sim::derive_seed, so the map is bit-identical
// across thread counts, platforms and repeated runs, and a device keeps its
// cell when the topology and seed are unchanged.  With a 1-cell topology
// every policy degenerates to "everything camps on cell 0".
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "multicell/topology.hpp"
#include "nbiot/cell.hpp"

namespace nbmg::multicell {

enum class AssignmentPolicy : std::uint8_t {
    /// IMSI hash, cells equally likely: the i.i.d. camping baseline.
    uniform_hash,
    /// IMSI hash weighted by CellSite::weight: skewed geographic load
    /// (downtown cells attract more devices than suburban ones).
    hotspot,
    /// Devices of one profile class cluster on a per-class home cell
    /// (fleets are deployed building by building, so a class concentrates
    /// geographically); a fixed spill fraction rejoins the uniform hash.
    class_affinity,
};

[[nodiscard]] constexpr const char* to_string(AssignmentPolicy policy) noexcept {
    switch (policy) {
        case AssignmentPolicy::uniform_hash: return "uniform";
        case AssignmentPolicy::hotspot: return "hotspot";
        case AssignmentPolicy::class_affinity: return "class-affinity";
    }
    return "?";
}

/// Parses the --assignment flag spelling (the to_string names above).
/// Returns nullopt for anything else.
[[nodiscard]] std::optional<AssignmentPolicy> parse_assignment_policy(
    std::string_view text) noexcept;

/// Fraction of class-affinity devices that ignore their home cell and fall
/// back to the uniform hash (portable units, re-deployments).
inline constexpr double kClassAffinitySpill = 0.2;

struct DeviceAssignment {
    /// cell_of_device[d] = topology cell index of fleet device d.
    std::vector<std::uint32_t> cell_of_device;
    /// Devices camped per cell (sums to the fleet size).
    std::vector<std::size_t> cell_sizes;
};

/// Assigns every device to a cell.  `class_indices` must parallel `devices`
/// for class_affinity (see ComparisonPopulations::class_indices) and may be
/// empty for the other policies.  Throws std::invalid_argument on an
/// invalid topology or a missing/mismatched class span.
[[nodiscard]] DeviceAssignment assign_devices(
    const CellTopology& topology, std::span<const nbiot::UeSpec> devices,
    std::span<const std::uint32_t> class_indices, AssignmentPolicy policy,
    std::uint64_t seed);

}  // namespace nbmg::multicell
