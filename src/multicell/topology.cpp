#include "multicell/topology.hpp"

#include <cmath>

namespace nbmg::multicell {

bool CellTopology::valid() const noexcept {
    if (cells.empty()) return false;
    for (std::size_t c = 0; c < cells.size(); ++c) {
        const CellSite& site = cells[c];
        if (site.id != c) return false;
        if (!(site.weight > 0.0) || !std::isfinite(site.weight)) return false;
        if (site.max_page_records_override < 0) return false;
    }
    return true;
}

CellTopology CellTopology::uniform(std::size_t cells) {
    CellTopology topology;
    topology.cells.reserve(cells);
    for (std::size_t c = 0; c < cells; ++c) {
        topology.cells.push_back(CellSite{static_cast<std::uint32_t>(c), 1.0, 0});
    }
    return topology;
}

CellTopology CellTopology::hotspot(std::size_t cells, double exponent) {
    CellTopology topology = uniform(cells);
    for (std::size_t c = 0; c < cells; ++c) {
        topology.cells[c].weight = std::pow(static_cast<double>(c + 1), -exponent);
    }
    return topology;
}

}  // namespace nbmg::multicell
