#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>

namespace nbmg::stats {

void Summary::add(double sample) noexcept {
    if (count_ == 0) {
        min_ = sample;
        max_ = sample;
    } else {
        min_ = std::min(min_, sample);
        max_ = std::max(max_, sample);
    }
    ++count_;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
}

void Summary::merge(const Summary& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double Summary::variance() const noexcept {
    if (count_ < 2) return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::ci95_half_width() const noexcept {
    if (count_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

Summary summarize(std::span<const double> samples) noexcept {
    Summary s;
    for (const double x : samples) s.add(x);
    return s;
}

}  // namespace nbmg::stats
