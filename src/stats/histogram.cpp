#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace nbmg::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bins == 0) throw std::invalid_argument("Histogram: need at least one bin");
    counts_.assign(bins, 0);
}

void Histogram::add(double sample) noexcept {
    ++total_;
    std::size_t bin = 0;
    if (sample < lo_) {
        ++underflow_;
        bin = 0;
    } else if (sample >= hi_) {
        ++overflow_;
        bin = counts_.size() - 1;
    } else {
        const double frac = (sample - lo_) / (hi_ - lo_);
        bin = std::min(counts_.size() - 1,
                       static_cast<std::size_t>(frac * static_cast<double>(counts_.size())));
    }
    ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const noexcept {
    const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + w * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const noexcept {
    return bin_lo(bin + 1);
}

double Histogram::quantile(double q) const {
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("Histogram::quantile: q out of range");
    if (total_ == 0) return lo_;
    const double target = q * static_cast<double>(total_);
    double acc = 0.0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const double next = acc + static_cast<double>(counts_[b]);
        if (next >= target) {
            const double inside =
                counts_[b] == 0 ? 0.0 : (target - acc) / static_cast<double>(counts_[b]);
            return bin_lo(b) + inside * (bin_hi(b) - bin_lo(b));
        }
        acc = next;
    }
    return hi_;
}

std::string Histogram::render(std::size_t width) const {
    std::uint64_t peak = 1;
    for (const auto c : counts_) peak = std::max(peak, c);
    std::string out;
    char line[128];
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        const auto bar = static_cast<std::size_t>(
            std::llround(static_cast<double>(counts_[b]) /
                         static_cast<double>(peak) * static_cast<double>(width)));
        std::snprintf(line, sizeof(line), "[%10.2f, %10.2f) %8llu ", bin_lo(b), bin_hi(b),
                      static_cast<unsigned long long>(counts_[b]));
        out += line;
        out.append(bar, '#');
        out += '\n';
    }
    return out;
}

}  // namespace nbmg::stats
