// Fixed-bin histogram for distribution reporting in benches and tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace nbmg::stats {

class Histogram {
public:
    /// `bins` equal-width bins over [lo, hi); samples outside are clamped
    /// into the first/last bin and counted as outliers.
    Histogram(double lo, double hi, std::size_t bins);

    void add(double sample) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
    [[nodiscard]] std::uint64_t bin_count(std::size_t bin) const { return counts_.at(bin); }
    [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
    [[nodiscard]] double bin_lo(std::size_t bin) const noexcept;
    [[nodiscard]] double bin_hi(std::size_t bin) const noexcept;
    [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }

    /// Approximate quantile (linear within bins), q in [0, 1].
    [[nodiscard]] double quantile(double q) const;

    /// Text rendering ("bar chart") for quick terminal inspection.
    [[nodiscard]] std::string render(std::size_t width = 40) const;

private:
    double lo_ = 0.0;
    double hi_ = 0.0;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
};

}  // namespace nbmg::stats
