#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace nbmg::stats {

Table::Table(std::vector<std::string> columns) : columns_(std::move(columns)) {
    if (columns_.empty()) throw std::invalid_argument("Table: need at least one column");
}

Table::Table(std::initializer_list<std::string> columns)
    : Table(std::vector<std::string>{columns}) {}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != columns_.size()) {
        throw std::invalid_argument("Table::add_row: cell count mismatch");
    }
    rows_.push_back(std::move(cells));
}

std::string Table::cell(double value, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string Table::cell(std::int64_t value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
}

std::string Table::cell_percent(double fraction, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string Table::to_markdown() const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    auto emit_row = [&](const std::vector<std::string>& cells) {
        std::string line = "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            line += " " + cells[c];
            line.append(widths[c] - cells[c].size(), ' ');
            line += " |";
        }
        return line + "\n";
    };
    std::string out = emit_row(columns_);
    out += "|";
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        out += std::string(widths[c] + 2, '-') + "|";
    }
    out += "\n";
    for (const auto& row : rows_) out += emit_row(row);
    return out;
}

std::string Table::to_csv() const {
    auto escape = [](const std::string& s) {
        if (s.find_first_of(",\"\n") == std::string::npos) return s;
        std::string quoted = "\"";
        for (const char ch : s) {
            if (ch == '"') quoted += "\"\"";
            else quoted += ch;
        }
        return quoted + "\"";
    };
    std::string out;
    for (std::size_t c = 0; c < columns_.size(); ++c) {
        out += escape(columns_[c]);
        out += (c + 1 < columns_.size()) ? "," : "\n";
    }
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out += escape(row[c]);
            out += (c + 1 < row.size()) ? "," : "\n";
        }
    }
    return out;
}

}  // namespace nbmg::stats
