// Online summary statistics (Welford) with confidence intervals.
#pragma once

#include <cstdint>
#include <span>

namespace nbmg::stats {

/// Accumulates samples and reports mean / stddev / min / max and a normal
/// 95% confidence half-width.  Numerically stable (Welford's algorithm).
class Summary {
public:
    void add(double sample) noexcept;
    void merge(const Summary& other) noexcept;

    [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
    [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const noexcept;  // sample variance (n-1)
    [[nodiscard]] double stddev() const noexcept;
    [[nodiscard]] double min() const noexcept { return min_; }
    [[nodiscard]] double max() const noexcept { return max_; }
    [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

    /// Half-width of the normal-approximation 95% CI of the mean.
    [[nodiscard]] double ci95_half_width() const noexcept;

    /// Bit-exact state equality: two summaries compare equal only when they
    /// accumulated the same samples in the same merge order.  This is what
    /// the determinism/golden tests assert ("aggregates are bit-identical").
    [[nodiscard]] bool operator==(const Summary& other) const noexcept = default;

    /// The complete accumulator state, exposed losslessly for serialization
    /// (the public statistics API divides/normalizes, so it cannot round-trip
    /// the Welford state bit-exactly).
    struct State {
        std::uint64_t count = 0;
        double mean = 0.0;
        double m2 = 0.0;
        double min = 0.0;
        double max = 0.0;
    };

    [[nodiscard]] State state() const noexcept {
        return State{count_, mean_, m2_, min_, max_};
    }

    /// Rebuilds a summary from a state() snapshot, bit-identical to the
    /// original accumulator.
    [[nodiscard]] static Summary from_state(const State& s) noexcept {
        Summary out;
        out.count_ = s.count;
        out.mean_ = s.mean;
        out.m2_ = s.m2;
        out.min_ = s.min;
        out.max_ = s.max;
        return out;
    }

private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

[[nodiscard]] Summary summarize(std::span<const double> samples) noexcept;

}  // namespace nbmg::stats
