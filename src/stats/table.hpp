// Minimal table builder with markdown and CSV rendering.  Every benchmark
// binary prints its figure/table through this, so the harness output is
// uniform and machine-readable.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace nbmg::stats {

class Table {
public:
    explicit Table(std::vector<std::string> columns);
    Table(std::initializer_list<std::string> columns);

    /// Adds one row; the cell count must match the column count.
    void add_row(std::vector<std::string> cells);

    /// Convenience cell formatters.
    [[nodiscard]] static std::string cell(double value, int precision = 3);
    [[nodiscard]] static std::string cell(std::int64_t value);
    [[nodiscard]] static std::string cell_percent(double fraction, int precision = 1);

    [[nodiscard]] std::string to_markdown() const;
    [[nodiscard]] std::string to_csv() const;

    [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
    [[nodiscard]] std::size_t columns() const noexcept { return columns_.size(); }

private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace nbmg::stats
