#include "snapshot/format.hpp"

#include <array>
#include <bit>
#include <cstdio>
#include <utility>

namespace nbmg::snapshot {

void Writer::put_u16(std::uint16_t v) {
    put_u8(static_cast<std::uint8_t>(v & 0xFFU));
    put_u8(static_cast<std::uint8_t>(v >> 8));
}

void Writer::put_u32(std::uint32_t v) {
    for (std::uint32_t shift = 0; shift < 32; shift += 8) {
        put_u8(static_cast<std::uint8_t>((v >> shift) & 0xFFU));
    }
}

void Writer::put_u64(std::uint64_t v) {
    for (std::uint32_t shift = 0; shift < 64; shift += 8) {
        put_u8(static_cast<std::uint8_t>((v >> shift) & 0xFFU));
    }
}

void Writer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Writer::put_string(std::string_view s) {
    put_u64(s.size());
    for (const char c : s) put_u8(static_cast<std::uint8_t>(c));
}

void Writer::put_u64_vector(const std::vector<std::uint64_t>& v) {
    put_u64(v.size());
    for (const std::uint64_t x : v) put_u64(x);
}

void Writer::put_blob(const std::vector<std::uint8_t>& blob) {
    put_u64(blob.size());
    append_raw(blob);
}

void Writer::append_raw(const std::vector<std::uint8_t>& bytes) {
    out_.insert(out_.end(), bytes.begin(), bytes.end());
}

void Reader::need(std::uint64_t bytes) const {
    if (bytes > data_->size() - pos_) {
        throw SnapshotError(label_ + ": truncated (wanted " +
                            std::to_string(bytes) + " more bytes, have " +
                            std::to_string(data_->size() - pos_) + ")");
    }
}

std::uint8_t Reader::take_u8() {
    need(1);
    return (*data_)[pos_++];
}

std::uint16_t Reader::take_u16() {
    need(2);
    std::uint16_t v = 0;
    v = static_cast<std::uint16_t>((*data_)[pos_]);
    v = static_cast<std::uint16_t>(
        v | static_cast<std::uint16_t>((*data_)[pos_ + 1]) << 8);
    pos_ += 2;
    return v;
}

std::uint32_t Reader::take_u32() {
    need(4);
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>((*data_)[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return v;
}

std::uint64_t Reader::take_u64() {
    need(8);
    std::uint64_t v = 0;
    for (std::uint64_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>((*data_)[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return v;
}

double Reader::take_f64() { return std::bit_cast<double>(take_u64()); }

std::string Reader::take_string() {
    const std::uint64_t length = take_u64();
    need(length);
    std::string s;
    s.reserve(length);
    for (std::uint64_t i = 0; i < length; ++i) {
        s.push_back(static_cast<char>((*data_)[pos_ + i]));
    }
    pos_ += length;
    return s;
}

std::vector<std::uint64_t> Reader::take_u64_vector() {
    const std::uint64_t count = take_u64();
    need(count * 8);
    std::vector<std::uint64_t> v;
    v.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) v.push_back(take_u64());
    return v;
}

std::vector<std::uint8_t> Reader::take_blob() {
    const std::uint64_t length = take_u64();
    need(length);
    std::vector<std::uint8_t> blob(data_->begin() + static_cast<std::int64_t>(pos_),
                                   data_->begin() +
                                       static_cast<std::int64_t>(pos_ + length));
    pos_ += length;
    return blob;
}

std::uint64_t Reader::remaining() const noexcept { return data_->size() - pos_; }

void Reader::expect_end() const {
    if (pos_ != data_->size()) {
        throw SnapshotError(label_ + ": " + std::to_string(data_->size() - pos_) +
                            " trailing bytes after the last field");
    }
}

std::vector<std::uint8_t> encode_snapshot(const std::vector<Section>& sections) {
    Writer w;
    for (const char c : kMagic) w.put_u8(static_cast<std::uint8_t>(c));
    w.put_u32(kFormatVersion);
    for (const Section& section : sections) {
        w.put_u32(section.id);
        w.put_u64(section.payload.size());
        w.append_raw(section.payload);
    }
    return w.take();
}

std::vector<Section> decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                     const std::string& label) {
    Reader r(bytes, label);
    std::string magic;
    for (std::uint32_t i = 0; i < kMagic.size(); ++i) {
        if (r.remaining() == 0) {
            throw SnapshotError(label + ": not a snapshot file (too short)");
        }
        magic.push_back(static_cast<char>(r.take_u8()));
    }
    if (magic != kMagic) {
        throw SnapshotError(label + ": not a snapshot file (bad magic)");
    }
    const std::uint32_t version = r.take_u32();
    if (version != kFormatVersion) {
        throw SnapshotError(label + ": snapshot format version " +
                            std::to_string(version) + ", this build reads only " +
                            std::to_string(kFormatVersion) +
                            " — re-run the scenario instead of resuming");
    }
    std::vector<Section> sections;
    while (r.remaining() > 0) {
        Section section;
        section.id = r.take_u32();
        section.payload = r.take_blob();
        sections.push_back(std::move(section));
    }
    return sections;
}

void write_snapshot_file(const std::string& path,
                         const std::vector<Section>& sections) {
    const std::vector<std::uint8_t> bytes = encode_snapshot(sections);
    const std::string tmp = path + ".tmp";
    std::FILE* file = std::fopen(tmp.c_str(), "wb");
    if (file == nullptr) {
        throw SnapshotError(tmp + ": cannot open for writing");
    }
    const std::uint64_t written = std::fwrite(bytes.data(), 1, bytes.size(), file);
    const bool closed = std::fclose(file) == 0;
    if (written != bytes.size() || !closed) {
        std::remove(tmp.c_str());
        throw SnapshotError(tmp + ": short write");
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SnapshotError(path + ": rename from temp file failed");
    }
}

std::vector<Section> read_snapshot_file(const std::string& path) {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
        throw SnapshotError(path + ": cannot open snapshot file");
    }
    std::vector<std::uint8_t> bytes;
    std::array<std::uint8_t, 65536> chunk{};
    for (;;) {
        const std::uint64_t got = std::fread(chunk.data(), 1, chunk.size(), file);
        bytes.insert(bytes.end(), chunk.begin(),
                     chunk.begin() + static_cast<std::int64_t>(got));
        if (got < chunk.size()) break;
    }
    const bool ok = std::ferror(file) == 0;
    std::fclose(file);
    if (!ok) throw SnapshotError(path + ": read error");
    return decode_snapshot(bytes, path);
}

}  // namespace nbmg::snapshot
