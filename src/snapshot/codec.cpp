#include "snapshot/codec.hpp"

#include <array>
#include <utility>

#include "telemetry/events.hpp"

namespace nbmg::snapshot {
namespace {

constexpr std::uint8_t kMechanismKindCount = 5;  // see core/mechanism.hpp

void put_buckets(Writer& w, const telemetry::CampaignSink& sink,
                 telemetry::EventKind kind) {
    w.put_u64_vector(sink.series(kind));
}

}  // namespace

void put_summary(Writer& w, const stats::Summary& summary) {
    const stats::Summary::State state = summary.state();
    w.put_u64(state.count);
    w.put_f64(state.mean);
    w.put_f64(state.m2);
    w.put_f64(state.min);
    w.put_f64(state.max);
}

stats::Summary take_summary(Reader& r) {
    stats::Summary::State state;
    state.count = r.take_u64();
    state.mean = r.take_f64();
    state.m2 = r.take_f64();
    state.min = r.take_f64();
    state.max = r.take_f64();
    return stats::Summary::from_state(state);
}

void put_mechanism_stats(Writer& w, const core::MechanismStats& stats) {
    w.put_u8(static_cast<std::uint8_t>(stats.kind));
    put_summary(w, stats.light_sleep_increase);
    put_summary(w, stats.connected_increase);
    put_summary(w, stats.transmissions);
    put_summary(w, stats.transmissions_per_device);
    put_summary(w, stats.bytes_ratio);
    put_summary(w, stats.recovery_transmissions);
    put_summary(w, stats.unreceived_devices);
    put_summary(w, stats.mean_connected_seconds);
    put_summary(w, stats.mean_light_sleep_seconds);
    put_summary(w, stats.completion_p99_ms);
    put_summary(w, stats.redelivery_bytes);
    put_summary(w, stats.stranded_devices);
}

core::MechanismStats take_mechanism_stats(Reader& r) {
    const std::uint8_t kind = r.take_u8();
    if (kind >= kMechanismKindCount) {
        throw SnapshotError("snapshot slot: mechanism kind " +
                            std::to_string(kind) + " out of range");
    }
    core::MechanismStats stats;
    stats.kind = static_cast<core::MechanismKind>(kind);
    stats.light_sleep_increase = take_summary(r);
    stats.connected_increase = take_summary(r);
    stats.transmissions = take_summary(r);
    stats.transmissions_per_device = take_summary(r);
    stats.bytes_ratio = take_summary(r);
    stats.recovery_transmissions = take_summary(r);
    stats.unreceived_devices = take_summary(r);
    stats.mean_connected_seconds = take_summary(r);
    stats.mean_light_sleep_seconds = take_summary(r);
    stats.completion_p99_ms = take_summary(r);
    stats.redelivery_bytes = take_summary(r);
    stats.stranded_devices = take_summary(r);
    return stats;
}

void put_sink(Writer& w, const telemetry::CampaignSink& sink) {
    const std::vector<telemetry::TraceRecord>& records = sink.records();
    w.put_u64(records.size());
    for (const telemetry::TraceRecord& record : records) {
        w.put_i64(record.at_ms);
        w.put_i64(record.a);
        w.put_i64(record.b);
        w.put_u32(record.device);
        w.put_u16(record.stratum);
        w.put_u8(static_cast<std::uint8_t>(record.kind));
    }
    w.put_u64(telemetry::kEventKindCount);
    for (const std::uint64_t counter : sink.counters()) w.put_u64(counter);
    put_buckets(w, sink, telemetry::EventKind::rach_attempt);
    put_buckets(w, sink, telemetry::EventKind::rach_collision);
    put_buckets(w, sink, telemetry::EventKind::page_delivered);
}

void restore_sink(Reader& r, telemetry::CampaignSink& sink) {
    const std::uint64_t record_count = r.take_u64();
    std::vector<telemetry::TraceRecord> records;
    records.reserve(record_count);
    for (std::uint64_t i = 0; i < record_count; ++i) {
        telemetry::TraceRecord record;
        record.at_ms = r.take_i64();
        record.a = r.take_i64();
        record.b = r.take_i64();
        record.device = r.take_u32();
        record.stratum = r.take_u16();
        const std::uint8_t kind = r.take_u8();
        if (kind >= telemetry::kEventKindCount) {
            throw SnapshotError("snapshot slot: trace event kind " +
                                std::to_string(kind) + " out of range");
        }
        record.kind = static_cast<telemetry::EventKind>(kind);
        records.push_back(record);
    }
    const std::uint64_t counter_count = r.take_u64();
    if (counter_count != telemetry::kEventKindCount) {
        throw SnapshotError("snapshot slot: counter table has " +
                            std::to_string(counter_count) + " entries, expected " +
                            std::to_string(telemetry::kEventKindCount));
    }
    std::array<std::uint64_t, telemetry::kEventKindCount> counters{};
    for (std::uint64_t k = 0; k < telemetry::kEventKindCount; ++k) {
        counters[k] = r.take_u64();
    }
    std::vector<std::uint64_t> rach_attempt = r.take_u64_vector();
    std::vector<std::uint64_t> rach_collision = r.take_u64_vector();
    std::vector<std::uint64_t> page_delivered = r.take_u64_vector();
    sink.restore(std::move(records), counters, std::move(rach_attempt),
                 std::move(rach_collision), std::move(page_delivered));
}

}  // namespace nbmg::snapshot
