// Versioned, portable binary container for checkpoint snapshots.
//
// Layout: 8-byte magic "NBMGSNAP", a u32 format version, then a sequence
// of sections, each framed as (u32 section id, u64 payload length, payload
// bytes).  Every scalar is fixed-width little-endian, assembled and taken
// apart byte by byte — no struct dumps, no host-width integers — so a
// snapshot written on any supported platform reads identically on any
// other.  A reader that sees a different version (or a mangled frame)
// rejects the file with a diagnostic instead of guessing.
//
// Versioning policy: kFormatVersion bumps on ANY layout change, including
// additions — there are no optional trailing fields.  Old snapshots are
// not migrated; a version mismatch tells the user to re-run from the
// scenario instead of resuming.  ci/lint_determinism.py's `snapshot`
// category enforces the no-struct-dump / no-host-width rule over this
// directory.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace nbmg::snapshot {

/// Any malformed, truncated, or version-mismatched snapshot.  Messages
/// carry the file path or section label so a failed resume names what was
/// wrong, not just that something was.
class SnapshotError : public std::runtime_error {
public:
    explicit SnapshotError(const std::string& what) : std::runtime_error(what) {}
};

// 2: MechanismStats grew the fault-injection summaries (completion p99,
//    re-delivery bytes, stranded devices) and multicell CellRunTotals grew
//    their per-cell counterparts.
inline constexpr std::uint32_t kFormatVersion = 2;
inline constexpr std::string_view kMagic = "NBMGSNAP";  // exactly 8 bytes

/// One length-framed section of a snapshot file.
struct Section {
    std::uint32_t id = 0;
    std::vector<std::uint8_t> payload;

    friend bool operator==(const Section&, const Section&) = default;
};

/// Append-only little-endian scalar writer building one section payload.
class Writer {
public:
    void put_u8(std::uint8_t v) { out_.push_back(v); }
    void put_u16(std::uint16_t v);
    void put_u32(std::uint32_t v);
    void put_u64(std::uint64_t v);
    /// Two's-complement via the value-preserving unsigned cast.
    void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }
    /// IEEE-754 bit pattern (std::bit_cast), not a decimal round trip.
    void put_f64(double v);
    /// u64 byte length + the bytes.
    void put_string(std::string_view s);
    /// u64 element count + one u64 per element.
    void put_u64_vector(const std::vector<std::uint64_t>& v);
    /// u64 byte length + the bytes (nested blobs, e.g. per-slot payloads).
    void put_blob(const std::vector<std::uint8_t>& blob);
    /// Raw bytes, no framing (section assembly only).
    void append_raw(const std::vector<std::uint8_t>& bytes);

    [[nodiscard]] const std::vector<std::uint8_t>& buffer() const noexcept {
        return out_;
    }
    [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
        return std::move(out_);
    }

private:
    std::vector<std::uint8_t> out_;
};

/// Sequential little-endian reader over one section payload.  Every take_*
/// throws SnapshotError naming `label` when the payload is too short;
/// expect_end() rejects trailing garbage.
class Reader {
public:
    Reader(const std::vector<std::uint8_t>& data, std::string label)
        : data_(&data), label_(std::move(label)) {}

    [[nodiscard]] std::uint8_t take_u8();
    [[nodiscard]] std::uint16_t take_u16();
    [[nodiscard]] std::uint32_t take_u32();
    [[nodiscard]] std::uint64_t take_u64();
    [[nodiscard]] std::int64_t take_i64() {
        return static_cast<std::int64_t>(take_u64());
    }
    [[nodiscard]] double take_f64();
    [[nodiscard]] std::string take_string();
    [[nodiscard]] std::vector<std::uint64_t> take_u64_vector();
    [[nodiscard]] std::vector<std::uint8_t> take_blob();

    [[nodiscard]] std::uint64_t remaining() const noexcept;
    /// Throws unless the payload was consumed exactly.
    void expect_end() const;

private:
    void need(std::uint64_t bytes) const;

    const std::vector<std::uint8_t>* data_;
    std::uint64_t pos_ = 0;
    std::string label_;
};

/// Frames `sections` into one snapshot byte stream (magic, version,
/// sections in the given order).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(
    const std::vector<Section>& sections);

/// Validates magic + version and splits the stream back into sections.
/// `label` (usually the file path) prefixes every diagnostic.
[[nodiscard]] std::vector<Section> decode_snapshot(
    const std::vector<std::uint8_t>& bytes, const std::string& label);

/// Writes the framed snapshot to `path` via a sibling temp file and
/// std::rename, so a crash mid-write never leaves a torn snapshot under
/// the final name.  Throws SnapshotError on any I/O failure.
void write_snapshot_file(const std::string& path,
                         const std::vector<Section>& sections);

/// Reads and decodes a snapshot file; throws SnapshotError on I/O errors
/// or any framing/version problem.
[[nodiscard]] std::vector<Section> read_snapshot_file(const std::string& path);

}  // namespace nbmg::snapshot
