#include "snapshot/checkpoint.hpp"

#include <utility>

namespace nbmg::snapshot {
namespace {

// Section ids of the checkpoint snapshot layout (format version 1).
constexpr std::uint32_t kSectionHeader = 1;
constexpr std::uint32_t kSectionSlots = 2;

std::string engine_name(std::uint8_t engine) {
    return engine == 0 ? "single-cell comparison" : "multicell deployment";
}

}  // namespace

void CheckpointContext::load(const std::string& path) {
    const std::vector<Section> sections = read_snapshot_file(path);
    const Section* header_section = nullptr;
    const Section* slots_section = nullptr;
    for (const Section& section : sections) {
        if (section.id == kSectionHeader) header_section = &section;
        if (section.id == kSectionSlots) slots_section = &section;
    }
    if (header_section == nullptr || slots_section == nullptr) {
        throw SnapshotError(path + ": missing header or slot-table section");
    }

    Reader header_reader(header_section->payload, path + " (header section)");
    CheckpointHeader loaded;
    loaded.fingerprint = header_reader.take_u64();
    loaded.engine = header_reader.take_u8();
    loaded.runs = header_reader.take_u64();
    loaded.cells = header_reader.take_u64();
    loaded.campaigns = header_reader.take_u64();
    header_reader.expect_end();

    if (loaded.fingerprint != header_.fingerprint) {
        throw SnapshotError(
            path + ": snapshot was taken for a different scenario (fingerprint " +
            std::to_string(loaded.fingerprint) + ", this spec is " +
            std::to_string(header_.fingerprint) +
            ") — results-affecting keys must match the checkpointed run");
    }
    if (!(loaded == header_)) {
        throw SnapshotError(
            path + ": snapshot engine shape mismatch (snapshot: " +
            engine_name(loaded.engine) + ", " + std::to_string(loaded.runs) +
            " runs x " + std::to_string(loaded.cells) + " cells x " +
            std::to_string(loaded.campaigns) + " campaigns; this spec: " +
            engine_name(header_.engine) + ", " + std::to_string(header_.runs) +
            " runs x " + std::to_string(header_.cells) + " cells x " +
            std::to_string(header_.campaigns) + " campaigns)");
    }

    Reader slots_reader(slots_section->payload, path + " (slot-table section)");
    const std::uint64_t count = slots_reader.take_u64();
    const std::uint64_t total_slots =
        header_.engine == 0 ? header_.runs : header_.runs * header_.cells;
    if (count > total_slots) {
        throw SnapshotError(path + ": slot table lists " + std::to_string(count) +
                            " completed tasks, grid only has " +
                            std::to_string(total_slots));
    }
    std::lock_guard<std::mutex> lock(mutex_);
    slots_.clear();
    for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t slot = slots_reader.take_u64();
        if (slot >= total_slots) {
            throw SnapshotError(path + ": slot index " + std::to_string(slot) +
                                " out of range (grid has " +
                                std::to_string(total_slots) + " tasks)");
        }
        if (!slots_.emplace(slot, slots_reader.take_blob()).second) {
            throw SnapshotError(path + ": duplicate slot index " +
                                std::to_string(slot));
        }
    }
    slots_reader.expect_end();
    restored_count_ = count;
}

const std::vector<std::uint8_t>* CheckpointContext::restored(
    std::uint64_t slot) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = slots_.find(slot);
    // Map nodes are address-stable and never erased, so handing the pointer
    // out of the lock is safe.
    return it == slots_.end() ? nullptr : &it->second;
}

void CheckpointContext::complete_slot(std::uint64_t slot,
                                      std::vector<std::uint8_t> blob,
                                      std::int64_t sim_ms) {
    std::lock_guard<std::mutex> lock(mutex_);
    slots_[slot] = std::move(blob);
    ++fresh_completed_;
    unsaved_sim_ms_ += sim_ms < 0 ? 0 : sim_ms;

    const bool stop = stop_after_ != 0 && fresh_completed_ >= stop_after_ &&
                      !stopping_.load(std::memory_order_relaxed);
    const bool throttle_due = every_ms_ <= 0 || unsaved_sim_ms_ >= every_ms_;
    if (!out_path_.empty() && (stop || throttle_due)) {
        save_locked();
        unsaved_sim_ms_ = 0;
    }
    if (stop) {
        stopping_.store(true, std::memory_order_relaxed);
        throw CheckpointStop(out_path_, restored_count_ + fresh_completed_);
    }
}

void CheckpointContext::save_final() {
    if (out_path_.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    save_locked();
    unsaved_sim_ms_ = 0;
}

void CheckpointContext::save_locked() {
    Writer header_writer;
    header_writer.put_u64(header_.fingerprint);
    header_writer.put_u8(header_.engine);
    header_writer.put_u64(header_.runs);
    header_writer.put_u64(header_.cells);
    header_writer.put_u64(header_.campaigns);

    Writer slots_writer;
    slots_writer.put_u64(slots_.size());
    for (const auto& [slot, blob] : slots_) {
        slots_writer.put_u64(slot);
        slots_writer.put_blob(blob);
    }

    std::vector<Section> sections;
    sections.push_back(Section{kSectionHeader, header_writer.take()});
    sections.push_back(Section{kSectionSlots, slots_writer.take()});
    write_snapshot_file(out_path_, sections);
}

}  // namespace nbmg::snapshot
