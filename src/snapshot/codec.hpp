// Field-by-field codecs for the aggregate types checkpoint slot blobs
// carry: Welford summaries, per-mechanism stat bundles, and telemetry
// sink payloads.  The engines compose these into their per-task blobs
// (core/experiment.cpp, multicell/deployment.cpp); keeping the codecs
// here keeps the fixed-width little-endian discipline — and the lint that
// enforces it — in one place.
#pragma once

#include "core/experiment.hpp"
#include "snapshot/format.hpp"
#include "stats/summary.hpp"
#include "telemetry/sink.hpp"

namespace nbmg::snapshot {

/// Welford state, lossless: count u64, then mean/m2/min/max as IEEE-754
/// bit patterns.  from_state on the way back gives a bit-identical
/// accumulator.
void put_summary(Writer& w, const stats::Summary& summary);
[[nodiscard]] stats::Summary take_summary(Reader& r);

/// Mechanism kind (u8) plus its twelve summaries in declaration order.
void put_mechanism_stats(Writer& w, const core::MechanismStats& stats);
[[nodiscard]] core::MechanismStats take_mechanism_stats(Reader& r);

/// Everything a sink recorded: trace records, dense counters, the three
/// bucketed series.  Config and stratum are identity (recreated by the
/// resuming run), not payload.
void put_sink(Writer& w, const telemetry::CampaignSink& sink);

/// Decodes a put_sink payload into `sink` via CampaignSink::restore.
/// Throws SnapshotError on out-of-range event kinds.
void restore_sink(Reader& r, telemetry::CampaignSink& sink);

}  // namespace nbmg::snapshot
