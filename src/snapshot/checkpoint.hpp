// Checkpoint/resume orchestration over the snapshot container format.
//
// Safe points are (run, cell) task boundaries of the engine grids: every
// grid task is a pure function of (setup, derived seed), so a snapshot
// records the serialized outcome of each completed task — its aggregate
// contribution plus the telemetry sinks it filled — and a resume restores
// those outcomes verbatim and deterministically re-executes only the
// remaining tasks.  The final aggregates, reduced in index order exactly
// as an uninterrupted run reduces them, are bit-identical at any --threads
// because nothing about the snapshot depends on which worker computed
// what.
//
// The context is shared by every sweep worker: restored() and
// complete_slot() serialize on one mutex (the engines call them once per
// task, never in the event-loop hot path), and the stop flag is an atomic
// so in-flight tasks can poll it cheaply.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "snapshot/format.hpp"

namespace nbmg::snapshot {

/// Thrown by complete_slot() when the configured stop_after budget is
/// exhausted.  The sweep unwinds (remaining tasks see stopping() and skip
/// their work), the scenario layer reports the snapshot path, and the
/// process exits with status 3 — distinct from usage errors (2).
class CheckpointStop : public std::runtime_error {
public:
    CheckpointStop(std::string path, std::uint64_t completed)
        : std::runtime_error("checkpoint stop: " + std::to_string(completed) +
                             " tasks completed, snapshot at " + path),
          path_(std::move(path)),
          completed_(completed) {}

    [[nodiscard]] const std::string& path() const noexcept { return path_; }
    [[nodiscard]] std::uint64_t completed() const noexcept { return completed_; }

private:
    std::string path_;
    std::uint64_t completed_ = 0;
};

/// Identity of a snapshot: which scenario (a fingerprint over the
/// normalized scenario file text, thread-count and output paths excluded)
/// and which engine grid shape produced it.  load() rejects any mismatch
/// with a diagnostic instead of silently resuming into different results.
struct CheckpointHeader {
    std::uint64_t fingerprint = 0;
    std::uint8_t engine = 0;  // 0 = single-cell comparison, 1 = deployment
    std::uint64_t runs = 0;
    std::uint64_t cells = 0;
    std::uint64_t campaigns = 0;  // mechanisms + 1 (slot 0 = unicast)

    friend bool operator==(const CheckpointHeader&, const CheckpointHeader&) =
        default;
};

class CheckpointContext {
public:
    /// `out_path` empty = never persist (pure resume); `every_ms` > 0 =
    /// rewrite the snapshot once at least that much simulated time has
    /// completed since the last write, 0 = rewrite after every task;
    /// `stop_after` > 0 = throw CheckpointStop after that many freshly
    /// computed tasks (deterministic, wall-clock-free stop for tests and
    /// time-sharded drivers), 0 = run to completion.
    CheckpointContext(CheckpointHeader header, std::string out_path,
                      std::int64_t every_ms, std::uint64_t stop_after)
        : header_(header),
          out_path_(std::move(out_path)),
          every_ms_(every_ms),
          stop_after_(stop_after) {}

    CheckpointContext(const CheckpointContext&) = delete;
    CheckpointContext& operator=(const CheckpointContext&) = delete;

    /// Loads a snapshot and seeds the completed-slot table from it.
    /// Throws SnapshotError on framing/version problems or when the
    /// snapshot's header does not match this context's (different
    /// scenario, different engine shape).
    void load(const std::string& path);

    /// The restored blob for `slot`, or nullptr when the slot must run.
    /// The pointer stays valid for the context's lifetime (slots are never
    /// erased).
    [[nodiscard]] const std::vector<std::uint8_t>* restored(std::uint64_t slot) const;

    [[nodiscard]] std::uint64_t restored_count() const noexcept {
        return restored_count_;
    }

    /// True once the stop budget fired; tasks not yet started should
    /// return immediately without computing (their result is discarded —
    /// the CheckpointStop unwinds before any reduction).
    [[nodiscard]] bool stopping() const noexcept {
        return stopping_.load(std::memory_order_relaxed);
    }

    /// Records a freshly computed slot outcome.  `sim_ms` is the simulated
    /// time the task covered (its horizon); it drives the every_ms write
    /// throttle.  Persists per the throttle, then throws CheckpointStop
    /// when the stop budget is exhausted.
    void complete_slot(std::uint64_t slot, std::vector<std::uint8_t> blob,
                       std::int64_t sim_ms);

    /// Writes the final snapshot (all slots) when an out path is
    /// configured; call after a run completes normally.
    void save_final();

    [[nodiscard]] const CheckpointHeader& header() const noexcept {
        return header_;
    }
    [[nodiscard]] const std::string& out_path() const noexcept {
        return out_path_;
    }

private:
    void save_locked();  // caller holds mutex_

    CheckpointHeader header_;
    std::string out_path_;
    std::int64_t every_ms_ = 0;
    std::uint64_t stop_after_ = 0;

    mutable std::mutex mutex_;
    // Ordered by slot index so the persisted slot table is byte-identical
    // no matter which worker completed what in which order.
    std::map<std::uint64_t, std::vector<std::uint8_t>> slots_;
    std::uint64_t restored_count_ = 0;
    std::uint64_t fresh_completed_ = 0;
    std::int64_t unsaved_sim_ms_ = 0;
    std::atomic<bool> stopping_{false};
};

}  // namespace nbmg::snapshot
