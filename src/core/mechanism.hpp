// Grouping-mechanism interface and the campaign plan it produces.
//
// A mechanism decides, offline, how a multicast campaign will unfold:
// when each device is paged, whether its DRX cycle is temporarily adjusted
// (DA-SC), whether it gets the mltc paging extension (DR-SI), and when the
// multicast transmission(s) happen.  The CampaignRunner then executes the
// plan on the event-driven cell model, where random access contention and
// paging capacity produce the measured uptime.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "faults/spec.hpp"
#include "nbiot/cell.hpp"
#include "nbiot/drx.hpp"
#include "nbiot/paging.hpp"
#include "nbiot/rach.hpp"
#include "nbiot/radio.hpp"
#include "nbiot/rrc.hpp"
#include "sim/random.hpp"

namespace nbmg::telemetry {
class CampaignSink;
}  // namespace nbmg::telemetry

namespace nbmg::core {

enum class MechanismKind : std::uint8_t {
    dr_sc,    // DRX respecting, standards compliant (greedy window cover)
    da_sc,    // DRX adjusting, standards compliant (single transmission)
    dr_si,    // DRX respecting, standards incompliant (paging extension)
    unicast,  // per-device delivery; the paper's energy reference
    sc_ptm,   // SC-PTM-style periodic monitoring (extension baseline)
};

[[nodiscard]] constexpr const char* to_string(MechanismKind kind) noexcept {
    switch (kind) {
        case MechanismKind::dr_sc: return "DR-SC";
        case MechanismKind::da_sc: return "DA-SC";
        case MechanismKind::dr_si: return "DR-SI";
        case MechanismKind::unicast: return "Unicast";
        case MechanismKind::sc_ptm: return "SC-PTM";
    }
    return "?";
}

/// Mechanism properties as the paper's Table-less Sec. III states them.
[[nodiscard]] constexpr bool standards_compliant(MechanismKind kind) noexcept {
    return kind != MechanismKind::dr_si;
}
[[nodiscard]] constexpr bool respects_drx(MechanismKind kind) noexcept {
    return kind != MechanismKind::da_sc;
}

// Note on DA-SC adapted paging occasions: the paper's Fig. 5 draws the
// adapted occasions as repeating from the PO where the adjustment happened,
// while TS 36.304 derives them from the UE_ID congruence.  With nB = T the
// two pictures coincide exactly — every original PO satisfies the congruence
// of every shorter ladder cycle (nesting), so the "anchored" grid IS the
// formula grid.  See EXPERIMENTS.md, reproduction note R1.

/// Upper bound on campaign strata (see CampaignConfig::strata and
/// core::resolve_strata).  32 keeps every power-of-two stratum count a
/// divisor of the shortest DRX cycle's frame length, so a device's
/// stratum is invariant under the DA-SC ladder adaptation.
inline constexpr std::size_t kMaxStrata = 32;

/// All knobs of one campaign evaluation.  Defaults follow the paper
/// (TI = 10-30 s in commercial networks; we use 20 s) and typical NB-IoT
/// deployments for everything the paper leaves unspecified.
struct CampaignConfig {
    nbiot::SimTime inactivity_timer{10'000};  // TI (commercial networks: 10-30 s)
    /// Gap between a grouping window's end and the transmission start, so
    /// the last-paged device can finish random access even after a RACH
    /// collision and backoff (DESIGN.md §6.1).
    nbiot::SimTime ra_guard{2'000};
    nbiot::TimingModel timing{};
    nbiot::PagingConfig paging{};
    nbiot::RachConfig rach{};
    nbiot::RadioConfig radio{};
    nbiot::SignalingSizes sizes{};
    /// Keep devices connected for TI after reception (off: the paper's
    /// connected-uptime enumeration stops at the data).
    bool include_inactivity_tail = false;
    /// Failure injection: probability a page transmission is not decoded.
    double page_miss_prob = 0.0;
    int max_page_attempts = 3;
    /// Background random-access load (arrivals/s) competing on the RACH.
    double background_ra_per_second = 0.0;
    /// SC-PTM baseline: SC-MCCH monitoring period.
    nbiot::SimTime sc_ptm_mcch_period{10'240};
    /// Failure injection: device churn (leave/rejoin point processes).
    /// Disabled by default; when enabled, every fault draw comes from a
    /// dedicated derive_seed(seed, "faults", device) stream so the
    /// campaign streams — and therefore faults-off results — are
    /// untouched at any --threads/--strata.
    faults::ChurnSpec churn{};
    /// Failure injection: this cell goes dark at the given simulated time
    /// (-1 = no outage).  The event loop stops draining at that instant;
    /// devices that have not completed are reported as stranded.  Set per
    /// cell by the deployment layer from faults.cell_down.
    std::int64_t outage_at_ms = -1;
    /// Intra-cell parallelism *model* knob: the cell's devices are
    /// partitioned into this many paging-frame strata, each running as an
    /// independent sub-cell (own paging/NPRACH partition, 1/K of the
    /// background RA load, own derived seed).  1 = the classic single-cell
    /// model, byte-identical to earlier versions.  Values that are not a
    /// power of two are rounded DOWN to one (resolve_strata); results
    /// depend on the resolved count but never on the thread count used to
    /// execute the strata.
    std::size_t strata = 1;
    /// Telemetry sink of this campaign (telemetry/sink.hpp); not owned,
    /// null = telemetry disabled.  Purely observational: planners and the
    /// runner emit typed records into it, never read it back, so the
    /// CampaignResult is bit-identical whether or not a sink is attached.
    /// Execution plumbing only — never serialized and never compared.
    telemetry::CampaignSink* telemetry = nullptr;

    [[nodiscard]] bool valid() const noexcept {
        return inactivity_timer.count() > 0 && ra_guard.count() >= 0 &&
               timing.valid() && paging.valid() && rach.valid() && radio.valid() &&
               page_miss_prob >= 0.0 && page_miss_prob < 1.0 && max_page_attempts >= 1 &&
               background_ra_per_second >= 0.0 && sc_ptm_mcch_period.count() > 0 &&
               churn.valid() && (outage_at_ms == -1 || outage_at_ms >= 1) &&
               strata >= 1 && strata <= kMaxStrata;
    }
};

/// DA-SC: page the device at `adjust_page_at` (a PO of its original cycle)
/// and reconfigure it to `adapted_cycle`; the original cycle is restored
/// right after the multicast reception.
struct DrxAdjustment {
    nbiot::SimTime adjust_page_at{0};
    nbiot::DrxCycle adapted_cycle = nbiot::DrxCycle::from_index(0);
};

/// DR-SI: deliver the mltc extension at `notify_po_at`; the device wakes at
/// `wake_at` (its T322 expiry, uniform in [t - TI, t)).
struct MltcNotification {
    nbiot::SimTime notify_po_at{0};
    nbiot::SimTime wake_at{0};
};

/// Per-device campaign script.
struct DeviceSchedule {
    static constexpr std::size_t kUnserved = static_cast<std::size_t>(-1);

    nbiot::DeviceId device;
    std::size_t transmission = kUnserved;  // index into MulticastPlan::transmissions
    std::optional<nbiot::SimTime> page_at;  // normal page triggering the connection
    std::optional<DrxAdjustment> adjustment;    // DA-SC only
    std::optional<MltcNotification> mltc;       // DR-SI only

    [[nodiscard]] bool served() const noexcept { return transmission != kUnserved; }
};

struct PlannedTransmission {
    nbiot::SimTime start{0};
    /// Unicast semantics: the transmission begins when its (single) device
    /// connects, rather than at a fixed instant.
    bool starts_on_ready = false;
    std::vector<nbiot::DeviceId> devices;
};

struct MulticastPlan {
    MechanismKind kind = MechanismKind::unicast;
    std::vector<PlannedTransmission> transmissions;
    std::vector<DeviceSchedule> schedules;  // index == device id
    std::vector<nbiot::DeviceId> unserved;  // paging capacity / timing casualties
    /// The planner's reference time t (DA-SC/DR-SI transmission instant
    /// reference; DR-SC planning-horizon end).
    nbiot::SimTime planning_reference{0};
    /// Total paging records + extensions the plan sends.
    std::size_t paging_entries = 0;
};

/// Planner interface.  `devices` must have dense ids 0..n-1 in order.
class GroupingMechanism {
public:
    virtual ~GroupingMechanism() = default;

    [[nodiscard]] virtual MechanismKind kind() const noexcept = 0;
    [[nodiscard]] virtual std::string_view name() const noexcept = 0;

    [[nodiscard]] virtual MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                             const CampaignConfig& config,
                                             sim::RandomStream& rng) const = 0;
};

[[nodiscard]] std::unique_ptr<GroupingMechanism> make_mechanism(MechanismKind kind);

/// Longest cycle in the population (planning horizon = twice this).
[[nodiscard]] nbiot::DrxCycle population_max_cycle(
    std::span<const nbiot::UeSpec> devices);

/// Validates plan invariants (dense schedules, one transmission per served
/// device, single transmission for DA-SC/DR-SI, ...).  Throws on violation;
/// used by tests and debug builds.
void validate_plan(const MulticastPlan& plan, std::span<const nbiot::UeSpec> devices);

}  // namespace nbmg::core
