// Campaign execution: runs a MulticastPlan on the event-driven cell and
// measures what the paper measures — per-device uptime by mode, number of
// multicast transmissions, and bytes on the air interface.
//
// The runner plays the eNB role: it delivers the planned pages (with
// optional loss injection and bounded re-paging), starts transmissions,
// recovers devices that miss their transmission (dedicated follow-up
// delivery, counted separately), and verifies reception.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/mechanism.hpp"

namespace nbmg::core {

struct DeviceOutcome {
    nbiot::UeSpec spec;
    nbiot::EnergyAccount energy;
    bool received = false;
    bool recovered = false;  // served by a recovery transmission
    std::uint64_t po_count = 0;
    int rach_attempts = 0;
    std::optional<nbiot::SimTime> connected_at;
    std::optional<nbiot::SimTime> released_at;
};

struct CampaignResult {
    MechanismKind kind = MechanismKind::unicast;
    std::size_t planned_transmissions = 0;
    std::size_t recovery_transmissions = 0;
    std::size_t paging_messages = 0;
    std::size_t paging_entries = 0;
    std::size_t unserved = 0;
    std::int64_t payload_bytes = 0;
    std::int64_t bytes_on_air = 0;
    nbiot::SimTime observation_horizon{0};
    std::uint64_t rach_attempts = 0;
    std::uint64_t rach_collisions = 0;
    std::uint64_t rach_failures = 0;
    /// Failure-injection tallies (zero on faults-off runs): devices left
    /// incomplete by a cell outage, payload bytes re-sent because a fault
    /// (churn departure) made a device miss its delivery, and churn
    /// departure/rejoin counts.
    std::size_t stranded = 0;
    std::int64_t redelivery_bytes = 0;
    std::size_t churn_leaves = 0;
    std::vector<DeviceOutcome> devices;

    [[nodiscard]] std::size_t total_transmissions() const noexcept {
        return planned_transmissions + recovery_transmissions;
    }
    [[nodiscard]] bool all_received() const noexcept;
    [[nodiscard]] std::size_t received_count() const noexcept;
};

/// Resolves a requested stratum count to the executed one: the largest
/// power of two <= `requested`, capped at kMaxStrata (3 -> 2, 7 -> 4,
/// 31 -> 16, 100 -> 32).  Powers of two keep the stratum key — the
/// device's paging-frame residue — invariant under the DA-SC ladder
/// adaptation, because every DRX cycle's frame length is a multiple of
/// every allowed stratum count.  Throws on 0.
[[nodiscard]] std::size_t resolve_strata(std::size_t requested);

/// Stratum of a device under a `strata`-way partition: the frame index of
/// its paging occasion within the DRX cycle, mod `strata`.  A pure
/// function of (IMSI, cycle, paging config); devices of the same stratum
/// share paging frames, so the partition maps onto a real carrier split.
/// `strata` must already be resolved (power of two >= 1).
[[nodiscard]] std::size_t paging_stratum(const nbiot::PagingSchedule& paging,
                                         const nbiot::UeSpec& spec,
                                         std::size_t strata);

class CampaignRunner {
public:
    /// `strata_threads` is the worker-pool width used to execute the
    /// config's strata (resolve_threads semantics: 0 = hardware).  A pure
    /// execution knob: results are bit-identical at any thread count.
    explicit CampaignRunner(CampaignConfig config, std::size_t strata_threads = 1);

    /// Executes `plan` over `devices` (payload of `payload_bytes`) with all
    /// UEs monitoring paging occasions until `observation_horizon`.  Use the
    /// same horizon across compared mechanisms so light-sleep uptime is
    /// directly comparable (see recommended_horizon).
    [[nodiscard]] CampaignResult run(const MulticastPlan& plan,
                                     std::span<const nbiot::UeSpec> devices,
                                     std::int64_t payload_bytes,
                                     nbiot::SimTime observation_horizon,
                                     std::uint64_t seed) const;

    [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

private:
    CampaignConfig config_;
    std::size_t strata_threads_ = 1;
};

/// Horizon long enough for every mechanism (incl. DR-SC's last window and
/// the slowest CE level's reception) on this population and payload.
[[nodiscard]] nbiot::SimTime recommended_horizon(std::span<const nbiot::UeSpec> devices,
                                                 const CampaignConfig& config,
                                                 std::int64_t payload_bytes);

/// Convenience: plan with `mechanism` and run, deriving the horizon.
/// `strata_threads` as in CampaignRunner.
[[nodiscard]] CampaignResult plan_and_run(const GroupingMechanism& mechanism,
                                          std::span<const nbiot::UeSpec> devices,
                                          const CampaignConfig& config,
                                          std::int64_t payload_bytes,
                                          std::uint64_t seed,
                                          std::size_t strata_threads = 1);

}  // namespace nbmg::core
