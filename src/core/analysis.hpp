// Closed-form expectations for the paper's metrics.
//
// These formulas make the simulator auditable: the integration tests check
// that the measured uptime agrees with the arithmetic, and the benches can
// report "theory vs simulation".  All formulas use the same configuration
// objects as the simulator, so a config change moves both together.
#pragma once

#include <span>

#include "core/mechanism.hpp"
#include "traffic/population.hpp"

namespace nbmg::core::analysis {

/// Expected page-to-connected latency with an uncontended RACH: paging
/// decode, processing, half an NPRACH period of window alignment, one
/// msg1-msg4 exchange, and RRC setup.
[[nodiscard]] double expected_connect_latency_ms(const CampaignConfig& config);

/// Expected connected-mode uptime (ms) of one unicast delivery: RA active
/// time + setup + payload airtime + release.  Waiting time is zero by the
/// paper's definition of the baseline.
[[nodiscard]] double expected_unicast_connected_ms(const CampaignConfig& config,
                                                   std::int64_t payload_bytes,
                                                   nbiot::CeLevel level);

/// Expected connected-wait bucket (ms) of a device served by a single
/// fixed-time transmission when its wake/page instant is uniform over the
/// TI window (DR-SI's T322, DA-SC's adapted PO): TI/2 + guard minus the
/// connect latency spent getting there.
[[nodiscard]] double expected_window_wait_ms(const CampaignConfig& config);

/// Exact light-sleep uptime (ms) of one device over `horizon` under its
/// own cycle: monitored POs (strictly after t = 0) plus `paging_decodes`
/// message receptions and `mltc_decodes` extended receptions.
[[nodiscard]] double exact_light_sleep_ms(const CampaignConfig& config,
                                          const nbiot::UeSpec& device,
                                          nbiot::SimTime horizon, int paging_decodes,
                                          int mltc_decodes);

/// Slot-occupancy estimate of DR-SC's transmissions-per-device ratio: each
/// class contributes m(1 - (1 - 1/m)^b) occupied TI-slots, where m =
/// cycle/TI slots and b = expected deployment batches in the class.  This
/// ignores cross-class window sharing and greedy anchor optimization, so
/// it *upper-bounds* the simulated ratio (useful as a sanity envelope, not
/// as a predictor; see EXPERIMENTS.md R2).
[[nodiscard]] double slot_model_transmission_ratio(
    const traffic::PopulationProfile& profile, std::size_t device_count,
    const CampaignConfig& config);

}  // namespace nbmg::core::analysis
