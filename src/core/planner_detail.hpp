// Shared helpers for the planners (internal header).
#pragma once

#include "core/mechanism.hpp"
#include "nbiot/frames.hpp"

namespace nbmg::core::detail {

/// The paper's reference transmission time: t >= 2 * maxDRX so every device
/// has at least one PO before t (Sec. III-B); aligned to a frame boundary.
[[nodiscard]] inline nbiot::SimTime reference_time(
    std::span<const nbiot::UeSpec> devices) {
    const auto max_drx = population_max_cycle(devices);
    return nbiot::align_up_to_frame(nbiot::SimTime{2 * max_drx.period_ms()});
}

/// Conservative planning estimate of page-to-connected latency: paging
/// decode, processing, one full RACH window wait plus the exchange, and RRC
/// setup.  Used only for feasibility spacing, never for accounting.
[[nodiscard]] inline nbiot::SimTime nominal_connect_duration(
    const CampaignConfig& config) {
    return config.timing.paging_decode + config.timing.page_to_rach +
           config.rach.window_period + config.rach.attempt_active_time() +
           config.timing.rrc_setup;
}

/// Far-future deadline for paging placements that may slip (unicast,
/// DR-SC fallback).
[[nodiscard]] inline nbiot::SimTime open_deadline(
    std::span<const nbiot::UeSpec> devices) {
    return nbiot::SimTime{8 * population_max_cycle(devices).period_ms()};
}

}  // namespace nbmg::core::detail
