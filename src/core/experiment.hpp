// Multi-run experiment driver: repeats campaigns across seeds and
// aggregates the paper's metrics.  Every benchmark binary is a thin shell
// around these helpers.
//
// Runs fan out over the sweep engine (core/sweep.hpp): every run derives
// its RNG streams from the base seed and its run index alone, and the
// per-run partial statistics are merged in run order, so the aggregates
// are bit-identical for any thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"
#include "traffic/population.hpp"

namespace nbmg::telemetry {
class Collector;
}  // namespace nbmg::telemetry

namespace nbmg::snapshot {
class CheckpointContext;
}  // namespace nbmg::snapshot

namespace nbmg::core {

/// Per-run device populations generated once and shared across every
/// mechanism and every sweep point that uses the same (profile,
/// device_count, base_seed).  The generating parameters travel with the
/// specs so run_comparison can reject a set generated for a different
/// setup instead of silently producing non-reproducible aggregates.
struct ComparisonPopulations {
    std::string profile_name;
    std::size_t device_count = 0;
    std::uint64_t base_seed = 0;
    std::vector<std::vector<nbiot::UeSpec>> runs;  // index: runs[run]
    /// Per-device profile class (parallel to `runs`): class_indices[run][d]
    /// is the index into PopulationProfile::classes that generated device d.
    /// run_comparison ignores it; the multicell deployment layer feeds it to
    /// class-affinity assignment policies.
    std::vector<std::vector<std::uint32_t>> class_indices;
};
using SharedPopulations = std::shared_ptr<const ComparisonPopulations>;

/// Precomputes the populations run_comparison would generate for runs
/// 0..runs-1, using the identical RNG stream derivation
/// (stream("population", run) from base_seed) — aggregates computed from a
/// shared set are bit-identical to regenerating per call.
[[nodiscard]] SharedPopulations generate_comparison_populations(
    const traffic::PopulationProfile& profile, std::size_t device_count,
    std::size_t runs, std::uint64_t base_seed);

/// Engine-level setup of the single-cell comparison.  Deprecated as a
/// front door: new callers should describe the workload declaratively with
/// scenario::ScenarioSpec and call scenario::run_scenario, which converts
/// through scenario::to_comparison_setup (the only adapter) and reaches
/// run_comparison with bit-identical aggregates.  Kept because it is the
/// struct the engine itself consumes and out-of-tree callers may hold.
struct ComparisonSetup {
    traffic::PopulationProfile profile;
    std::size_t device_count = 500;
    std::int64_t payload_bytes = 100 * 1024;
    CampaignConfig config{};
    std::size_t runs = 100;
    std::uint64_t base_seed = 42;
    /// Worker threads for the run sweep; 0 = one per hardware thread.
    /// Results do not depend on this value.
    std::size_t threads = 0;
    std::vector<MechanismKind> mechanisms{MechanismKind::dr_sc, MechanismKind::da_sc,
                                          MechanismKind::dr_si};
    /// Optional: precomputed per-run populations (see
    /// generate_comparison_populations).  Must have been generated for
    /// this profile, device_count and base_seed with at least `runs`
    /// entries; when null, each run generates its own population.
    SharedPopulations populations;
    /// Optional telemetry collector (telemetry/collector.hpp); not owned,
    /// null = telemetry disabled.  Must be sized for at least `runs` runs,
    /// 1 cell and mechanisms.size() + 1 campaigns (slot 0 = unicast).
    /// Campaigns write disjoint pre-allocated slots, so attaching a
    /// collector changes no aggregate and no RNG draw.
    telemetry::Collector* telemetry = nullptr;
    /// Optional checkpoint context (snapshot/checkpoint.hpp); not owned,
    /// null = checkpointing disabled.  Runs listed as completed in the
    /// context are restored from their snapshot blobs (including their
    /// telemetry sinks) instead of re-executing; freshly computed runs are
    /// recorded back.  Attaching a context changes no aggregate and no RNG
    /// draw — every restored blob is the bit-exact outcome the run would
    /// have produced.
    snapshot::CheckpointContext* checkpoint = nullptr;
};

/// Aggregated results of one mechanism across runs.
struct MechanismStats {
    MechanismKind kind = MechanismKind::unicast;
    stats::Summary light_sleep_increase;       // aggregate ratio - 1 per run
    stats::Summary connected_increase;         // aggregate ratio - 1 per run
    stats::Summary transmissions;              // total transmissions per run
    stats::Summary transmissions_per_device;   // ratio per run
    stats::Summary bytes_ratio;                // bytes on air vs unicast
    stats::Summary recovery_transmissions;     // robustness metric
    stats::Summary unreceived_devices;         // devices left without payload
    stats::Summary mean_connected_seconds;     // absolute per-device mean
    stats::Summary mean_light_sleep_seconds;   // absolute per-device mean
    stats::Summary completion_p99_ms;          // fleet completion tail per run
    stats::Summary redelivery_bytes;           // fault re-delivery overhead
    stats::Summary stranded_devices;           // incomplete at cell outage

    /// Field-wise stats::Summary::merge; `other.kind` must match.
    void merge(const MechanismStats& other) noexcept;
};

struct ComparisonOutcome {
    std::vector<MechanismStats> mechanisms;  // same order as setup.mechanisms
    MechanismStats unicast;                  // the reference's absolute stats
};

/// Runs `setup.mechanisms` (plus the unicast reference) `setup.runs` times
/// on fresh populations and aggregates the relative metrics run by run.
[[nodiscard]] ComparisonOutcome run_comparison(const ComparisonSetup& setup);

/// Fig. 7 fast path: DR-SC is planned (not executed) because the figure
/// only needs the transmission count.  Returns per-run transmission totals.
struct TransmissionSweepPoint {
    std::size_t device_count = 0;
    stats::Summary transmissions;
    stats::Summary transmissions_per_device;
};

/// Sweeps DR-SC planning over `device_counts x runs`, fanning the whole
/// grid across `threads` workers.  One result per device count, in order.
[[nodiscard]] std::vector<TransmissionSweepPoint> drsc_transmission_sweep(
    const traffic::PopulationProfile& profile,
    std::span<const std::size_t> device_counts, const CampaignConfig& config,
    std::size_t runs, std::uint64_t base_seed, std::size_t threads = 0);

[[nodiscard]] TransmissionSweepPoint drsc_transmission_point(
    const traffic::PopulationProfile& profile, std::size_t device_count,
    const CampaignConfig& config, std::size_t runs, std::uint64_t base_seed,
    std::size_t threads = 0);

}  // namespace nbmg::core
