// Multi-run experiment driver: repeats campaigns across seeds and
// aggregates the paper's metrics.  Every benchmark binary is a thin shell
// around these helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "core/campaign.hpp"
#include "core/report.hpp"
#include "stats/summary.hpp"
#include "traffic/population.hpp"

namespace nbmg::core {

struct ComparisonSetup {
    traffic::PopulationProfile profile;
    std::size_t device_count = 500;
    std::int64_t payload_bytes = 100 * 1024;
    CampaignConfig config{};
    std::size_t runs = 100;
    std::uint64_t base_seed = 42;
    std::vector<MechanismKind> mechanisms{MechanismKind::dr_sc, MechanismKind::da_sc,
                                          MechanismKind::dr_si};
};

/// Aggregated results of one mechanism across runs.
struct MechanismStats {
    MechanismKind kind = MechanismKind::unicast;
    stats::Summary light_sleep_increase;       // aggregate ratio - 1 per run
    stats::Summary connected_increase;         // aggregate ratio - 1 per run
    stats::Summary transmissions;              // total transmissions per run
    stats::Summary transmissions_per_device;   // ratio per run
    stats::Summary bytes_ratio;                // bytes on air vs unicast
    stats::Summary recovery_transmissions;     // robustness metric
    stats::Summary unreceived_devices;         // devices left without payload
    stats::Summary mean_connected_seconds;     // absolute per-device mean
    stats::Summary mean_light_sleep_seconds;   // absolute per-device mean
};

struct ComparisonOutcome {
    std::vector<MechanismStats> mechanisms;  // same order as setup.mechanisms
    MechanismStats unicast;                  // the reference's absolute stats
};

/// Runs `setup.mechanisms` (plus the unicast reference) `setup.runs` times
/// on fresh populations and aggregates the relative metrics run by run.
[[nodiscard]] ComparisonOutcome run_comparison(const ComparisonSetup& setup);

/// Fig. 7 fast path: DR-SC is planned (not executed) because the figure
/// only needs the transmission count.  Returns per-run transmission totals.
struct TransmissionSweepPoint {
    std::size_t device_count = 0;
    stats::Summary transmissions;
    stats::Summary transmissions_per_device;
};

[[nodiscard]] TransmissionSweepPoint drsc_transmission_point(
    const traffic::PopulationProfile& profile, std::size_t device_count,
    const CampaignConfig& config, std::size_t runs, std::uint64_t base_seed);

}  // namespace nbmg::core
