#include "core/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace nbmg::core {

std::size_t resolve_threads(std::size_t requested) noexcept {
    if (requested != 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn) const {
    if (count == 0) return;
    const std::size_t workers = std::min(threads_, count);
    if (workers <= 1) {
        for (std::size_t i = 0; i < count; ++i) fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mutex;

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) return;
            try {
                fn(i);
            } catch (...) {
                const std::scoped_lock lock(error_mutex);
                if (!first_error) first_error = std::current_exception();
            }
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers - 1);
    try {
        for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(worker);
    } catch (...) {
        // Thread spawn failed: stop handing out work, drain the threads that
        // did start, then report the failure (never std::terminate).
        next.store(count, std::memory_order_relaxed);
        for (std::thread& t : pool) t.join();
        throw;
    }
    worker();  // the calling thread participates
    for (std::thread& t : pool) t.join();

    if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nbmg::core
