// The five planners.  DR-SC, DA-SC and DR-SI are the paper's mechanisms
// (Sec. III); Unicast is its energy reference; SC-PTM is the pre-[3]
// baseline included as an extension.
#pragma once

#include "core/mechanism.hpp"

namespace nbmg::core {

/// Sec. III-A: respects every DRX cycle; greedy window cover over paging
/// occasions (set-cover heuristic, random tie-break); one transmission per
/// chosen window.
class DrScMechanism final : public GroupingMechanism {
public:
    [[nodiscard]] MechanismKind kind() const noexcept override {
        return MechanismKind::dr_sc;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "DR-SC"; }
    [[nodiscard]] MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                     const CampaignConfig& config,
                                     sim::RandomStream& rng) const override;
};

/// Sec. III-B: picks t = 2*maxDRX; devices without a PO in [t-TI, t) are
/// paged at their last PO before t-TI and reconfigured to the longest
/// ladder cycle that creates one; exactly one transmission.
class DaScMechanism final : public GroupingMechanism {
public:
    [[nodiscard]] MechanismKind kind() const noexcept override {
        return MechanismKind::da_sc;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "DA-SC"; }
    [[nodiscard]] MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                     const CampaignConfig& config,
                                     sim::RandomStream& rng) const override;
};

/// Sec. III-C: devices without a PO in the window get the mltc paging
/// extension early and wake at a random T322 expiry inside the window;
/// exactly one transmission.
class DrSiMechanism final : public GroupingMechanism {
public:
    [[nodiscard]] MechanismKind kind() const noexcept override {
        return MechanismKind::dr_si;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "DR-SI"; }
    [[nodiscard]] MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                     const CampaignConfig& config,
                                     sim::RandomStream& rng) const override;
};

/// The paper's reference: every device is paged at its own next PO and
/// receives a private copy immediately — minimal energy, maximal bandwidth.
class UnicastBaseline final : public GroupingMechanism {
public:
    [[nodiscard]] MechanismKind kind() const noexcept override {
        return MechanismKind::unicast;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "Unicast"; }
    [[nodiscard]] MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                     const CampaignConfig& config,
                                     sim::RandomStream& rng) const override;
};

/// SC-PTM-style delivery: devices monitor the SC-MCCH every modification
/// period (forever, whether or not data exists) and receive the multicast
/// in idle mode without connecting.
class ScPtmBaseline final : public GroupingMechanism {
public:
    [[nodiscard]] MechanismKind kind() const noexcept override {
        return MechanismKind::sc_ptm;
    }
    [[nodiscard]] std::string_view name() const noexcept override { return "SC-PTM"; }
    [[nodiscard]] MulticastPlan plan(std::span<const nbiot::UeSpec> devices,
                                     const CampaignConfig& config,
                                     sim::RandomStream& rng) const override;
};

}  // namespace nbmg::core
