#include "core/analysis.hpp"

#include <cmath>

#include "nbiot/paging.hpp"
#include "nbiot/radio.hpp"

namespace nbmg::core::analysis {

double expected_connect_latency_ms(const CampaignConfig& config) {
    const double decode = static_cast<double>(config.timing.paging_decode.count());
    const double gap = static_cast<double>(config.timing.page_to_rach.count());
    const double window_wait =
        static_cast<double>(config.rach.window_period.count()) / 2.0;
    const double exchange = static_cast<double>(config.rach.attempt_active_time().count());
    const double setup = static_cast<double>(config.timing.rrc_setup.count());
    return decode + gap + window_wait + exchange + setup;
}

double expected_unicast_connected_ms(const CampaignConfig& config,
                                     std::int64_t payload_bytes,
                                     nbiot::CeLevel level) {
    const nbiot::RadioModel radio(config.radio);
    const double exchange = static_cast<double>(config.rach.attempt_active_time().count());
    const double setup = static_cast<double>(config.timing.rrc_setup.count());
    const double airtime =
        static_cast<double>(radio.downlink_airtime(payload_bytes, level).count());
    const double release = static_cast<double>(config.timing.rrc_release.count());
    const double tail = config.include_inactivity_tail
                            ? static_cast<double>(config.inactivity_timer.count())
                            : 0.0;
    return exchange + setup + airtime + release + tail;
}

double expected_window_wait_ms(const CampaignConfig& config) {
    const double half_window =
        static_cast<double>(config.inactivity_timer.count()) / 2.0;
    const double guard = static_cast<double>(config.ra_guard.count());
    // Time spent getting connected is not waiting.
    const double connecting = expected_connect_latency_ms(config) -
                              static_cast<double>(config.timing.paging_decode.count()) -
                              static_cast<double>(config.timing.rrc_setup.count());
    return half_window + guard - connecting -
           static_cast<double>(config.timing.rrc_setup.count());
}

double exact_light_sleep_ms(const CampaignConfig& config, const nbiot::UeSpec& device,
                            nbiot::SimTime horizon, int paging_decodes,
                            int mltc_decodes) {
    const nbiot::PagingSchedule paging(config.paging);
    // The UE monitoring loop fires on POs strictly after t = 0 and strictly
    // before the horizon.
    const std::int64_t pos = paging.po_count_in_range(nbiot::SimTime{1}, horizon,
                                                      device.imsi, device.cycle);
    double ms = static_cast<double>(pos) *
                static_cast<double>(config.timing.po_monitor.count());
    ms += static_cast<double>(paging_decodes) *
          static_cast<double>(config.timing.paging_decode.count());
    ms += static_cast<double>(mltc_decodes) *
          static_cast<double>((config.timing.paging_decode +
                               config.timing.mltc_extension_extra)
                                  .count());
    return ms;
}

double slot_model_transmission_ratio(const traffic::PopulationProfile& profile,
                                     std::size_t device_count,
                                     const CampaignConfig& config) {
    const double ti = static_cast<double>(config.inactivity_timer.count());
    double total_share = 0.0;
    for (const auto& cls : profile.classes) total_share += cls.share;

    double expected_windows = 0.0;
    for (const auto& cls : profile.classes) {
        double cycle_weight_total = 0.0;
        for (const auto& [cycle, w] : cls.cycle_weights) cycle_weight_total += w;
        for (const auto& [cycle, w] : cls.cycle_weights) {
            const double devices = static_cast<double>(device_count) *
                                   (cls.share / total_share) *
                                   (w / cycle_weight_total);
            // Deployment batches share a slot.
            const double batches = devices / profile.batch_mean;
            const double slots =
                std::max(1.0, static_cast<double>(cycle.period_ms()) / ti);
            expected_windows +=
                slots * (1.0 - std::pow(1.0 - 1.0 / slots, batches));
        }
    }
    return expected_windows / static_cast<double>(device_count);
}

}  // namespace nbmg::core::analysis
