#include "core/experiment.hpp"

#include <stdexcept>

#include "core/planners.hpp"

namespace nbmg::core {

ComparisonOutcome run_comparison(const ComparisonSetup& setup) {
    if (setup.runs == 0 || setup.device_count == 0) {
        throw std::invalid_argument("run_comparison: empty setup");
    }

    ComparisonOutcome outcome;
    outcome.mechanisms.resize(setup.mechanisms.size());
    std::vector<MechanismStats>& stats = outcome.mechanisms;
    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        stats[m].kind = setup.mechanisms[m];
    }
    outcome.unicast.kind = MechanismKind::unicast;

    const sim::RngFactory rng_factory(setup.base_seed);
    const UnicastBaseline unicast;
    const CampaignRunner runner(setup.config);

    for (std::size_t run = 0; run < setup.runs; ++run) {
        sim::RandomStream pop_rng = rng_factory.stream("population", run);
        const auto population =
            traffic::generate_population(setup.profile, setup.device_count, pop_rng);
        const auto specs = traffic::to_specs(population);
        const nbiot::SimTime horizon =
            recommended_horizon(specs, setup.config, setup.payload_bytes);
        const std::uint64_t run_seed = sim::derive_seed(setup.base_seed, "run", run);

        sim::RandomStream unicast_rng = rng_factory.stream("plan-unicast", run);
        const MulticastPlan unicast_plan =
            unicast.plan(specs, setup.config, unicast_rng);
        const CampaignResult reference =
            runner.run(unicast_plan, specs, setup.payload_bytes, horizon, run_seed);

        outcome.unicast.transmissions.add(
            static_cast<double>(reference.total_transmissions()));
        outcome.unicast.transmissions_per_device.add(
            static_cast<double>(reference.total_transmissions()) /
            static_cast<double>(reference.devices.size()));
        outcome.unicast.bytes_ratio.add(1.0);
        outcome.unicast.recovery_transmissions.add(
            static_cast<double>(reference.recovery_transmissions));
        outcome.unicast.unreceived_devices.add(static_cast<double>(
            reference.devices.size() - reference.received_count()));
        outcome.unicast.mean_connected_seconds.add(mean_connected_ms(reference) / 1000.0);
        outcome.unicast.mean_light_sleep_seconds.add(mean_light_sleep_ms(reference) /
                                                     1000.0);

        for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
            const auto mechanism = make_mechanism(setup.mechanisms[m]);
            sim::RandomStream plan_rng =
                rng_factory.stream(mechanism->name(), run);
            const MulticastPlan plan = mechanism->plan(specs, setup.config, plan_rng);
            const CampaignResult result =
                runner.run(plan, specs, setup.payload_bytes, horizon, run_seed);

            const RelativeUptime rel = relative_uptime(result, reference);
            const BandwidthComparison bw = bandwidth_comparison(result, reference);

            MechanismStats& out = stats[m];
            out.light_sleep_increase.add(rel.light_sleep_increase);
            out.connected_increase.add(rel.connected_increase);
            out.transmissions.add(static_cast<double>(result.total_transmissions()));
            out.transmissions_per_device.add(bw.transmissions_per_device);
            out.bytes_ratio.add(bw.bytes_on_air_ratio);
            out.recovery_transmissions.add(
                static_cast<double>(result.recovery_transmissions));
            out.unreceived_devices.add(static_cast<double>(
                result.devices.size() - result.received_count()));
            out.mean_connected_seconds.add(mean_connected_ms(result) / 1000.0);
            out.mean_light_sleep_seconds.add(mean_light_sleep_ms(result) / 1000.0);
        }
    }
    return outcome;
}

TransmissionSweepPoint drsc_transmission_point(const traffic::PopulationProfile& profile,
                                               std::size_t device_count,
                                               const CampaignConfig& config,
                                               std::size_t runs,
                                               std::uint64_t base_seed) {
    if (runs == 0 || device_count == 0) {
        throw std::invalid_argument("drsc_transmission_point: empty setup");
    }
    TransmissionSweepPoint point;
    point.device_count = device_count;

    const sim::RngFactory rng_factory(base_seed);
    const DrScMechanism dr_sc;
    for (std::size_t run = 0; run < runs; ++run) {
        sim::RandomStream pop_rng = rng_factory.stream("population", run);
        const auto population =
            traffic::generate_population(profile, device_count, pop_rng);
        const auto specs = traffic::to_specs(population);
        sim::RandomStream plan_rng = rng_factory.stream("plan-drsc", run);
        const MulticastPlan plan = dr_sc.plan(specs, config, plan_rng);
        const auto tx = static_cast<double>(plan.transmissions.size());
        point.transmissions.add(tx);
        point.transmissions_per_device.add(tx / static_cast<double>(device_count));
    }
    return point;
}

}  // namespace nbmg::core
