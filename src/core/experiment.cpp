#include "core/experiment.hpp"

#include <stdexcept>

#include "core/planners.hpp"
#include "core/sweep.hpp"
#include "snapshot/checkpoint.hpp"
#include "snapshot/codec.hpp"
#include "telemetry/collector.hpp"

namespace nbmg::core {

void MechanismStats::merge(const MechanismStats& other) noexcept {
    light_sleep_increase.merge(other.light_sleep_increase);
    connected_increase.merge(other.connected_increase);
    transmissions.merge(other.transmissions);
    transmissions_per_device.merge(other.transmissions_per_device);
    bytes_ratio.merge(other.bytes_ratio);
    recovery_transmissions.merge(other.recovery_transmissions);
    unreceived_devices.merge(other.unreceived_devices);
    mean_connected_seconds.merge(other.mean_connected_seconds);
    mean_light_sleep_seconds.merge(other.mean_light_sleep_seconds);
    completion_p99_ms.merge(other.completion_p99_ms);
    redelivery_bytes.merge(other.redelivery_bytes);
    stranded_devices.merge(other.stranded_devices);
}

namespace {

/// One run's contribution: single-sample summaries, merged in run order by
/// the caller.
struct RunContribution {
    MechanismStats unicast;
    std::vector<MechanismStats> mechanisms;
    /// Simulated time this run covered; drives the checkpoint write
    /// throttle, never serialized and never reduced.
    std::int64_t horizon_ms = 0;
};

RunContribution comparison_run(const ComparisonSetup& setup, std::size_t run) {
    RunContribution contrib;
    contrib.unicast.kind = MechanismKind::unicast;
    contrib.mechanisms.resize(setup.mechanisms.size());

    const sim::RngFactory rng_factory(setup.base_seed);
    const UnicastBaseline unicast;
    // The worker pool either fans runs (outer sweep) or, when there is
    // only one run, this run's strata — never both at once, so the
    // thread budget is not oversubscribed.
    const std::size_t strata_threads = setup.runs == 1 ? setup.threads : 1;

    // Telemetry: each campaign gets a config copy pointing at its own
    // pre-allocated collector slot (0 = unicast reference, m+1 = the m-th
    // mechanism), so concurrent runs write disjoint sinks.  The pointer is
    // the only field that differs; plans and results are bit-identical
    // with or without a collector.
    const auto campaign_config = [&](std::size_t campaign_slot) {
        CampaignConfig config = setup.config;
        if (setup.telemetry != nullptr) {
            config.telemetry = setup.telemetry->sink(run, 0, campaign_slot);
        }
        return config;
    };

    // A shared population set (same stream derivation, precomputed once)
    // skips the per-run generation cost; results are bit-identical.
    std::vector<nbiot::UeSpec> generated;
    if (!setup.populations) {
        sim::RandomStream pop_rng = rng_factory.stream("population", run);
        generated = traffic::to_specs(
            traffic::generate_population(setup.profile, setup.device_count, pop_rng));
    }
    const std::span<const nbiot::UeSpec> specs =
        setup.populations
            ? std::span<const nbiot::UeSpec>(setup.populations->runs[run])
            : std::span<const nbiot::UeSpec>(generated);
    const nbiot::SimTime horizon =
        recommended_horizon(specs, setup.config, setup.payload_bytes);
    contrib.horizon_ms = horizon.count();
    const std::uint64_t run_seed = sim::derive_seed(setup.base_seed, "run", run);

    sim::RandomStream unicast_rng = rng_factory.stream("plan-unicast", run);
    const CampaignConfig unicast_config = campaign_config(0);
    const MulticastPlan unicast_plan = unicast.plan(specs, unicast_config, unicast_rng);
    const CampaignResult reference =
        CampaignRunner(unicast_config, strata_threads)
            .run(unicast_plan, specs, setup.payload_bytes, horizon, run_seed);

    contrib.unicast.transmissions.add(
        static_cast<double>(reference.total_transmissions()));
    contrib.unicast.transmissions_per_device.add(
        static_cast<double>(reference.total_transmissions()) /
        static_cast<double>(reference.devices.size()));
    contrib.unicast.bytes_ratio.add(1.0);
    contrib.unicast.recovery_transmissions.add(
        static_cast<double>(reference.recovery_transmissions));
    contrib.unicast.unreceived_devices.add(static_cast<double>(
        reference.devices.size() - reference.received_count()));
    contrib.unicast.mean_connected_seconds.add(mean_connected_ms(reference) / 1000.0);
    contrib.unicast.mean_light_sleep_seconds.add(mean_light_sleep_ms(reference) /
                                                 1000.0);
    contrib.unicast.completion_p99_ms.add(completion_p99_ms(reference));
    contrib.unicast.redelivery_bytes.add(
        static_cast<double>(reference.redelivery_bytes));
    contrib.unicast.stranded_devices.add(static_cast<double>(reference.stranded));

    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        const auto mechanism = make_mechanism(setup.mechanisms[m]);
        sim::RandomStream plan_rng = rng_factory.stream(mechanism->name(), run);
        const CampaignConfig mech_config = campaign_config(m + 1);
        const MulticastPlan plan = mechanism->plan(specs, mech_config, plan_rng);
        const CampaignResult result =
            CampaignRunner(mech_config, strata_threads)
                .run(plan, specs, setup.payload_bytes, horizon, run_seed);

        const RelativeUptime rel = relative_uptime(result, reference);
        const BandwidthComparison bw = bandwidth_comparison(result, reference);

        MechanismStats& out = contrib.mechanisms[m];
        out.kind = setup.mechanisms[m];
        out.light_sleep_increase.add(rel.light_sleep_increase);
        out.connected_increase.add(rel.connected_increase);
        out.transmissions.add(static_cast<double>(result.total_transmissions()));
        out.transmissions_per_device.add(bw.transmissions_per_device);
        out.bytes_ratio.add(bw.bytes_on_air_ratio);
        out.recovery_transmissions.add(
            static_cast<double>(result.recovery_transmissions));
        out.unreceived_devices.add(static_cast<double>(
            result.devices.size() - result.received_count()));
        out.mean_connected_seconds.add(mean_connected_ms(result) / 1000.0);
        out.mean_light_sleep_seconds.add(mean_light_sleep_ms(result) / 1000.0);
        out.completion_p99_ms.add(completion_p99_ms(result));
        out.redelivery_bytes.add(static_cast<double>(result.redelivery_bytes));
        out.stranded_devices.add(static_cast<double>(result.stranded));
    }
    return contrib;
}

/// Checkpoint slot blob of one run: the unicast + per-mechanism summaries
/// plus — when a collector is attached — the sinks this run filled, so a
/// resume restores both the aggregates and the telemetry artifacts.
std::vector<std::uint8_t> encode_contribution(const ComparisonSetup& setup,
                                              std::size_t run,
                                              const RunContribution& contrib) {
    snapshot::Writer w;
    snapshot::put_mechanism_stats(w, contrib.unicast);
    w.put_u64(contrib.mechanisms.size());
    for (const MechanismStats& m : contrib.mechanisms) {
        snapshot::put_mechanism_stats(w, m);
    }
    w.put_u8(setup.telemetry != nullptr ? 1 : 0);
    if (setup.telemetry != nullptr) {
        for (std::size_t c = 0; c < setup.mechanisms.size() + 1; ++c) {
            snapshot::put_sink(w, *setup.telemetry->sink(run, 0, c));
        }
    }
    return w.take();
}

/// Inverse of encode_contribution; also restores the run's collector
/// sinks.  Runs inside the sweep worker that owns this run's slots, so
/// the sink writes stay single-writer.
RunContribution decode_contribution(const ComparisonSetup& setup, std::size_t run,
                                    const std::vector<std::uint8_t>& blob) {
    snapshot::Reader r(blob,
                       "checkpoint slot (run " + std::to_string(run) + ")");
    RunContribution contrib;
    contrib.unicast = snapshot::take_mechanism_stats(r);
    const std::uint64_t mechanism_count = r.take_u64();
    if (mechanism_count != setup.mechanisms.size()) {
        throw snapshot::SnapshotError(
            "checkpoint slot (run " + std::to_string(run) + "): " +
            std::to_string(mechanism_count) + " mechanisms in snapshot, setup has " +
            std::to_string(setup.mechanisms.size()));
    }
    contrib.mechanisms.reserve(setup.mechanisms.size());
    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        contrib.mechanisms.push_back(snapshot::take_mechanism_stats(r));
    }
    const bool had_telemetry = r.take_u8() != 0;
    if (had_telemetry != (setup.telemetry != nullptr)) {
        throw snapshot::SnapshotError(
            "checkpoint slot (run " + std::to_string(run) +
            "): telemetry attachment differs from the checkpointed run");
    }
    if (setup.telemetry != nullptr) {
        for (std::size_t c = 0; c < setup.mechanisms.size() + 1; ++c) {
            snapshot::restore_sink(r, *setup.telemetry->sink(run, 0, c));
        }
    }
    r.expect_end();
    return contrib;
}

}  // namespace

SharedPopulations generate_comparison_populations(
    const traffic::PopulationProfile& profile, std::size_t device_count,
    std::size_t runs, std::uint64_t base_seed) {
    const sim::RngFactory rng_factory(base_seed);
    auto populations = std::make_shared<ComparisonPopulations>();
    populations->profile_name = profile.name;
    populations->device_count = device_count;
    populations->base_seed = base_seed;
    populations->runs.reserve(runs);
    populations->class_indices.reserve(runs);
    for (std::size_t run = 0; run < runs; ++run) {
        sim::RandomStream pop_rng = rng_factory.stream("population", run);
        const auto generated =
            traffic::generate_population(profile, device_count, pop_rng);
        populations->runs.push_back(traffic::to_specs(generated));
        std::vector<std::uint32_t> classes;
        classes.reserve(generated.size());
        for (const auto& d : generated) {
            classes.push_back(static_cast<std::uint32_t>(d.class_index));
        }
        populations->class_indices.push_back(std::move(classes));
    }
    return populations;
}

ComparisonOutcome run_comparison(const ComparisonSetup& setup) {
    if (setup.runs == 0 || setup.device_count == 0) {
        throw std::invalid_argument("run_comparison: empty setup");
    }
    if (setup.populations) {
        // Provenance must match the setup: a set generated for another
        // seed/profile/size would silently break reproducibility.
        if (setup.populations->base_seed != setup.base_seed ||
            setup.populations->device_count != setup.device_count ||
            setup.populations->profile_name != setup.profile.name) {
            throw std::invalid_argument(
                "run_comparison: shared populations were generated for a "
                "different (profile, device_count, base_seed)");
        }
        if (setup.populations->runs.size() < setup.runs) {
            throw std::invalid_argument(
                "run_comparison: shared populations cover fewer runs than setup.runs");
        }
    }

    ComparisonOutcome outcome;
    outcome.mechanisms.resize(setup.mechanisms.size());
    for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
        outcome.mechanisms[m].kind = setup.mechanisms[m];
    }
    outcome.unicast.kind = MechanismKind::unicast;

    const std::vector<RunContribution> contributions = sweep_indexed(
        setup.runs, setup.threads, [&setup](std::size_t run) {
            snapshot::CheckpointContext* const checkpoint = setup.checkpoint;
            if (checkpoint == nullptr) return comparison_run(setup, run);
            if (const std::vector<std::uint8_t>* blob = checkpoint->restored(run)) {
                return decode_contribution(setup, run, *blob);
            }
            // Once the stop budget fired, remaining tasks return a dummy:
            // the pending CheckpointStop unwinds the sweep before any
            // contribution is reduced.
            if (checkpoint->stopping()) return RunContribution{};
            RunContribution contrib = comparison_run(setup, run);
            checkpoint->complete_slot(run, encode_contribution(setup, run, contrib),
                                      contrib.horizon_ms);
            return contrib;
        });

    for (const RunContribution& contrib : contributions) {
        outcome.unicast.merge(contrib.unicast);
        for (std::size_t m = 0; m < setup.mechanisms.size(); ++m) {
            outcome.mechanisms[m].merge(contrib.mechanisms[m]);
        }
    }
    return outcome;
}

std::vector<TransmissionSweepPoint> drsc_transmission_sweep(
    const traffic::PopulationProfile& profile,
    std::span<const std::size_t> device_counts, const CampaignConfig& config,
    std::size_t runs, std::uint64_t base_seed, std::size_t threads) {
    if (runs == 0 || device_counts.empty()) {
        throw std::invalid_argument("drsc_transmission_sweep: empty setup");
    }
    for (const std::size_t n : device_counts) {
        if (n == 0) {
            throw std::invalid_argument("drsc_transmission_sweep: empty setup");
        }
    }

    // A cell plans one run at one device count; the RNG streams depend only
    // on (base_seed, run), exactly as the serial loop derived them.
    const auto plan_cell = [&](std::size_t point, std::size_t run) -> double {
        const std::size_t device_count = device_counts[point];
        const sim::RngFactory rng_factory(base_seed);
        const DrScMechanism dr_sc;
        sim::RandomStream pop_rng = rng_factory.stream("population", run);
        const auto population =
            traffic::generate_population(profile, device_count, pop_rng);
        const auto specs = traffic::to_specs(population);
        sim::RandomStream plan_rng = rng_factory.stream("plan-drsc", run);
        const MulticastPlan plan = dr_sc.plan(specs, config, plan_rng);
        return static_cast<double>(plan.transmissions.size());
    };
    const auto reduce_point = [&](std::size_t point,
                                  std::span<const double> transmissions) {
        TransmissionSweepPoint out;
        out.device_count = device_counts[point];
        for (const double tx : transmissions) {
            out.transmissions.add(tx);
            out.transmissions_per_device.add(tx /
                                             static_cast<double>(out.device_count));
        }
        return out;
    };
    return sweep_points(device_counts.size(), runs, threads, plan_cell, reduce_point);
}

TransmissionSweepPoint drsc_transmission_point(const traffic::PopulationProfile& profile,
                                               std::size_t device_count,
                                               const CampaignConfig& config,
                                               std::size_t runs,
                                               std::uint64_t base_seed,
                                               std::size_t threads) {
    const std::size_t counts[] = {device_count};
    if (device_count == 0) {
        throw std::invalid_argument("drsc_transmission_point: empty setup");
    }
    return drsc_transmission_sweep(profile, counts, config, runs, base_seed,
                                   threads)
        .front();
}

}  // namespace nbmg::core
