// DR-SC planner (Sec. III-A).
//
// Enumerate every device's paging occasions over one repetition period of
// the PO pattern (2 * maxDRX, per the paper), run the greedy window cover
// (window = TI, random tie-break), transmit at each window's end plus the
// RA guard, and page each covered device at its first PO inside its window.
// Devices that cannot be paged inside their window (paging-channel
// capacity) fall back to later rounds and, ultimately, to a dedicated
// transmission — so the plan always covers everyone the channel can reach.
#include <algorithm>

#include "core/planner_detail.hpp"
#include "core/planners.hpp"
#include "nbiot/paging_scheduler.hpp"
#include "setcover/window_cover.hpp"

namespace nbmg::core {

MulticastPlan DrScMechanism::plan(std::span<const nbiot::UeSpec> devices,
                                  const CampaignConfig& config,
                                  sim::RandomStream& rng) const {
    if (devices.empty()) throw std::invalid_argument("DrSc: empty population");
    if (!config.valid()) throw std::invalid_argument("DrSc: invalid config");

    const nbiot::PagingSchedule paging(config.paging);
    nbiot::PagingScheduler scheduler(paging, config.paging.max_page_records);
    scheduler.set_telemetry(config.telemetry);
    const nbiot::SimTime horizon = detail::reference_time(devices);
    const nbiot::SimTime window = config.inactivity_timer;

    MulticastPlan plan;
    plan.kind = MechanismKind::dr_sc;
    plan.planning_reference = horizon;
    plan.schedules.resize(devices.size());
    for (std::size_t i = 0; i < devices.size(); ++i) {
        plan.schedules[i].device = devices[i].device;
    }

    // Every PO of every device over the repetition period.
    std::vector<setcover::PoEvent> events;
    for (const auto& dev : devices) {
        for (const nbiot::SimTime po :
             paging.pos_in_range(nbiot::SimTime{0}, horizon, dev.imsi, dev.cycle)) {
            events.push_back(setcover::PoEvent{po, dev.device.value});
        }
    }

    const setcover::WindowCoverResult cover = setcover::greedy_window_cover(
        std::move(events), window, static_cast<std::uint32_t>(devices.size()), rng);
    // Every device has >= 2 POs in [0, 2*maxDRX), so nothing is uncoverable.
    if (!cover.uncoverable.empty()) {
        throw std::logic_error("DrSc: device without paging occasions in horizon");
    }

    std::vector<nbiot::DeviceId> leftovers;
    for (const setcover::CoverWindow& w : cover.windows) {
        PlannedTransmission tx;
        nbiot::SimTime last_page = w.start;
        for (const std::uint32_t d : w.devices) {
            const nbiot::UeSpec& spec = devices[d];
            // Page at the device's first free PO inside [window start, end].
            const auto slot = scheduler.enqueue_record(
                spec.device, spec.imsi, spec.cycle, w.start, w.end + nbiot::SimTime{1});
            if (!slot) {
                leftovers.push_back(spec.device);
                continue;
            }
            plan.schedules[d].page_at = *slot;
            plan.schedules[d].transmission = plan.transmissions.size();
            tx.devices.push_back(spec.device);
            last_page = std::max(last_page, *slot);
        }
        // Transmit as soon as the last paged device can have connected; the
        // window only defines membership (the eNB has no reason to wait for
        // the full TI once everyone it paged is connected).
        tx.start = last_page + detail::nominal_connect_duration(config) + config.ra_guard;
        if (!tx.devices.empty()) plan.transmissions.push_back(std::move(tx));
    }

    // Fallback: devices squeezed out by paging capacity each get a
    // dedicated transmission at their next reachable PO.
    for (const nbiot::DeviceId dev : leftovers) {
        const nbiot::UeSpec& spec = devices[dev.value];
        const auto slot =
            scheduler.enqueue_record(spec.device, spec.imsi, spec.cycle, horizon,
                                     detail::open_deadline(devices));
        if (!slot) {
            plan.unserved.push_back(dev);
            continue;
        }
        plan.schedules[dev.value].page_at = *slot;
        plan.schedules[dev.value].transmission = plan.transmissions.size();
        PlannedTransmission tx;
        tx.start = *slot + detail::nominal_connect_duration(config) + config.ra_guard;
        tx.devices.push_back(dev);
        plan.transmissions.push_back(std::move(tx));
    }

    plan.paging_entries = scheduler.total_entries();
    return plan;
}

}  // namespace nbmg::core
