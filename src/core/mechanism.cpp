#include "core/mechanism.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "core/planners.hpp"

namespace nbmg::core {

std::unique_ptr<GroupingMechanism> make_mechanism(MechanismKind kind) {
    switch (kind) {
        case MechanismKind::dr_sc: return std::make_unique<DrScMechanism>();
        case MechanismKind::da_sc: return std::make_unique<DaScMechanism>();
        case MechanismKind::dr_si: return std::make_unique<DrSiMechanism>();
        case MechanismKind::unicast: return std::make_unique<UnicastBaseline>();
        case MechanismKind::sc_ptm: return std::make_unique<ScPtmBaseline>();
    }
    throw std::invalid_argument("make_mechanism: unknown kind");
}

nbiot::DrxCycle population_max_cycle(std::span<const nbiot::UeSpec> devices) {
    if (devices.empty()) {
        throw std::invalid_argument("population_max_cycle: empty population");
    }
    nbiot::DrxCycle best = devices.front().cycle;
    for (const auto& d : devices) best = std::max(best, d.cycle);
    return best;
}

void validate_plan(const MulticastPlan& plan, std::span<const nbiot::UeSpec> devices) {
    if (plan.schedules.size() != devices.size()) {
        throw std::logic_error("plan: schedule count != device count");
    }
    std::vector<bool> in_transmission(devices.size(), false);
    for (const auto& tx : plan.transmissions) {
        if (tx.starts_on_ready && tx.devices.size() != 1) {
            throw std::logic_error("plan: on-ready transmission must carry one device");
        }
        for (const auto dev : tx.devices) {
            if (dev.value >= devices.size()) throw std::logic_error("plan: bad device id");
            if (in_transmission[dev.value]) {
                throw std::logic_error("plan: device in two transmissions");
            }
            in_transmission[dev.value] = true;
        }
    }
    for (std::size_t i = 0; i < plan.schedules.size(); ++i) {
        const DeviceSchedule& s = plan.schedules[i];
        if (s.device.value != i) throw std::logic_error("plan: schedules not dense");
        if (s.served()) {
            if (s.transmission >= plan.transmissions.size()) {
                throw std::logic_error("plan: bad transmission index");
            }
            if (!in_transmission[i]) {
                throw std::logic_error("plan: served device missing from transmission");
            }
            const auto& tx = plan.transmissions[s.transmission];
            if (std::find(tx.devices.begin(), tx.devices.end(), s.device) ==
                tx.devices.end()) {
                throw std::logic_error("plan: schedule points to foreign transmission");
            }
        } else if (in_transmission[i]) {
            throw std::logic_error("plan: unserved device inside a transmission");
        }
        if (s.adjustment && s.mltc) {
            throw std::logic_error("plan: device both adjusted and mltc-notified");
        }
        if (s.mltc && s.page_at) {
            throw std::logic_error("plan: mltc device must not also be paged normally");
        }
    }
    for (const auto dev : plan.unserved) {
        if (dev.value >= devices.size() || plan.schedules[dev.value].served()) {
            throw std::logic_error("plan: bad unserved entry");
        }
    }
    const bool single_tx_kind =
        plan.kind == MechanismKind::da_sc || plan.kind == MechanismKind::dr_si ||
        plan.kind == MechanismKind::sc_ptm;
    if (single_tx_kind && plan.transmissions.size() != 1) {
        throw std::logic_error(std::string{to_string(plan.kind)} +
                               ": must plan exactly one transmission");
    }
    if (plan.kind == MechanismKind::unicast &&
        plan.transmissions.size() != devices.size() - plan.unserved.size()) {
        throw std::logic_error("unicast: one transmission per served device");
    }
}

}  // namespace nbmg::core
