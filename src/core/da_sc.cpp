// DA-SC planner (Sec. III-B).
//
// t = 2 * maxDRX guarantees every device one PO before t.  Devices with a
// natural PO inside [t - TI, t) are simply paged there.  Every other device
// is paged at its last original-cycle PO before t - TI (so the extra POs
// of the shortened cycle run for the least possible time), reconfigured to
// the *longest* ladder cycle that creates a PO inside the window, paged
// again at that adapted PO, and restored right after the reception.
#include <algorithm>

#include "core/planner_detail.hpp"
#include "core/planners.hpp"
#include "nbiot/paging_scheduler.hpp"

namespace nbmg::core {
namespace {

struct AdjustmentChoice {
    nbiot::SimTime adjust_page_at{0};
    nbiot::DrxCycle adapted_cycle = nbiot::DrxCycle::from_index(0);
    nbiot::SimTime window_po{0};
};

/// Finds the adjustment for one device: the page time for the
/// reconfiguration and the longest adapted cycle producing a usable PO in
/// [window_start, t).  The page rides a uniformly chosen adapted occasion
/// inside the window, which spreads the RACH load over the whole window
/// (the same way DR-SI's random T322 expiry does).  Returns nullopt when
/// even the shortest cycle cannot help (can only happen under extreme
/// paging-capacity pressure upstream).
std::optional<AdjustmentChoice> choose_adjustment(const nbiot::PagingSchedule& paging,
                                                  const nbiot::UeSpec& dev,
                                                  nbiot::SimTime p_adj,
                                                  nbiot::SimTime window_start,
                                                  nbiot::SimTime t,
                                                  nbiot::SimTime adapt_lead,
                                                  sim::RandomStream& rng) {
    // The reconfiguration connection must complete before the adapted PO.
    const nbiot::SimTime ready = p_adj + adapt_lead;
    const nbiot::SimTime earliest = std::max(window_start, ready);

    for (int idx = dev.cycle.index() - 1; idx >= 0; --idx) {
        const nbiot::DrxCycle candidate = nbiot::DrxCycle::from_index(idx);
        const nbiot::SimTime first =
            paging.first_po_at_or_after(earliest, dev.imsi, candidate);
        if (first >= t) continue;
        const std::int64_t count =
            1 + (t - first - nbiot::SimTime{1}).count() / candidate.period_ms();
        const std::int64_t pick = rng.uniform_int(0, count - 1);
        const nbiot::SimTime po = first + nbiot::SimTime{pick * candidate.period_ms()};
        return AdjustmentChoice{p_adj, candidate, po};
    }
    return std::nullopt;
}

}  // namespace

MulticastPlan DaScMechanism::plan(std::span<const nbiot::UeSpec> devices,
                                  const CampaignConfig& config,
                                  sim::RandomStream& rng) const {
    if (devices.empty()) throw std::invalid_argument("DaSc: empty population");
    if (!config.valid()) throw std::invalid_argument("DaSc: invalid config");

    const nbiot::PagingSchedule paging(config.paging);
    nbiot::PagingScheduler scheduler(paging, config.paging.max_page_records);
    scheduler.set_telemetry(config.telemetry);

    const nbiot::SimTime t = detail::reference_time(devices);
    const nbiot::SimTime window_start = t - config.inactivity_timer;
    const nbiot::SimTime adapt_lead =
        detail::nominal_connect_duration(config) + config.timing.rrc_reconfiguration +
        config.timing.rrc_release;

    MulticastPlan plan;
    plan.kind = MechanismKind::da_sc;
    plan.planning_reference = t;
    plan.schedules.resize(devices.size());

    PlannedTransmission tx;
    tx.start = t + config.ra_guard;

    for (std::size_t i = 0; i < devices.size(); ++i) {
        const nbiot::UeSpec& dev = devices[i];
        DeviceSchedule& schedule = plan.schedules[i];
        schedule.device = dev.device;

        if (paging.has_po_in_range(window_start, t, dev.imsi, dev.cycle)) {
            // Natural PO inside the window: no adjustment needed.
            const auto slot = scheduler.enqueue_record(dev.device, dev.imsi, dev.cycle,
                                                       window_start, t);
            if (slot) {
                schedule.page_at = *slot;
                schedule.transmission = 0;
                tx.devices.push_back(dev.device);
                continue;
            }
            // All natural POs in the window are full; fall through to the
            // adjustment path, which creates additional occasions.
        }

        // Choose an adjustment PO (the last original-cycle PO before the
        // window, stepping back over full occasions) and place both pages.
        std::optional<AdjustmentChoice> placed_choice;
        std::optional<nbiot::SimTime> p_adj =
            paging.last_po_before(window_start, dev.imsi, dev.cycle);
        for (int attempt = 0; attempt < 8 && p_adj; ++attempt) {
            const auto choice = choose_adjustment(paging, dev, *p_adj, window_start, t,
                                                  adapt_lead, rng);
            if (choice && scheduler.try_enqueue_record_at(dev.device, dev.imsi,
                                                          dev.cycle, *p_adj)) {
                placed_choice = choice;
                break;
            }
            p_adj = paging.last_po_before(*p_adj, dev.imsi, dev.cycle);
        }
        if (!placed_choice) {
            plan.unserved.push_back(dev.device);
            continue;
        }

        // Page for the multicast at the adapted-cycle PO (full occasions
        // defer to later adapted POs, still before t).
        const auto slot = scheduler.enqueue_record(dev.device, dev.imsi,
                                                   placed_choice->adapted_cycle,
                                                   placed_choice->window_po, t);
        if (!slot) {
            plan.unserved.push_back(dev.device);
            continue;
        }

        schedule.adjustment =
            DrxAdjustment{placed_choice->adjust_page_at, placed_choice->adapted_cycle};
        schedule.page_at = *slot;
        schedule.transmission = 0;
        tx.devices.push_back(dev.device);
    }

    plan.transmissions.push_back(std::move(tx));
    plan.paging_entries = scheduler.total_entries();
    return plan;
}

}  // namespace nbmg::core
