// Parallel sweep engine for experiment campaigns.
//
// A campaign sweep is an embarrassingly parallel grid of `points x runs`
// independent executions: every cell derives its own RNG streams from the
// root seed via sim::derive_seed, so cells can run on any thread in any
// order.  The engine fans cells across a worker pool, stores each result in
// its index-addressed slot, and reduces the slots **in index order** on the
// calling thread — aggregates are therefore bit-identical regardless of the
// thread count (floating-point reduction order never changes).
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

namespace nbmg::core {

/// Resolves a requested worker count: 0 means "one per hardware thread",
/// anything else is taken literally.  Always returns >= 1.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

/// Fork-join worker pool over an indexed task space.  Indices are handed
/// out dynamically (atomic counter), so uneven cells load-balance; results
/// must be written to per-index slots to stay deterministic.
class WorkerPool {
public:
    /// `threads` as accepted by resolve_threads.
    explicit WorkerPool(std::size_t threads = 0)
        : threads_(resolve_threads(threads)) {}

    [[nodiscard]] std::size_t thread_count() const noexcept { return threads_; }

    /// Invokes fn(i) exactly once for every i in [0, count) and blocks until
    /// all invocations finish.  Runs inline when a single worker suffices.
    /// The first exception thrown by any task is rethrown on the caller.
    void run(std::size_t count, const std::function<void(std::size_t)>& fn) const;

private:
    std::size_t threads_ = 1;
};

/// Runs fn(i) for every i in [0, count) across `threads` workers and
/// returns the results ordered by index.
template <typename Fn>
[[nodiscard]] auto sweep_indexed(std::size_t count, std::size_t threads, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
    using Result = decltype(fn(std::size_t{0}));
    // std::vector<bool> packs bits, so concurrent writes to distinct
    // indices would race; return a struct or int instead.
    static_assert(!std::is_same_v<Result, bool>,
                  "sweep_indexed cannot return bool (vector<bool> slots share words)");
    std::vector<Result> results(count);
    const WorkerPool pool(threads);
    pool.run(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
}

/// Two-level sweep: fans the full `points x runs` grid over one pool (cells
/// of different points interleave freely), then reduces each point's runs
/// in run order via `reduce(point, span_of_run_results)`.
template <typename RunFn, typename ReduceFn>
[[nodiscard]] auto sweep_points(std::size_t points, std::size_t runs,
                                std::size_t threads, RunFn&& run_fn,
                                ReduceFn&& reduce) {
    using RunResult = decltype(run_fn(std::size_t{0}, std::size_t{0}));
    using PointResult =
        decltype(reduce(std::size_t{0}, std::span<const RunResult>{}));
    std::vector<RunResult> cells(points * runs);
    const WorkerPool pool(threads);
    pool.run(points * runs,
             [&](std::size_t cell) { cells[cell] = run_fn(cell / runs, cell % runs); });
    std::vector<PointResult> out;
    out.reserve(points);
    for (std::size_t p = 0; p < points; ++p) {
        out.push_back(
            reduce(p, std::span<const RunResult>(cells.data() + p * runs, runs)));
    }
    return out;
}

}  // namespace nbmg::core
