// Unicast reference (Sec. IV-A) and the SC-PTM extension baseline.
#include "core/planner_detail.hpp"
#include "core/planners.hpp"
#include "nbiot/paging_scheduler.hpp"

namespace nbmg::core {

MulticastPlan UnicastBaseline::plan(std::span<const nbiot::UeSpec> devices,
                                    const CampaignConfig& config,
                                    sim::RandomStream& rng) const {
    (void)rng;  // deterministic
    if (devices.empty()) throw std::invalid_argument("Unicast: empty population");
    if (!config.valid()) throw std::invalid_argument("Unicast: invalid config");

    const nbiot::PagingSchedule paging(config.paging);
    nbiot::PagingScheduler scheduler(paging, config.paging.max_page_records);
    scheduler.set_telemetry(config.telemetry);
    const nbiot::SimTime deadline = detail::open_deadline(devices);

    MulticastPlan plan;
    plan.kind = MechanismKind::unicast;
    plan.planning_reference = detail::reference_time(devices);
    plan.schedules.resize(devices.size());

    for (std::size_t i = 0; i < devices.size(); ++i) {
        const nbiot::UeSpec& dev = devices[i];
        DeviceSchedule& schedule = plan.schedules[i];
        schedule.device = dev.device;

        // "Each device receiving the multicast data based on its own DRX
        // and without waiting for other devices": page at the next PO,
        // transmit as soon as it connects.
        const auto slot = scheduler.enqueue_record(dev.device, dev.imsi, dev.cycle,
                                                   nbiot::SimTime{0}, deadline);
        if (!slot) {
            plan.unserved.push_back(dev.device);
            continue;
        }
        schedule.page_at = *slot;
        schedule.transmission = plan.transmissions.size();

        PlannedTransmission tx;
        tx.start = *slot;  // lower bound; actual start is on connection
        tx.starts_on_ready = true;
        tx.devices.push_back(dev.device);
        plan.transmissions.push_back(std::move(tx));
    }

    plan.paging_entries = scheduler.total_entries();
    return plan;
}

MulticastPlan ScPtmBaseline::plan(std::span<const nbiot::UeSpec> devices,
                                  const CampaignConfig& config,
                                  sim::RandomStream& rng) const {
    (void)rng;  // deterministic
    if (devices.empty()) throw std::invalid_argument("ScPtm: empty population");
    if (!config.valid()) throw std::invalid_argument("ScPtm: invalid config");

    MulticastPlan plan;
    plan.kind = MechanismKind::sc_ptm;
    plan.schedules.resize(devices.size());

    // The SC-MCCH announcement repeats every modification period; after one
    // full period every device has read the schedule.  The transmission is
    // broadcast (no connections, no paging records).
    PlannedTransmission tx;
    tx.start = config.sc_ptm_mcch_period + config.ra_guard;
    plan.planning_reference = tx.start;
    for (std::size_t i = 0; i < devices.size(); ++i) {
        plan.schedules[i].device = devices[i].device;
        plan.schedules[i].transmission = 0;
        tx.devices.push_back(devices[i].device);
    }
    plan.transmissions.push_back(std::move(tx));
    plan.paging_entries = 0;
    return plan;
}

}  // namespace nbmg::core
