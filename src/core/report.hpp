// Derived metrics: the paper's relative-uptime comparison (mechanism vs
// unicast reference) and aggregate accessors used by benches and tests —
// plus the shared report surface the scenario layer renders both engines'
// aggregates through.
#pragma once

#include <span>

#include "core/campaign.hpp"
#include "stats/table.hpp"

namespace nbmg::core {

struct MechanismStats;  // core/experiment.hpp

/// Sum of per-device light-sleep uptime (ms).
[[nodiscard]] double total_light_sleep_ms(const CampaignResult& result) noexcept;

/// Sum of per-device connected uptime (ms).
[[nodiscard]] double total_connected_ms(const CampaignResult& result) noexcept;

/// Mean per-device uptime (ms).
[[nodiscard]] double mean_light_sleep_ms(const CampaignResult& result) noexcept;
[[nodiscard]] double mean_connected_ms(const CampaignResult& result) noexcept;

/// Fleet completion tail: the 99th-percentile device completion time
/// (nearest-rank over the population).  A device's completion is its
/// release instant after receiving the payload; a device the campaign
/// never served (stranded, off-air, unreached) counts at the observation
/// horizon, so faults push the tail instead of silently dropping out of
/// it.  Returns 0 for an empty population.
[[nodiscard]] double completion_p99_ms(const CampaignResult& result);

/// The paper's headline metric (Fig. 6): relative uptime increase of a
/// mechanism over the unicast reference, computed on the same population,
/// seed, and observation horizon.
struct RelativeUptime {
    /// Aggregate ratios: sum(mechanism)/sum(unicast) - 1.
    double light_sleep_increase = 0.0;
    double connected_increase = 0.0;
    /// Mean over devices of per-device ratios (devices with a non-zero
    /// baseline), exposing fairness across classes.
    double per_device_light_sleep_increase = 0.0;
    double per_device_connected_increase = 0.0;
};

[[nodiscard]] RelativeUptime relative_uptime(const CampaignResult& mechanism,
                                             const CampaignResult& unicast_reference);

/// Bandwidth proxy comparison (Fig. 7 and Sec. IV-B text): transmissions
/// relative to per-device unicast delivery.
struct BandwidthComparison {
    std::size_t transmissions = 0;
    double transmissions_per_device = 0.0;
    /// 1 - transmissions/devices: the "more bandwidth efficient than
    /// unicast" number from the paper's text.
    double savings_vs_unicast = 0.0;
    double bytes_on_air_ratio = 0.0;  // vs unicast bytes
};

[[nodiscard]] BandwidthComparison bandwidth_comparison(
    const CampaignResult& mechanism, const CampaignResult& unicast_reference);

/// The common report surface of scenario::ScenarioResult: one row per
/// mechanism (unicast reference first) with the paper's headline aggregates.
/// Both engines feed it — the single-cell outcome directly, the deployment
/// result through its embedded per-mechanism MechanismStats — so any
/// scenario renders to the same table/CSV shape regardless of engine; the
/// generic shell (examples/run_scenario.cpp, incl. --csv) prints it, while
/// the figure shells keep their figure-specific columns.  `mechanisms` is
/// a span of pointers because callers hold the stats inside
/// engine-specific wrappers.
[[nodiscard]] stats::Table mechanism_summary_table(
    const MechanismStats& unicast,
    std::span<const MechanismStats* const> mechanisms);

}  // namespace nbmg::core
