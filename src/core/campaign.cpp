#include "core/campaign.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "nbiot/frames.hpp"
#include "nbiot/radio.hpp"

namespace nbmg::core {

bool CampaignResult::all_received() const noexcept {
    return received_count() == devices.size();
}

std::size_t CampaignResult::received_count() const noexcept {
    std::size_t n = 0;
    for (const auto& d : devices) n += d.received ? 1 : 0;
    return n;
}

namespace {

using nbiot::DeviceId;
using nbiot::SimTime;

/// One campaign execution: plays the eNB role against the cell.
class Execution {
public:
    Execution(const CampaignConfig& config, const MulticastPlan& plan,
              std::span<const nbiot::UeSpec> devices, std::int64_t payload_bytes,
              SimTime horizon, std::uint64_t seed)
        : config_(config),
          plan_(plan),
          specs_(devices),
          payload_bytes_(payload_bytes),
          horizon_(horizon),
          radio_(config.radio),
          cell_(seed, config.paging, config.rach, config.timing),
          miss_rng_(cell_.simulation().stream("page-miss")) {
        if (plan.schedules.size() != devices.size()) {
            throw std::invalid_argument("CampaignRunner: plan/device mismatch");
        }
        runtime_.resize(devices.size());
    }

    CampaignResult run();

private:
    enum class PageKind { normal, reconfig, mltc };

    struct DeviceRuntime {
        std::size_t tx_index = DeviceSchedule::kUnserved;
        bool expects_private_rx = false;  // unicast-planned or recovery
        bool is_recovery = false;
        bool tx_started_without_me = false;
        int page_attempts_left = 0;
    };

    void setup_devices();
    void schedule_plan_events();
    void deliver_page(std::size_t idx, PageKind kind);
    void retry_page(std::size_t idx, PageKind kind);
    void handle_connected(std::size_t idx);
    void handle_rach_failure(std::size_t idx);
    void handle_released(std::size_t idx);
    void start_transmission(std::size_t tx_idx);
    void start_private_delivery(std::size_t idx);
    void count_initial_paging();

    [[nodiscard]] SimTime tail() const {
        return config_.include_inactivity_tail ? config_.inactivity_timer : SimTime{0};
    }
    [[nodiscard]] nbiot::CeLevel bearer_level(const PlannedTransmission& tx) const {
        nbiot::CeLevel level = nbiot::CeLevel::ce0;
        for (const DeviceId dev : tx.devices) {
            level = nbiot::RadioModel::multicast_bearer_level(level,
                                                              specs_[dev.value].ce_level);
        }
        return level;
    }

    const CampaignConfig& config_;
    const MulticastPlan& plan_;
    std::span<const nbiot::UeSpec> specs_;
    std::int64_t payload_bytes_ = 0;
    SimTime horizon_;
    nbiot::RadioModel radio_;
    nbiot::Cell cell_;
    sim::RandomStream miss_rng_;

    std::vector<DeviceRuntime> runtime_;
    std::size_t aired_multicasts_ = 0;
    std::size_t aired_unicasts_ = 0;
    std::size_t recovery_transmissions_ = 0;
    std::size_t paging_messages_ = 0;
    std::size_t paging_entries_ = 0;
    std::size_t retry_pages_ = 0;
    std::size_t connections_ = 0;
    std::size_t reconfigurations_ = 0;
};

void Execution::setup_devices() {
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        nbiot::Ue& ue = cell_.add_ue(specs_[i]);
        nbiot::Ue::Hooks hooks;
        hooks.on_connected = [this, i](DeviceId, SimTime) { handle_connected(i); };
        hooks.on_rach_failure = [this, i](DeviceId, SimTime) { handle_rach_failure(i); };
        hooks.on_released = [this, i](DeviceId, SimTime) { handle_released(i); };
        ue.set_hooks(std::move(hooks));
        ue.start_monitoring(horizon_);

        const DeviceSchedule& schedule = plan_.schedules[i];
        runtime_[i].tx_index = schedule.transmission;
        runtime_[i].page_attempts_left = config_.max_page_attempts;
        if (schedule.served() &&
            plan_.transmissions[schedule.transmission].starts_on_ready) {
            runtime_[i].expects_private_rx = true;
        }
    }
}

void Execution::schedule_plan_events() {
    auto& queue = cell_.simulation().queue();
    for (std::size_t i = 0; i < plan_.schedules.size(); ++i) {
        const DeviceSchedule& schedule = plan_.schedules[i];
        if (schedule.adjustment) {
            queue.schedule_at(schedule.adjustment->adjust_page_at,
                              [this, i] { deliver_page(i, PageKind::reconfig); });
        }
        if (schedule.mltc) {
            queue.schedule_at(schedule.mltc->notify_po_at,
                              [this, i] { deliver_page(i, PageKind::mltc); });
        }
        if (schedule.page_at) {
            queue.schedule_at(*schedule.page_at,
                              [this, i] { deliver_page(i, PageKind::normal); });
        }
    }
    for (std::size_t t = 0; t < plan_.transmissions.size(); ++t) {
        if (plan_.transmissions[t].starts_on_ready) continue;  // starts on connect
        queue.schedule_at(plan_.transmissions[t].start,
                          [this, t] { start_transmission(t); });
    }
    if (config_.background_ra_per_second > 0.0) {
        cell_.rach().inject_background_load(config_.background_ra_per_second, horizon_);
    }

    // SC-PTM: every device monitors the SC-MCCH once per modification
    // period, forever, whether or not multicast data exists — the standing
    // cost the on-demand scheme of [3] removes.
    if (plan_.kind == MechanismKind::sc_ptm) {
        const SimTime period = config_.sc_ptm_mcch_period;
        for (SimTime at = period; at < horizon_; at += period) {
            queue.schedule_at(at, [this] {
                for (std::size_t i = 0; i < specs_.size(); ++i) {
                    cell_.ue(DeviceId{static_cast<std::uint32_t>(i)})
                        .charge(nbiot::PowerState::po_monitor,
                                config_.timing.po_monitor);
                }
            });
        }
    }
}

void Execution::deliver_page(std::size_t idx, PageKind kind) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const DeviceSchedule& schedule = plan_.schedules[idx];
    const SimTime now = cell_.simulation().now();

    // The page only lands if the device is idle, is actually listening at
    // this instant (this is one of its POs under its *current* cycle), and
    // the injected loss did not eat the message.
    const bool listening = ue.listening_at(now);
    const bool lost = config_.page_miss_prob > 0.0 &&
                      miss_rng_.bernoulli(config_.page_miss_prob);
    if (!listening || lost) {
        retry_page(idx, kind);
        return;
    }

    switch (kind) {
        case PageKind::normal:
            ue.page_normal();
            break;
        case PageKind::reconfig:
            ue.page_for_reconfig(schedule.adjustment->adapted_cycle);
            ++reconfigurations_;
            break;
        case PageKind::mltc: {
            // T322 may already be due if this is a late retry.
            const SimTime wake = std::max(schedule.mltc->wake_at, now + SimTime{1});
            ue.page_mltc(wake);
            break;
        }
    }
}

void Execution::retry_page(std::size_t idx, PageKind kind) {
    DeviceRuntime& rt = runtime_[idx];
    // Recovery mode (the device already missed its transmission) keeps
    // paging until the device is reached: a real eNB does not abandon a
    // device it owes a delivery.  Termination is guaranteed because the
    // loss probability is < 1.
    if (!rt.tx_started_without_me) {
        if (rt.page_attempts_left <= 0) return;
        --rt.page_attempts_left;
    }

    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const SimTime now = cell_.simulation().now();
    const SimTime next = ue.next_po_at_or_after(now + SimTime{1});

    // Before the transmission, a normal page retried past its start is
    // pointless (the recovery path takes over at the transmission).  Once
    // the transmission has passed us by, retries ARE the recovery path.
    if (kind == PageKind::normal && !rt.tx_started_without_me &&
        rt.tx_index != DeviceSchedule::kUnserved &&
        !plan_.transmissions[rt.tx_index].starts_on_ready &&
        next >= plan_.transmissions[rt.tx_index].start) {
        return;
    }
    // A reconfiguration retried so late that the device could not be back
    // in idle before its window page is worse than useless (the device
    // would sit in a stray connection at transmission time): abandon the
    // adjustment and let the recovery path serve the device.
    if (kind == PageKind::reconfig) {
        const DeviceSchedule& schedule = plan_.schedules[idx];
        if (schedule.page_at && next >= *schedule.page_at) return;
    }
    ++retry_pages_;
    cell_.simulation().queue().schedule_at(next,
                                           [this, idx, kind] { deliver_page(idx, kind); });
}

void Execution::handle_connected(std::size_t idx) {
    ++connections_;
    DeviceRuntime& rt = runtime_[idx];
    if (rt.expects_private_rx || rt.tx_started_without_me) {
        if (rt.tx_started_without_me && !rt.expects_private_rx) {
            rt.expects_private_rx = true;
            rt.is_recovery = true;
        }
        start_private_delivery(idx);
    }
    // Otherwise: stay connected and wait; the transmission event collects us.
}

void Execution::handle_released(std::size_t idx) {
    // Safety net: a device that went back to idle after its transmission
    // passed (e.g. a straggling reconfiguration connection) still needs its
    // payload; keep paging it.
    DeviceRuntime& rt = runtime_[idx];
    const nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    if (rt.tx_started_without_me && !ue.payload_received()) {
        retry_page(idx, PageKind::normal);
    }
}

void Execution::handle_rach_failure(std::size_t idx) {
    // The UE exhausted preambleTransMax; the eNB re-pages it (bounded).
    const DeviceSchedule& schedule = plan_.schedules[idx];
    PageKind kind = PageKind::normal;
    if (schedule.mltc) kind = PageKind::mltc;
    retry_page(idx, kind);
}

void Execution::start_private_delivery(std::size_t idx) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    DeviceRuntime& rt = runtime_[idx];
    const SimTime now = cell_.simulation().now();
    const SimTime data_end = now + radio_.downlink_airtime(payload_bytes_, ue.ce_level());
    ue.begin_reception(data_end, tail());
    if (rt.is_recovery) {
        ++recovery_transmissions_;
    } else {
        ++aired_unicasts_;
    }
}

void Execution::start_transmission(std::size_t tx_idx) {
    const PlannedTransmission& tx = plan_.transmissions[tx_idx];
    const SimTime now = cell_.simulation().now();
    const nbiot::CeLevel level = bearer_level(tx);
    const SimTime data_end = now + radio_.downlink_airtime(payload_bytes_, level);

    if (plan_.kind == MechanismKind::sc_ptm) {
        ++aired_multicasts_;
        for (const DeviceId dev : tx.devices) {
            nbiot::Ue& ue = cell_.ue(dev);
            if (ue.state() == nbiot::UeState::idle) {
                ue.receive_idle_broadcast(data_end);
            }
        }
        return;
    }

    ++aired_multicasts_;
    for (const DeviceId dev : tx.devices) {
        nbiot::Ue& ue = cell_.ue(dev);
        if (ue.state() == nbiot::UeState::connected_waiting) {
            ue.begin_reception(data_end, tail());
        } else {
            // Missed its transmission: recover with a dedicated delivery
            // once it finally connects (re-page it if it is idle).
            DeviceRuntime& rt = runtime_[dev.value];
            rt.tx_started_without_me = true;
            if (ue.state() == nbiot::UeState::idle) {
                rt.page_attempts_left = config_.max_page_attempts;
                retry_page(dev.value, PageKind::normal);
            }
        }
    }
}

void Execution::count_initial_paging() {
    // Group the planned page instants into paging messages for the byte
    // accounting (several records can ride one occasion).
    std::map<SimTime, std::pair<std::size_t, std::size_t>> messages;  // records, ext
    for (const DeviceSchedule& s : plan_.schedules) {
        if (s.page_at) ++messages[*s.page_at].first;
        if (s.adjustment) ++messages[s.adjustment->adjust_page_at].first;
        if (s.mltc) ++messages[s.mltc->notify_po_at].second;
    }
    paging_messages_ = messages.size();
    paging_entries_ = 0;
    for (const auto& [at, counts] : messages) {
        paging_entries_ += counts.first + counts.second;
    }
}

CampaignResult Execution::run() {
    setup_devices();
    schedule_plan_events();
    count_initial_paging();
    cell_.simulation().queue().run_all();

    CampaignResult result;
    result.kind = plan_.kind;
    result.planned_transmissions = aired_multicasts_ + aired_unicasts_;
    result.recovery_transmissions = recovery_transmissions_;
    result.paging_messages = paging_messages_ + retry_pages_;
    result.paging_entries = paging_entries_ + retry_pages_;
    result.unserved = plan_.unserved.size();
    result.payload_bytes = payload_bytes_;
    result.observation_horizon = horizon_;
    result.rach_attempts = cell_.rach().total_attempts();
    result.rach_collisions = cell_.rach().total_collisions();
    result.rach_failures = cell_.rach().total_failures();

    result.devices.reserve(specs_.size());
    std::size_t restores = 0;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(i)});
        DeviceOutcome outcome;
        outcome.spec = specs_[i];
        outcome.energy = ue.energy();
        outcome.received = ue.payload_received();
        outcome.recovered = runtime_[i].is_recovery;
        outcome.po_count = ue.po_count();
        outcome.rach_attempts = ue.rach_attempts();
        outcome.connected_at = ue.connected_at();
        outcome.released_at = ue.released_at();
        result.devices.push_back(std::move(outcome));
        if (plan_.schedules[i].adjustment && ue.payload_received()) ++restores;
    }

    // Bytes on air: payload copies + paging + per-connection signaling.
    const nbiot::SignalingSizes& sz = config_.sizes;
    const auto total_payload_copies = static_cast<std::int64_t>(
        aired_multicasts_ + aired_unicasts_ + recovery_transmissions_);
    std::int64_t bytes = payload_bytes_ * total_payload_copies;
    bytes += static_cast<std::int64_t>(result.paging_messages) * sz.paging_message_base;
    std::size_t mltc_entries = 0;
    for (const DeviceSchedule& s : plan_.schedules) {
        if (s.mltc) ++mltc_entries;
    }
    bytes += static_cast<std::int64_t>(result.paging_entries - mltc_entries) *
             sz.paging_record;
    bytes += static_cast<std::int64_t>(mltc_entries) * sz.mltc_extension_entry;
    bytes += static_cast<std::int64_t>(connections_) *
             (sz.rach_exchange + sz.rrc_setup_exchange + sz.rrc_release);
    bytes += static_cast<std::int64_t>(reconfigurations_ + restores) *
             sz.rrc_reconfiguration;
    result.bytes_on_air = bytes;
    return result;
}

}  // namespace

CampaignRunner::CampaignRunner(CampaignConfig config) : config_(config) {
    if (!config_.valid()) throw std::invalid_argument("CampaignRunner: invalid config");
}

CampaignResult CampaignRunner::run(const MulticastPlan& plan,
                                   std::span<const nbiot::UeSpec> devices,
                                   std::int64_t payload_bytes,
                                   nbiot::SimTime observation_horizon,
                                   std::uint64_t seed) const {
    Execution execution(config_, plan, devices, payload_bytes, observation_horizon,
                        seed);
    return execution.run();
}

nbiot::SimTime recommended_horizon(std::span<const nbiot::UeSpec> devices,
                                   const CampaignConfig& config,
                                   std::int64_t payload_bytes) {
    const auto max_drx = population_max_cycle(devices);
    nbiot::CeLevel worst = nbiot::CeLevel::ce0;
    for (const auto& d : devices) {
        worst = nbiot::RadioModel::multicast_bearer_level(worst, d.ce_level);
    }
    const nbiot::RadioModel radio(config.radio);
    const nbiot::SimTime airtime = radio.downlink_airtime(payload_bytes, worst);
    const nbiot::SimTime tail =
        config.include_inactivity_tail ? config.inactivity_timer : nbiot::SimTime{0};
    return nbiot::SimTime{2 * max_drx.period_ms()} + config.inactivity_timer +
           config.ra_guard + airtime + tail + nbiot::SimTime{30'000};
}

CampaignResult plan_and_run(const GroupingMechanism& mechanism,
                            std::span<const nbiot::UeSpec> devices,
                            const CampaignConfig& config, std::int64_t payload_bytes,
                            std::uint64_t seed) {
    sim::RandomStream planner_rng{sim::derive_seed(seed, "planner")};
    const MulticastPlan plan = mechanism.plan(devices, config, planner_rng);
    const CampaignRunner runner(config);
    return runner.run(plan, devices, payload_bytes,
                      recommended_horizon(devices, config, payload_bytes), seed);
}

}  // namespace nbmg::core
