#include "core/campaign.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/sweep.hpp"
#include "nbiot/frames.hpp"
#include "nbiot/radio.hpp"
#include "telemetry/sink.hpp"

namespace nbmg::core {

bool CampaignResult::all_received() const noexcept {
    return received_count() == devices.size();
}

std::size_t CampaignResult::received_count() const noexcept {
    std::size_t n = 0;
    for (const auto& d : devices) n += d.received ? 1 : 0;
    return n;
}

namespace {

using nbiot::DeviceId;
using nbiot::SimTime;

/// One campaign execution: plays the eNB role against the cell.
class Execution {
public:
    Execution(const CampaignConfig& config, const MulticastPlan& plan,
              std::span<const nbiot::UeSpec> devices, std::int64_t payload_bytes,
              SimTime horizon, std::uint64_t seed)
        : config_(config),
          plan_(plan),
          specs_(devices),
          payload_bytes_(payload_bytes),
          horizon_(horizon),
          radio_(config.radio),
          cell_(seed, config.paging, config.rach, config.timing),
          miss_rng_(cell_.simulation().stream("page-miss")),
          sink_(config.telemetry) {
        if (plan.schedules.size() != devices.size()) {
            throw std::invalid_argument("CampaignRunner: plan/device mismatch");
        }
        // Entities reach the sink through the simulation context; emission
        // is purely observational, so results are bit-identical with or
        // without a sink attached.
        cell_.simulation().set_telemetry(sink_);
        // Struct-of-arrays per-device runtime state: the hot flags the
        // transmission/recovery paths sweep are one cache-linear byte
        // array each instead of strided struct fields.
        tx_index_.assign(devices.size(), DeviceSchedule::kUnserved);
        page_attempts_left_.assign(devices.size(), 0);
        expects_private_rx_.assign(devices.size(), 0);
        is_recovery_.assign(devices.size(), 0);
        tx_started_without_me_.assign(devices.size(), 0);
        missed_by_fault_.assign(devices.size(), 0);
        retry_event_.assign(devices.size(), std::nullopt);
        seed_ = seed;
    }

    CampaignResult run();

private:
    enum class PageKind { normal, reconfig, mltc };

    void setup_devices();
    void schedule_plan_events();
    void setup_churn();
    void schedule_next_leave(std::size_t idx);
    void attempt_leave(std::size_t idx);
    void rejoin(std::size_t idx);
    void deliver_page(std::size_t idx, PageKind kind);
    void retry_page(std::size_t idx, PageKind kind);
    void handle_connected(std::size_t idx);
    void handle_rach_failure(std::size_t idx);
    void handle_released(std::size_t idx);
    void start_transmission(std::size_t tx_idx);
    void start_private_delivery(std::size_t idx);
    void count_initial_paging();

    [[nodiscard]] SimTime tail() const {
        return config_.include_inactivity_tail ? config_.inactivity_timer : SimTime{0};
    }
    [[nodiscard]] nbiot::CeLevel bearer_level(const PlannedTransmission& tx) const {
        nbiot::CeLevel level = nbiot::CeLevel::ce0;
        for (const DeviceId dev : tx.devices) {
            level = nbiot::RadioModel::multicast_bearer_level(level,
                                                              specs_[dev.value].ce_level);
        }
        return level;
    }

    const CampaignConfig& config_;
    const MulticastPlan& plan_;
    std::span<const nbiot::UeSpec> specs_;
    std::int64_t payload_bytes_ = 0;
    SimTime horizon_;
    nbiot::RadioModel radio_;
    nbiot::Cell cell_;
    sim::RandomStream miss_rng_;
    telemetry::CampaignSink* sink_ = nullptr;  // not owned; may be null

    std::vector<std::size_t> tx_index_;
    std::vector<int> page_attempts_left_;
    std::vector<std::uint8_t> expects_private_rx_;  // unicast-planned or recovery
    std::vector<std::uint8_t> is_recovery_;
    std::vector<std::uint8_t> tx_started_without_me_;
    // Failure injection (src/faults).  Every churn draw comes from a
    // per-device stream rooted at derive_seed(seed, "faults", device), so
    // the campaign streams — and therefore every faults-off observable —
    // are byte-identical whether or not this subsystem is compiled in.
    std::uint64_t seed_ = 0;
    std::vector<sim::RandomStream> fault_rng_;  // per device; churn only
    std::vector<std::uint8_t> missed_by_fault_;
    // Per-device pending retry/recovery page event: cancelled through the
    // slab queue when the device departs, so a powered-off UE carries no
    // stale paging events.
    std::vector<std::optional<sim::EventId>> retry_event_;
    std::size_t churn_leaves_ = 0;
    std::size_t reattaches_ = 0;
    std::size_t stranded_ = 0;
    std::int64_t redelivery_bytes_ = 0;
    std::size_t aired_multicasts_ = 0;
    std::size_t aired_unicasts_ = 0;
    std::size_t recovery_transmissions_ = 0;
    std::size_t paging_messages_ = 0;
    std::size_t paging_entries_ = 0;
    std::size_t retry_pages_ = 0;
    std::size_t connections_ = 0;
    std::size_t reconfigurations_ = 0;
};

void Execution::setup_devices() {
    // One cell-shared hook set dispatching on DeviceId replaces three
    // std::functions per device.
    nbiot::Ue::Hooks hooks;
    hooks.on_connected = [this](DeviceId d, SimTime) { handle_connected(d.value); };
    hooks.on_rach_failure = [this](DeviceId d, SimTime) { handle_rach_failure(d.value); };
    hooks.on_released = [this](DeviceId d, SimTime) { handle_released(d.value); };
    cell_.set_ue_hooks(std::move(hooks));

    cell_.reserve_ues(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        nbiot::Ue& ue = cell_.add_ue(specs_[i]);
        ue.start_monitoring(horizon_);

        const DeviceSchedule& schedule = plan_.schedules[i];
        tx_index_[i] = schedule.transmission;
        page_attempts_left_[i] = config_.max_page_attempts;
        if (schedule.served() &&
            plan_.transmissions[schedule.transmission].starts_on_ready) {
            expects_private_rx_[i] = 1;
        }
    }
}

void Execution::schedule_plan_events() {
    // Every pre-known plan event goes into one sorted block: the batch's
    // internal (time, add-order) sort reproduces the seq order the
    // equivalent schedule_at loop would have assigned, so the run is
    // bit-identical — just without one heap sift per event.
    sim::EventQueue::Batch batch;
    batch.reserve(plan_.schedules.size() + plan_.transmissions.size());
    for (std::size_t i = 0; i < plan_.schedules.size(); ++i) {
        const DeviceSchedule& schedule = plan_.schedules[i];
        if (schedule.adjustment) {
            batch.add(schedule.adjustment->adjust_page_at,
                      [this, i] { deliver_page(i, PageKind::reconfig); });
        }
        if (schedule.mltc) {
            batch.add(schedule.mltc->notify_po_at,
                      [this, i] { deliver_page(i, PageKind::mltc); });
        }
        if (schedule.page_at) {
            batch.add(*schedule.page_at,
                      [this, i] { deliver_page(i, PageKind::normal); });
        }
    }
    for (std::size_t t = 0; t < plan_.transmissions.size(); ++t) {
        if (plan_.transmissions[t].starts_on_ready) continue;  // starts on connect
        batch.add(plan_.transmissions[t].start,
                  [this, t] { start_transmission(t); });
    }

    // SC-PTM: every device monitors the SC-MCCH once per modification
    // period, forever, whether or not multicast data exists — the standing
    // cost the on-demand scheme of [3] removes.  (Tick handlers only
    // charge energy, which commutes with everything at the same instant,
    // so riding the plan batch is order-safe.)
    if (plan_.kind == MechanismKind::sc_ptm) {
        const SimTime period = config_.sc_ptm_mcch_period;
        for (SimTime at = period; at < horizon_; at += period) {
            batch.add(at, [this] {
                for (std::size_t i = 0; i < specs_.size(); ++i) {
                    cell_.ue(DeviceId{static_cast<std::uint32_t>(i)})
                        .charge(nbiot::PowerState::po_monitor,
                                config_.timing.po_monitor);
                }
            });
        }
    }
    cell_.simulation().queue().schedule_batch(std::move(batch));

    if (config_.background_ra_per_second > 0.0) {
        cell_.rach().inject_background_load(config_.background_ra_per_second, horizon_);
    }
}

void Execution::setup_churn() {
    if (!config_.churn.enabled()) return;
    fault_rng_.reserve(specs_.size());
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        fault_rng_.emplace_back(
            sim::derive_seed(seed_, faults::kFaultStreamLabel, i));
        schedule_next_leave(i);
    }
}

void Execution::schedule_next_leave(std::size_t idx) {
    const SimTime now = cell_.simulation().now();
    // Exponential inter-departure gap, floored at 1 ms so the leave is
    // strictly after `now` (the draw itself is in continuous time).
    const double gap = fault_rng_[idx].exponential(config_.churn.mean_leave_gap_ms());
    const SimTime leave_at = now + SimTime{static_cast<std::int64_t>(gap) + 1};
    // A departure whose rejoin would land past the horizon is not acted
    // out: the device would never come back inside the observation
    // window, and a rejoin event past the horizon would charge re-attach
    // energy outside the uptime ledger's denominator.
    if (leave_at + SimTime{config_.churn.rejoin_ms} >= horizon_) return;
    cell_.simulation().queue().schedule_at(leave_at,
                                           [this, idx] { attempt_leave(idx); });
}

void Execution::attempt_leave(std::size_t idx) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    if (ue.state() != nbiot::UeState::idle) {
        // Mid-procedure: the model only lets a device vanish from idle
        // (a connected UE finishing its exchange first is both realistic
        // and keeps the state machine single-owner).  Redraw.
        schedule_next_leave(idx);
        return;
    }
    const SimTime now = cell_.simulation().now();
    ue.power_off();
    // Departed UEs carry no pending paging events: cancel the retry chain
    // through the slab queue (the plan's own batch events fire as misses,
    // which is exactly a dark device's observable).
    if (retry_event_[idx]) {
        cell_.simulation().queue().cancel(*retry_event_[idx]);
        retry_event_[idx].reset();
    }
    ++churn_leaves_;
    NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::device_leave, now.count(),
                        static_cast<std::uint32_t>(idx), config_.churn.rejoin_ms,
                        ue.payload_received() ? 1 : 0);
    cell_.simulation().queue().schedule_at(
        now + SimTime{config_.churn.rejoin_ms}, [this, idx] { rejoin(idx); });
}

void Execution::rejoin(std::size_t idx) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const SimTime now = cell_.simulation().now();
    ue.power_on();
    ++reattaches_;
    const bool needs_payload = !ue.payload_received();
    NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::device_rejoin, now.count(),
                        static_cast<std::uint32_t>(idx), config_.churn.rejoin_ms,
                        needs_payload && tx_started_without_me_[idx] ? 1 : 0);
    if (needs_payload) {
        // Whatever the device missed while off — its plan page, its
        // window, or the transmission itself — a fresh normal page is the
        // universal way back in: pre-transmission it re-enters the planned
        // flow (retry_page's own guards apply), post-transmission it is
        // the recovery path.  Either way the incompleteness is now
        // fault-attributable.
        missed_by_fault_[idx] = 1;
        page_attempts_left_[idx] = config_.max_page_attempts;
        retry_page(idx, PageKind::normal);
    }
    schedule_next_leave(idx);
}

void Execution::deliver_page(std::size_t idx, PageKind kind) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const DeviceSchedule& schedule = plan_.schedules[idx];
    const SimTime now = cell_.simulation().now();

    // Churn only: a rejoin-recovery chain can overlap a straggling plan
    // page, so a device that already holds the payload is never paged
    // again (without churn no such overlap exists, and skipping here would
    // shift the miss stream — hence the gate).
    if (config_.churn.enabled() && ue.payload_received()) return;

    // The page only lands if the device is idle, is actually listening at
    // this instant (this is one of its POs under its *current* cycle), and
    // the injected loss did not eat the message.
    const bool listening = ue.listening_at(now);
    const bool lost = config_.page_miss_prob > 0.0 &&
                      miss_rng_.bernoulli(config_.page_miss_prob);
    if (!listening || lost) {
        NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::page_miss, now.count(),
                            static_cast<std::uint32_t>(idx), listening ? 1 : 0,
                            lost ? 1 : 0);
        retry_page(idx, kind);
        return;
    }
    NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::page_delivered, now.count(),
                        static_cast<std::uint32_t>(idx),
                        static_cast<std::int64_t>(kind), 0);

    switch (kind) {
        case PageKind::normal:
            ue.page_normal();
            break;
        case PageKind::reconfig:
            ue.page_for_reconfig(schedule.adjustment->adapted_cycle);
            ++reconfigurations_;
            break;
        case PageKind::mltc: {
            // T322 may already be due if this is a late retry.
            const SimTime wake = std::max(schedule.mltc->wake_at, now + SimTime{1});
            ue.page_mltc(wake);
            break;
        }
    }
}

void Execution::retry_page(std::size_t idx, PageKind kind) {
    // Recovery mode (the device already missed its transmission) keeps
    // paging until the device is reached: a real eNB does not abandon a
    // device it owes a delivery.  Termination is guaranteed because the
    // loss probability is < 1.
    if (!tx_started_without_me_[idx]) {
        if (page_attempts_left_[idx] <= 0) return;
        --page_attempts_left_[idx];
    }

    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const SimTime now = cell_.simulation().now();
    const SimTime next = ue.next_po_at_or_after(now + SimTime{1});

    // Before the transmission, a normal page retried past its start is
    // pointless (the recovery path takes over at the transmission).  Once
    // the transmission has passed us by, retries ARE the recovery path.
    if (kind == PageKind::normal && !tx_started_without_me_[idx] &&
        tx_index_[idx] != DeviceSchedule::kUnserved &&
        !plan_.transmissions[tx_index_[idx]].starts_on_ready &&
        next >= plan_.transmissions[tx_index_[idx]].start) {
        return;
    }
    // A reconfiguration retried so late that the device could not be back
    // in idle before its window page is worse than useless (the device
    // would sit in a stray connection at transmission time): abandon the
    // adjustment and let the recovery path serve the device.
    if (kind == PageKind::reconfig) {
        const DeviceSchedule& schedule = plan_.schedules[idx];
        if (schedule.page_at && next >= *schedule.page_at) return;
    }
    // Churn only: an unbounded recovery chain must give up at the horizon
    // — a device that is off-air when monitoring ends stays unreached, it
    // does not drag the event loop past the observation window.
    if (config_.churn.enabled() && next >= horizon_) return;
    ++retry_pages_;
    NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::page_retry, next.count(),
                        static_cast<std::uint32_t>(idx),
                        static_cast<std::int64_t>(kind), 0);
    retry_event_[idx] = cell_.simulation().queue().schedule_at(
        next, [this, idx, kind] {
            retry_event_[idx].reset();
            deliver_page(idx, kind);
        });
}

void Execution::handle_connected(std::size_t idx) {
    ++connections_;
    if (expects_private_rx_[idx] || tx_started_without_me_[idx]) {
        if (tx_started_without_me_[idx] && !expects_private_rx_[idx]) {
            expects_private_rx_[idx] = 1;
            is_recovery_[idx] = 1;
        }
        start_private_delivery(idx);
    }
    // Otherwise: stay connected and wait; the transmission event collects us.
}

void Execution::handle_released(std::size_t idx) {
    // Safety net: a device that went back to idle after its transmission
    // passed (e.g. a straggling reconfiguration connection) still needs its
    // payload; keep paging it.
    const nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    if (tx_started_without_me_[idx] && !ue.payload_received()) {
        retry_page(idx, PageKind::normal);
    }
}

void Execution::handle_rach_failure(std::size_t idx) {
    // The UE exhausted preambleTransMax; the eNB re-pages it (bounded).
    const DeviceSchedule& schedule = plan_.schedules[idx];
    PageKind kind = PageKind::normal;
    if (schedule.mltc) kind = PageKind::mltc;
    retry_page(idx, kind);
}

void Execution::start_private_delivery(std::size_t idx) {
    nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(idx)});
    const SimTime now = cell_.simulation().now();
    const SimTime data_end = now + radio_.downlink_airtime(payload_bytes_, ue.ce_level());
    ue.begin_reception(data_end, tail());
    if (is_recovery_[idx]) {
        ++recovery_transmissions_;
        NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::tx_recovery, now.count(),
                            static_cast<std::uint32_t>(idx), 0, 0);
        if (missed_by_fault_[idx]) {
            // The device missed the shared bearer because it was off-air:
            // this dedicated copy is fault overhead, not mechanism cost.
            redelivery_bytes_ += payload_bytes_;
            NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::redelivery, now.count(),
                                static_cast<std::uint32_t>(idx), payload_bytes_, 0);
        }
    } else {
        ++aired_unicasts_;
        NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::tx_unicast, now.count(),
                            static_cast<std::uint32_t>(idx), 0, 0);
    }
}

void Execution::start_transmission(std::size_t tx_idx) {
    const PlannedTransmission& tx = plan_.transmissions[tx_idx];
    const SimTime now = cell_.simulation().now();
    const nbiot::CeLevel level = bearer_level(tx);
    const SimTime data_end = now + radio_.downlink_airtime(payload_bytes_, level);
    NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::tx_multicast, now.count(),
                        telemetry::kNoDevice, static_cast<std::int64_t>(tx_idx),
                        static_cast<std::int64_t>(tx.devices.size()));

    if (plan_.kind == MechanismKind::sc_ptm) {
        ++aired_multicasts_;
        for (const DeviceId dev : tx.devices) {
            nbiot::Ue& ue = cell_.ue(dev);
            if (ue.state() == nbiot::UeState::idle) {
                ue.receive_idle_broadcast(data_end);
            }
        }
        return;
    }

    ++aired_multicasts_;
    for (const DeviceId dev : tx.devices) {
        nbiot::Ue& ue = cell_.ue(dev);
        if (ue.state() == nbiot::UeState::connected_waiting) {
            ue.begin_reception(data_end, tail());
        } else {
            // Missed its transmission: recover with a dedicated delivery
            // once it finally connects (re-page it if it is idle).  An
            // off-air device is not paged — its rejoin starts the
            // recovery chain instead.
            tx_started_without_me_[dev.value] = 1;
            if (ue.state() == nbiot::UeState::idle && ue.powered()) {
                page_attempts_left_[dev.value] = config_.max_page_attempts;
                retry_page(dev.value, PageKind::normal);
            }
        }
    }
}

void Execution::count_initial_paging() {
    // Group the planned page instants into paging messages for the byte
    // accounting (several records can ride one occasion).  Each planned
    // page contributes one entry; distinct instants are one message each —
    // a sort over a flat vector instead of a red-black tree.
    std::vector<SimTime> instants;
    instants.reserve(plan_.schedules.size());
    for (const DeviceSchedule& s : plan_.schedules) {
        if (s.page_at) instants.push_back(*s.page_at);
        if (s.adjustment) instants.push_back(s.adjustment->adjust_page_at);
        if (s.mltc) instants.push_back(s.mltc->notify_po_at);
    }
    paging_entries_ = instants.size();
    std::sort(instants.begin(), instants.end());
    paging_messages_ = static_cast<std::size_t>(
        std::unique(instants.begin(), instants.end()) - instants.begin());
}

CampaignResult Execution::run() {
    setup_devices();
    schedule_plan_events();
    setup_churn();
    count_initial_paging();

    const SimTime outage_at{config_.outage_at_ms};
    if (config_.outage_at_ms >= 1 && outage_at < horizon_) {
        // The cell goes dark at `outage_at`: every event up to and
        // including that instant runs, then the loop stops cold.  The
        // analytic PO sentinels never fire, so each device's ledger is
        // closed explicitly at the outage instant; devices without their
        // payload are stranded (the deployment layer re-assigns them to
        // surviving neighbor cells).
        cell_.simulation().queue().run_until(outage_at);
        std::size_t complete = 0;
        for (std::size_t i = 0; i < specs_.size(); ++i) {
            nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(i)});
            ue.halt_monitoring();
            complete += ue.payload_received() ? 1 : 0;
        }
        stranded_ = specs_.size() - complete;
        NBMG_TELEMETRY_EMIT(sink_, telemetry::EventKind::cell_outage,
                            outage_at.count(), telemetry::kNoDevice,
                            static_cast<std::int64_t>(stranded_),
                            static_cast<std::int64_t>(complete));
    } else {
        cell_.simulation().queue().run_all();
    }

    CampaignResult result;
    result.kind = plan_.kind;
    result.planned_transmissions = aired_multicasts_ + aired_unicasts_;
    result.recovery_transmissions = recovery_transmissions_;
    result.paging_messages = paging_messages_ + retry_pages_;
    result.paging_entries = paging_entries_ + retry_pages_;
    result.unserved = plan_.unserved.size();
    result.payload_bytes = payload_bytes_;
    result.observation_horizon = horizon_;
    result.rach_attempts = cell_.rach().total_attempts();
    result.rach_collisions = cell_.rach().total_collisions();
    result.rach_failures = cell_.rach().total_failures();
    result.stranded = stranded_;
    result.redelivery_bytes = redelivery_bytes_;
    result.churn_leaves = churn_leaves_;

    result.devices.reserve(specs_.size());
    std::size_t restores = 0;
    for (std::size_t i = 0; i < specs_.size(); ++i) {
        const nbiot::Ue& ue = cell_.ue(DeviceId{static_cast<std::uint32_t>(i)});
        DeviceOutcome outcome;
        outcome.spec = specs_[i];
        outcome.energy = ue.energy();
        outcome.received = ue.payload_received();
        outcome.recovered = is_recovery_[i] != 0;
        outcome.po_count = ue.po_count();
        outcome.rach_attempts = ue.rach_attempts();
        outcome.connected_at = ue.connected_at();
        outcome.released_at = ue.released_at();
        result.devices.push_back(std::move(outcome));
        if (plan_.schedules[i].adjustment && ue.payload_received()) ++restores;
    }

    // Bytes on air: payload copies + paging + per-connection signaling.
    const nbiot::SignalingSizes& sz = config_.sizes;
    const auto total_payload_copies = static_cast<std::int64_t>(
        aired_multicasts_ + aired_unicasts_ + recovery_transmissions_);
    std::int64_t bytes = payload_bytes_ * total_payload_copies;
    bytes += static_cast<std::int64_t>(result.paging_messages) * sz.paging_message_base;
    std::size_t mltc_entries = 0;
    for (const DeviceSchedule& s : plan_.schedules) {
        if (s.mltc) ++mltc_entries;
    }
    bytes += static_cast<std::int64_t>(result.paging_entries - mltc_entries) *
             sz.paging_record;
    bytes += static_cast<std::int64_t>(mltc_entries) * sz.mltc_extension_entry;
    bytes += static_cast<std::int64_t>(connections_) *
             (sz.rach_exchange + sz.rrc_setup_exchange + sz.rrc_release);
    bytes += static_cast<std::int64_t>(reconfigurations_ + restores) *
             sz.rrc_reconfiguration;
    // Churn: every rejoin is one full re-attach exchange on the air
    // interface (RA + RRC setup + immediate release).
    bytes += static_cast<std::int64_t>(reattaches_) *
             (sz.rach_exchange + sz.rrc_setup_exchange + sz.rrc_release);
    result.bytes_on_air = bytes;
    return result;
}

/// One stratum's self-contained sub-problem.  Owns everything the
/// Execution references (config, plan, specs), because executions of
/// different strata run concurrently and outlive no shared mutable state.
struct StratumProblem {
    std::size_t stratum = 0;
    std::uint64_t seed = 0;
    CampaignConfig config;
    MulticastPlan plan;
    std::vector<nbiot::UeSpec> specs;
    std::vector<std::size_t> members;  // local index -> global index
};

/// Stratified campaign execution: partition the devices by paging-frame
/// stratum, run each stratum as an independent sub-cell (locally dense
/// DeviceIds, own derived seed, 1/K of the background RA load), and merge
/// the per-stratum results in stratum order.  Each stratum's run is a
/// serial Execution, so the merged result is a pure function of
/// (plan, devices, config, seed) — never of the thread count.
CampaignResult run_stratified(const CampaignConfig& config, std::size_t strata,
                              std::size_t threads, const MulticastPlan& plan,
                              std::span<const nbiot::UeSpec> devices,
                              std::int64_t payload_bytes, SimTime horizon,
                              std::uint64_t seed) {
    const nbiot::PagingSchedule paging(config.paging);
    const std::size_t n = devices.size();

    // Partition.  Strata are disjoint and cover every device, so one
    // global->local map serves all of them.
    std::vector<std::size_t> stratum_of(n);
    std::vector<std::uint32_t> local_of(n);
    std::vector<std::vector<std::size_t>> members(strata);
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t s = paging_stratum(paging, devices[i], strata);
        stratum_of[i] = s;
        local_of[i] = static_cast<std::uint32_t>(members[s].size());
        members[s].push_back(i);
    }

    // Build each non-empty stratum's owned sub-problem: remapped specs,
    // filtered plan, derived seed, split background load.
    std::vector<StratumProblem> subs;
    subs.reserve(strata);
    for (std::size_t s = 0; s < strata; ++s) {
        if (members[s].empty()) continue;
        StratumProblem sub;
        sub.stratum = s;
        sub.members = std::move(members[s]);
        sub.seed = sim::derive_seed(seed, "stratum", s);
        sub.config = config;
        sub.config.strata = 1;
        // The cell's shared NPRACH carries the background load; a K-way
        // carrier partition hands each stratum an equal share.
        sub.config.background_ra_per_second =
            config.background_ra_per_second / static_cast<double>(strata);

        sub.plan.kind = plan.kind;
        sub.plan.planning_reference = plan.planning_reference;

        // Transmissions restricted to this stratum's members; ones that
        // lose every device are dropped.  A transmission spanning several
        // strata airs once per stratum — each partition is its own
        // downlink resource, so the copies do not share a bearer.
        std::vector<std::size_t> tx_map(plan.transmissions.size(),
                                        DeviceSchedule::kUnserved);
        for (std::size_t t = 0; t < plan.transmissions.size(); ++t) {
            PlannedTransmission tx;
            tx.start = plan.transmissions[t].start;
            tx.starts_on_ready = plan.transmissions[t].starts_on_ready;
            for (const DeviceId dev : plan.transmissions[t].devices) {
                if (stratum_of[dev.value] == s) {
                    tx.devices.push_back(DeviceId{local_of[dev.value]});
                }
            }
            if (tx.devices.empty()) continue;
            tx_map[t] = sub.plan.transmissions.size();
            sub.plan.transmissions.push_back(std::move(tx));
        }

        sub.specs.reserve(sub.members.size());
        sub.plan.schedules.reserve(sub.members.size());
        std::size_t entries = 0;
        for (std::size_t j = 0; j < sub.members.size(); ++j) {
            const std::size_t g = sub.members[j];
            nbiot::UeSpec spec = devices[g];
            spec.device = DeviceId{static_cast<std::uint32_t>(j)};
            sub.specs.push_back(spec);

            DeviceSchedule schedule = plan.schedules[g];
            schedule.device = spec.device;
            if (schedule.transmission != DeviceSchedule::kUnserved) {
                // A served device's transmission contains it, so the
                // stratum kept that transmission and the map is set.
                schedule.transmission = tx_map[schedule.transmission];
            }
            entries += (schedule.page_at ? 1U : 0U) + (schedule.adjustment ? 1U : 0U) +
                       (schedule.mltc ? 1U : 0U);
            sub.plan.schedules.push_back(std::move(schedule));
        }
        sub.plan.paging_entries = entries;
        for (const DeviceId dev : plan.unserved) {
            if (stratum_of[dev.value] == s) {
                sub.plan.unserved.push_back(DeviceId{local_of[dev.value]});
            }
        }
        subs.push_back(std::move(sub));
    }

    // Telemetry: concurrent strata must never share a sink, so each
    // records into its own child (stamped with its stratum id); the
    // children are absorbed into the parent in stratum order below —
    // the same merge discipline as the counters — so the merged trace and
    // metrics are bit-identical at any thread count.  The vector is fully
    // sized before the sweep starts; addresses stay stable throughout.
    telemetry::CampaignSink* const parent_sink = config.telemetry;
    std::vector<telemetry::CampaignSink> stratum_sinks;
    if (parent_sink != nullptr) {
        stratum_sinks.reserve(subs.size());
        for (std::size_t i = 0; i < subs.size(); ++i) {
            stratum_sinks.emplace_back(parent_sink->config(),
                                       static_cast<std::uint16_t>(subs[i].stratum));
        }
        for (std::size_t i = 0; i < subs.size(); ++i) {
            subs[i].config.telemetry = &stratum_sinks[i];
        }
    }

    // Fan the strata over the pool.  sweep_indexed stores every result in
    // its index slot, so the merge below always sees stratum order.
    const std::vector<CampaignResult> results =
        sweep_indexed(subs.size(), threads, [&](std::size_t i) {
            Execution execution(subs[i].config, subs[i].plan, subs[i].specs,
                                payload_bytes, horizon, subs[i].seed);
            return execution.run();
        });

    // Merge in stratum order: integer counter sums plus an index-addressed
    // scatter of the per-device outcomes back to global DeviceIds.
    CampaignResult merged;
    merged.kind = plan.kind;
    merged.payload_bytes = payload_bytes;
    merged.observation_horizon = horizon;
    merged.devices.resize(n);
    for (std::size_t i = 0; i < subs.size(); ++i) {
        const CampaignResult& r = results[i];
        merged.planned_transmissions += r.planned_transmissions;
        merged.recovery_transmissions += r.recovery_transmissions;
        merged.paging_messages += r.paging_messages;
        merged.paging_entries += r.paging_entries;
        merged.unserved += r.unserved;
        merged.bytes_on_air += r.bytes_on_air;
        merged.rach_attempts += r.rach_attempts;
        merged.rach_collisions += r.rach_collisions;
        merged.rach_failures += r.rach_failures;
        merged.stranded += r.stranded;
        merged.redelivery_bytes += r.redelivery_bytes;
        merged.churn_leaves += r.churn_leaves;
        for (std::size_t j = 0; j < subs[i].members.size(); ++j) {
            const std::size_t g = subs[i].members[j];
            DeviceOutcome outcome = r.devices[j];
            outcome.spec = devices[g];  // restore the global DeviceId
            merged.devices[g] = std::move(outcome);
        }
        if (parent_sink != nullptr) {
            parent_sink->emit_span(telemetry::EventKind::stratum_span,
                                   static_cast<std::uint16_t>(subs[i].stratum),
                                   static_cast<std::int64_t>(subs[i].members.size()),
                                   horizon.count());
            parent_sink->absorb(stratum_sinks[i]);
        }
    }
    return merged;
}

}  // namespace

std::size_t resolve_strata(std::size_t requested) {
    if (requested == 0) {
        throw std::invalid_argument("resolve_strata: stratum count must be >= 1");
    }
    std::size_t resolved = 1;
    while (resolved * 2 <= requested && resolved * 2 <= kMaxStrata) resolved *= 2;
    return resolved;
}

std::size_t paging_stratum(const nbiot::PagingSchedule& paging,
                           const nbiot::UeSpec& spec, std::size_t strata) {
    const nbiot::SimTime offset = paging.po_offset(spec.imsi, spec.cycle);
    const auto frame = static_cast<std::size_t>(nbiot::frame_index_of(offset));
    return frame % strata;
}

CampaignRunner::CampaignRunner(CampaignConfig config, std::size_t strata_threads)
    : config_(config), strata_threads_(strata_threads) {
    if (!config_.valid()) throw std::invalid_argument("CampaignRunner: invalid config");
}

CampaignResult CampaignRunner::run(const MulticastPlan& plan,
                                   std::span<const nbiot::UeSpec> devices,
                                   std::int64_t payload_bytes,
                                   nbiot::SimTime observation_horizon,
                                   std::uint64_t seed) const {
    const std::size_t strata = resolve_strata(config_.strata);
    CampaignResult result;
    if (strata == 1) {
        Execution execution(config_, plan, devices, payload_bytes, observation_horizon,
                            seed);
        result = execution.run();
    } else {
        result = run_stratified(config_, strata, strata_threads_, plan, devices,
                                payload_bytes, observation_horizon, seed);
    }
    // The campaign-level span feeds the phase timeline exporter; emitted
    // after the stratum spans so the trace reads bottom-up.
    NBMG_TELEMETRY_EMIT(config_.telemetry, telemetry::EventKind::campaign_span, 0,
                        telemetry::kNoDevice,
                        static_cast<std::int64_t>(devices.size()),
                        observation_horizon.count());
    return result;
}

nbiot::SimTime recommended_horizon(std::span<const nbiot::UeSpec> devices,
                                   const CampaignConfig& config,
                                   std::int64_t payload_bytes) {
    const auto max_drx = population_max_cycle(devices);
    nbiot::CeLevel worst = nbiot::CeLevel::ce0;
    for (const auto& d : devices) {
        worst = nbiot::RadioModel::multicast_bearer_level(worst, d.ce_level);
    }
    const nbiot::RadioModel radio(config.radio);
    const nbiot::SimTime airtime = radio.downlink_airtime(payload_bytes, worst);
    const nbiot::SimTime tail =
        config.include_inactivity_tail ? config.inactivity_timer : nbiot::SimTime{0};
    return nbiot::SimTime{2 * max_drx.period_ms()} + config.inactivity_timer +
           config.ra_guard + airtime + tail + nbiot::SimTime{30'000};
}

CampaignResult plan_and_run(const GroupingMechanism& mechanism,
                            std::span<const nbiot::UeSpec> devices,
                            const CampaignConfig& config, std::int64_t payload_bytes,
                            std::uint64_t seed, std::size_t strata_threads) {
    sim::RandomStream planner_rng{sim::derive_seed(seed, "planner")};
    const MulticastPlan plan = mechanism.plan(devices, config, planner_rng);
    const CampaignRunner runner(config, strata_threads);
    return runner.run(plan, devices, payload_bytes,
                      recommended_horizon(devices, config, payload_bytes), seed);
}

}  // namespace nbmg::core
