#include "core/report.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace nbmg::core {
namespace {

double ms(nbiot::SimTime t) { return static_cast<double>(t.count()); }

}  // namespace

double total_light_sleep_ms(const CampaignResult& result) noexcept {
    double total = 0.0;
    for (const auto& d : result.devices) total += ms(d.energy.light_sleep_uptime());
    return total;
}

double total_connected_ms(const CampaignResult& result) noexcept {
    double total = 0.0;
    for (const auto& d : result.devices) total += ms(d.energy.connected_uptime());
    return total;
}

double mean_light_sleep_ms(const CampaignResult& result) noexcept {
    if (result.devices.empty()) return 0.0;
    return total_light_sleep_ms(result) / static_cast<double>(result.devices.size());
}

double mean_connected_ms(const CampaignResult& result) noexcept {
    if (result.devices.empty()) return 0.0;
    return total_connected_ms(result) / static_cast<double>(result.devices.size());
}

double completion_p99_ms(const CampaignResult& result) {
    if (result.devices.empty()) return 0.0;
    std::vector<std::int64_t> completion;
    completion.reserve(result.devices.size());
    for (const auto& d : result.devices) {
        const bool complete = d.received && d.released_at.has_value();
        completion.push_back(complete ? d.released_at->count()
                                      : result.observation_horizon.count());
    }
    // Nearest-rank p99: the smallest value with at least 99% of devices
    // at or below it.
    const std::size_t rank =
        (completion.size() * 99 + 99) / 100;  // ceil(0.99 n), 1-based
    const std::size_t index = std::min(rank, completion.size()) - 1;
    std::nth_element(completion.begin(),
                     completion.begin() + static_cast<std::ptrdiff_t>(index),
                     completion.end());
    return static_cast<double>(completion[index]);
}

RelativeUptime relative_uptime(const CampaignResult& mechanism,
                               const CampaignResult& unicast_reference) {
    if (mechanism.devices.size() != unicast_reference.devices.size()) {
        throw std::invalid_argument("relative_uptime: population mismatch");
    }
    if (mechanism.observation_horizon != unicast_reference.observation_horizon) {
        throw std::invalid_argument(
            "relative_uptime: observation horizons differ; light-sleep uptime "
            "would not be comparable");
    }

    RelativeUptime out;
    const double base_light = total_light_sleep_ms(unicast_reference);
    const double base_conn = total_connected_ms(unicast_reference);
    if (base_light > 0.0) {
        out.light_sleep_increase = total_light_sleep_ms(mechanism) / base_light - 1.0;
    }
    if (base_conn > 0.0) {
        out.connected_increase = total_connected_ms(mechanism) / base_conn - 1.0;
    }

    double light_sum = 0.0;
    double conn_sum = 0.0;
    std::size_t light_n = 0;
    std::size_t conn_n = 0;
    for (std::size_t i = 0; i < mechanism.devices.size(); ++i) {
        const auto& m = mechanism.devices[i].energy;
        const auto& u = unicast_reference.devices[i].energy;
        if (mechanism.devices[i].spec.imsi != unicast_reference.devices[i].spec.imsi) {
            throw std::invalid_argument("relative_uptime: device pairing mismatch");
        }
        if (u.light_sleep_uptime().count() > 0) {
            light_sum += ms(m.light_sleep_uptime()) / ms(u.light_sleep_uptime()) - 1.0;
            ++light_n;
        }
        if (u.connected_uptime().count() > 0) {
            conn_sum += ms(m.connected_uptime()) / ms(u.connected_uptime()) - 1.0;
            ++conn_n;
        }
    }
    if (light_n > 0) {
        out.per_device_light_sleep_increase = light_sum / static_cast<double>(light_n);
    }
    if (conn_n > 0) {
        out.per_device_connected_increase = conn_sum / static_cast<double>(conn_n);
    }
    return out;
}

BandwidthComparison bandwidth_comparison(const CampaignResult& mechanism,
                                         const CampaignResult& unicast_reference) {
    BandwidthComparison out;
    out.transmissions = mechanism.total_transmissions();
    const auto n = static_cast<double>(mechanism.devices.size());
    if (n > 0.0) {
        out.transmissions_per_device = static_cast<double>(out.transmissions) / n;
        out.savings_vs_unicast = 1.0 - out.transmissions_per_device;
    }
    if (unicast_reference.bytes_on_air > 0) {
        out.bytes_on_air_ratio = static_cast<double>(mechanism.bytes_on_air) /
                                 static_cast<double>(unicast_reference.bytes_on_air);
    }
    return out;
}

stats::Table mechanism_summary_table(
    const MechanismStats& unicast,
    std::span<const MechanismStats* const> mechanisms) {
    stats::Table table({"mechanism", "transmissions", "tx/device",
                        "light-sleep vs unicast", "connected vs unicast",
                        "bytes vs unicast", "recovery tx", "unreceived",
                        "p99 completion (s)", "redelivered (KB)", "stranded"});
    table.add_row({std::string{to_string(unicast.kind)},
                   stats::Table::cell(unicast.transmissions.mean(), 1),
                   stats::Table::cell(unicast.transmissions_per_device.mean(), 3),
                   "-", "-", "-",
                   stats::Table::cell(unicast.recovery_transmissions.mean(), 1),
                   stats::Table::cell(unicast.unreceived_devices.mean(), 1),
                   stats::Table::cell(unicast.completion_p99_ms.mean() / 1000.0, 1),
                   stats::Table::cell(unicast.redelivery_bytes.mean() / 1024.0, 1),
                   stats::Table::cell(unicast.stranded_devices.mean(), 1)});
    for (const MechanismStats* mech : mechanisms) {
        table.add_row(
            {std::string{to_string(mech->kind)},
             stats::Table::cell(mech->transmissions.mean(), 1),
             stats::Table::cell(mech->transmissions_per_device.mean(), 3),
             stats::Table::cell_percent(mech->light_sleep_increase.mean(), 2),
             stats::Table::cell_percent(mech->connected_increase.mean(), 2),
             stats::Table::cell(mech->bytes_ratio.mean(), 3),
             stats::Table::cell(mech->recovery_transmissions.mean(), 1),
             stats::Table::cell(mech->unreceived_devices.mean(), 1),
             stats::Table::cell(mech->completion_p99_ms.mean() / 1000.0, 1),
             stats::Table::cell(mech->redelivery_bytes.mean() / 1024.0, 1),
             stats::Table::cell(mech->stranded_devices.mean(), 1)});
    }
    return table;
}

}  // namespace nbmg::core
