// DR-SI planner (Sec. III-C).
//
// Devices with a natural PO inside [t - TI, t) are paged normally there.
// Every other device receives the extended paging message (mltc extension:
// identity + time to multicast) at its first PO, keeps sleeping on its own
// cycle, and wakes at a uniformly random T322 expiry inside the window to
// connect with cause multicastReception.  Exactly one transmission.
#include "core/planner_detail.hpp"
#include "core/planners.hpp"
#include "nbiot/paging_scheduler.hpp"

namespace nbmg::core {

MulticastPlan DrSiMechanism::plan(std::span<const nbiot::UeSpec> devices,
                                  const CampaignConfig& config,
                                  sim::RandomStream& rng) const {
    if (devices.empty()) throw std::invalid_argument("DrSi: empty population");
    if (!config.valid()) throw std::invalid_argument("DrSi: invalid config");

    const nbiot::PagingSchedule paging(config.paging);
    nbiot::PagingScheduler scheduler(paging, config.paging.max_page_records);
    scheduler.set_telemetry(config.telemetry);

    const nbiot::SimTime t = detail::reference_time(devices);
    const nbiot::SimTime window_start = t - config.inactivity_timer;

    MulticastPlan plan;
    plan.kind = MechanismKind::dr_si;
    plan.planning_reference = t;
    plan.schedules.resize(devices.size());

    PlannedTransmission tx;
    tx.start = t + config.ra_guard;

    for (std::size_t i = 0; i < devices.size(); ++i) {
        const nbiot::UeSpec& dev = devices[i];
        DeviceSchedule& schedule = plan.schedules[i];
        schedule.device = dev.device;

        if (paging.has_po_in_range(window_start, t, dev.imsi, dev.cycle)) {
            const auto slot = scheduler.enqueue_record(dev.device, dev.imsi, dev.cycle,
                                                       window_start, t);
            if (slot) {
                schedule.page_at = *slot;
                schedule.transmission = 0;
                tx.devices.push_back(dev.device);
                continue;
            }
            // Window occasions full: fall through to the extension path,
            // which can notify at any earlier PO.
        }

        const nbiot::SimTime wake_at{rng.uniform_int(window_start.count(), t.count() - 1)};
        const auto slot = scheduler.enqueue_mltc(dev.device, dev.imsi, dev.cycle,
                                                 nbiot::SimTime{0}, window_start,
                                                 tx.start);
        if (!slot) {
            plan.unserved.push_back(dev.device);
            continue;
        }
        schedule.mltc = MltcNotification{*slot, wake_at};
        schedule.transmission = 0;
        tx.devices.push_back(dev.device);
    }

    plan.transmissions.push_back(std::move(tx));
    plan.paging_entries = scheduler.total_entries();
    return plan;
}

}  // namespace nbmg::core
