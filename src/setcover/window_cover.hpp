// Sliding-window maximum-coverage greedy — the DR-SC planner's core.
//
// Input: every device's paging occasions over the planning horizon as
// (time, device) events.  A multicast window of length TI anchored at time
// s covers every device with at least one PO in [s, s+TI].  The paper's
// algorithm (Sec. III-A) repeatedly finds the window covering the most
// non-updated devices (random tie-break), transmits at the window end, and
// removes the covered devices.
//
// Only windows anchored at PO events need to be considered: shifting a
// window left until its start touches a PO never loses coverage.  The
// greedy runs lazily: anchors are bucketed by their last exactly evaluated
// coverage (a valid upper bound, since coverage only shrinks as devices are
// covered), so a round re-evaluates only the anchors that could still hold
// or tie the maximum instead of rescanning every remaining event.  Covered
// devices' events are unlinked from a doubly-linked alive list in O(1)
// each, giving near-linear total work on typical PO patterns.  The chosen
// windows and the tie-break RNG stream are bit-identical to the full
// rescan (see tests/setcover/window_cover_test.cpp, WindowCoverTraceTest).
#pragma once

#include <cstdint>
#include <vector>

#include "setcover/instance.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"

namespace nbmg::setcover {

struct PoEvent {
    sim::SimTime at;
    std::uint32_t device = 0;

    friend bool operator==(const PoEvent&, const PoEvent&) = default;
};

struct CoverWindow {
    sim::SimTime start;  // first covered PO
    sim::SimTime end;    // start + window length (transmission reference point)
    std::vector<std::uint32_t> devices;
};

struct WindowCoverResult {
    std::vector<CoverWindow> windows;
    /// Devices with no PO event at all (cannot be covered).
    std::vector<std::uint32_t> uncoverable;
};

/// Runs the greedy window cover.  `device_count` bounds the device ids in
/// `events`.  `window` is TI (inclusive window [s, s+window]).  Ties between
/// equally good windows are broken uniformly at random via `rng`.
[[nodiscard]] WindowCoverResult greedy_window_cover(std::vector<PoEvent> events,
                                                    sim::SimTime window,
                                                    std::uint32_t device_count,
                                                    sim::RandomStream& rng);

/// Converts PO events to a generic set-cover instance (one candidate set
/// per distinct anchored window).  Used by tests and the solver-comparison
/// ablation; the dedicated greedy above is the fast path.
[[nodiscard]] SetCoverInstance to_set_cover_instance(const std::vector<PoEvent>& events,
                                                     sim::SimTime window,
                                                     std::uint32_t device_count);

}  // namespace nbmg::setcover
