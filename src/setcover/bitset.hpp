// Packed 64-bit-word bitset used as the coverage representation of the
// set-cover kernels.  Replaces std::vector<bool> on the hot paths: word
// storage is contiguous and test/set compile to single-instruction
// mask ops, and test_and_set fuses the membership check with the update
// so marking a set costs one pass.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace nbmg::setcover {

class CoverageBitset {
public:
    CoverageBitset() = default;
    explicit CoverageBitset(std::size_t bits)
        : bits_(bits), words_((bits + 63) / 64, 0) {}

    [[nodiscard]] std::size_t size() const noexcept { return bits_; }

    [[nodiscard]] bool test(std::size_t i) const noexcept {
        return (words_[i >> 6] >> (i & 63)) & 1u;
    }

    void set(std::size_t i) noexcept { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }

    void reset(std::size_t i) noexcept {
        words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
    }

    /// Sets bit i; returns true when the bit was previously clear.
    bool test_and_set(std::size_t i) noexcept {
        std::uint64_t& word = words_[i >> 6];
        const std::uint64_t mask = std::uint64_t{1} << (i & 63);
        const bool was_clear = (word & mask) == 0;
        word |= mask;
        return was_clear;
    }

    void clear_all() noexcept {
        for (std::uint64_t& w : words_) w = 0;
    }

private:
    std::size_t bits_ = 0;
    std::vector<std::uint64_t> words_;
};

}  // namespace nbmg::setcover
