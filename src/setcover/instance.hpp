// Generic (unweighted) set-cover instance.
//
// The DR-SC grouping problem reduces to set cover: the universe is the set
// of non-updated devices and every candidate TI-window is the set of
// devices with a paging occasion inside it (paper Fig. 3).  Set cover is
// NP-hard; the paper uses Chvátal's greedy heuristic.  This module holds
// the instance representation shared by the exact and heuristic solvers.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

namespace nbmg::setcover {

using Element = std::uint32_t;

class SetCoverInstance {
public:
    /// `sets[i]` lists the elements covered by set i.  Element ids must be
    /// smaller than `universe_size`; duplicates within a set are allowed
    /// and ignored.
    SetCoverInstance(std::size_t universe_size, std::vector<std::vector<Element>> sets);

    [[nodiscard]] std::size_t universe_size() const noexcept { return universe_size_; }
    [[nodiscard]] std::size_t set_count() const noexcept { return sets_.size(); }
    [[nodiscard]] const std::vector<std::vector<Element>>& sets() const noexcept {
        return sets_;
    }
    /// Hot-path accessor: bounds are asserted in debug builds only.
    [[nodiscard]] std::span<const Element> set(std::size_t index) const noexcept {
        assert(index < sets_.size());
        return sets_[index];
    }

    /// True when the chosen sets cover every element of the universe.
    [[nodiscard]] bool is_cover(std::span<const std::size_t> chosen) const;

    /// True when the union of all sets covers the universe.
    [[nodiscard]] bool is_coverable() const;

private:
    std::size_t universe_size_ = 0;
    std::vector<std::vector<Element>> sets_;
};

/// A (possibly partial) solution: indices of chosen sets.
struct SetCoverSolution {
    std::vector<std::size_t> chosen;
    bool covers_all = false;
};

/// H_k = 1 + 1/2 + ... + 1/k — the greedy approximation guarantee
/// (Chvátal 1979): |greedy| <= H(max set size) * |optimal|.
[[nodiscard]] double harmonic(std::size_t k) noexcept;

}  // namespace nbmg::setcover
