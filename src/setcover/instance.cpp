#include "setcover/instance.hpp"

#include <algorithm>
#include <stdexcept>

#include "setcover/bitset.hpp"

namespace nbmg::setcover {

SetCoverInstance::SetCoverInstance(std::size_t universe_size,
                                   std::vector<std::vector<Element>> sets)
    : universe_size_(universe_size), sets_(std::move(sets)) {
    for (auto& s : sets_) {
        for (const Element e : s) {
            if (e >= universe_size_) {
                throw std::invalid_argument("SetCoverInstance: element outside universe");
            }
        }
        // Deduplicate so that |set| equals its true coverage (solvers rely
        // on gain counting).
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
    }
}

bool SetCoverInstance::is_cover(std::span<const std::size_t> chosen) const {
    CoverageBitset covered(universe_size_);
    std::size_t remaining = universe_size_;
    for (const std::size_t idx : chosen) {
        if (idx >= sets_.size()) throw std::out_of_range("is_cover: bad set index");
        for (const Element e : sets_[idx]) {
            if (covered.test_and_set(e)) --remaining;
        }
    }
    return remaining == 0;
}

bool SetCoverInstance::is_coverable() const {
    CoverageBitset covered(universe_size_);
    std::size_t remaining = universe_size_;
    for (const auto& s : sets_) {
        for (const Element e : s) {
            if (covered.test_and_set(e)) --remaining;
        }
    }
    return remaining == 0;
}

double harmonic(std::size_t k) noexcept {
    double h = 0.0;
    for (std::size_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
    return h;
}

}  // namespace nbmg::setcover
