#include "setcover/solvers.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "setcover/bitset.hpp"

namespace nbmg::setcover {
namespace {

/// Number of elements in `set` not yet covered.
std::size_t gain(const std::vector<Element>& set, const CoverageBitset& covered) {
    std::size_t g = 0;
    for (const Element e : set) {
        g += covered.test(e) ? 0 : 1;
    }
    return g;
}

void mark(const std::vector<Element>& set, CoverageBitset& covered,
          std::size_t& remaining) {
    for (const Element e : set) {
        if (covered.test_and_set(e)) --remaining;
    }
}

}  // namespace

// Lazy greedy (Minoux' accelerated Chvátal): coverage gains are submodular
// — once elements get covered a set's gain can only shrink — so each set
// carries a cached upper bound (its gain when last evaluated) in a
// max-heap.  A round only re-evaluates sets whose bound could still reach
// the best exact gain seen so far; every set whose bound >= the round's
// best IS re-evaluated, so the tie list is exactly the reference
// implementation's (all sets achieving the maximum gain, ascending index)
// and the tie-break RNG consumes the identical sequence.  Picks are
// bit-identical to the plain O(rounds * sets * |set|) scan.
SetCoverSolution greedy_cover(const SetCoverInstance& instance,
                              sim::RandomStream* tie_break) {
    SetCoverSolution solution;
    CoverageBitset covered(instance.universe_size());
    std::size_t remaining = instance.universe_size();
    const std::vector<std::vector<Element>>& sets = instance.sets();

    // (bound, set index); the instance constructor deduplicates, so a
    // set's size is its exact initial gain.
    using Candidate = std::pair<std::size_t, std::size_t>;
    std::priority_queue<Candidate> heap;
    for (std::size_t i = 0; i < sets.size(); ++i) {
        if (!sets[i].empty()) heap.push({sets[i].size(), i});
    }

    std::vector<std::size_t> ties;
    std::vector<Candidate> refreshed;  // exact gains computed this round
    while (remaining > 0) {
        std::size_t best_gain = 0;
        ties.clear();
        refreshed.clear();
        // Any set whose cached bound is below max(best_gain, 1) cannot win
        // or tie this round, nor can anything deeper in the heap.
        while (!heap.empty() &&
               heap.top().first >= std::max<std::size_t>(best_gain, 1)) {
            const std::size_t i = heap.top().second;
            heap.pop();
            const std::size_t g = gain(sets[i], covered);
            if (g == 0) continue;  // gains never recover; drop for good
            refreshed.push_back({g, i});
            if (g > best_gain) {
                best_gain = g;
                ties.assign(1, i);
            } else if (g == best_gain) {
                ties.push_back(i);
            }
        }
        if (best_gain == 0) break;  // uncoverable remainder
        // Heap order mixed the tie indices; the reference enumerates them
        // in ascending index order, which the RNG pick depends on.
        std::sort(ties.begin(), ties.end());
        const std::size_t pick =
            tie_break ? ties[static_cast<std::size_t>(tie_break->uniform_int(
                            0, static_cast<std::int64_t>(ties.size()) - 1))]
                      : ties.front();
        solution.chosen.push_back(pick);
        mark(sets[pick], covered, remaining);
        for (const Candidate& c : refreshed) {
            if (c.second != pick) heap.push(c);
        }
    }
    solution.covers_all = remaining == 0;
    return solution;
}

SetCoverSolution first_fit_cover(const SetCoverInstance& instance) {
    SetCoverSolution solution;
    CoverageBitset covered(instance.universe_size());
    std::size_t remaining = instance.universe_size();
    for (std::size_t i = 0; i < instance.set_count() && remaining > 0; ++i) {
        if (gain(instance.sets()[i], covered) > 0) {
            solution.chosen.push_back(i);
            mark(instance.sets()[i], covered, remaining);
        }
    }
    solution.covers_all = remaining == 0;
    return solution;
}

SetCoverSolution random_cover(const SetCoverInstance& instance, sim::RandomStream& rng) {
    SetCoverSolution solution;
    CoverageBitset covered(instance.universe_size());
    std::size_t remaining = instance.universe_size();
    std::vector<std::size_t> useful;
    while (remaining > 0) {
        useful.clear();
        for (std::size_t i = 0; i < instance.set_count(); ++i) {
            if (gain(instance.sets()[i], covered) > 0) useful.push_back(i);
        }
        if (useful.empty()) break;
        const std::size_t pick = useful[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(useful.size()) - 1))];
        solution.chosen.push_back(pick);
        mark(instance.sets()[pick], covered, remaining);
    }
    solution.covers_all = remaining == 0;
    return solution;
}

namespace {

struct ExactState {
    const SetCoverInstance* instance;
    std::vector<std::vector<std::size_t>> sets_of_element;  // element -> set indices
    std::vector<std::size_t> best;
    std::size_t best_size = std::numeric_limits<std::size_t>::max();
    std::size_t nodes = 0;
    std::size_t node_budget = 0;
    bool budget_exhausted = false;

    void search(CoverageBitset& covered, std::size_t remaining,
                std::vector<std::size_t>& chosen) {
        if (++nodes > node_budget) {
            budget_exhausted = true;
            return;
        }
        if (remaining == 0) {
            if (chosen.size() < best_size) {
                best_size = chosen.size();
                best = chosen;
            }
            return;
        }
        if (chosen.size() + 1 >= best_size) return;  // cannot improve

        // Branch on the uncovered element with the fewest candidate sets.
        std::size_t pivot = covered.size();
        std::size_t pivot_options = std::numeric_limits<std::size_t>::max();
        for (std::size_t e = 0; e < covered.size(); ++e) {
            if (covered.test(e)) continue;
            if (sets_of_element[e].size() < pivot_options) {
                pivot_options = sets_of_element[e].size();
                pivot = e;
            }
        }
        if (pivot == covered.size() || pivot_options == 0) return;  // uncoverable

        for (const std::size_t set_index : sets_of_element[pivot]) {
            std::vector<Element> newly;
            for (const Element e : instance->sets()[set_index]) {
                if (covered.test_and_set(e)) newly.push_back(e);
            }
            chosen.push_back(set_index);
            search(covered, remaining - newly.size(), chosen);
            chosen.pop_back();
            for (const Element e : newly) covered.reset(e);
            if (budget_exhausted) return;
        }
    }
};

}  // namespace

std::optional<SetCoverSolution> exact_cover(const SetCoverInstance& instance,
                                            std::size_t node_budget) {
    if (!instance.is_coverable()) return std::nullopt;

    ExactState state;
    state.instance = &instance;
    state.node_budget = node_budget;
    state.sets_of_element.resize(instance.universe_size());
    for (std::size_t i = 0; i < instance.set_count(); ++i) {
        for (const Element e : instance.sets()[i]) {
            auto& v = state.sets_of_element[e];
            if (v.empty() || v.back() != i) v.push_back(i);
        }
    }

    // Seed the bound with the greedy solution so pruning bites early.
    const SetCoverSolution greedy = greedy_cover(instance);
    state.best = greedy.chosen;
    state.best_size = greedy.chosen.size();

    CoverageBitset covered(instance.universe_size());
    std::vector<std::size_t> chosen;
    state.search(covered, instance.universe_size(), chosen);
    if (state.budget_exhausted) return std::nullopt;

    SetCoverSolution solution;
    solution.chosen = std::move(state.best);
    solution.covers_all = true;
    return solution;
}

}  // namespace nbmg::setcover
