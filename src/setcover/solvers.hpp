// Set-cover solvers: Chvátal greedy (the paper's choice), first-fit and
// random baselines, and an exact branch-and-bound for small instances used
// to measure the greedy approximation gap.
#pragma once

#include <cstddef>
#include <optional>

#include "setcover/instance.hpp"
#include "sim/random.hpp"

namespace nbmg::setcover {

/// Chvátal greedy: repeatedly pick the set covering the most uncovered
/// elements.  When `tie_break` is provided, ties are broken uniformly at
/// random (as in the paper, Fig. 4b); otherwise the lowest index wins.
/// Stops early (covers_all == false) when the instance is not coverable.
[[nodiscard]] SetCoverSolution greedy_cover(const SetCoverInstance& instance,
                                            sim::RandomStream* tie_break = nullptr);

/// Scans sets in index order and takes any set covering at least one new
/// element.  A deliberately weak baseline.
[[nodiscard]] SetCoverSolution first_fit_cover(const SetCoverInstance& instance);

/// Picks uniformly among sets that still cover something new.
[[nodiscard]] SetCoverSolution random_cover(const SetCoverInstance& instance,
                                            sim::RandomStream& rng);

/// Exact minimum cover by depth-first branch and bound over the hardest
/// uncovered element.  `node_budget` bounds the search; returns nullopt if
/// the budget is exhausted or the instance is not coverable.
[[nodiscard]] std::optional<SetCoverSolution> exact_cover(
    const SetCoverInstance& instance, std::size_t node_budget = 1'000'000);

}  // namespace nbmg::setcover
