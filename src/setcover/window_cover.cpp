#include "setcover/window_cover.hpp"

#include <algorithm>
#include <stdexcept>

#include "setcover/bitset.hpp"

namespace nbmg::setcover {
namespace {

/// Best anchor of one greedy round: the anchor index whose window covers
/// the most distinct devices, with uniform tie-breaking.
struct RoundBest {
    std::size_t anchor = 0;
    std::size_t coverage = 0;
};

/// The seed implementation's round: one two-pointer sweep over the
/// compacted event array with incremental distinct-device counts.
/// `scratch_counts` must be all-zero on entry and is all-zero again on
/// return: every increment the leading pointer applies, the trailing
/// pointer undoes, so the buffer never needs a per-round reset.
RoundBest find_best_window(const std::vector<PoEvent>& events, sim::SimTime window,
                           sim::RandomStream& rng,
                           std::vector<std::uint32_t>& scratch_counts,
                           std::vector<std::size_t>& ties) {
    std::size_t distinct = 0;

    RoundBest best;
    ties.clear();
    std::size_t j = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        // Window anchored at events[i]: [at, at + window] inclusive.
        const sim::SimTime limit = events[i].at + window;
        while (j < events.size() && events[j].at <= limit) {
            if (scratch_counts[events[j].device]++ == 0) ++distinct;
            ++j;
        }
        if (distinct > best.coverage) {
            best.coverage = distinct;
            best.anchor = i;
            ties.assign(1, i);
        } else if (distinct == best.coverage && distinct > 0) {
            ties.push_back(i);
        }
        // Slide: remove the anchor event before moving to the next one.
        if (--scratch_counts[events[i].device] == 0) --distinct;
    }
    if (!ties.empty() && ties.size() > 1) {
        best.anchor = ties[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ties.size()) - 1))];
    }
    return best;
}

/// Lazy-greedy tail state: once rounds stop removing large fractions of
/// the events, the full rescan's O(rounds x events) becomes the dominant
/// cost and this structure takes over.  Alive events (a frozen, sorted,
/// compacted array) form a doubly-linked list; every alive event is a
/// candidate window anchor, bucketed by its last exactly evaluated
/// coverage.  Coverage is monotone non-increasing as devices get covered,
/// so a bucket key is always a valid upper bound and a round only
/// re-evaluates anchors that could still hold or tie the maximum.
///
/// When a chosen window invalidates bounds wholesale (a dense-cycle device
/// appears in every window, so covering it stales every anchor at once),
/// laziness degenerates; a work counter detects that and amortizes it away
/// with one exact resweep (rebuild), so a lazy round never costs more than
/// a constant factor of a rescan round, and typical tail rounds cost far
/// less.
///
/// Trace contract (guarded by WindowCoverTraceTest): the chosen anchors,
/// their device lists, and the RNG consumption are bit-identical to the
/// full rescan.  That requires exhaustive tie re-evaluation — every anchor
/// whose bound equals the round's maximum is re-evaluated, and the
/// confirmed ties are drawn from in ascending event order, exactly as the
/// rescan enumerated them.
class LazyWindowGreedy {
public:
    LazyWindowGreedy(const std::vector<PoEvent>& events, sim::SimTime window,
                     std::uint32_t device_count)
        : events_(events),
          window_(window),
          next_(events.size() + 1),
          prev_(events.size() + 1),
          bucket_of_(events.size()),
          eval_epoch_(events.size(), 0),
          device_dead_(device_count),
          dev_event_count_(device_count, 0),
          stamp_(device_count, 0),
          count_in_window_(device_count, 0) {
        const std::size_t n = events_.size();
        for (std::size_t i = 0; i <= n; ++i) {
            next_[i] = i + 1 <= n ? i + 1 : 0;
            prev_[i] = i > 0 ? i - 1 : n;
        }
        alive_count_ = n;
        for (const PoEvent& e : events_) ++dev_event_count_[e.device];
        rebuild();
    }

    [[nodiscard]] bool exhausted() const noexcept { return alive_count_ == 0; }

    /// One greedy round: finds the maximum-coverage anchor (exhaustively
    /// re-evaluating every potential tie), breaks ties through `rng` exactly
    /// as the rescan did, and returns the chosen anchor's event index.
    [[nodiscard]] std::size_t choose_anchor(sim::RandomStream& rng) {
        candidates_.clear();
        while (cur_max_ > 0) {
            // Lazy demotion has spent more than one full-rescan's worth of
            // work since the bounds were last exact (wholesale staleness):
            // pay for one exact resweep and restart the round on clean
            // buckets, where the drain below finds the ties directly.
            if (work_since_rebuild_ > alive_count_ + 64) {
                rebuild();
                candidates_.clear();
            }
            std::vector<std::size_t>& bucket = buckets_[cur_max_];
            while (!bucket.empty() && work_since_rebuild_ <= alive_count_ + 64) {
                const std::size_t i = bucket.back();
                bucket.pop_back();
                ++work_since_rebuild_;
                if (!alive(i) || bucket_of_[i] != cur_max_) continue;  // stale copy
                if (eval_epoch_[i] == epoch_) {
                    // Evaluated since the last removal: the key is exact.
                    candidates_.push_back(i);
                    continue;
                }
                const std::size_t exact = evaluate(i);
                eval_epoch_[i] = epoch_;
                bucket_of_[i] = exact;
                if (exact == cur_max_) {
                    candidates_.push_back(i);
                } else {
                    buckets_[exact].push_back(i);
                }
            }
            if (work_since_rebuild_ > alive_count_ + 64) continue;  // rebuild + retry
            if (!candidates_.empty()) break;
            --cur_max_;
        }
        if (candidates_.empty()) return events_.size();  // no anchor (defensive)

        // The rescan collected ties in ascending anchor order; entries here
        // arrive in bucket (stack) order, so restore the event order before
        // consuming the tie-break stream.
        std::sort(candidates_.begin(), candidates_.end());
        std::size_t chosen = candidates_.front();
        if (candidates_.size() > 1) {
            chosen = candidates_[static_cast<std::size_t>(rng.uniform_int(
                0, static_cast<std::int64_t>(candidates_.size()) - 1))];
        }
        // Losing ties stay candidates for later rounds: put them back in
        // their bucket (their coverage is exact for this epoch and a valid
        // upper bound afterwards).  The chosen anchor goes back too; its
        // events die with its device, so the alive check drops it.
        for (const std::size_t i : candidates_) buckets_[cur_max_].push_back(i);
        return chosen;
    }

    /// Walks the chosen window and appends newly covered devices (in event
    /// order, first occurrence) to `out`, marking them in `covered`.
    void collect_window(std::size_t anchor, CoverageBitset& covered,
                        std::vector<std::uint32_t>& out) {
        const sim::SimTime limit = events_[anchor].at + window_;
        for (std::size_t j = anchor;
             j != events_.size() && events_[j].at <= limit; j = next_[j]) {
            ++work_since_rebuild_;
            const std::uint32_t d = events_[j].device;
            if (covered.test_and_set(d)) out.push_back(d);
        }
    }

    /// Marks the given devices covered; their events die in place (walks
    /// skip them, the next rebuild drops them from the list) and all cached
    /// coverages become stale upper bounds.  O(1) per device — nothing
    /// touches the event arrays here.
    void remove_devices(const std::vector<std::uint32_t>& devices) {
        for (const std::uint32_t d : devices) {
            device_dead_.set(d);
            alive_count_ -= dev_event_count_[d];
        }
        ++epoch_;
    }

private:
    [[nodiscard]] bool alive(std::size_t i) const noexcept {
        return !device_dead_.test(events_[i].device);
    }

    /// Exact current coverage of the window anchored at alive event `i`:
    /// distinct uncovered devices with an alive event in [t_i, t_i + TI].
    [[nodiscard]] std::size_t evaluate(std::size_t i) {
        const sim::SimTime limit = events_[i].at + window_;
        ++visit_;
        std::size_t distinct = 0;
        for (std::size_t j = i; j != events_.size() && events_[j].at <= limit;
             j = next_[j]) {
            ++work_since_rebuild_;
            const std::uint32_t d = events_[j].device;
            if (!device_dead_.test(d) && stamp_[d] != visit_) {
                stamp_[d] = visit_;
                ++distinct;
            }
        }
        return distinct;
    }

    /// Exact coverage of every alive anchor in one two-pointer sweep with
    /// incremental distinct-device counts (the rescan's inner loop), then
    /// rebucket everything.  The alive events are compacted into contiguous
    /// scratch first so the sweep runs over sequential memory, and the
    /// linked list is relinked over the survivors so later walks never
    /// revisit dead events.  O(alive).
    void rebuild() {
        for (std::vector<std::size_t>& b : buckets_) b.clear();
        const std::size_t sentinel = events_.size();
        scratch_events_.clear();
        scratch_index_.clear();
        for (std::size_t i = next_[sentinel]; i != sentinel; i = next_[i]) {
            if (device_dead_.test(events_[i].device)) continue;
            scratch_events_.push_back(events_[i]);
            scratch_index_.push_back(i);
        }
        std::size_t tail = sentinel;
        for (const std::size_t i : scratch_index_) {
            next_[tail] = i;
            prev_[i] = tail;
            tail = i;
        }
        next_[tail] = sentinel;
        prev_[sentinel] = tail;

        const std::size_t m = scratch_events_.size();
        std::size_t distinct = 0;
        std::size_t max_cov = 0;
        std::size_t j = 0;
        for (std::size_t i = 0; i < m; ++i) {
            const sim::SimTime limit = scratch_events_[i].at + window_;
            while (j < m && scratch_events_[j].at <= limit) {
                if (count_in_window_[scratch_events_[j].device]++ == 0) ++distinct;
                ++j;
            }
            if (buckets_.size() <= distinct) buckets_.resize(distinct + 1);
            const std::size_t orig = scratch_index_[i];
            bucket_of_[orig] = distinct;
            eval_epoch_[orig] = epoch_;
            buckets_[distinct].push_back(orig);
            max_cov = std::max(max_cov, distinct);
            if (--count_in_window_[scratch_events_[i].device] == 0) --distinct;
        }
        cur_max_ = max_cov;
        work_since_rebuild_ = 0;
    }

    const std::vector<PoEvent>& events_;
    sim::SimTime window_;

    // Alive list over sorted event indices; events_.size() is the sentinel.
    std::vector<std::size_t> next_;
    std::vector<std::size_t> prev_;
    std::size_t alive_count_ = 0;

    // Lazy-evaluation state.
    std::vector<std::vector<std::size_t>> buckets_;
    std::vector<std::size_t> bucket_of_;
    std::vector<std::uint64_t> eval_epoch_;
    std::uint64_t epoch_ = 0;
    std::size_t cur_max_ = 0;
    std::size_t work_since_rebuild_ = 0;
    std::vector<std::size_t> candidates_;

    // Coverage state and scratch for evaluate()/rebuild().
    CoverageBitset device_dead_;
    std::vector<std::uint32_t> dev_event_count_;
    std::vector<std::uint64_t> stamp_;
    std::uint64_t visit_ = 0;
    std::vector<std::uint32_t> count_in_window_;
    std::vector<PoEvent> scratch_events_;
    std::vector<std::size_t> scratch_index_;
};

}  // namespace

WindowCoverResult greedy_window_cover(std::vector<PoEvent> events, sim::SimTime window,
                                      std::uint32_t device_count,
                                      sim::RandomStream& rng) {
    if (window < sim::SimTime{0}) {
        throw std::invalid_argument("greedy_window_cover: negative window");
    }
    for (const PoEvent& e : events) {
        if (e.device >= device_count) {
            throw std::invalid_argument("greedy_window_cover: device id out of range");
        }
    }
    std::sort(events.begin(), events.end(), [](const PoEvent& a, const PoEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.device < b.device;
    });

    WindowCoverResult result;
    CoverageBitset seen(device_count);
    for (const PoEvent& e : events) seen.set(e.device);
    for (std::uint32_t d = 0; d < device_count; ++d) {
        if (!seen.test(d)) result.uncoverable.push_back(d);
    }

    CoverageBitset covered(device_count);

    // Dense phase: as long as each round retires a sizeable fraction of the
    // events (dense-cycle devices put a PO in almost every window, so early
    // windows cover them all at once), the rescan round is near optimal —
    // one contiguous sweep plus one compaction, both O(remaining).
    std::vector<std::uint32_t> scratch_counts(device_count, 0);
    std::vector<std::size_t> ties;
    ties.reserve(64);
    bool tail = false;
    while (!events.empty() && !tail) {
        const RoundBest best =
            find_best_window(events, window, rng, scratch_counts, ties);
        if (best.coverage == 0) break;  // defensive; events would be empty

        const sim::SimTime start = events[best.anchor].at;
        const sim::SimTime limit = start + window;
        CoverWindow chosen{start, limit, {}};
        chosen.devices.reserve(best.coverage);
        for (std::size_t k = best.anchor; k < events.size() && events[k].at <= limit;
             ++k) {
            const std::uint32_t d = events[k].device;
            if (covered.test_and_set(d)) chosen.devices.push_back(d);
        }
        result.windows.push_back(std::move(chosen));

        // Drop every event of a covered device.
        const std::size_t before = events.size();
        std::erase_if(events,
                      [&covered](const PoEvent& e) { return covered.test(e.device); });
        // Small removal: the long tail has begun — rounds now retire a few
        // sparse-cycle devices each, and rescanning everything per round
        // would dominate.  Hand the remaining events to the lazy greedy.
        tail = before - events.size() < before / 8;
    }

    if (!events.empty()) {
        LazyWindowGreedy greedy(events, window, device_count);
        while (!greedy.exhausted()) {
            const std::size_t anchor = greedy.choose_anchor(rng);
            if (anchor == events.size()) break;  // defensive

            const sim::SimTime start = events[anchor].at;
            CoverWindow chosen{start, start + window, {}};
            greedy.collect_window(anchor, covered, chosen.devices);
            greedy.remove_devices(chosen.devices);
            result.windows.push_back(std::move(chosen));
        }
    }
    return result;
}

SetCoverInstance to_set_cover_instance(const std::vector<PoEvent>& events,
                                       sim::SimTime window, std::uint32_t device_count) {
    std::vector<PoEvent> sorted = events;
    std::sort(sorted.begin(), sorted.end(), [](const PoEvent& a, const PoEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.device < b.device;
    });

    std::vector<std::vector<Element>> sets;
    sets.reserve(sorted.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (j < i) j = i;
        const sim::SimTime limit = sorted[i].at + window;
        while (j < sorted.size() && sorted[j].at <= limit) ++j;
        std::vector<Element> members;
        members.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) members.push_back(sorted[k].device);
        sets.push_back(std::move(members));
    }
    return SetCoverInstance{device_count, std::move(sets)};
}

}  // namespace nbmg::setcover
