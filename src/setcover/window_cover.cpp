#include "setcover/window_cover.hpp"

#include <algorithm>
#include <stdexcept>

#include "setcover/bitset.hpp"

namespace nbmg::setcover {
namespace {

/// Best anchor of one greedy round: the anchor index whose window covers
/// the most distinct devices, with uniform tie-breaking.
struct RoundBest {
    std::size_t anchor = 0;
    std::size_t coverage = 0;
};

/// `scratch_counts` must be all-zero on entry and is all-zero again on
/// return: every increment the leading pointer applies, the trailing
/// pointer undoes, so the buffer never needs a per-round reset.
RoundBest find_best_window(const std::vector<PoEvent>& events, sim::SimTime window,
                           sim::RandomStream& rng,
                           std::vector<std::uint32_t>& scratch_counts,
                           std::vector<std::size_t>& ties) {
    std::size_t distinct = 0;

    RoundBest best;
    ties.clear();
    std::size_t j = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        // Window anchored at events[i]: [at, at + window] inclusive.
        const sim::SimTime limit = events[i].at + window;
        while (j < events.size() && events[j].at <= limit) {
            if (scratch_counts[events[j].device]++ == 0) ++distinct;
            ++j;
        }
        if (distinct > best.coverage) {
            best.coverage = distinct;
            best.anchor = i;
            ties.assign(1, i);
        } else if (distinct == best.coverage && distinct > 0) {
            ties.push_back(i);
        }
        // Slide: remove the anchor event before moving to the next one.
        if (--scratch_counts[events[i].device] == 0) --distinct;
    }
    if (!ties.empty() && ties.size() > 1) {
        best.anchor = ties[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ties.size()) - 1))];
    }
    return best;
}

}  // namespace

WindowCoverResult greedy_window_cover(std::vector<PoEvent> events, sim::SimTime window,
                                      std::uint32_t device_count,
                                      sim::RandomStream& rng) {
    if (window < sim::SimTime{0}) {
        throw std::invalid_argument("greedy_window_cover: negative window");
    }
    for (const PoEvent& e : events) {
        if (e.device >= device_count) {
            throw std::invalid_argument("greedy_window_cover: device id out of range");
        }
    }
    std::sort(events.begin(), events.end(), [](const PoEvent& a, const PoEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.device < b.device;
    });

    WindowCoverResult result;
    CoverageBitset seen(device_count);
    for (const PoEvent& e : events) seen.set(e.device);
    for (std::uint32_t d = 0; d < device_count; ++d) {
        if (!seen.test(d)) result.uncoverable.push_back(d);
    }

    CoverageBitset covered(device_count);
    std::vector<std::uint32_t> scratch_counts(device_count, 0);
    std::vector<std::size_t> ties;
    ties.reserve(64);
    while (!events.empty()) {
        const RoundBest best =
            find_best_window(events, window, rng, scratch_counts, ties);
        if (best.coverage == 0) break;  // defensive; events would be empty

        const sim::SimTime start = events[best.anchor].at;
        const sim::SimTime limit = start + window;
        CoverWindow chosen{start, limit, {}};
        chosen.devices.reserve(best.coverage);
        for (std::size_t k = best.anchor; k < events.size() && events[k].at <= limit;
             ++k) {
            const std::uint32_t d = events[k].device;
            if (covered.test_and_set(d)) chosen.devices.push_back(d);
        }
        result.windows.push_back(std::move(chosen));

        // Drop every event of a covered device.
        std::erase_if(events,
                      [&covered](const PoEvent& e) { return covered.test(e.device); });
    }
    return result;
}

SetCoverInstance to_set_cover_instance(const std::vector<PoEvent>& events,
                                       sim::SimTime window, std::uint32_t device_count) {
    std::vector<PoEvent> sorted = events;
    std::sort(sorted.begin(), sorted.end(), [](const PoEvent& a, const PoEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.device < b.device;
    });

    std::vector<std::vector<Element>> sets;
    sets.reserve(sorted.size());
    std::size_t j = 0;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
        if (j < i) j = i;
        const sim::SimTime limit = sorted[i].at + window;
        while (j < sorted.size() && sorted[j].at <= limit) ++j;
        std::vector<Element> members;
        members.reserve(j - i);
        for (std::size_t k = i; k < j; ++k) members.push_back(sorted[k].device);
        sets.push_back(std::move(members));
    }
    return SetCoverInstance{device_count, std::move(sets)};
}

}  // namespace nbmg::setcover
