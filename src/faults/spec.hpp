// Deterministic failure-injection knobs: device churn (seeded
// leave/rejoin point processes), mid-campaign cell outage, and backhaul
// packet loss on the coordinator's serial feed.
//
// The layer sits below core: it owns only the declarative specs, their
// parsing/formatting, and the seed-stream conventions.  The processes
// themselves run inside the engines (core/campaign for churn + outage,
// multicell/coordinator for backhaul loss), but every fault draw comes
// from a dedicated derive_seed(seed, "faults", ...) stream — never from
// a campaign stream — so faults-off runs stay bit-identical to a build
// without this subsystem at any --threads/--strata.
#pragma once

#include <cmath>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nbmg::faults {

/// Device churn: each device leaves (powers off from idle) as a Poisson
/// point process and rejoins a fixed `rejoin_ms` later, paying the NB-IoT
/// re-attach cost (RA + RRC setup/release signaling and energy) on the
/// way back in.
struct ChurnSpec {
    /// Expected departures per device-hour; 0 disables churn.
    double leave_rate = 0.0;
    /// Off-air time before the device rejoins, ms of simulated time.
    std::int64_t rejoin_ms = 0;

    [[nodiscard]] bool enabled() const noexcept { return leave_rate > 0.0; }

    [[nodiscard]] bool valid() const noexcept {
        return std::isfinite(leave_rate) && leave_rate >= 0.0 &&
               (!enabled() || rejoin_ms >= 1);
    }

    /// Mean gap between departures of one device, ms of simulated time.
    [[nodiscard]] double mean_leave_gap_ms() const noexcept {
        return 3'600'000.0 / leave_rate;
    }

    friend bool operator==(const ChurnSpec&, const ChurnSpec&) = default;
};

/// Mid-campaign cell outage: cell `cell` goes dark at simulated time
/// `at_ms`.  Devices of that cell that have not completed by then are
/// stranded and deterministically re-assigned to the surviving cells.
struct OutageSpec {
    std::size_t cell = 0;
    std::int64_t at_ms = 0;

    [[nodiscard]] bool valid() const noexcept { return at_ms >= 1; }

    friend bool operator==(const OutageSpec&, const OutageSpec&) = default;
};

/// Parses the scenario spelling "cell@t" (e.g. "3@600000": cell 3 dies at
/// t = 600 s).  Both halves must be strict non-negative decimals and t
/// must be >= 1 ms; returns nullopt on any malformation.
[[nodiscard]] std::optional<OutageSpec> parse_cell_down(std::string_view text);

/// Inverse of parse_cell_down, for to_file_text round-trips.
[[nodiscard]] std::string format_cell_down(const OutageSpec& outage);

/// The label every fault RNG stream derives under; engines call
/// derive_seed(seed, kFaultStreamLabel, index) so fault draws never
/// perturb the campaign streams.
inline constexpr std::string_view kFaultStreamLabel = "faults";

}  // namespace nbmg::faults
