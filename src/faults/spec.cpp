#include "faults/spec.hpp"

#include <limits>

#include "scenario/parse_util.hpp"

namespace nbmg::faults {

std::optional<OutageSpec> parse_cell_down(std::string_view text) {
    const std::size_t at = text.find('@');
    if (at == std::string_view::npos || at == 0 || at + 1 >= text.size()) {
        return std::nullopt;
    }
    const std::string cell_text(text.substr(0, at));
    const std::string time_text(text.substr(at + 1));
    std::uint64_t cell = 0;
    std::uint64_t time_ms = 0;
    if (scenario::parse_strict_u64(cell_text.c_str(), cell) !=
        scenario::U64ParseError::none) {
        return std::nullopt;
    }
    if (scenario::parse_strict_u64(time_text.c_str(), time_ms) !=
        scenario::U64ParseError::none) {
        return std::nullopt;
    }
    if (time_ms < 1 ||
        time_ms > static_cast<std::uint64_t>(
                      std::numeric_limits<std::int64_t>::max())) {
        return std::nullopt;
    }
    OutageSpec outage;
    outage.cell = static_cast<std::size_t>(cell);
    outage.at_ms = static_cast<std::int64_t>(time_ms);
    return outage;
}

std::string format_cell_down(const OutageSpec& outage) {
    return std::to_string(outage.cell) + "@" + std::to_string(outage.at_ms);
}

}  // namespace nbmg::faults
