// Command-line surface of the scenario API, shared by every bench and
// example shell: the strict flag parsers (formerly bench/bench_util.hpp)
// plus the resolution of --scenario FILE / --preset NAME into a
// ScenarioSpec with the classic flags applied on top as overrides.
//
// Parsing stays strict: malformed values, unknown presets, and scenario
// files that fail to parse all exit with a usage message and status 2
// instead of silently running with defaults (tests/bench/bench_util_test.cpp
// pins the death behaviour; the parser's throw behaviour is pinned in
// tests/scenario/parser_test.cpp).
#pragma once

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <vector>

#include "scenario/parse_util.hpp"
#include "scenario/spec.hpp"

namespace nbmg::scenario {

/// Prints a usage message for a malformed flag and exits with status 2.
/// `expected` describes the value shape in the usage line.
[[noreturn]] inline void flag_error(const char* flag, const char* value,
                                    const char* reason,
                                    const char* expected =
                                        "N where N is a non-negative decimal "
                                        "integer") {
    if (value != nullptr) {
        std::fprintf(stderr, "error: bad value '%s' for %s: %s\n", value, flag,
                     reason);
    } else {
        std::fprintf(stderr, "error: %s: %s\n", flag, reason);
    }
    std::fprintf(stderr, "usage: flags take the form '%s %s'\n", flag, expected);
    std::exit(2);
}

/// Locates `flag` and returns its value string, or nullptr when the flag is
/// absent.  A flag with no following value is a usage error.
[[nodiscard]] inline const char* flag_text(int argc, char** argv, const char* flag) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) {
            if (i + 1 >= argc) flag_error(flag, nullptr, "missing value");
            return argv[i + 1];
        }
    }
    return nullptr;
}

/// Parses "--seed N" style overrides strictly: the whole value must be a
/// non-negative decimal integer >= min_value (0 is valid — seeds may be 0).
/// Returns fallback only when the flag is absent; malformed input exits
/// with a usage message instead of silently falling back.
[[nodiscard]] inline std::uint64_t flag_u64(int argc, char** argv, const char* flag,
                                            std::uint64_t fallback,
                                            std::uint64_t min_value = 0) {
    const char* text = flag_text(argc, argv, flag);
    if (text == nullptr) return fallback;
    std::uint64_t v = 0;
    switch (parse_strict_u64(text, v)) {
        case U64ParseError::none: break;
        case U64ParseError::empty: flag_error(flag, text, "empty value");
        case U64ParseError::negative:
            flag_error(flag, text, "value must be non-negative");
        case U64ParseError::not_decimal:
            flag_error(flag, text, "not a decimal integer");
        case U64ParseError::out_of_range:
            flag_error(flag, text, "value out of range");
    }
    if (v < min_value) {
        char reason[64];
        std::snprintf(reason, sizeof reason, "value must be >= %" PRIu64, min_value);
        flag_error(flag, text, reason);
    }
    return v;
}

/// Parses "--runs N" / "--devices N" style overrides (strictly, as
/// flag_u64); by default the value must be at least 1.
[[nodiscard]] inline std::size_t flag_value(int argc, char** argv, const char* flag,
                                            std::size_t fallback,
                                            std::size_t min_value = 1) {
    return static_cast<std::size_t>(
        flag_u64(argc, argv, flag, fallback, min_value));
}

/// Parses "--threads N"; 0 (the default) means one worker per hardware
/// thread.  Results never depend on the thread count.
[[nodiscard]] inline std::size_t flag_threads(int argc, char** argv) {
    return static_cast<std::size_t>(flag_u64(argc, argv, "--threads", 0));
}

/// Parses "--cells N" for multicell deployments; at least one cell.
[[nodiscard]] inline std::size_t flag_cells(int argc, char** argv,
                                            std::size_t fallback = 1) {
    return flag_value(argc, argv, "--cells", fallback, 1);
}

/// Parses "--assignment NAME" strictly: the value must be one of the
/// multicell policy spellings (uniform | hotspot | class-affinity); any
/// other value exits with a usage message instead of silently falling back.
[[nodiscard]] inline multicell::AssignmentPolicy flag_assignment(
    int argc, char** argv,
    multicell::AssignmentPolicy fallback = multicell::AssignmentPolicy::uniform_hash) {
    const char* text = flag_text(argc, argv, "--assignment");
    if (text == nullptr) return fallback;
    const auto parsed = multicell::parse_assignment_policy(text);
    if (!parsed.has_value()) {
        flag_error("--assignment", text, "unknown assignment policy",
                   "uniform | hotspot | class-affinity");
    }
    return *parsed;
}

/// The scenario-layer flag set: --scenario/--preset resolution plus the
/// classic overrides apply_spec_overrides handles.  Shared by the
/// positional scanner below and by shells (microbench_kernels) that strip
/// these flags before handing argv to another parser.
inline constexpr const char* kScenarioFlags[] = {
    "--scenario",    "--preset", "--runs",        "--devices",
    "--seed",        "--threads", "--payload-kb", "--ti-ms",
    "--cells",       "--assignment", "--coordinator", "--stagger-ms",
    "--backhaul-kbps", "--strata",  "--telemetry",  "--trace-out",
    "--metrics-out", "--timeline-out", "--checkpoint-out",
    "--checkpoint-every-ms", "--checkpoint-stop-after", "--resume",
    "--churn-leave-rate", "--churn-rejoin-ms", "--cell-down",
    "--backhaul-loss",
};

[[nodiscard]] inline bool is_scenario_flag(const char* token) {
    for (const char* flag : kScenarioFlags) {
        if (std::strcmp(token, flag) == 0) return true;
    }
    return false;
}

/// Usage error for a `--token` no parser owns (typo or wrong shell).
[[noreturn]] inline void unknown_flag_error(const char* token) {
    std::fprintf(stderr, "error: %s: unknown flag\n", token);
    std::fprintf(stderr,
                 "usage: known flags are --scenario FILE, --preset NAME, "
                 "--runs N, --devices N, --seed N, --threads N, "
                 "--payload-kb N, --ti-ms N, --strata N, --cells N, "
                 "--assignment NAME, --coordinator NAME, --stagger-ms N, "
                 "--backhaul-kbps X, --telemetry MODE, --trace-out FILE, "
                 "--metrics-out FILE, --timeline-out FILE, "
                 "--checkpoint-out FILE, --checkpoint-every-ms N, "
                 "--checkpoint-stop-after N, --resume FILE, "
                 "--churn-leave-rate X, --churn-rejoin-ms N, "
                 "--cell-down CELL@T_MS, --backhaul-loss X\n");
    std::exit(2);
}

/// The k-th positional (non-flag) argument, or nullptr.  Every known flag
/// consumes the following token as its value, so mixing positionals with
/// --scenario/--preset stays unambiguous; an *unknown* "--flag" is a usage
/// error (it would otherwise silently swallow a positional and shift the
/// rest).
inline const char* positional_text(int argc, char** argv, std::size_t index) {
    std::size_t seen = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--", 2) == 0) {
            if (!is_scenario_flag(argv[i])) unknown_flag_error(argv[i]);
            ++i;  // skip the flag's value
            continue;
        }
        if (seen == index) return argv[i];
        ++seen;
    }
    return nullptr;
}

/// Strict positional counterpart of flag_value, for the examples' classic
/// `binary [devices] [seed]` spellings.
[[nodiscard]] std::size_t positional_value(int argc, char** argv,
                                           std::size_t index,
                                           std::size_t fallback,
                                           std::size_t min_value = 1);
[[nodiscard]] std::uint64_t positional_u64(int argc, char** argv,
                                           std::size_t index,
                                           std::uint64_t fallback);

/// Strict KB -> bytes conversion, shared by the --payload-kb flag path and
/// the examples' positional payload spellings: the multiply must not wrap
/// the int64 payload.  `flag`/`text` label the usage error.
[[nodiscard]] inline std::int64_t payload_kb_to_bytes(std::uint64_t kb,
                                                      const char* flag,
                                                      const char* text) {
    if (kb > static_cast<std::uint64_t>(
                 std::numeric_limits<std::int64_t>::max() / 1024)) {
        flag_error(flag, text, "value out of range");
    }
    return static_cast<std::int64_t>(kb) * 1024;
}

/// Rejects flags a particular shell accepts nowhere: silently parsing and
/// ignoring an override would let the user believe they changed the
/// experiment.  `why` names what the shell does instead.  (Not flag_error:
/// its "flags take the form '<flag> N'" footer would tell the user to
/// re-send the very flag being rejected.)
inline void reject_flags(int argc, char** argv,
                         std::initializer_list<const char*> flags,
                         const char* why) {
    for (const char* flag : flags) {
        if (flag_text(argc, argv, flag) != nullptr) {
            std::fprintf(stderr, "error: %s: %s\n", flag, why);
            std::exit(2);
        }
    }
}


/// Guard for shells wired to the single-cell engine (figure shells, the
/// plan-level examples): a multicell scenario would either abort in
/// ScenarioResult::comparison() or be silently ignored, so reject it up
/// front with a usage error naming the binary.
inline const ScenarioSpec& require_single_cell(const ScenarioSpec& spec,
                                               const char* binary) {
    if (spec.is_multicell()) {
        std::fprintf(stderr,
                     "error: %s drives the single-cell engine, but scenario "
                     "'%s' declares %zu cells\n"
                     "usage: drop the multicell keys (cells/topology/"
                     "assignment), or use a multicell shell "
                     "(fig_multicell_scaling, citywide_rollout)\n",
                     binary, spec.name.c_str(), spec.cell_count());
        std::exit(2);
    }
    return spec;
}

/// Flags a shell accepts beyond the scenario set, so the unknown-flag scan
/// can tell a shell-local flag from a typo.
struct ShellFlags {
    /// Additional flags that consume the following token as their value
    /// (e.g. ablation_battery_life's --updates-per-year).
    std::vector<const char*> value_flags;
    /// Additional value-less flags (e.g. run_scenario's --csv/--list).
    std::vector<const char*> bare_flags;
    /// Prefixes of flags owned by a delegated parser
    /// (e.g. microbench_kernels' --benchmark_*).
    std::vector<const char*> prefixes;
};

/// Exits with a usage error on any `--token` that is neither a scenario
/// flag nor declared in `shell` — a misspelled override must not silently
/// run a different experiment.  Called by spec_from_args.
void reject_unknown_flags(int argc, char** argv, const ShellFlags& shell);

/// Resolves the base spec: `--scenario FILE` (parsed, strict) beats
/// `--preset NAME` (registry lookup) beats the `default_preset`; giving
/// both flags is a usage error.  Then applies the classic flag overrides
/// (apply_spec_overrides) and validates the result.  Unknown `--` tokens
/// (outside `shell`) and every other failure exit with status 2 and a
/// diagnostic.
[[nodiscard]] ScenarioSpec spec_from_args(int argc, char** argv,
                                          const char* default_preset,
                                          const ShellFlags& shell = {});
/// Same, but with an explicit fallback spec instead of a preset name.
[[nodiscard]] ScenarioSpec spec_from_args(int argc, char** argv,
                                          ScenarioSpec fallback,
                                          const ShellFlags& shell = {});

/// Applies the classic flags as overrides onto `spec`:
/// --runs, --devices, --seed, --threads, --payload-kb, --ti-ms,
/// --strata (paging-frame strata, [1, 32]),
/// --cells (engages/updates the multicell grid), --assignment, the
/// wall-clock coordinator set: --coordinator NAME (simultaneous |
/// fixed-stagger | backhaul | none, requires a multicell scenario),
/// --stagger-ms N (requires the fixed-stagger policy), --backhaul-kbps X
/// (requires the backhaul policy), and the telemetry set:
/// --telemetry MODE (off | trace | metrics | full), --trace-out FILE /
/// --metrics-out FILE / --timeline-out FILE (each engages its collection
/// mode, mirroring the file keys), and the checkpoint set:
/// --checkpoint-out FILE, --checkpoint-every-ms N / --checkpoint-stop-after N
/// (each requires a snapshot path after all overrides apply), --resume FILE,
/// and the failure-injection set: --churn-leave-rate X (departures per
/// device-hour) / --churn-rejoin-ms N (off-air time, required when churn is
/// enabled), --cell-down CELL@T_MS (requires a multicell scenario),
/// --backhaul-loss X (requires the backhaul policy).
void apply_spec_overrides(ScenarioSpec& spec, int argc, char** argv);

}  // namespace nbmg::scenario
