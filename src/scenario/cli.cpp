#include "scenario/cli.hpp"

#include <limits>
#include <stdexcept>
#include <string>

#include "faults/spec.hpp"
#include "scenario/parser.hpp"
#include "scenario/registry.hpp"

namespace nbmg::scenario {
namespace {

/// Strict numeric parse of a positional token (same rules as flag_u64,
/// shared mechanics in parse_util.hpp).
std::uint64_t parse_positional(const char* text, std::size_t index,
                               std::uint64_t min_value) {
    char flag_name[32];
    std::snprintf(flag_name, sizeof flag_name, "positional #%zu", index + 1);
    std::uint64_t parsed = 0;
    switch (parse_strict_u64(text, parsed)) {
        case U64ParseError::none: break;
        case U64ParseError::empty: flag_error(flag_name, text, "empty value");
        case U64ParseError::negative:
            flag_error(flag_name, text, "value must be non-negative");
        case U64ParseError::not_decimal:
            flag_error(flag_name, text, "not a decimal integer");
        case U64ParseError::out_of_range:
            flag_error(flag_name, text, "value out of range");
    }
    if (parsed < min_value) {
        char reason[64];
        std::snprintf(reason, sizeof reason, "value must be >= %" PRIu64,
                      min_value);
        flag_error(flag_name, text, reason);
    }
    return parsed;
}

}  // namespace

std::size_t positional_value(int argc, char** argv, std::size_t index,
                             std::size_t fallback, std::size_t min_value) {
    const char* text = positional_text(argc, argv, index);
    if (text == nullptr) return fallback;
    return static_cast<std::size_t>(parse_positional(text, index, min_value));
}

std::uint64_t positional_u64(int argc, char** argv, std::size_t index,
                             std::uint64_t fallback) {
    const char* text = positional_text(argc, argv, index);
    if (text == nullptr) return fallback;
    return parse_positional(text, index, 0);
}

void reject_unknown_flags(int argc, char** argv, const ShellFlags& shell) {
    const auto matches = [](const std::vector<const char*>& names,
                            const char* token) {
        for (const char* name : names) {
            if (std::strcmp(token, name) == 0) return true;
        }
        return false;
    };
    for (int i = 1; i < argc; ++i) {
        const char* token = argv[i];
        if (std::strncmp(token, "--", 2) != 0) continue;  // positional
        if (is_scenario_flag(token) || matches(shell.value_flags, token)) {
            ++i;  // the flag's value
            continue;
        }
        if (matches(shell.bare_flags, token)) continue;
        bool delegated = false;
        for (const char* prefix : shell.prefixes) {
            if (std::strncmp(token, prefix, std::strlen(prefix)) == 0) {
                delegated = true;
                break;
            }
        }
        if (delegated) continue;
        unknown_flag_error(token);
    }
}

ScenarioSpec spec_from_args(int argc, char** argv, const char* default_preset,
                            const ShellFlags& shell) {
    return spec_from_args(argc, argv,
                          Registry::instance().preset(default_preset), shell);
}

ScenarioSpec spec_from_args(int argc, char** argv, ScenarioSpec fallback,
                            const ShellFlags& shell) {
    reject_unknown_flags(argc, argv, shell);
    const char* scenario_path = flag_text(argc, argv, "--scenario");
    const char* preset_name = flag_text(argc, argv, "--preset");
    if (scenario_path != nullptr && preset_name != nullptr) {
        flag_error("--scenario", scenario_path,
                   "--scenario and --preset are mutually exclusive",
                   "FILE (without --preset)");
    }

    ScenarioSpec spec = std::move(fallback);
    if (scenario_path != nullptr) {
        try {
            spec = load_scenario_file(scenario_path);
        } catch (const ScenarioError& error) {
            std::fprintf(stderr, "error: %s\n", error.what());
            std::exit(2);
        }
    } else if (preset_name != nullptr) {
        if (!Registry::instance().has_preset(preset_name)) {
            std::string names;
            for (const std::string& name : Registry::instance().preset_names()) {
                if (!names.empty()) names += " | ";
                names += name;
            }
            flag_error("--preset", preset_name, "unknown preset", names.c_str());
        }
        spec = Registry::instance().preset(preset_name);
    }

    apply_spec_overrides(spec, argc, argv);
    // Validate here so every shell — including the ones that drive the
    // engines directly instead of through run_scenario — fails with a
    // usage error rather than deep in the library.
    try {
        spec.validate();
    } catch (const std::invalid_argument& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        std::exit(2);
    }
    return spec;
}

void apply_spec_overrides(ScenarioSpec& spec, int argc, char** argv) {
    spec.runs = flag_value(argc, argv, "--runs", spec.runs);
    spec.device_count = flag_value(argc, argv, "--devices", spec.device_count);
    spec.base_seed = flag_u64(argc, argv, "--seed", spec.base_seed);
    spec.threads =
        static_cast<std::size_t>(flag_u64(argc, argv, "--threads", spec.threads));
    if (const char* payload = flag_text(argc, argv, "--payload-kb");
        payload != nullptr) {
        spec.payload_bytes = payload_kb_to_bytes(
            flag_u64(argc, argv, "--payload-kb", 0, 1), "--payload-kb", payload);
    }
    if (const char* ti = flag_text(argc, argv, "--ti-ms"); ti != nullptr) {
        const std::uint64_t ti_ms = flag_u64(argc, argv, "--ti-ms", 0, 1);
        if (ti_ms > static_cast<std::uint64_t>(
                        std::numeric_limits<std::int64_t>::max())) {
            flag_error("--ti-ms", ti, "value out of range");
        }
        spec.config.inactivity_timer =
            nbiot::SimTime{static_cast<std::int64_t>(ti_ms)};
    }
    if (const char* strata = flag_text(argc, argv, "--strata"); strata != nullptr) {
        const std::uint64_t parsed = flag_u64(argc, argv, "--strata", 1, 1);
        if (parsed > core::kMaxStrata) {
            flag_error("--strata", strata, "value out of range",
                       "N where N is in [1, 32]");
        }
        spec.config.strata = static_cast<std::size_t>(parsed);
    }
    if (const char* cells = flag_text(argc, argv, "--cells"); cells != nullptr) {
        // Override the count only: a hotspot scenario stays a hotspot.
        spec.with_cell_count(flag_cells(argc, argv, spec.cell_count()));
    }
    if (const char* assignment = flag_text(argc, argv, "--assignment");
        assignment != nullptr) {
        // Mirror the file parser: assignment without a multicell grid is a
        // dead knob, not a silent no-op.
        if (!spec.is_multicell()) {
            flag_error("--assignment", assignment,
                       "requires a multicell scenario (--cells or a 'cells' "
                       "key)");
        }
        spec.assignment = flag_assignment(argc, argv, spec.assignment);
    }
    // Set when --coordinator switches to a policy the base spec did not
    // carry: the fresh policy's knobs start empty and the policy-scoped
    // flags below (checked at the end) must fill them — mirroring the file
    // parser's "fixed-stagger requires coordinator.stagger_ms" rule.
    bool fresh_coordinator_policy = false;
    if (const char* coordinator = flag_text(argc, argv, "--coordinator");
        coordinator != nullptr) {
        if (std::strcmp(coordinator, "none") == 0) {
            spec.without_coordinator();
        } else {
            if (!spec.is_multicell()) {
                flag_error("--coordinator", coordinator,
                           "requires a multicell scenario (--cells or a "
                           "'cells' key)");
            }
            const auto policy = multicell::parse_start_policy(coordinator);
            if (!policy.has_value()) {
                flag_error("--coordinator", coordinator, "unknown start policy",
                           "simultaneous | fixed-stagger | backhaul | none");
            }
            if (!spec.coordinator || spec.coordinator->policy != *policy) {
                // A policy switch resets the policy-scoped knobs; the flags
                // below refill them (and must — see the final checks).
                multicell::CoordinatorSpec fresh;
                fresh.policy = *policy;
                spec.coordinator = fresh;
                fresh_coordinator_policy = true;
            }
        }
    }
    if (const char* stagger = flag_text(argc, argv, "--stagger-ms");
        stagger != nullptr) {
        if (!spec.coordinator ||
            spec.coordinator->policy != multicell::StartPolicy::fixed_stagger) {
            flag_error("--stagger-ms", stagger,
                       "requires the fixed-stagger policy (--coordinator "
                       "fixed-stagger or a fixed-stagger scenario)");
        }
        const std::uint64_t stagger_ms = flag_u64(argc, argv, "--stagger-ms", 0);
        if (stagger_ms > static_cast<std::uint64_t>(
                             std::numeric_limits<std::int64_t>::max())) {
            flag_error("--stagger-ms", stagger, "value out of range");
        }
        spec.coordinator->stagger_ms = static_cast<std::int64_t>(stagger_ms);
    }
    if (const char* backhaul = flag_text(argc, argv, "--backhaul-kbps");
        backhaul != nullptr) {
        if (!spec.coordinator ||
            spec.coordinator->policy !=
                multicell::StartPolicy::backhaul_budgeted) {
            flag_error("--backhaul-kbps", backhaul,
                       "requires the backhaul policy (--coordinator backhaul "
                       "or a backhaul scenario)",
                       "X where X is a finite number > 0");
        }
        double kbps = 0.0;
        switch (parse_strict_double(backhaul, kbps)) {
            case DoubleParseError::none: break;
            case DoubleParseError::empty:
                flag_error("--backhaul-kbps", backhaul, "empty value",
                           "X where X is a finite number > 0");
            case DoubleParseError::not_number:
                flag_error("--backhaul-kbps", backhaul, "not a number",
                           "X where X is a finite number > 0");
            case DoubleParseError::not_finite:
                flag_error("--backhaul-kbps", backhaul, "not a finite number",
                           "X where X is a finite number > 0");
        }
        if (kbps <= 0.0) {
            flag_error("--backhaul-kbps", backhaul, "value must be > 0",
                       "X where X is a finite number > 0");
        }
        spec.coordinator->backhaul_kbps = kbps;
    }
    if (spec.coordinator &&
        spec.coordinator->policy == multicell::StartPolicy::backhaul_budgeted &&
        spec.coordinator->backhaul_kbps <= 0.0) {
        flag_error("--coordinator", "backhaul",
                   "the backhaul policy needs a feed budget",
                   "backhaul --backhaul-kbps X");
    }
    if (fresh_coordinator_policy && spec.coordinator &&
        spec.coordinator->policy == multicell::StartPolicy::fixed_stagger &&
        flag_text(argc, argv, "--stagger-ms") == nullptr) {
        // Without this, a forgotten --stagger-ms would silently run a
        // 0-stagger (simultaneous) schedule.
        flag_error("--coordinator", "fixed-stagger",
                   "the fixed-stagger policy needs a stagger",
                   "fixed-stagger --stagger-ms N");
    }
    if (const char* telemetry = flag_text(argc, argv, "--telemetry");
        telemetry != nullptr) {
        if (std::strcmp(telemetry, "off") == 0) {
            spec.telemetry = TelemetrySpec{};  // clears modes and paths
        } else if (std::strcmp(telemetry, "trace") == 0) {
            spec.with_telemetry_modes(true, spec.telemetry.metrics);
        } else if (std::strcmp(telemetry, "metrics") == 0) {
            spec.with_telemetry_modes(spec.telemetry.trace, true);
        } else if (std::strcmp(telemetry, "full") == 0) {
            spec.with_telemetry_modes(true, true);
        } else {
            flag_error("--telemetry", telemetry, "unknown telemetry mode",
                       "off | trace | metrics | full");
        }
    }
    // The output flags engage their collection mode, mirroring the
    // with_*_out builders and the file parser's key pairing.
    if (const char* path = flag_text(argc, argv, "--trace-out");
        path != nullptr) {
        if (path[0] == '\0') flag_error("--trace-out", path, "empty path", "FILE");
        spec.with_trace_out(path);
    }
    if (const char* path = flag_text(argc, argv, "--metrics-out");
        path != nullptr) {
        if (path[0] == '\0') {
            flag_error("--metrics-out", path, "empty path", "FILE");
        }
        spec.with_metrics_out(path);
    }
    if (const char* path = flag_text(argc, argv, "--timeline-out");
        path != nullptr) {
        if (path[0] == '\0') {
            flag_error("--timeline-out", path, "empty path", "FILE");
        }
        spec.with_timeline_out(path);
    }
    if (const char* path = flag_text(argc, argv, "--checkpoint-out");
        path != nullptr) {
        if (path[0] == '\0') {
            flag_error("--checkpoint-out", path, "empty path", "FILE");
        }
        spec.with_checkpoint_out(path);
    }
    if (const char* every = flag_text(argc, argv, "--checkpoint-every-ms");
        every != nullptr) {
        // Mirror the file parser: an explicit throttle must be >= 1 ms of
        // simulated time (0, the write-every-task default, is expressed by
        // omitting the flag).
        const std::uint64_t every_ms =
            flag_u64(argc, argv, "--checkpoint-every-ms", 0, 1);
        if (every_ms > static_cast<std::uint64_t>(
                           std::numeric_limits<std::int64_t>::max())) {
            flag_error("--checkpoint-every-ms", every, "value out of range");
        }
        spec.with_checkpoint_every_ms(static_cast<std::int64_t>(every_ms));
    }
    if (flag_text(argc, argv, "--checkpoint-stop-after") != nullptr) {
        spec.with_checkpoint_stop_after(
            flag_u64(argc, argv, "--checkpoint-stop-after", 0, 1));
    }
    if (const char* path = flag_text(argc, argv, "--resume"); path != nullptr) {
        if (path[0] == '\0') flag_error("--resume", path, "empty path", "FILE");
        spec.with_resume(path);
    }
    // Checked after all overrides so --checkpoint-every-ms may ride on a
    // scenario file that already sets checkpoint.out.
    if (spec.checkpoint.out.empty()) {
        if (const char* every = flag_text(argc, argv, "--checkpoint-every-ms");
            every != nullptr) {
            flag_error("--checkpoint-every-ms", every,
                       "requires a snapshot path (--checkpoint-out or a "
                       "'checkpoint.out' key)");
        }
        if (const char* stop = flag_text(argc, argv, "--checkpoint-stop-after");
            stop != nullptr) {
            flag_error("--checkpoint-stop-after", stop,
                       "requires a snapshot path (--checkpoint-out or a "
                       "'checkpoint.out' key)");
        }
    }
    if (const char* rate = flag_text(argc, argv, "--churn-leave-rate");
        rate != nullptr) {
        double parsed = 0.0;
        switch (parse_strict_double(rate, parsed)) {
            case DoubleParseError::none: break;
            case DoubleParseError::empty:
                flag_error("--churn-leave-rate", rate, "empty value",
                           "X where X is a finite number >= 0");
            case DoubleParseError::not_number:
                flag_error("--churn-leave-rate", rate, "not a number",
                           "X where X is a finite number >= 0");
            case DoubleParseError::not_finite:
                flag_error("--churn-leave-rate", rate, "not a finite number",
                           "X where X is a finite number >= 0");
        }
        if (parsed < 0.0) {
            flag_error("--churn-leave-rate", rate, "value must be >= 0",
                       "X where X is a finite number >= 0");
        }
        spec.config.churn.leave_rate = parsed;
    }
    if (const char* rejoin = flag_text(argc, argv, "--churn-rejoin-ms");
        rejoin != nullptr) {
        // Mirror the file parser: a rejoin time without churn is a dead
        // knob, not a silent no-op.
        if (!spec.config.churn.enabled()) {
            flag_error("--churn-rejoin-ms", rejoin,
                       "requires churn (--churn-leave-rate or a "
                       "'churn.leave_rate' key)");
        }
        const std::uint64_t rejoin_ms =
            flag_u64(argc, argv, "--churn-rejoin-ms", 0, 1);
        if (rejoin_ms > static_cast<std::uint64_t>(
                            std::numeric_limits<std::int64_t>::max())) {
            flag_error("--churn-rejoin-ms", rejoin, "value out of range");
        }
        spec.config.churn.rejoin_ms = static_cast<std::int64_t>(rejoin_ms);
    }
    if (const char* down = flag_text(argc, argv, "--cell-down");
        down != nullptr) {
        if (!spec.is_multicell()) {
            flag_error("--cell-down", down,
                       "requires a multicell scenario (--cells or a 'cells' "
                       "key)",
                       "CELL@T_MS (e.g. 3@600000)");
        }
        const auto parsed = faults::parse_cell_down(down);
        if (!parsed) {
            flag_error("--cell-down", down, "malformed outage spec",
                       "CELL@T_MS (e.g. 3@600000, T >= 1)");
        }
        spec.cell_down = *parsed;
    }
    if (const char* loss = flag_text(argc, argv, "--backhaul-loss");
        loss != nullptr) {
        if (!spec.coordinator ||
            spec.coordinator->policy !=
                multicell::StartPolicy::backhaul_budgeted) {
            flag_error("--backhaul-loss", loss,
                       "requires the backhaul policy (--coordinator backhaul "
                       "or a backhaul scenario)",
                       "X where X is in [0, 1)");
        }
        double parsed = 0.0;
        switch (parse_strict_double(loss, parsed)) {
            case DoubleParseError::none: break;
            case DoubleParseError::empty:
                flag_error("--backhaul-loss", loss, "empty value",
                           "X where X is in [0, 1)");
            case DoubleParseError::not_number:
                flag_error("--backhaul-loss", loss, "not a number",
                           "X where X is in [0, 1)");
            case DoubleParseError::not_finite:
                flag_error("--backhaul-loss", loss, "not a finite number",
                           "X where X is in [0, 1)");
        }
        if (parsed < 0.0 || parsed >= 1.0) {
            flag_error("--backhaul-loss", loss, "value must be in [0, 1)",
                       "X where X is in [0, 1)");
        }
        spec.coordinator->loss_prob = parsed;
    }
}

}  // namespace nbmg::scenario
