#include "scenario/parser.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>

#include "faults/spec.hpp"
#include "scenario/parse_util.hpp"
#include "scenario/registry.hpp"

namespace nbmg::scenario {
namespace {

struct LineContext {
    std::string_view source;
    std::size_t line = 0;

    [[noreturn]] void fail(const std::string& reason) const {
        std::ostringstream out;
        out << source << ":" << line << ": " << reason;
        throw ScenarioError(out.str());
    }
};

std::string_view trim(std::string_view text) {
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.front())) != 0) {
        text.remove_prefix(1);
    }
    while (!text.empty() &&
           std::isspace(static_cast<unsigned char>(text.back())) != 0) {
        text.remove_suffix(1);
    }
    return text;
}

std::uint64_t parse_u64(const LineContext& ctx, std::string_view key,
                        const std::string& value) {
    std::uint64_t parsed = 0;
    switch (parse_strict_u64(value.c_str(), parsed)) {
        case U64ParseError::none: return parsed;
        case U64ParseError::out_of_range:
            ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
                     "': out of range");
        case U64ParseError::empty:
        case U64ParseError::negative:
        case U64ParseError::not_decimal:
            break;
    }
    ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
             "': not a non-negative decimal integer");
}

std::uint64_t parse_positive_u64(const LineContext& ctx, std::string_view key,
                                 const std::string& value) {
    const std::uint64_t parsed = parse_u64(ctx, key, value);
    if (parsed == 0) {
        ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
                 "': must be >= 1");
    }
    return parsed;
}

/// parse_positive_u64 with an inclusive upper bound, for values that are
/// narrowed (int fields) or multiplied (payload_kb) downstream — an
/// overflow must fail at file:line, not wrap silently.
std::uint64_t parse_bounded_u64(const LineContext& ctx, std::string_view key,
                                const std::string& value, std::uint64_t max_value) {
    const std::uint64_t parsed = parse_positive_u64(ctx, key, value);
    if (parsed > max_value) {
        ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
                 "': out of range");
    }
    return parsed;
}

double parse_double(const LineContext& ctx, std::string_view key,
                    const std::string& value) {
    double parsed = 0.0;
    switch (parse_strict_double(value.c_str(), parsed)) {
        case DoubleParseError::none: return parsed;
        case DoubleParseError::empty:
            ctx.fail("bad value '' for key '" + std::string(key) +
                     "': not a number");
        case DoubleParseError::not_number:
        case DoubleParseError::not_finite:
            break;
    }
    ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
             "': not a finite number");
}

bool parse_bool(const LineContext& ctx, std::string_view key,
                const std::string& value) {
    if (value == "true" || value == "1") return true;
    if (value == "false" || value == "0") return false;
    ctx.fail("bad value '" + value + "' for key '" + std::string(key) +
             "': expected true | false");
}

std::vector<core::MechanismKind> parse_mechanisms(const LineContext& ctx,
                                                  const std::string& value) {
    std::vector<core::MechanismKind> kinds;
    std::string_view remaining = value;
    while (true) {
        const std::size_t comma = remaining.find(',');
        const std::string_view token = trim(remaining.substr(0, comma));
        if (token.empty()) {
            ctx.fail("bad value '" + value +
                     "' for key 'mechanisms': empty mechanism name");
        }
        const auto kind = Registry::instance().find_mechanism(token);
        if (!kind) {
            std::string names;
            for (const std::string& name :
                 Registry::instance().mechanism_names()) {
                if (!names.empty()) names += " | ";
                names += name;
            }
            ctx.fail("unknown mechanism '" + std::string(token) +
                     "' for key 'mechanisms'; expected " + names);
        }
        kinds.push_back(*kind);
        if (comma == std::string_view::npos) break;
        remaining.remove_prefix(comma + 1);
    }
    return kinds;
}

/// Declarative multicell fields, assembled after all lines are read so key
/// order does not matter.
struct MulticellFields {
    std::optional<std::size_t> cells;
    std::optional<TopologySpec::Kind> kind;
    std::optional<double> hotspot_exponent;
    std::optional<multicell::AssignmentPolicy> assignment;
    std::size_t first_multicell_line = 0;
};

/// Wall-clock coordinator fields, assembled after all lines are read so the
/// policy key and its policy-scoped sub-keys may appear in any order.
struct CoordinatorFields {
    std::optional<multicell::StartPolicy> policy;
    std::optional<std::int64_t> stagger_ms;
    std::optional<double> backhaul_kbps;
    std::size_t policy_line = 0;
    std::size_t first_subkey_line = 0;
};

/// Telemetry fields, assembled after all lines are read so the mode key
/// and its mode-scoped sub-keys may appear in any order.
struct TelemetryFields {
    /// (trace, metrics) from the `telemetry` mode key.
    std::optional<std::pair<bool, bool>> mode;
    std::optional<std::int64_t> bucket_ms;
    std::optional<std::string> trace_out;
    std::optional<std::string> metrics_out;
    std::optional<std::string> timeline_out;
    std::size_t bucket_line = 0;
    std::size_t trace_out_line = 0;
    std::size_t metrics_out_line = 0;
    std::size_t timeline_out_line = 0;
};

/// Checkpoint fields, assembled after all lines are read so the snapshot
/// path and its dependent sub-keys may appear in any order.
struct CheckpointFields {
    std::optional<std::string> out;
    std::optional<std::int64_t> every_ms;
    std::optional<std::uint64_t> stop_after;
    std::optional<std::string> resume;
    std::size_t every_ms_line = 0;
    std::size_t stop_after_line = 0;
};

/// Failure-injection fields, assembled after all lines are read so churn
/// keys, the outage key and their dependencies may appear in any order.
struct FaultFields {
    std::optional<double> churn_leave_rate;
    std::optional<std::int64_t> churn_rejoin_ms;
    std::optional<faults::OutageSpec> cell_down;
    std::optional<double> backhaul_loss;
    std::size_t rejoin_line = 0;
    std::size_t cell_down_line = 0;
    std::size_t backhaul_loss_line = 0;
};

}  // namespace

ScenarioSpec parse_scenario_text(std::string_view text,
                                 std::string_view source_name) {
    ScenarioSpec spec;
    spec.name = "custom";
    MulticellFields multicell_fields;
    CoordinatorFields coordinator_fields;
    TelemetryFields telemetry_fields;
    CheckpointFields checkpoint_fields;
    FaultFields fault_fields;
    std::optional<double> batch_mean;
    // key -> line it was first set on, for duplicate diagnostics.  The
    // payload keys alias each other, so both map to the same slot.
    std::map<std::string, std::size_t, std::less<>> seen;

    LineContext ctx{source_name, 0};
    std::size_t start = 0;
    while (start <= text.size()) {
        const std::size_t newline = text.find('\n', start);
        const std::string_view raw =
            text.substr(start, newline == std::string_view::npos
                                   ? std::string_view::npos
                                   : newline - start);
        start = newline == std::string_view::npos ? text.size() + 1 : newline + 1;
        ++ctx.line;

        const std::string_view line = trim(raw);
        if (line.empty() || line.front() == '#') continue;

        const std::size_t equals = line.find('=');
        if (equals == std::string_view::npos) {
            ctx.fail("expected 'key = value', got '" + std::string(line) + "'");
        }
        const std::string key{trim(line.substr(0, equals))};
        const std::string value{trim(line.substr(equals + 1))};
        if (key.empty()) ctx.fail("missing key before '='");

        // The payload spellings share one logical key.
        const std::string dedup_key =
            (key == "payload_kb" || key == "payload_bytes") ? "payload" : key;
        if (const auto it = seen.find(dedup_key); it != seen.end()) {
            std::ostringstream reason;
            reason << "duplicate key '" << key << "' (first set on line "
                   << it->second << ")";
            ctx.fail(reason.str());
        }
        seen.emplace(dedup_key, ctx.line);

        if (key == "name") {
            spec.name = value;
        } else if (key == "description") {
            spec.description = value;
        } else if (key == "profile") {
            if (!Registry::instance().has_profile(value)) {
                std::string names;
                for (const std::string& name :
                     Registry::instance().profile_names()) {
                    if (!names.empty()) names += " | ";
                    names += name;
                }
                ctx.fail("unknown profile '" + value + "'; expected " + names);
            }
            spec.profile = Registry::instance().profile(value);
        } else if (key == "batch_mean") {
            batch_mean = parse_double(ctx, key, value);
            if (*batch_mean < 1.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'batch_mean': must be >= 1");
            }
        } else if (key == "devices") {
            spec.device_count =
                static_cast<std::size_t>(parse_positive_u64(ctx, key, value));
        } else if (key == "payload_bytes") {
            spec.payload_bytes = static_cast<std::int64_t>(parse_bounded_u64(
                ctx, key, value,
                std::numeric_limits<std::int64_t>::max()));
        } else if (key == "payload_kb") {
            spec.payload_bytes =
                static_cast<std::int64_t>(parse_bounded_u64(
                    ctx, key, value,
                    std::numeric_limits<std::int64_t>::max() / 1024)) *
                1024;
        } else if (key == "runs") {
            spec.runs =
                static_cast<std::size_t>(parse_positive_u64(ctx, key, value));
        } else if (key == "seed") {
            spec.base_seed = parse_u64(ctx, key, value);
        } else if (key == "threads") {
            spec.threads = static_cast<std::size_t>(parse_u64(ctx, key, value));
        } else if (key == "mechanisms") {
            spec.mechanisms = parse_mechanisms(ctx, value);
        } else if (key == "ti_ms") {
            spec.config.inactivity_timer =
                nbiot::SimTime{static_cast<std::int64_t>(parse_bounded_u64(
                    ctx, key, value,
                    std::numeric_limits<std::int64_t>::max()))};
        } else if (key == "ra_guard_ms") {
            const std::uint64_t parsed = parse_u64(ctx, key, value);
            if (parsed > static_cast<std::uint64_t>(
                             std::numeric_limits<std::int64_t>::max())) {
                ctx.fail("bad value '" + value + "' for key '" + key +
                         "': out of range");
            }
            spec.config.ra_guard =
                nbiot::SimTime{static_cast<std::int64_t>(parsed)};
        } else if (key == "include_inactivity_tail") {
            spec.config.include_inactivity_tail = parse_bool(ctx, key, value);
        } else if (key == "page_miss_prob") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed < 0.0 || parsed >= 1.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'page_miss_prob': must be in [0, 1)");
            }
            spec.config.page_miss_prob = parsed;
        } else if (key == "max_page_attempts") {
            spec.config.max_page_attempts = static_cast<int>(parse_bounded_u64(
                ctx, key, value,
                static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
        } else if (key == "background_ra_per_second") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed < 0.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'background_ra_per_second': must be >= 0");
            }
            spec.config.background_ra_per_second = parsed;
        } else if (key == "max_page_records") {
            spec.config.paging.max_page_records = static_cast<int>(parse_bounded_u64(
                ctx, key, value,
                static_cast<std::uint64_t>(std::numeric_limits<int>::max())));
        } else if (key == "sc_ptm_mcch_period_ms") {
            spec.config.sc_ptm_mcch_period =
                nbiot::SimTime{static_cast<std::int64_t>(parse_bounded_u64(
                    ctx, key, value,
                    std::numeric_limits<std::int64_t>::max()))};
        } else if (key == "strata") {
            spec.config.strata = static_cast<std::size_t>(
                parse_bounded_u64(ctx, key, value, core::kMaxStrata));
        } else if (key == "cells") {
            multicell_fields.cells =
                static_cast<std::size_t>(parse_positive_u64(ctx, key, value));
            if (multicell_fields.first_multicell_line == 0) {
                multicell_fields.first_multicell_line = ctx.line;
            }
        } else if (key == "topology") {
            if (value == "uniform") {
                multicell_fields.kind = TopologySpec::Kind::uniform;
            } else if (value == "hotspot") {
                multicell_fields.kind = TopologySpec::Kind::hotspot;
            } else {
                ctx.fail("bad value '" + value +
                         "' for key 'topology': expected uniform | hotspot");
            }
            if (multicell_fields.first_multicell_line == 0) {
                multicell_fields.first_multicell_line = ctx.line;
            }
        } else if (key == "hotspot_exponent") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed < 0.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'hotspot_exponent': must be >= 0");
            }
            multicell_fields.hotspot_exponent = parsed;
            if (multicell_fields.first_multicell_line == 0) {
                multicell_fields.first_multicell_line = ctx.line;
            }
        } else if (key == "assignment") {
            const auto parsed = multicell::parse_assignment_policy(value);
            if (!parsed) {
                ctx.fail("bad value '" + value +
                         "' for key 'assignment': expected uniform | hotspot | "
                         "class-affinity");
            }
            multicell_fields.assignment = *parsed;
            if (multicell_fields.first_multicell_line == 0) {
                multicell_fields.first_multicell_line = ctx.line;
            }
        } else if (key == "coordinator") {
            const auto parsed = multicell::parse_start_policy(value);
            if (!parsed) {
                ctx.fail("bad value '" + value +
                         "' for key 'coordinator': expected simultaneous | "
                         "fixed-stagger | backhaul");
            }
            coordinator_fields.policy = *parsed;
            coordinator_fields.policy_line = ctx.line;
        } else if (key == "coordinator.stagger_ms") {
            // 0 is a valid stagger (degenerates to simultaneous starts).
            const std::uint64_t parsed = parse_u64(ctx, key, value);
            if (parsed > static_cast<std::uint64_t>(
                             std::numeric_limits<std::int64_t>::max())) {
                ctx.fail("bad value '" + value + "' for key '" + key +
                         "': out of range");
            }
            coordinator_fields.stagger_ms = static_cast<std::int64_t>(parsed);
            if (coordinator_fields.first_subkey_line == 0) {
                coordinator_fields.first_subkey_line = ctx.line;
            }
        } else if (key == "coordinator.backhaul_kbps") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed <= 0.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'coordinator.backhaul_kbps': must be > 0");
            }
            coordinator_fields.backhaul_kbps = parsed;
            if (coordinator_fields.first_subkey_line == 0) {
                coordinator_fields.first_subkey_line = ctx.line;
            }
        } else if (key == "telemetry") {
            if (value == "off") {
                telemetry_fields.mode = std::pair{false, false};
            } else if (value == "trace") {
                telemetry_fields.mode = std::pair{true, false};
            } else if (value == "metrics") {
                telemetry_fields.mode = std::pair{false, true};
            } else if (value == "full") {
                telemetry_fields.mode = std::pair{true, true};
            } else {
                ctx.fail("bad value '" + value +
                         "' for key 'telemetry': expected off | trace | "
                         "metrics | full");
            }
        } else if (key == "telemetry.bucket_ms") {
            telemetry_fields.bucket_ms = static_cast<std::int64_t>(
                parse_bounded_u64(ctx, key, value,
                                  std::numeric_limits<std::int64_t>::max()));
            telemetry_fields.bucket_line = ctx.line;
        } else if (key == "trace_out") {
            if (value.empty()) {
                ctx.fail("bad value '' for key 'trace_out': empty path");
            }
            telemetry_fields.trace_out = value;
            telemetry_fields.trace_out_line = ctx.line;
        } else if (key == "metrics_out") {
            if (value.empty()) {
                ctx.fail("bad value '' for key 'metrics_out': empty path");
            }
            telemetry_fields.metrics_out = value;
            telemetry_fields.metrics_out_line = ctx.line;
        } else if (key == "timeline_out") {
            if (value.empty()) {
                ctx.fail("bad value '' for key 'timeline_out': empty path");
            }
            telemetry_fields.timeline_out = value;
            telemetry_fields.timeline_out_line = ctx.line;
        } else if (key == "checkpoint.out") {
            if (value.empty()) {
                ctx.fail("bad value '' for key 'checkpoint.out': empty path");
            }
            checkpoint_fields.out = value;
        } else if (key == "checkpoint.every_ms") {
            // 0 (write after every task) is the default; an explicit
            // throttle must be >= 1 ms of simulated time.
            checkpoint_fields.every_ms = static_cast<std::int64_t>(
                parse_bounded_u64(ctx, key, value,
                                  std::numeric_limits<std::int64_t>::max()));
            checkpoint_fields.every_ms_line = ctx.line;
        } else if (key == "checkpoint.stop_after") {
            checkpoint_fields.stop_after = parse_positive_u64(ctx, key, value);
            checkpoint_fields.stop_after_line = ctx.line;
        } else if (key == "checkpoint.resume") {
            if (value.empty()) {
                ctx.fail("bad value '' for key 'checkpoint.resume': empty path");
            }
            checkpoint_fields.resume = value;
        } else if (key == "churn.leave_rate") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed < 0.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'churn.leave_rate': must be >= 0");
            }
            fault_fields.churn_leave_rate = parsed;
        } else if (key == "churn.rejoin_ms") {
            fault_fields.churn_rejoin_ms = static_cast<std::int64_t>(
                parse_bounded_u64(ctx, key, value,
                                  std::numeric_limits<std::int64_t>::max()));
            fault_fields.rejoin_line = ctx.line;
        } else if (key == "faults.cell_down") {
            const auto parsed = faults::parse_cell_down(value);
            if (!parsed) {
                ctx.fail("bad value '" + value +
                         "' for key 'faults.cell_down': expected CELL@T_MS "
                         "(e.g. 3@600000, T >= 1)");
            }
            fault_fields.cell_down = *parsed;
            fault_fields.cell_down_line = ctx.line;
        } else if (key == "faults.backhaul_loss") {
            const double parsed = parse_double(ctx, key, value);
            if (parsed < 0.0 || parsed >= 1.0) {
                ctx.fail("bad value '" + value +
                         "' for key 'faults.backhaul_loss': must be in [0, 1)");
            }
            fault_fields.backhaul_loss = parsed;
            fault_fields.backhaul_loss_line = ctx.line;
        } else {
            ctx.fail("unknown key '" + key + "'");
        }
    }

    if (batch_mean) spec.profile.batch_mean = *batch_mean;

    if (multicell_fields.kind || multicell_fields.hotspot_exponent ||
        multicell_fields.assignment || multicell_fields.cells) {
        if (!multicell_fields.cells) {
            ctx.line = multicell_fields.first_multicell_line;
            ctx.fail(
                "multicell keys (topology, hotspot_exponent, assignment) "
                "require 'cells'");
        }
        TopologySpec topo;
        topo.cells = *multicell_fields.cells;
        topo.kind =
            multicell_fields.kind.value_or(TopologySpec::Kind::uniform);
        topo.hotspot_exponent = multicell_fields.hotspot_exponent.value_or(1.0);
        spec.topology = topo;
        if (multicell_fields.assignment) {
            spec.assignment = *multicell_fields.assignment;
        }
    }

    if (coordinator_fields.stagger_ms || coordinator_fields.backhaul_kbps) {
        if (!coordinator_fields.policy) {
            ctx.line = coordinator_fields.first_subkey_line;
            ctx.fail(
                "coordinator.* sub-keys require a 'coordinator' policy key "
                "(simultaneous | fixed-stagger | backhaul)");
        }
    }
    if (coordinator_fields.policy) {
        ctx.line = coordinator_fields.policy_line;
        if (!multicell_fields.cells) {
            ctx.fail("'coordinator' requires a multicell grid ('cells')");
        }
        multicell::CoordinatorSpec coordinator;
        coordinator.policy = *coordinator_fields.policy;
        switch (coordinator.policy) {
            case multicell::StartPolicy::simultaneous:
                if (coordinator_fields.stagger_ms ||
                    coordinator_fields.backhaul_kbps) {
                    ctx.fail(
                        "coordinator = simultaneous takes no "
                        "coordinator.stagger_ms / coordinator.backhaul_kbps");
                }
                break;
            case multicell::StartPolicy::fixed_stagger:
                if (!coordinator_fields.stagger_ms) {
                    ctx.fail(
                        "coordinator = fixed-stagger requires "
                        "coordinator.stagger_ms");
                }
                if (coordinator_fields.backhaul_kbps) {
                    ctx.fail(
                        "coordinator.backhaul_kbps belongs to coordinator = "
                        "backhaul, not fixed-stagger");
                }
                coordinator.stagger_ms = *coordinator_fields.stagger_ms;
                break;
            case multicell::StartPolicy::backhaul_budgeted:
                if (!coordinator_fields.backhaul_kbps) {
                    ctx.fail(
                        "coordinator = backhaul requires "
                        "coordinator.backhaul_kbps");
                }
                if (coordinator_fields.stagger_ms) {
                    ctx.fail(
                        "coordinator.stagger_ms belongs to coordinator = "
                        "fixed-stagger, not backhaul");
                }
                coordinator.backhaul_kbps = *coordinator_fields.backhaul_kbps;
                break;
        }
        spec.coordinator = coordinator;
    }

    if (fault_fields.churn_rejoin_ms && !fault_fields.churn_leave_rate) {
        ctx.line = fault_fields.rejoin_line;
        ctx.fail("'churn.rejoin_ms' requires 'churn.leave_rate'");
    }
    if (fault_fields.churn_leave_rate) {
        spec.config.churn.leave_rate = *fault_fields.churn_leave_rate;
        if (fault_fields.churn_rejoin_ms) {
            spec.config.churn.rejoin_ms = *fault_fields.churn_rejoin_ms;
        }
    }
    if (fault_fields.cell_down) {
        if (!multicell_fields.cells) {
            ctx.line = fault_fields.cell_down_line;
            ctx.fail("'faults.cell_down' requires a multicell grid ('cells')");
        }
        spec.cell_down = *fault_fields.cell_down;
    }
    if (fault_fields.backhaul_loss) {
        if (!spec.coordinator ||
            spec.coordinator->policy !=
                multicell::StartPolicy::backhaul_budgeted) {
            ctx.line = fault_fields.backhaul_loss_line;
            ctx.fail("'faults.backhaul_loss' requires coordinator = backhaul");
        }
        spec.coordinator->loss_prob = *fault_fields.backhaul_loss;
    }

    {
        const bool trace_on =
            telemetry_fields.mode.has_value() && telemetry_fields.mode->first;
        const bool metrics_on =
            telemetry_fields.mode.has_value() && telemetry_fields.mode->second;
        if (telemetry_fields.trace_out && !trace_on) {
            ctx.line = telemetry_fields.trace_out_line;
            ctx.fail("'trace_out' requires telemetry = trace or full");
        }
        if (telemetry_fields.timeline_out && !trace_on) {
            ctx.line = telemetry_fields.timeline_out_line;
            ctx.fail("'timeline_out' requires telemetry = trace or full");
        }
        if (telemetry_fields.metrics_out && !metrics_on) {
            ctx.line = telemetry_fields.metrics_out_line;
            ctx.fail("'metrics_out' requires telemetry = metrics or full");
        }
        if (telemetry_fields.bucket_ms && !(trace_on || metrics_on)) {
            ctx.line = telemetry_fields.bucket_line;
            ctx.fail(
                "'telemetry.bucket_ms' requires an enabled telemetry mode "
                "(trace | metrics | full)");
        }
        spec.telemetry.trace = trace_on;
        spec.telemetry.metrics = metrics_on;
        if (telemetry_fields.bucket_ms) {
            spec.telemetry.bucket_ms = *telemetry_fields.bucket_ms;
        }
        if (telemetry_fields.trace_out) {
            spec.telemetry.trace_out = *telemetry_fields.trace_out;
        }
        if (telemetry_fields.metrics_out) {
            spec.telemetry.metrics_out = *telemetry_fields.metrics_out;
        }
        if (telemetry_fields.timeline_out) {
            spec.telemetry.timeline_out = *telemetry_fields.timeline_out;
        }
    }

    if (checkpoint_fields.every_ms && !checkpoint_fields.out) {
        ctx.line = checkpoint_fields.every_ms_line;
        ctx.fail(
            "'checkpoint.every_ms' requires a snapshot path "
            "('checkpoint.out')");
    }
    if (checkpoint_fields.stop_after && !checkpoint_fields.out) {
        ctx.line = checkpoint_fields.stop_after_line;
        ctx.fail(
            "'checkpoint.stop_after' requires a snapshot path "
            "('checkpoint.out')");
    }
    if (checkpoint_fields.out) spec.checkpoint.out = *checkpoint_fields.out;
    if (checkpoint_fields.every_ms) {
        spec.checkpoint.every_ms = *checkpoint_fields.every_ms;
    }
    if (checkpoint_fields.stop_after) {
        spec.checkpoint.stop_after = *checkpoint_fields.stop_after;
    }
    if (checkpoint_fields.resume) {
        spec.checkpoint.resume = *checkpoint_fields.resume;
    }

    try {
        spec.validate();
    } catch (const std::invalid_argument& error) {
        throw ScenarioError(std::string(source_name) + ": " + error.what());
    }
    return spec;
}

ScenarioSpec load_scenario_file(const std::string& path) {
    std::ifstream file(path, std::ios::binary);
    if (!file) {
        throw ScenarioError("cannot read scenario file '" + path + "'");
    }
    std::ostringstream contents;
    contents << file.rdbuf();
    return parse_scenario_text(contents.str(), path);
}

}  // namespace nbmg::scenario
